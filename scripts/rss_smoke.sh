#!/usr/bin/env bash
# Out-of-core smoke: stream the ×100 synthetic corpus (101,700 reports)
# through `spec-trends ingest` with a spill budget and assert the process
# peak RSS (VmHWM) stayed under the bound the segmented store promises.
#
#   ./scripts/rss_smoke.sh [scale] [max_resident_mb] [rss_limit_mib]
#
# Defaults: scale 100, 96 MiB resident budget, 256 MiB RSS ceiling — the
# same bound BENCH_ingest.json holds at ×1000 (see EXPERIMENTS.md).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-100}"
MAX_RESIDENT_MB="${2:-96}"
RSS_LIMIT_MIB="${3:-256}"

cargo build --release -p spec-trends

out="$(./target/release/spec-trends ingest --scale "$SCALE" \
        --max-resident-mb "$MAX_RESIDENT_MB" | tee /dev/stderr)"

# The expected cascade counts scale exactly (1017/960/676 per replica).
echo "$out" | grep -q "raw submissions.*$((1017 * SCALE))" || {
  echo "rss_smoke: raw count is not 1017×${SCALE}" >&2
  exit 1
}

peak_kb="$(echo "$out" | sed -n 's/^peak RSS: \([0-9.]*\) MiB (VmHWM)$/\1/p')"
if [ -z "$peak_kb" ]; then
  echo "rss_smoke: no 'peak RSS' line in ingest output" >&2
  exit 1
fi
# peak_kb is actually MiB (one decimal); compare integer MiB.
peak_mib="${peak_kb%.*}"
if [ "$peak_mib" -gt "$RSS_LIMIT_MIB" ]; then
  echo "rss_smoke: peak RSS ${peak_kb} MiB exceeds the ${RSS_LIMIT_MIB} MiB ceiling" >&2
  exit 1
fi

echo "rss_smoke: OK (×${SCALE}, peak RSS ${peak_kb} MiB <= ${RSS_LIMIT_MIB} MiB)"
