#!/usr/bin/env bash
# Shard smoke: the scatter-gather fleet against a monolithic reference.
#
# Generates the 1017-report corpus, starts one reference daemon, two
# shard daemons (`--shard 1/2`, `--shard 2/2`) and a `--fan-out` front
# end, then byte-compares every figure/data/filtered/aggregated target
# between the reference and the front end. Exercises the grown query
# grammar (year ranges, vendor lists, agg=year) and its typed 4xx
# rejections, checks the front-end /stats shard table, kills one shard
# and asserts an uncached query degrades to a prompt 503 + Retry-After,
# and finishes with an out-of-core check: a single `--scale 100`
# daemon (~101,700 reports) under `--max-resident-mb 64` must keep its
# VmHWM below 512 MiB.
#
#   ./scripts/shard_smoke.sh [base-port]
#
# Default base port 17890 (uses base..base+3).
set -euo pipefail
cd "$(dirname "$0")/.."

BASE_PORT="${1:-17890}"
REF_PORT=$BASE_PORT
SHARD1_PORT=$((BASE_PORT + 1))
SHARD2_PORT=$((BASE_PORT + 2))
FRONT_PORT=$((BASE_PORT + 3))
CORPUS=.ci-shard-corpus
OUT=.ci-shard-out
rm -rf "$CORPUS" "$OUT"
mkdir -p "$OUT"

qget() { curl -sf -H 'Connection: close' "$@"; }
qcode() { curl -s -o /dev/null -w '%{http_code}' -H 'Connection: close' "$@"; }

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

wait_ready() { # port
  for _ in $(seq 1 240); do
    curl -sf -H 'Connection: close' "http://127.0.0.1:$1/readyz" > /dev/null 2>&1 && return 0
    sleep 0.5
  done
  echo "shard_smoke: daemon on port $1 never became ready" >&2
  return 1
}

cargo build --release -p spec-trends

./target/release/spec-trends generate --out "$CORPUS"
test "$(ls "$CORPUS" | wc -l)" -eq 1017

# Reference: one monolithic daemon over the corpus.
./target/release/spec-trends serve --data "$CORPUS" --addr "127.0.0.1:${REF_PORT}" &
REF_PID=$!
PIDS+=($REF_PID)
# The fleet: two shards plus a scatter-gather front end.
./target/release/spec-trends serve --data "$CORPUS" --addr "127.0.0.1:${SHARD1_PORT}" --shard 1/2 &
SHARD1_PID=$!
PIDS+=($SHARD1_PID)
./target/release/spec-trends serve --data "$CORPUS" --addr "127.0.0.1:${SHARD2_PORT}" --shard 2/2 &
SHARD2_PID=$!
PIDS+=($SHARD2_PID)
wait_ready "$SHARD1_PORT"
wait_ready "$SHARD2_PORT"
./target/release/spec-trends serve --addr "127.0.0.1:${FRONT_PORT}" \
  --fan-out "127.0.0.1:${SHARD1_PORT},127.0.0.1:${SHARD2_PORT}" &
FRONT_PID=$!
PIDS+=($FRONT_PID)
wait_ready "$REF_PORT"
wait_ready "$FRONT_PORT"

REF="http://127.0.0.1:${REF_PORT}"
FRONT="http://127.0.0.1:${FRONT_PORT}"

# Every target class, including the grown grammar: year ranges, vendor
# lists and yearly aggregates. Bytes must match the reference exactly.
TARGETS=(
  /figures/1 /figures/2 /figures/3 /figures/4 /figures/5 /figures/6
  /data/1 /data/2 /data/3 /data/4 /data/5 /data/6
  "/data/2?vendor=amd"
  "/data/5?year=2015"
  "/data/2?year=2012-2015"
  "/data/6?vendor=intel,amd"
  "/figures/3?year=2013-2016&vendor=intel"
  "/data/3?agg=year"
  "/data/5?year=2011-2015&vendor=intel&agg=year"
)
i=0
for target in "${TARGETS[@]}"; do
  qget "$REF$target" > "$OUT/ref.$i"
  qget "$FRONT$target" > "$OUT/front.$i"
  if ! cmp -s "$OUT/ref.$i" "$OUT/front.$i"; then
    echo "shard_smoke: $target differs between reference and fan-out" >&2
    exit 1
  fi
  test -s "$OUT/ref.$i" || { echo "shard_smoke: empty body for $target" >&2; exit 1; }
  i=$((i + 1))
done
# The aggregate endpoint serves the yearly-mean CSV shape.
qget "$FRONT/data/3?agg=year" | head -1 | grep -q '^vendor,year,' || {
  echo "shard_smoke: agg=year CSV missing its header" >&2; exit 1
}

# Malformed filters are typed 400s on both daemons — never 500s.
for bad in "/data/2?year=2015-2010" "/data/2?vendor=nvidia" \
    "/data/2?agg=bogus" "/figures/2?agg=year" "/data/2?color=red"; do
  for base in "$REF" "$FRONT"; do
    code="$(qcode "$base$bad")"
    test "$code" = "400" || {
      echo "shard_smoke: expected 400 for $bad on $base, got $code" >&2; exit 1
    }
  done
done

# The front-end /stats table accounts for both shards.
stats="$(qget "$FRONT/stats")"
echo "$stats" | grep -q 'snapshot_mode fan-out' || {
  echo "shard_smoke: front end is not in fan-out mode" >&2; echo "$stats" >&2; exit 1
}
for port in "$SHARD1_PORT" "$SHARD2_PORT"; do
  echo "$stats" | grep -q "127.0.0.1:${port}" || {
    echo "shard_smoke: /stats shard table missing 127.0.0.1:${port}" >&2
    echo "$stats" >&2; exit 1
  }
done
echo "$stats" | grep -q 'raw 1017' || {
  echo "shard_smoke: fan-out /stats does not sum shard corpora to raw 1017" >&2
  echo "$stats" >&2; exit 1
}

# Kill one shard: an uncached scatter query must degrade to a prompt
# 503 + Retry-After (bounded by the request deadline), never a hang.
kill "$SHARD2_PID"
wait "$SHARD2_PID" 2>/dev/null || true
start_s=$SECONDS
headers="$(curl -s -D - -o /dev/null --max-time 10 -H 'Connection: close' \
  "$FRONT/data/4?year=2014&vendor=amd" || true)"
elapsed=$((SECONDS - start_s))
echo "$headers" | grep -q '^HTTP/1.1 503' || {
  echo "shard_smoke: expected 503 from a dead shard, got:" >&2
  echo "$headers" >&2; exit 1
}
echo "$headers" | grep -qi '^Retry-After:' || {
  echo "shard_smoke: dead-shard 503 missing Retry-After" >&2
  echo "$headers" >&2; exit 1
}
test "$elapsed" -le 5 || {
  echo "shard_smoke: dead-shard 503 took ${elapsed}s (deadline is 2s)" >&2; exit 1
}
# Memoized targets keep answering from the front end's cache.
qget "$FRONT/data/2" > "$OUT/front.cached"
cmp -s "$OUT/ref.7" "$OUT/front.cached" || {
  echo "shard_smoke: cached /data/2 changed after shard death" >&2; exit 1
}

# Drain the fleet and wait for the processes to exit: the x100 daemon
# below rebinds the reference port.
qget "$REF/shutdown" > /dev/null
qget "$FRONT/shutdown" > /dev/null
qget "http://127.0.0.1:${SHARD1_PORT}/shutdown" > /dev/null
wait "$REF_PID" "$FRONT_PID" "$SHARD1_PID" 2>/dev/null || true

# --- out-of-core ×100 ------------------------------------------------
# A single daemon streams the ×100 synthetic corpus (~101,700 reports)
# into the segmented row store under a 64 MiB resident budget; its
# peak RSS must stay under 512 MiB.
./target/release/spec-trends serve --addr "127.0.0.1:${REF_PORT}" \
  --scale 100 --max-resident-mb 64 &
X100_PID=$!
PIDS+=($X100_PID)
wait_ready "$REF_PORT"
stats="$(qget "$REF/stats")"
echo "$stats" | grep -q 'snapshot_mode stream' || {
  echo "shard_smoke: x100 daemon is not stream-built" >&2; echo "$stats" >&2; exit 1
}
echo "$stats" | grep -q 'raw 101700' || {
  echo "shard_smoke: x100 daemon did not ingest 101700 reports" >&2
  echo "$stats" >&2; exit 1
}
qget "$REF/data/2?year=2012-2015&vendor=amd" > /dev/null
vmhwm_kb="$(awk '/^VmHWM:/ { print $2 }' "/proc/${X100_PID}/status")"
test "$vmhwm_kb" -lt $((512 * 1024)) || {
  echo "shard_smoke: x100 daemon VmHWM ${vmhwm_kb} kB breaks the 512 MiB budget" >&2
  exit 1
}
qget "$REF/shutdown" > /dev/null
wait "$X100_PID" 2>/dev/null || true

trap - EXIT
cleanup
rm -rf "$CORPUS" "$OUT"
echo "shard_smoke: OK (2-shard fan-out byte-identical, typed 400s, dead shard -> 503, x100 VmHWM ${vmhwm_kb} kB < 512 MiB)"
