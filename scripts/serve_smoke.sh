#!/usr/bin/env bash
# Serve smoke: start the `spec-trends serve` daemon on the 1017-report
# synthetic corpus written to a watched directory, curl every endpoint,
# drop one new report into the directory, and assert the watcher
# refreshes the snapshot re-executing exactly ONE (year, vendor)
# partition. Then exercise the hostile-traffic hardening with raw
# sockets: a header flood (431), a slow-loris client (cut by the read
# deadline), and an overload shed (503 + Retry-After while the daemon
# keeps serving) — finishing with an exact check of the /stats
# connection-lifecycle accounting and a graceful `/shutdown`.
#
#   ./scripts/serve_smoke.sh [port]
#
# Default port 17878.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-17878}"
BASE="http://127.0.0.1:${PORT}"
CORPUS=.ci-serve-corpus
CACHE=.ci-serve-cache
rm -rf "$CORPUS" "$CACHE"

# One-shot GET: `Connection: close` frees the single worker immediately
# instead of leaving it parked in the keep-alive idle wait until curl
# gets around to closing its side.
qget() { curl -sf -H 'Connection: close' "$@"; }

cargo build --release -p spec-trends

./target/release/spec-trends generate --out "$CORPUS"
test "$(ls "$CORPUS" | wc -l)" -eq 1017

# Tight limits on purpose: one worker slot and a one-deep queue make the
# shed scenario below deterministic, and a 1 s request deadline makes the
# slow-loris cut fast.
./target/release/spec-trends serve --data "$CORPUS" --addr "127.0.0.1:${PORT}" \
  --cache-dir "$CACHE" --poll-ms 50 \
  --max-inflight 1 --queue-depth 1 --request-deadline-ms 1000 \
  --idle-timeout-ms 2000 --drain-timeout-ms 3000 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# Wait for the daemon to come up (cold snapshot builds first).
for _ in $(seq 1 120); do
  qget "$BASE/stats" > /dev/null 2>&1 && break
  sleep 0.5
done

# Every endpoint answers 200 with a non-empty body.
for target in / /stats \
    /figures/1 /figures/2 /figures/3 /figures/4 /figures/5 /figures/6 \
    /data/1 /data/2 /data/3 /data/4 /data/5 /data/6 \
    "/data/2?vendor=amd" "/figures/3?year=2015&vendor=intel"; do
  body="$(qget "$BASE$target")"
  test -n "$body" || { echo "serve_smoke: empty body for $target" >&2; exit 1; }
done
qget "$BASE/figures/2" | grep -q '</svg>'
qget "$BASE/data/2" | head -1 | grep -q 'year'

stats="$(qget "$BASE/stats")"
echo "$stats" | grep -q 'raw 1017' || {
  echo "serve_smoke: expected raw 1017 in /stats" >&2; echo "$stats" >&2; exit 1
}
qget "$BASE/data/1" > .ci-serve-data1-before.csv

# Drop one new report into the watched directory: a copy of an existing
# report under a new name lands in the same (year, vendor) partition.
cp "$(ls "$CORPUS"/*.txt | head -1)" "$CORPUS/zz_smoke_new.txt"

# The poller notices within a few intervals and refreshes incrementally.
for _ in $(seq 1 200); do
  stats="$(qget "$BASE/stats")"
  echo "$stats" | grep -q 'raw 1018' && break
  sleep 0.1
done
echo "$stats" | grep -q 'raw 1018' || {
  echo "serve_smoke: watcher never picked up the new report" >&2
  echo "$stats" >&2; exit 1
}
# Exactly the touched partition re-executed; the other ~60 partitions
# were served warm from the artifact cache.
echo "$stats" | grep -q 'partitions_executed 1' || {
  echo "serve_smoke: expected exactly one partition to re-execute" >&2
  echo "$stats" >&2; exit 1
}
# The refreshed snapshot is visible in the data endpoints.
qget "$BASE/data/1" > .ci-serve-data1-after.csv
if cmp -s .ci-serve-data1-before.csv .ci-serve-data1-after.csv; then
  echo "serve_smoke: /data/1 did not change after the corpus update" >&2
  exit 1
fi

# --- hostile-traffic hardening ---------------------------------------

# Liveness and readiness probes.
test "$(qget "$BASE/healthz")" = "ok"
test "$(qget "$BASE/readyz")" = "ready"

# Header flood: a single oversized header must classify as 431, and the
# daemon must keep serving afterwards.
flood="$(printf 'x%.0s' $(seq 1 9000))"
code="$(curl -s -o /dev/null -w '%{http_code}' -H "Connection: close" -H "X-Flood: $flood" "$BASE/stats")"
test "$code" = "431" || { echo "serve_smoke: expected 431 for header flood, got $code" >&2; exit 1; }

# Unknown method → 501, known-but-unsupported → 405.
test "$(curl -s -o /dev/null -w '%{http_code}' -X BOGUS "$BASE/stats")" = "501"
test "$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/stats")" = "405"

# Slow-loris via a raw socket: trickle half a request line, then stall
# past the 1 s request deadline. The daemon must cut the connection
# without writing a byte (no torn response), and count the timeout.
exec 5<>"/dev/tcp/127.0.0.1/${PORT}"
printf 'GET /st' >&5
sleep 1.5
loris="$(timeout 2 cat <&5 || true)"
exec 5<&- 5>&-
test -z "$loris" || { echo "serve_smoke: slow-loris got bytes: $loris" >&2; exit 1; }
sleep 0.3
stats="$(qget "$BASE/stats")"
echo "$stats" | grep -q 'conns_timed_out 1' || {
  echo "serve_smoke: slow-loris not counted as timed out" >&2; echo "$stats" >&2; exit 1
}
echo "$stats" | grep -q 'timeout_read 1' || {
  echo "serve_smoke: slow-loris not counted as a read timeout" >&2; echo "$stats" >&2; exit 1
}

# Overload shed: hold the only worker slot and the one-deep queue with
# silent raw sockets; the next connection must be shed immediately with
# 503 + Retry-After — and the daemon must keep serving once released.
exec 6<>"/dev/tcp/127.0.0.1/${PORT}"
sleep 0.3
exec 7<>"/dev/tcp/127.0.0.1/${PORT}"
sleep 0.3
shed_headers="$(curl -s -D - -o /dev/null --max-time 10 -H 'Connection: close' "$BASE/stats" || true)"
echo "$shed_headers" | grep -q '^HTTP/1.1 503' || {
  echo "serve_smoke: expected a 503 shed, got:" >&2; echo "$shed_headers" >&2; exit 1
}
echo "$shed_headers" | grep -qi '^Retry-After:' || {
  echo "serve_smoke: shed 503 missing Retry-After" >&2; echo "$shed_headers" >&2; exit 1
}
exec 6<&- 6>&-
exec 7<&- 7>&-
sleep 0.3

# The daemon is alive, the shed is accounted, and the lifecycle ledger
# balances exactly: offered = shed + accepted + queued, and
# accepted = completed + timed_out + aborted + active.
stats="$(qget "$BASE/stats")"
stat() { echo "$stats" | awk -v k="$1" '$1 == k { print $2 }'; }
test "$(stat conns_shed)" = "1" || {
  echo "serve_smoke: expected exactly one shed connection" >&2; echo "$stats" >&2; exit 1
}
offered="$(stat conns_offered)"
rhs=$(( $(stat conns_shed) + $(stat conns_accepted) + $(stat conns_queued) ))
test "$offered" -eq "$rhs" || {
  echo "serve_smoke: offered ($offered) != shed+accepted+queued ($rhs)" >&2
  echo "$stats" >&2; exit 1
}
accepted="$(stat conns_accepted)"
rhs=$(( $(stat conns_completed) + $(stat conns_timed_out) + $(stat conns_aborted) + $(stat conns_active) ))
test "$accepted" -eq "$rhs" || {
  echo "serve_smoke: accepted ($accepted) != completed+timed_out+aborted+active ($rhs)" >&2
  echo "$stats" >&2; exit 1
}
test "$(stat worker_panics)" = "0"

# Graceful shutdown: the endpoint drains the workers and the process exits.
qget "$BASE/shutdown" > /dev/null
wait "$SERVE_PID"
trap - EXIT

rm -rf "$CORPUS" "$CACHE" .ci-serve-data1-before.csv .ci-serve-data1-after.csv
echo "serve_smoke: OK (1017+1 reports, one partition re-executed, 431/503/slow-loris hardened)"
