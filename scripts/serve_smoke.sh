#!/usr/bin/env bash
# Serve smoke: start the `spec-trends serve` daemon on the 1017-report
# synthetic corpus written to a watched directory, curl every endpoint,
# drop one new report into the directory, and assert the watcher
# refreshes the snapshot re-executing exactly ONE (year, vendor)
# partition. Finishes with a graceful `/shutdown`.
#
#   ./scripts/serve_smoke.sh [port]
#
# Default port 17878.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-17878}"
BASE="http://127.0.0.1:${PORT}"
CORPUS=.ci-serve-corpus
CACHE=.ci-serve-cache
rm -rf "$CORPUS" "$CACHE"

cargo build --release -p spec-trends

./target/release/spec-trends generate --out "$CORPUS"
test "$(ls "$CORPUS" | wc -l)" -eq 1017

./target/release/spec-trends serve --data "$CORPUS" --addr "127.0.0.1:${PORT}" \
  --cache-dir "$CACHE" --poll-ms 50 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# Wait for the daemon to come up (cold snapshot builds first).
for _ in $(seq 1 120); do
  curl -sf "$BASE/stats" > /dev/null 2>&1 && break
  sleep 0.5
done

# Every endpoint answers 200 with a non-empty body.
for target in / /stats \
    /figures/1 /figures/2 /figures/3 /figures/4 /figures/5 /figures/6 \
    /data/1 /data/2 /data/3 /data/4 /data/5 /data/6 \
    "/data/2?vendor=amd" "/figures/3?year=2015&vendor=intel"; do
  body="$(curl -sf "$BASE$target")"
  test -n "$body" || { echo "serve_smoke: empty body for $target" >&2; exit 1; }
done
curl -sf "$BASE/figures/2" | grep -q '</svg>'
curl -sf "$BASE/data/2" | head -1 | grep -q 'year'

stats="$(curl -sf "$BASE/stats")"
echo "$stats" | grep -q 'raw 1017' || {
  echo "serve_smoke: expected raw 1017 in /stats" >&2; echo "$stats" >&2; exit 1
}
curl -sf "$BASE/data/1" > .ci-serve-data1-before.csv

# Drop one new report into the watched directory: a copy of an existing
# report under a new name lands in the same (year, vendor) partition.
cp "$(ls "$CORPUS"/*.txt | head -1)" "$CORPUS/zz_smoke_new.txt"

# The poller notices within a few intervals and refreshes incrementally.
for _ in $(seq 1 200); do
  stats="$(curl -sf "$BASE/stats")"
  echo "$stats" | grep -q 'raw 1018' && break
  sleep 0.1
done
echo "$stats" | grep -q 'raw 1018' || {
  echo "serve_smoke: watcher never picked up the new report" >&2
  echo "$stats" >&2; exit 1
}
# Exactly the touched partition re-executed; the other ~60 partitions
# were served warm from the artifact cache.
echo "$stats" | grep -q 'partitions_executed 1' || {
  echo "serve_smoke: expected exactly one partition to re-execute" >&2
  echo "$stats" >&2; exit 1
}
# The refreshed snapshot is visible in the data endpoints.
curl -sf "$BASE/data/1" > .ci-serve-data1-after.csv
if cmp -s .ci-serve-data1-before.csv .ci-serve-data1-after.csv; then
  echo "serve_smoke: /data/1 did not change after the corpus update" >&2
  exit 1
fi

# Graceful shutdown: the endpoint drains the workers and the process exits.
curl -sf "$BASE/shutdown" > /dev/null
wait "$SERVE_PID"
trap - EXIT

rm -rf "$CORPUS" "$CACHE" .ci-serve-data1-before.csv .ci-serve-data1-after.csv
echo "serve_smoke: OK (1017+1 reports, one partition re-executed)"
