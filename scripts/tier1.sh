#!/usr/bin/env bash
# Tier-1 verification: build, full test suite, and a warning-free clippy
# pass. The `format`, `core`, `diag`, `vfs`, `obs` and `intern` library
# crates additionally deny `clippy::unwrap_used` at the crate level (see
# their `lib.rs`), so any new `unwrap()` in parsing, pipeline, IO,
# observability or interner code fails this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

echo "tier1: OK"
