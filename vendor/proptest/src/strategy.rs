//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A source of generated values for property tests.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy wrapping a closure (used by `prop_compose!`).
pub struct FnStrategy<F>(pub F);

impl<F, T> Strategy for FnStrategy<F>
where
    F: Fn(&mut TestRng) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, wide-range doubles; upstream `any::<f64>()` includes
        // specials, but the workspace only uses ranges for floats.
        rng.unit_f64() * 2e9 - 1e9
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_strategy_float_range!(f32, f64);

/// String strategies from regex-lite patterns.
///
/// Supports exactly the pattern grammar the workspace's tests use:
/// character classes `[...]` (literals, `a-z` ranges, `\PC` escape),
/// the bare `\PC` atom (any printable char), literal characters, and
/// `{m,n}` / `{n}` repetition suffixes.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Clone, Debug)]
enum Atom {
    /// A set of concrete characters to choose from.
    Class(Vec<char>),
    /// Any printable character (`\PC`).
    Printable,
    /// A literal character.
    Literal(char),
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
    let mut set = Vec::new();
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => break,
            '\\' => match chars.next() {
                // `\PC` inside a class widens it to the printable set,
                // approximated by the ASCII printable range (the class is a
                // choice set, so a representative subset is fine).
                Some('P') => {
                    if chars.peek() == Some(&'C') {
                        chars.next();
                    }
                    set.extend((0x20u8..0x7f).map(|b| b as char));
                    prev = None;
                }
                Some(other) => {
                    set.push(other);
                    prev = Some(other);
                }
                None => break,
            },
            '-' => {
                // Range like `a-z` if something precedes and follows.
                if let (Some(lo), Some(&hi)) = (prev, chars.peek()) {
                    if hi != ']' {
                        chars.next();
                        let (lo, hi) = (lo as u32, hi as u32);
                        for code in lo..=hi {
                            if let Some(ch) = char::from_u32(code) {
                                if ch as u32 != lo {
                                    set.push(ch);
                                }
                            }
                        }
                        prev = None;
                        continue;
                    }
                }
                set.push('-');
                prev = Some('-');
            }
            other => {
                set.push(other);
                prev = Some(other);
            }
        }
    }
    if set.is_empty() {
        set.push('x');
    }
    set
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<(usize, usize)> {
    if chars.peek() != Some(&'{') {
        return None;
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    let mut parts = spec.splitn(2, ',');
    let lo: usize = parts.next()?.trim().parse().ok()?;
    let hi: usize = match parts.next() {
        Some(s) => s.trim().parse().ok()?,
        None => lo,
    };
    Some((lo, hi.max(lo)))
}

/// Sample a printable char: mostly ASCII, occasionally wider Unicode, never
/// a control character.
fn printable(rng: &mut TestRng) -> char {
    if rng.below(8) == 0 {
        // Wider Unicode: Latin-1 supplement through CJK start.
        loop {
            let code = 0xA0 + rng.below(0x9FFF - 0xA0) as u32;
            if let Some(c) = char::from_u32(code) {
                if !c.is_control() {
                    return c;
                }
            }
        }
    } else {
        (0x20u8 + rng.below(0x5f) as u8) as char
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => match chars.next() {
                Some('P') => {
                    if chars.peek() == Some(&'C') {
                        chars.next();
                    }
                    Atom::Printable
                }
                Some(other) => Atom::Literal(other),
                None => break,
            },
            other => Atom::Literal(other),
        };
        let (lo, hi) = parse_repeat(&mut chars).unwrap_or((1, 1));
        let count = lo + rng.below(hi - lo + 1);
        for _ in 0..count {
            match &atom {
                Atom::Class(set) => out.push(set[rng.below(set.len())]),
                Atom::Printable => out.push(printable(rng)),
                Atom::Literal(ch) => out.push(*ch),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let x = (0i64..5).generate(&mut r);
            assert!((0..5).contains(&x));
            let y = (1u8..=12).generate(&mut r);
            assert!((1..=12).contains(&y));
        }
    }

    #[test]
    fn float_range_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let x = (-1e3f64..1e3).generate(&mut r);
            assert!((-1e3..1e3).contains(&x));
        }
    }

    #[test]
    fn class_pattern_matches_grammar() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-c]{1,3}".generate(&mut r);
            assert!((1..=3).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn printable_pattern_has_no_controls() {
        let mut r = rng();
        for _ in 0..50 {
            let s = "\\PC{0,2000}".generate(&mut r);
            assert!(s.chars().count() <= 2000);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn mixed_class_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[A-Za-z0-9 ():%|,./-]{0,80}".generate(&mut r);
            assert!(s.chars().count() <= 80);
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut r = rng();
        for _ in 0..200 {
            let v = crate::collection::vec(0i64..5, 1..200).generate(&mut r);
            assert!((1..200).contains(&v.len()));
            let w = crate::collection::vec(any::<bool>(), 7usize).generate(&mut r);
            assert_eq!(w.len(), 7);
        }
    }
}
