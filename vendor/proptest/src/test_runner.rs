//! The per-test RNG and run configuration.

/// Configuration for a `proptest!` block (subset of upstream's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG driving strategy generation (xoshiro256++).
///
/// Seeded from the test's name so every test has an independent, stable
/// stream: failures reproduce across runs without a persistence file.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed deterministically from an arbitrary label (FNV-1a over bytes,
    /// expanded with SplitMix64).
    pub fn deterministic(label: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut s = [0u64; 4];
        for word in &mut s {
            h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[0, n)`; `n = 0` yields 0.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_per_label() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(TestRng::deterministic("x").next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_bounds() {
        let mut r = TestRng::deterministic("below");
        for n in [1usize, 2, 7, 1000] {
            for _ in 0..200 {
                assert!(r.below(n) < n);
            }
        }
        assert_eq!(r.below(0), 0);
    }
}
