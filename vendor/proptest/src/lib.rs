//! Offline mini-proptest.
//!
//! The build container has no crates-io registry, so this vendored crate
//! implements the subset of the `proptest` 1.x API the workspace's property
//! tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//! * [`prop_compose!`] (one- and two-stage forms),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`,
//! * range strategies (`0i64..5`, `1u8..=12`, `-1e3f64..1e3`),
//! * `any::<T>()` for primitives,
//! * `prop::collection::vec(strategy, count-or-range)`,
//! * string strategies from regex-lite patterns (`"[a-c]{1,3}"`,
//!   `"\\PC{0,2000}"`).
//!
//! Differences from upstream: cases are generated from a fixed deterministic
//! seed per test (reproducible across runs), and there is **no shrinking** —
//! a failing case panics with the standard assertion message. That keeps the
//! implementation dependency-free while preserving the tests' bug-finding
//! power.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.below(self.end.max(self.start + 1) - self.start) + self.start
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.below(self.end() - self.start() + 1) + self.start()
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(strategy, len)` — `len` may be a `usize`, a
    /// `Range<usize>` or a `RangeInclusive<usize>`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// `proptest::prelude` — the single import the tests use.
pub mod prelude {
    pub use crate::strategy::{any, FnStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_compose, proptest};

    /// Re-export of the crate root so `prop::collection::vec` resolves.
    pub use crate as prop;
}

/// Run one property-test body over `cases` generated inputs.
///
/// Internal support function for the [`proptest!`] macro; public so the
/// macro expansion can reach it from other crates.
pub fn run_cases(test_name: &str, cases: u32, mut body: impl FnMut(&mut test_runner::TestRng)) {
    let mut rng = test_runner::TestRng::deterministic(test_name);
    for _ in 0..cases {
        body(&mut rng);
    }
}

/// The `proptest!` macro: wraps `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), config.cases, |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)*
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// The `prop_compose!` macro: defines a function returning a strategy.
///
/// Supports the one-stage form
/// `fn name(params)(a in s1, ...) -> T { body }` and the two-stage form
/// `fn name(params)(a in s1, ...)(b in s2(a), ...) -> T { body }` where
/// second-stage strategies may reference first-stage bindings.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($params:tt)* )
            ( $($arg1:ident in $strat1:expr),* $(,)? )
            ( $($arg2:ident in $strat2:expr),* $(,)? )
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name( $($params)* ) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy(move |__proptest_rng: &mut $crate::test_runner::TestRng| {
                $(let $arg1 = $crate::strategy::Strategy::generate(&($strat1), __proptest_rng);)*
                $(let $arg2 = $crate::strategy::Strategy::generate(&($strat2), __proptest_rng);)*
                $body
            })
        }
    };
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($params:tt)* )
            ( $($arg:ident in $strat:expr),* $(,)? )
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name( $($params)* ) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy(move |__proptest_rng: &mut $crate::test_runner::TestRng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)*
                $body
            })
        }
    };
}

/// `prop_assert!` — assertion inside a property test (no shrinking, so this
/// simply panics with the standard message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// `prop_assume!` — skip the current case when the precondition fails.
///
/// Expands to `return` from the per-case closure, moving on to the next
/// generated case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}
