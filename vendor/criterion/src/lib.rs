//! Offline mini-criterion.
//!
//! Implements the subset of the `criterion` 0.5 API the workspace's benches
//! use — `Criterion`, `bench_function`, `benchmark_group` (with
//! `throughput`/`finish`), `Throughput`, `black_box`, `criterion_group!`,
//! `criterion_main!` — with a simple adaptive wall-clock measurement loop
//! instead of criterion's full statistical machinery.
//!
//! Timing model: each benchmark is warmed up for `CRITERION_WARMUP_MS`
//! (default 150 ms), then measured in batches until `CRITERION_MEASURE_MS`
//! (default 600 ms) of samples accumulate. The mean, min and max per-iteration
//! times are printed in criterion-like one-line form. Bench name filters
//! passed by `cargo bench -- <filter>` are honoured.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Measurement statistics for one benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Mean seconds per iteration.
    pub mean: f64,
    /// Fastest observed batch mean.
    pub min: f64,
    /// Slowest observed batch mean.
    pub max: f64,
    /// Total iterations measured.
    pub iters: u64,
}

fn env_ms(var: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(default),
    )
}

/// The timing loop driver handed to benchmark closures.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    sample: Option<Sample>,
}

impl Bencher {
    /// Measure `f` by calling it repeatedly; the return value is passed
    /// through [`black_box`] so the computation is not optimised away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup and batch-size estimation.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.warmup {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / warmup_iters.max(1) as f64;
        // Batches of roughly 10 ms keep timer overhead negligible.
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut batch_means: Vec<f64> = Vec::new();
        let mut total_iters = 0u64;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure || batch_means.len() < 3 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            batch_means.push(t0.elapsed().as_secs_f64() / batch as f64);
            total_iters += batch;
            if batch_means.len() >= 5000 {
                break;
            }
        }
        let sum: f64 = batch_means.iter().sum();
        self.sample = Some(Sample {
            mean: sum / batch_means.len() as f64,
            min: batch_means.iter().copied().fold(f64::INFINITY, f64::min),
            max: batch_means
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
            iters: total_iters,
        });
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.3} s", seconds)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
    warmup: Duration,
    measure: Duration,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            warmup: env_ms("CRITERION_WARMUP_MS", 150),
            measure: env_ms("CRITERION_MEASURE_MS", 600),
            ran: 0,
        }
    }
}

impl Criterion {
    /// Build from `cargo bench` CLI arguments (`--bench`, optional name
    /// filter; everything else ignored).
    pub fn from_args() -> Criterion {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                c.filter = Some(arg);
            }
        }
        c
    }

    fn should_run(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one(&mut self, id: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.should_run(id) {
            return;
        }
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            sample: None,
        };
        f(&mut b);
        self.ran += 1;
        match b.sample {
            Some(s) => {
                let rate = match throughput {
                    Some(Throughput::Bytes(n)) => {
                        format!("  {:>10.1} MiB/s", n as f64 / s.mean / (1024.0 * 1024.0))
                    }
                    Some(Throughput::Elements(n)) => {
                        format!("  {:>10.0} elem/s", n as f64 / s.mean)
                    }
                    None => String::new(),
                };
                println!(
                    "{id:<44} time: [{} {} {}]{}  ({} iters)",
                    format_time(s.min),
                    format_time(s.mean),
                    format_time(s.max),
                    rate,
                    s.iters
                );
            }
            None => println!("{id:<44} (no measurement — bencher not driven)"),
        }
    }

    /// Benchmark a closure under the given name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Print a trailing summary (called by `criterion_main!`).
    pub fn final_summary(&self) {
        println!("\n{} benchmark(s) measured", self.ran);
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, &mut f);
        self
    }

    /// Close the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Define a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Define `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_cheap_closure() {
        let mut c = Criterion {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(10),
            filter: None,
            ran: 0,
        };
        let mut x = 0u64;
        c.bench_function("tiny", |b| b.iter(|| x = x.wrapping_add(1)));
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn filter_skips() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(1),
            ran: 0,
        };
        c.bench_function("tiny", |b| b.iter(|| 1 + 1));
        assert_eq!(c.ran, 0);
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2e-9).contains("ns"));
        assert!(format_time(2e-6).contains("µs"));
        assert!(format_time(2e-3).contains("ms"));
        assert!(format_time(2.0).contains(" s"));
    }
}
