//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace annotates its domain types with serde derives for
//! downstream consumers, but no code in the tree actually serializes
//! anything (there is no `serde_json`/`bincode` here and the registry is
//! unavailable offline). These derives accept the same attribute grammar
//! (`#[serde(...)]`) and expand to nothing, which keeps the annotations
//! compiling without pulling in `syn`/`quote`.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
