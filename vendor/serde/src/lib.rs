//! Offline `serde` facade.
//!
//! Provides the `Serialize`/`Deserialize` names the workspace imports and
//! re-exports the no-op derives from the vendored `serde_derive`. Nothing
//! in this tree serializes at runtime; the derives exist so the domain
//! types keep their annotations for when a real registry is available.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; the vendored
/// derive generates no impls).
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::Deserialize` (no methods).
pub trait DeserializeMarker<'de> {}
