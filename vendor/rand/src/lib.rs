//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build container has no crates-io registry, so this vendored crate
//! provides exactly the surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream rand's ChaCha12, but the workspace only requires
//! determinism and statistical quality, not upstream bit-compatibility
//! (every calibration assertion is tolerance-based, and the filter-cascade
//! counts are plan-driven, not RNG-driven).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

// `&mut R` forwards, so `?Sized` generic code can call the `Self: Sized`
// extension methods through autoref (matches upstream rand_core).
impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A distribution-style sampling hook for `Rng::gen` (stands in for
/// `Standard: Distribution<T>`).
pub trait StandardSample: Sized {
    /// Draw one value from the "standard" distribution for this type.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches rand's
    /// `Standard` for `f64`).
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly samplable from a half-open or inclusive range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `hi` is inclusive.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = f64::standard_sample(rng) as $t;
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Measure-zero difference from the half-open case.
                Self::sample_half_open(rng, lo, hi.max(lo + <$t>::EPSILON * hi.abs().max(1.0)))
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution for `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform draw from a range (`a..b` or `a..=b`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The byte-array seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64 (same scheme
    /// upstream rand uses for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, byte) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }
}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna).
    ///
    /// Not bit-compatible with upstream rand's ChaCha12 `StdRng`, but a
    /// high-quality, fast generator with a 2^256 − 1 period.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-6i64..=6);
            assert!((-6..=6).contains(&y));
            let z = rng.gen_range(1.5f64..4.0);
            assert!((1.5..4.0).contains(&z));
            let m = rng.gen_range(1u8..=12);
            assert!((1..=12).contains(&m));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 13];
        for _ in 0..2000 {
            seen[rng.gen_range(0usize..=12)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 13 values reachable");
    }
}
