use spec_analysis::figures::fig4;
use spec_analysis::{explore, load_from_texts};
use spec_model::CpuVendor;
use spec_synth::{generate_dataset, SynthConfig};
use spec_ssj::Settings;

fn main() {
    let ds = generate_dataset(&SynthConfig {
        seed: 3,
        settings: Settings { interval_seconds: 10, calibration_intervals: 1, ..Settings::default() },
    });
    let set = load_from_texts(ds.texts());
    let fig = fig4::compute(&set.comparable);
    for load in [60u8, 70, 80, 90] {
        println!(
            "load {load}: intel 2013-2016 {:.3}, 2021-24 {:.3}; amd 2021-24 {:.3}",
            fig.mean_median(load, CpuVendor::Intel, 2013, 2016),
            fig.mean_median(load, CpuVendor::Intel, 2021, 2024),
            fig.mean_median(load, CpuVendor::Amd, 2021, 2024)
        );
    }
    let report = explore(&set.comparable, 2021);
    println!("\npooled idle correlations:");
    for (f, r) in report.idle_correlations() {
        println!("  {f:16} {r:+.3}");
    }
    for (vendor, m) in &report.per_vendor_pearson {
        println!("{vendor:?} within-vendor vs idle_fraction:");
        for f in spec_analysis::correlation::CORRELATED_FEATURES {
            if f != "idle_fraction" {
                println!("  {f:16} {:+.3}", m.get("idle_fraction", f).unwrap_or(f64::NAN));
            }
        }
    }
}
