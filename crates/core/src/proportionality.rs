//! Energy-proportionality metrics (extension).
//!
//! The paper discusses energy proportionality through Figure 4's relative
//! efficiencies and cites Hsu & Poole's SPEC Power signature analyses
//! [4, 5]. This module implements the quantitative metrics from that line
//! of work so the proportionality trend can be summarised in one number per
//! run:
//!
//! * **EP score** — 1 minus the (signed) area between the normalised power
//!   curve and the ideal proportional line; 1.0 = perfectly proportional,
//!   0.0 = flat power, >1 = sub-proportional (power drops faster than load);
//! * **dynamic range** — `1 − idle/full`, how much of the power envelope
//!   actually responds to load;
//! * **linearity deviation** — the largest gap between the measured curve
//!   and the straight line connecting its own idle and full-load points.

use spec_model::{CpuVendor, LoadLevel, RunResult};
use tinystats::{mann_kendall, mean_by_key, MannKendall};

/// Proportionality metrics of one run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpMetrics {
    /// Hsu/Poole-style energy-proportionality score.
    pub ep_score: f64,
    /// `1 − P(idle)/P(100%)`.
    pub dynamic_range: f64,
    /// Max deviation of the normalised curve from its own idle→full chord.
    pub linearity_deviation: f64,
}

/// The normalised power curve of a run: `(load fraction, P/P100)` for the
/// eleven levels, ascending by load. `None` if any level is missing or the
/// full-load power is non-positive.
pub fn normalized_curve(run: &RunResult) -> Option<Vec<(f64, f64)>> {
    let full = run.power_at(LoadLevel::Percent(100))?.value();
    if full <= 0.0 {
        return None;
    }
    let mut pts = Vec::with_capacity(11);
    for level in LoadLevel::standard() {
        let p = run.power_at(level)?.value();
        pts.push((level.fraction(), p / full));
    }
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("fractions finite"));
    Some(pts)
}

/// Trapezoidal area under a piecewise-linear curve given as ascending
/// `(x, y)` points.
fn trapezoid_area(pts: &[(f64, f64)]) -> f64 {
    pts.windows(2)
        .map(|w| (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0)
        .sum()
}

/// Compute the proportionality metrics of a run.
pub fn ep_metrics(run: &RunResult) -> Option<EpMetrics> {
    let curve = normalized_curve(run)?;
    // Ideal proportional curve is y = x with area 1/2 over [0, 1].
    let measured_area = trapezoid_area(&curve);
    // EP = 1 − (measured − ideal)/ideal ⇒ 2·(1 − measured_area) … derived:
    // EP = 1 − (measured_area − 0.5)/0.5.
    let ep_score = 1.0 - (measured_area - 0.5) / 0.5;

    let idle = curve.first().expect("11 points").1;
    let dynamic_range = 1.0 - idle;

    // Chord from (0, idle) to (1, 1).
    let linearity_deviation = curve
        .iter()
        .map(|&(x, y)| (y - (idle + (1.0 - idle) * x)).abs())
        .fold(0.0, f64::max);

    Some(EpMetrics {
        ep_score,
        dynamic_range,
        linearity_deviation,
    })
}

/// Yearly EP trend per vendor, with a Mann–Kendall significance test on the
/// yearly means.
#[derive(Clone, Debug, PartialEq)]
pub struct EpTrend {
    /// `(vendor, yearly mean EP score)` series.
    pub yearly_ep: Vec<(CpuVendor, Vec<(i32, f64)>)>,
    /// `(vendor, yearly mean dynamic range)` series.
    pub yearly_dynamic_range: Vec<(CpuVendor, Vec<(i32, f64)>)>,
    /// Mann–Kendall test on each vendor's yearly EP means.
    pub ep_test: Vec<(CpuVendor, Option<MannKendall>)>,
}

/// Compute the proportionality trend over the comparable dataset.
pub fn ep_trend(comparable: &[RunResult]) -> EpTrend {
    let vendors = [CpuVendor::Intel, CpuVendor::Amd];
    let series = |metric: fn(&EpMetrics) -> f64| -> Vec<(CpuVendor, Vec<(i32, f64)>)> {
        vendors
            .iter()
            .map(|&v| {
                let pairs: Vec<(i32, f64)> = comparable
                    .iter()
                    .filter(|r| r.system.cpu.vendor() == v)
                    .filter_map(|r| ep_metrics(r).map(|m| (r.hw_year(), metric(&m))))
                    .collect();
                (v, mean_by_key(&pairs))
            })
            .collect()
    };
    let yearly_ep = series(|m| m.ep_score);
    let yearly_dynamic_range = series(|m| m.dynamic_range);
    let ep_test = yearly_ep
        .iter()
        .map(|(v, means)| {
            let ys: Vec<f64> = means.iter().map(|p| p.1).collect();
            (*v, mann_kendall(&ys))
        })
        .collect();
    EpTrend {
        yearly_ep,
        yearly_dynamic_range,
        ep_test,
    }
}

impl EpTrend {
    /// Markdown summary of the trend.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| vendor | first-year EP | last-year EP | Mann–Kendall |\n|---|---|---|---|\n");
        for ((vendor, means), (_, test)) in self.yearly_ep.iter().zip(&self.ep_test) {
            let first = means.first().map_or(f64::NAN, |p| p.1);
            let last = means.last().map_or(f64::NAN, |p| p.1);
            let verdict = match test.and_then(|t| t.direction(0.05)) {
                Some(true) => "increasing (p<0.05)".to_string(),
                Some(false) => "decreasing (p<0.05)".to_string(),
                None => "no significant trend".to_string(),
            };
            out.push_str(&format!(
                "| {vendor} | {first:.3} | {last:.3} | {verdict} |\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{linear_test_run, SsjOps, Watts, YearMonth};

    #[test]
    fn perfectly_proportional_run_scores_one() {
        // Zero idle power, linear curve → EP = 1, dynamic range 1, no
        // linearity deviation.
        let run = linear_test_run(1, 1e6, 0.0, 300.0);
        let m = ep_metrics(&run).unwrap();
        assert!((m.ep_score - 1.0).abs() < 1e-9, "{m:?}");
        assert!((m.dynamic_range - 1.0).abs() < 1e-9);
        assert!(m.linearity_deviation < 1e-9);
    }

    #[test]
    fn flat_power_scores_zero() {
        // Idle = full: power does not respond to load at all.
        let run = linear_test_run(2, 1e6, 300.0, 300.0);
        let m = ep_metrics(&run).unwrap();
        assert!(m.ep_score.abs() < 1e-9, "{m:?}");
        assert!(m.dynamic_range.abs() < 1e-9);
    }

    #[test]
    fn linear_with_idle_floor_is_intermediate() {
        let run = linear_test_run(3, 1e6, 60.0, 300.0);
        let m = ep_metrics(&run).unwrap();
        // Idle fraction 0.2 → EP = 1 − (area − ½)/½ with area = 0.5 + 0.2/2.
        assert!((m.ep_score - 0.8).abs() < 1e-9, "{m:?}");
        assert!((m.dynamic_range - 0.8).abs() < 1e-9);
        assert!(m.linearity_deviation < 1e-9, "the curve IS its chord");
    }

    #[test]
    fn sub_proportional_curve_exceeds_one() {
        // Power drops faster than load at partial levels (deep power
        // management): EP > 1.
        let mut run = linear_test_run(4, 1e6, 30.0, 300.0);
        for m in run.levels.iter_mut() {
            if let spec_model::LoadLevel::Percent(p) = m.level {
                if p < 100 {
                    let f = p as f64 / 100.0;
                    m.avg_power = Watts(300.0 * f * f); // convex: below the diagonal
                }
            } else {
                m.avg_power = Watts(5.0);
            }
        }
        let m = ep_metrics(&run).unwrap();
        assert!(m.ep_score > 1.0, "{m:?}");
        assert!(m.linearity_deviation > 0.05);
    }

    #[test]
    fn curve_is_sorted_and_complete() {
        let run = linear_test_run(5, 1e6, 60.0, 300.0);
        let curve = normalized_curve(&run).unwrap();
        assert_eq!(curve.len(), 11);
        assert_eq!(curve[0].0, 0.0);
        assert_eq!(curve[10].0, 1.0);
        assert!((curve[10].1 - 1.0).abs() < 1e-12);
        for w in curve.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn missing_level_yields_none() {
        let mut run = linear_test_run(6, 1e6, 60.0, 300.0);
        run.levels.retain(|m| m.level != spec_model::LoadLevel::Percent(40));
        assert!(ep_metrics(&run).is_none());
    }

    #[test]
    fn trend_detects_improving_proportionality() {
        // EP improves year over year → Mann–Kendall says increasing.
        let mut runs = Vec::new();
        for (i, year) in (2006..=2024).enumerate() {
            // Idle fraction falls from 0.7 towards 0.1.
            let idle_frac = 0.7 - 0.6 * (i as f64 / 18.0);
            for k in 0..3u32 {
                let mut r = linear_test_run(i as u32 * 10 + k, 1e6, 300.0 * idle_frac, 300.0);
                r.dates.hw_available = YearMonth::new(year, 6).unwrap();
                r.calibrated_max = SsjOps(1e6);
                runs.push(r);
            }
        }
        let trend = ep_trend(&runs);
        let (vendor, test) = &trend.ep_test[0];
        assert_eq!(*vendor, CpuVendor::Intel);
        assert_eq!(test.unwrap().direction(0.05), Some(true));
        let md = trend.to_markdown();
        assert!(md.contains("increasing"));
    }

    #[test]
    fn trend_handles_empty_vendor() {
        let runs = vec![linear_test_run(1, 1e6, 60.0, 300.0)]; // Intel only
        let trend = ep_trend(&runs);
        let amd = trend
            .ep_test
            .iter()
            .find(|(v, _)| *v == CpuVendor::Amd)
            .unwrap();
        assert!(amd.1.is_none());
    }
}
