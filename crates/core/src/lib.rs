//! # spec-analysis
//!
//! The paper's analysis pipeline: *"16 Years of SPEC Power: An Analysis of
//! x86 Energy Efficiency Trends"* (CLUSTER 2024), reproduced end to end on
//! the synthetic dataset from `spec-synth` (or any directory of SPEC-style
//! report files).
//!
//! * [`pipeline`] — the §II filter cascade: raw texts → 960 valid runs →
//!   676 comparable runs, with per-rule accounting ([`FilterReport`]);
//! * [`features`] — run → feature-vector extraction into a
//!   [`tinyframe::Frame`];
//! * [`figures`] — Figures 1–6;
//! * [`table1`] — the Lenovo SR650 V3 vs SR645 V3 comparison (Table I);
//! * [`correlation`] — the §IV idle-fraction correlation exploration;
//! * [`proportionality`] — Hsu/Poole-style energy-proportionality metrics
//!   (EP score, dynamic range) extending Figure 4's analysis;
//! * [`report`] — the full [`Study`] with a paper-vs-measured ledger and
//!   SVG emission;
//! * [`stage`] — the typed stage graph driving all of the above, with a
//!   content-addressed on-disk artifact cache.
//!
//! ```no_run
//! use spec_analysis::{load_from_texts, run_study};
//! use spec_synth::{generate_dataset, SynthConfig};
//!
//! let dataset = generate_dataset(&SynthConfig::default());
//! let set = load_from_texts(dataset.texts());
//! let study = run_study(set, &spec_ssj::Settings::default(), 42);
//! println!("{}", study.to_markdown());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod correlation;
pub mod export;
pub mod features;
pub mod figures;
pub mod pipeline;
pub mod proportionality;
pub mod report;
pub mod serve;
pub mod stage;
pub mod stream;
pub mod table1;

pub use correlation::{explore, IdleCorrelationReport, VendorStats};
pub use export::{yearly_summary, yearly_summary_markdown};
pub use features::{runs_to_frame, runs_to_seg_frame, FEATURE_COLUMNS};
pub use pipeline::{
    list_report_files, load_from_dir, load_from_dir_vfs, load_from_inputs, load_from_named_texts,
    load_from_texts, load_from_texts_parallel, read_input, read_inputs_shared, stage1_validate,
    stage1_validate_inputs, stage2_split, AnalysisSet, FilterReport, ParseFailureRecord, RawInput,
    RawInputRef,
};
pub use stage::{
    ArtifactCache, CacheHealth, CorpusSource, FsckReport, PipelineDriver, ShardSpec, StageId,
    StageStats,
};
pub use proportionality::{ep_metrics, ep_trend, normalized_curve, EpMetrics, EpTrend};
pub use report::{run_study, Comparison, Study};
pub use serve::{ServeConfig, Server, SnapshotMode};
pub use table1::{sr645_v3, sr650_v3, Table1, Table1Entry};
