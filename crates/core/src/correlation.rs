//! The §IV correlation exploration.
//!
//! The paper attempts to explain the recent idle-fraction regression by
//! correlating run features for submissions since 2021, and finds the
//! analysis *inconclusive* because the vendor lineups confound everything:
//! AMD and Intel differ strongly in core count (85.8 vs 39.5) while sharing
//! the same mean nominal frequency (~2.3 GHz) with different spreads
//! (σ 0.3 vs 0.5 GHz). This module reproduces that exploration.

use spec_model::{CpuVendor, RunResult};
use tinyframe::DEFAULT_SEGMENT_ROWS;
use tinystats::{CorrelationMatrix, Summary};

use crate::features::runs_to_seg_frame;

/// Features correlated against the idle fraction.
pub const CORRELATED_FEATURES: [&str; 8] = [
    "idle_fraction",
    "cores_per_chip",
    "total_threads",
    "nominal_ghz",
    "tdp_w",
    "memory_gb",
    "chips",
    "overall_eff",
];

/// Per-vendor confounder statistics (§IV's examples).
#[derive(Clone, Debug, PartialEq)]
pub struct VendorStats {
    /// Vendor.
    pub vendor: CpuVendor,
    /// Number of runs.
    pub n: usize,
    /// Mean cores per chip.
    pub mean_cores: f64,
    /// Mean nominal frequency (GHz).
    pub mean_ghz: f64,
    /// Sample standard deviation of the nominal frequency (GHz).
    pub std_ghz: f64,
    /// Mean idle fraction.
    pub mean_idle_fraction: f64,
}

/// The exploration's outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct IdleCorrelationReport {
    /// First hardware year included (the paper uses 2021).
    pub since_year: i32,
    /// Number of runs examined.
    pub n_runs: usize,
    /// Pearson correlations over all recent runs.
    pub pearson: CorrelationMatrix,
    /// Spearman correlations over all recent runs.
    pub spearman: CorrelationMatrix,
    /// Pearson correlations within each vendor (controls the lineup
    /// confounder).
    pub per_vendor_pearson: Vec<(CpuVendor, CorrelationMatrix)>,
    /// The §IV confounder examples.
    pub vendor_stats: Vec<VendorStats>,
}

/// Run the exploration over runs with hardware available in
/// `since_year` or later.
pub fn explore(comparable: &[RunResult], since_year: i32) -> IdleCorrelationReport {
    let recent: Vec<RunResult> = comparable
        .iter()
        .filter(|r| r.hw_year() >= since_year)
        .cloned()
        .collect();
    let mut frame = runs_to_seg_frame(&recent, DEFAULT_SEGMENT_ROWS);

    let columns: Vec<(&str, Vec<f64>)> = CORRELATED_FEATURES
        .iter()
        .map(|&name| (name, frame.numeric(name).expect("feature column")))
        .collect();
    let column_refs: Vec<(&str, &[f64])> = columns
        .iter()
        .map(|(n, v)| (*n, v.as_slice()))
        .collect();
    let pearson = CorrelationMatrix::pearson(&column_refs);
    let spearman = CorrelationMatrix::spearman(&column_refs);

    let mut per_vendor_pearson = Vec::new();
    let mut vendor_stats = Vec::new();
    for vendor in [CpuVendor::Amd, CpuVendor::Intel] {
        let subset: Vec<RunResult> = recent
            .iter()
            .filter(|r| r.system.cpu.vendor() == vendor)
            .cloned()
            .collect();
        let mut sub_frame = runs_to_seg_frame(&subset, DEFAULT_SEGMENT_ROWS);
        let sub_columns: Vec<(&str, Vec<f64>)> = CORRELATED_FEATURES
            .iter()
            .map(|&name| (name, sub_frame.numeric(name).expect("feature column")))
            .collect();
        let sub_refs: Vec<(&str, &[f64])> = sub_columns
            .iter()
            .map(|(n, v)| (*n, v.as_slice()))
            .collect();
        per_vendor_pearson.push((vendor, CorrelationMatrix::pearson(&sub_refs)));

        let cores: Summary = subset
            .iter()
            .map(|r| r.system.cpu.cores_per_chip as f64)
            .collect();
        let ghz: Summary = subset.iter().map(|r| r.system.cpu.nominal.ghz()).collect();
        let idle: Summary = subset.iter().filter_map(|r| r.idle_fraction()).collect();
        vendor_stats.push(VendorStats {
            vendor,
            n: subset.len(),
            mean_cores: cores.mean().unwrap_or(f64::NAN),
            mean_ghz: ghz.mean().unwrap_or(f64::NAN),
            std_ghz: ghz.std_dev().unwrap_or(f64::NAN),
            mean_idle_fraction: idle.mean().unwrap_or(f64::NAN),
        });
    }

    IdleCorrelationReport {
        since_year,
        n_runs: recent.len(),
        pearson,
        spearman,
        per_vendor_pearson,
        vendor_stats,
    }
}

impl IdleCorrelationReport {
    /// Correlations of every feature against the idle fraction, strongest
    /// first.
    pub fn idle_correlations(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = CORRELATED_FEATURES
            .iter()
            .filter(|&&f| f != "idle_fraction")
            .filter_map(|&f| {
                self.pearson
                    .get("idle_fraction", f)
                    .filter(|r| r.is_finite())
                    .map(|r| (f.to_string(), r))
            })
            .collect();
        out.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
        out
    }

    /// The paper's verdict: the exploration is *inconclusive* when no
    /// feature correlates strongly (|r| ≥ `threshold`) with the idle
    /// fraction consistently in the pooled data *and* within both vendors.
    pub fn is_conclusive(&self, threshold: f64) -> bool {
        self.idle_correlations().iter().any(|(feature, pooled)| {
            pooled.abs() >= threshold
                && self.per_vendor_pearson.iter().all(|(_, m)| {
                    m.get("idle_fraction", feature)
                        .is_some_and(|r| r.is_finite() && r.abs() >= threshold && r.signum() == pooled.signum())
                })
        })
    }

    /// Markdown summary.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Correlation exploration over {} runs since {}\n\n",
            self.n_runs, self.since_year
        ));
        out.push_str("| feature | Pearson r vs idle fraction |\n|---|---|\n");
        for (feature, r) in self.idle_correlations() {
            out.push_str(&format!("| {feature} | {r:+.3} |\n"));
        }
        out.push('\n');
        for s in &self.vendor_stats {
            out.push_str(&format!(
                "- {}: n={}, mean cores {:.1}, nominal {:.2}±{:.2} GHz, mean idle fraction {:.3}\n",
                s.vendor, s.n, s.mean_cores, s.mean_ghz, s.std_ghz, s.mean_idle_fraction
            ));
        }
        out.push_str(&format!(
            "\nConclusive at |r|≥0.6: {}\n",
            self.is_conclusive(0.6)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{linear_test_run, YearMonth};

    fn recent_runs() -> Vec<RunResult> {
        let mut runs = Vec::new();
        for i in 0..20u32 {
            let mut r = linear_test_run(i, 1e6 + i as f64 * 1e4, 40.0 + i as f64, 300.0);
            r.dates.hw_available = YearMonth::new(2021 + (i % 3) as i32, 3).unwrap();
            r.system.cpu.cores_per_chip = 16 + i;
            if i % 2 == 0 {
                r.system.cpu.name = "AMD EPYC 9654".into();
                r.system.cpu.cores_per_chip = 64 + i;
            }
            runs.push(r);
        }
        runs
    }

    #[test]
    fn report_shape() {
        let report = explore(&recent_runs(), 2021);
        assert_eq!(report.n_runs, 20);
        assert_eq!(report.pearson.labels.len(), CORRELATED_FEATURES.len());
        assert_eq!(report.per_vendor_pearson.len(), 2);
        assert_eq!(report.vendor_stats.len(), 2);
    }

    #[test]
    fn year_filter_applies() {
        let report = explore(&recent_runs(), 2023);
        assert!(report.n_runs < 20);
        assert!(report.n_runs > 0);
    }

    #[test]
    fn idle_correlation_detects_constructed_relationship() {
        // Idle power grows with i while full power is fixed → idle fraction
        // correlates with cores (both increase with i).
        let report = explore(&recent_runs(), 2021);
        let correlations = report.idle_correlations();
        assert!(!correlations.is_empty());
        let top = &correlations[0];
        assert!(top.1.abs() > 0.5, "constructed correlation found: {top:?}");
    }

    #[test]
    fn vendor_stats_reflect_lineups() {
        let report = explore(&recent_runs(), 2021);
        let amd = report
            .vendor_stats
            .iter()
            .find(|s| s.vendor == CpuVendor::Amd)
            .unwrap();
        let intel = report
            .vendor_stats
            .iter()
            .find(|s| s.vendor == CpuVendor::Intel)
            .unwrap();
        assert!(amd.mean_cores > intel.mean_cores);
    }

    #[test]
    fn markdown_summarises() {
        let md = explore(&recent_runs(), 2021).to_markdown();
        assert!(md.contains("Pearson r"));
        assert!(md.contains("mean cores"));
    }
}
