//! Data export: the processed per-figure series as CSV files, mirroring the
//! paper's Zenodo artifact which ships raw *and* processed data.

use std::path::{Path, PathBuf};

use tinyframe::{Agg, Column, Frame, DEFAULT_SEGMENT_ROWS};

use crate::features::runs_to_seg_frame;
use crate::report::Study;

/// Build the per-year summary table (one row per year): run counts, mean
/// per-socket power, mean idle fraction, median overall efficiency.
///
/// Runs through the segmented store's streaming group-by, which is
/// bit-identical to the in-memory `group_by(..).agg(..)` path.
pub fn yearly_summary(study: &Study) -> Frame {
    runs_to_seg_frame(&study.set.comparable, DEFAULT_SEGMENT_ROWS)
        .group_agg(
            &["year"],
            &[
                ("overall_eff", Agg::Count),
                ("per_socket_w", Agg::Mean),
                ("idle_fraction", Agg::Mean),
                ("overall_eff", Agg::Median),
                ("extrap_quotient", Agg::Mean),
            ],
        )
        .expect("numeric aggregates over feature columns")
}

/// Markdown rendering of [`yearly_summary`].
pub fn yearly_summary_markdown(study: &Study) -> String {
    let summary = yearly_summary(study);
    let mut out = String::new();
    out.push_str("| year | runs | W/socket | idle fraction | median ssj_ops/W | extrap. quotient |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    let years = summary.i64s("year").expect("key column");
    let counts = summary.f64s("overall_eff_count").expect("agg");
    let watts = summary.f64s("per_socket_w_mean").expect("agg");
    let idle = summary.f64s("idle_fraction_mean").expect("agg");
    let eff = summary.f64s("overall_eff_median").expect("agg");
    let quot = summary.f64s("extrap_quotient_mean").expect("agg");
    for i in 0..summary.n_rows() {
        out.push_str(&format!(
            "| {} | {:.0} | {:.1} | {:.3} | {:.0} | {:.2} |\n",
            years[i], counts[i], watts[i], idle[i], eff[i], quot[i]
        ));
    }
    out
}

pub(crate) fn series_frame(
    series: &[(spec_model::CpuVendor, Vec<(f64, f64)>)],
    y_name: &str,
) -> Frame {
    let mut vendor = Vec::new();
    let mut x = Vec::new();
    let mut y = Vec::new();
    for (v, pts) in series {
        for &(px, py) in pts {
            vendor.push(v.label().to_string());
            x.push(px);
            y.push(py);
        }
    }
    Frame::from_columns([
        ("vendor", Column::Str(vendor)),
        ("frac_year", Column::F64(x)),
        (y_name, Column::F64(y)),
    ])
    .expect("fresh frame")
}

/// The Figure 1 CSV frame: year, run count and one share column per
/// feature. Shared by [`Study::data_files`] and the serve daemon's
/// filtered `/data/1` endpoint so both render identical bytes.
pub(crate) fn fig1_frame(fig1: &crate::figures::fig1::Fig1Features) -> Frame {
    let mut frame = Frame::from_columns([(
        "year",
        Column::I64(fig1.years.iter().map(|&y| y as i64).collect()),
    )])
    .expect("fresh");
    frame
        .add_column(
            "runs",
            Column::F64(fig1.counts.iter().map(|&c| c as f64).collect()),
        )
        .expect("same length");
    for (feature, series) in &fig1.shares {
        frame
            .add_column(
                format!("share_{}", feature.replace(' ', "_")),
                Column::F64(series.clone()),
            )
            .expect("same length");
    }
    frame
}

/// The Figure 4 CSV frame: per-bin box statistics.
pub(crate) fn fig4_frame(fig4: &crate::figures::fig4::Fig4Proportionality) -> Frame {
    let cells = &fig4.cells;
    Frame::from_columns([
        (
            "year",
            Column::I64(cells.iter().map(|c| c.year as i64).collect()),
        ),
        (
            "vendor",
            Column::Str(cells.iter().map(|c| c.vendor.label().to_string()).collect()),
        ),
        (
            "load_pct",
            Column::I64(cells.iter().map(|c| c.load as i64).collect()),
        ),
        (
            "n",
            Column::I64(cells.iter().map(|c| c.stats.n as i64).collect()),
        ),
        ("q1", Column::F64(cells.iter().map(|c| c.stats.q1).collect())),
        (
            "median",
            Column::F64(cells.iter().map(|c| c.stats.median).collect()),
        ),
        ("q3", Column::F64(cells.iter().map(|c| c.stats.q3).collect())),
        (
            "mean",
            Column::F64(cells.iter().map(|c| c.stats.mean).collect()),
        ),
    ])
    .expect("fresh frame")
}

impl Study {
    /// Render the processed data behind every figure in memory as
    /// `(file name, CSV text)` pairs, in the order [`Self::write_data`]
    /// writes them.
    pub fn data_files(&self) -> Vec<(String, String)> {
        let mut files = Vec::new();
        let mut save = |name: &str, content: String| {
            files.push((name.to_string(), content));
        };

        // Full per-run feature table (the master processed dataset),
        // rendered segment-by-segment so the full table is never
        // materialized as one frame.
        save(
            "comparable_runs.csv",
            runs_to_seg_frame(&self.set.comparable, DEFAULT_SEGMENT_ROWS)
                .to_csv()
                .expect("resident segments render"),
        );
        save(
            "valid_runs.csv",
            runs_to_seg_frame(&self.set.valid, DEFAULT_SEGMENT_ROWS)
                .to_csv()
                .expect("resident segments render"),
        );

        // Figure 1: shares per year.
        save("fig1_shares.csv", fig1_frame(&self.fig1).to_csv());

        // Figures 2/3/5/6: scatter series.
        save(
            "fig2_per_socket_power.csv",
            series_frame(&self.fig2.scatter, "w_per_socket").to_csv(),
        );
        save(
            "fig3_overall_efficiency.csv",
            series_frame(&self.fig3.scatter, "overall_eff").to_csv(),
        );
        save(
            "fig5_idle_fraction.csv",
            series_frame(&self.fig5.scatter, "idle_fraction").to_csv(),
        );
        save(
            "fig6_extrapolated_quotient.csv",
            series_frame(&self.fig6.scatter, "extrap_quotient").to_csv(),
        );

        // Figure 4: box statistics per bin.
        save("fig4_relative_efficiency.csv", fig4_frame(&self.fig4).to_csv());

        // Yearly summary table.
        save("yearly_summary.csv", yearly_summary(self).to_csv());

        files
    }

    /// Write the processed data behind every figure as CSV files; returns
    /// the written paths.
    pub fn write_data(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        crate::stage::write_files(dir, &self.data_files())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::load_from_texts;
    use crate::report::run_study;
    use spec_format::write_run;
    use spec_model::linear_test_run;
    use spec_ssj::Settings;

    fn tiny_study() -> Study {
        let texts: Vec<String> = (0..6)
            .map(|i| write_run(&linear_test_run(i, 1e6, 60.0, 300.0)))
            .collect();
        run_study(load_from_texts(&texts), &Settings::fast(), 7)
    }

    #[test]
    fn yearly_summary_has_one_row_per_year() {
        let study = tiny_study();
        let summary = yearly_summary(&study);
        assert_eq!(summary.n_rows(), 1);
        assert_eq!(summary.f64s("overall_eff_count").unwrap()[0], 6.0);
        let md = yearly_summary_markdown(&study);
        assert!(md.contains("| 2020 | 6 |"));
    }

    #[test]
    fn write_data_emits_all_files() {
        let dir = std::env::temp_dir().join("spec_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        let paths = tiny_study().write_data(&dir).unwrap();
        assert_eq!(paths.len(), 9);
        for p in &paths {
            let text = std::fs::read_to_string(p).unwrap();
            assert!(text.lines().count() >= 1, "{p:?} has a header");
            assert!(text.contains(','), "{p:?} is CSV");
        }
        // The master table must round-trip its header columns.
        let master = std::fs::read_to_string(dir.join("comparable_runs.csv")).unwrap();
        assert!(master.starts_with("id,year,frac_year,vendor"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
