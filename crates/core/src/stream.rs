//! Streaming batched ingest: the out-of-core path past the ×100 memory wall.
//!
//! [`crate::pipeline::load_from_texts`] holds every report text, every
//! parsed [`RunResult`] and (downstream) the whole feature frame in memory
//! at once, which is what capped corpus scaling near ×100. This module
//! ingests the corpus in bounded batches instead: each batch is sharded
//! across the `tinypool` workers, each shard runs the full §II cascade and
//! renders its survivors into segment-sized feature frames (a private
//! *segment arena*), and the shard arenas are adopted into two
//! [`SegFrame`] stores — one for stage-1-valid runs, one for comparable
//! runs — in shard order. With spill enabled the stores evict cold
//! segments through `spec-vfs`, so peak memory is the batch size plus the
//! resident-set budget regardless of corpus scale.
//!
//! Correctness contract: ingesting any batch split of a corpus produces a
//! [`FilterReport`] and feature tables **bit-identical** to the monolithic
//! [`crate::pipeline::load_from_texts`] +
//! [`crate::features::runs_to_frame`] path. This holds because stage 1 is
//! per-input, stage 2 is per-run ([`stage2_split`] inspects each run
//! independently), and [`FilterReport::merge`] is associative with
//! index offsetting.

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use spec_model::RunResult;
use spec_obs as obs;
use tinyframe::{Frame, SegFrame, VfsSegmentStore, DEFAULT_SEGMENT_ROWS};

use crate::features::runs_to_frame;
use crate::figures::common::{extract_rows, RunRow};
use crate::pipeline::{
    stage1_validate_inputs_indexed, stage2_split, FilterReport, RawInput, RawInputRef,
};
use crate::stage::{part_key_of_input, part_key_of_text, PartKey};

/// Spill configuration for [`StreamIngest`].
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// Directory for spilled segments; `valid/` and `comparable/` subdirs
    /// are created beneath it.
    pub dir: PathBuf,
    /// Combined resident-bytes budget across both feature stores.
    pub max_resident_bytes: usize,
}

/// Configuration for [`StreamIngest`].
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Rows per sealed segment in the feature stores.
    pub segment_rows: usize,
    /// Spill cold segments through `spec-vfs` when set; otherwise every
    /// segment stays resident.
    pub spill: Option<SpillConfig>,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            segment_rows: DEFAULT_SEGMENT_ROWS,
            spill: None,
        }
    }
}

/// Per-(year, vendor) partition cascade counts accumulated by
/// [`StreamIngest`]. The same key derivation as the partitioned stage
/// graph ([`part_key_of_text`]), so a streamed corpus can be checked
/// against [`crate::stage::PartitionedDriver::partition_summary`]
/// partition-for-partition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamPartitionCounts {
    /// Raw inputs routed to the partition.
    pub raw: usize,
    /// Stage-1 survivors.
    pub valid: usize,
    /// Stage-2 survivors.
    pub comparable: usize,
}

impl StreamPartitionCounts {
    fn merge(&mut self, other: &StreamPartitionCounts) {
        self.raw += other.raw;
        self.valid += other.valid;
        self.comparable += other.comparable;
    }
}

/// Incremental ingest state: push batches of report texts, read off the
/// accumulated [`FilterReport`], segmented feature tables and per-partition
/// counts at any point.
#[derive(Debug)]
pub struct StreamIngest {
    valid: SegFrame,
    comparable: SegFrame,
    report: FilterReport,
    partitions: BTreeMap<PartKey, StreamPartitionCounts>,
    batches: usize,
}

fn frame_to_io(err: tinyframe::FrameError) -> io::Error {
    io::Error::other(err)
}

/// Per-shard stage-2 + feature-arena construction shared by the text and
/// input batch paths.
type Shard = (
    FilterReport,
    Vec<Frame>,
    Vec<Frame>,
    BTreeMap<PartKey, StreamPartitionCounts>,
);

/// `keys[i]` is the partition of shard input `i`; `item_index[j]` is the
/// shard input each valid run `j` came from — together they route every
/// cascade level to its (year, vendor) partition. The routing is
/// per-input, so shard/batch merging stays associative.
fn shard_arenas(
    valid: Vec<RunResult>,
    mut report: FilterReport,
    segment_rows: usize,
    keys: &[PartKey],
    item_index: &[u32],
) -> Shard {
    let (indices, stage2) = stage2_split(&valid);
    report.comparable = indices.len();
    report.stage2 = stage2;
    let comparable: Vec<RunResult> = indices.iter().map(|&i| valid[i as usize].clone()).collect();
    let mut partitions: BTreeMap<PartKey, StreamPartitionCounts> = BTreeMap::new();
    for key in keys {
        partitions.entry(*key).or_default().raw += 1;
    }
    for &input in item_index {
        partitions.entry(keys[input as usize]).or_default().valid += 1;
    }
    for &run in &indices {
        let key = keys[item_index[run as usize] as usize];
        partitions.entry(key).or_default().comparable += 1;
    }
    let valid_arena: Vec<Frame> = valid.chunks(segment_rows).map(runs_to_frame).collect();
    let comp_arena: Vec<Frame> = comparable.chunks(segment_rows).map(runs_to_frame).collect();
    (report, valid_arena, comp_arena, partitions)
}

impl StreamIngest {
    /// Fresh ingest state. Creates the spill directories when spill is
    /// configured; the valid store gets the larger slice (3/5) of the
    /// budget since every comparable run is also valid.
    pub fn new(config: &StreamConfig) -> io::Result<StreamIngest> {
        let segment_rows = config.segment_rows.max(1);
        let mut valid = SegFrame::new(segment_rows);
        let mut comparable = SegFrame::new(segment_rows);
        // Adopt the feature schema up front so an all-rejected corpus
        // still renders the same header row as the monolithic path.
        valid
            .append_frame(runs_to_frame(&[]))
            .map_err(frame_to_io)?;
        comparable
            .append_frame(runs_to_frame(&[]))
            .map_err(frame_to_io)?;
        if let Some(spill) = &config.spill {
            let valid_store = VfsSegmentStore::open_default(spill.dir.join("valid"))?;
            let comp_store = VfsSegmentStore::open_default(spill.dir.join("comparable"))?;
            let valid_budget = spill.max_resident_bytes / 5 * 3;
            let comp_budget = spill.max_resident_bytes.saturating_sub(valid_budget);
            valid
                .enable_spill(Arc::new(valid_store), valid_budget)
                .map_err(frame_to_io)?;
            comparable
                .enable_spill(Arc::new(comp_store), comp_budget)
                .map_err(frame_to_io)?;
        }
        Ok(StreamIngest {
            valid,
            comparable,
            report: FilterReport::default(),
            partitions: BTreeMap::new(),
            batches: 0,
        })
    }

    /// Ingest one batch of report texts.
    ///
    /// The batch is sharded across the worker pool; each shard runs
    /// stage 1 + stage 2 and builds its segment arena of feature frames,
    /// and arenas are merged in shard order, so the result is identical
    /// for any batch split and any thread count.
    pub fn push_batch<S>(&mut self, texts: &[S]) -> tinyframe::Result<()>
    where
        S: AsRef<str> + Sync,
    {
        let segment_rows = self.valid.segment_rows();
        let mut sp = obs::span("stream-batch");
        let ranges = tinypool::run_chunks(texts.len(), |_| {});
        let shards: Vec<Shard> = tinypool::parallel_map(&ranges, |range| {
            let slice = &texts[range.clone()];
            let keys: Vec<PartKey> = slice.iter().map(|t| part_key_of_text(t.as_ref())).collect();
            let (valid, report, item_index) = stage1_validate_inputs_indexed(
                slice
                    .iter()
                    .map(|t| (None::<String>, RawInputRef::Text(t.as_ref()))),
            );
            shard_arenas(valid, report, segment_rows, &keys, &item_index)
        });
        self.merge_shards(shards)?;
        if obs::enabled() {
            sp.record("items", texts.len());
            sp.observe_into("ingest.stream_batch_us");
            obs::count("ingest.stream_batches", 1);
        }
        Ok(())
    }

    /// [`Self::push_batch`] over owned `(origin, input)` pairs — the
    /// directory-ingest form, where an unreadable file arrives as an
    /// [`RawInput::IoError`] and is accounted as an `io-error` parse
    /// failure instead of aborting the stream.
    pub fn push_input_batch(
        &mut self,
        items: &[(Option<String>, RawInput)],
    ) -> tinyframe::Result<()> {
        let segment_rows = self.valid.segment_rows();
        let mut sp = obs::span("stream-batch");
        let ranges = tinypool::run_chunks(items.len(), |_| {});
        let shards: Vec<Shard> = tinypool::parallel_map(&ranges, |range| {
            let slice = &items[range.clone()];
            let keys: Vec<PartKey> = slice
                .iter()
                .map(|(_, input)| part_key_of_input(input))
                .collect();
            let (valid, report, item_index) = stage1_validate_inputs_indexed(
                slice
                    .iter()
                    .map(|(origin, input)| (origin.clone(), input.as_ref())),
            );
            shard_arenas(valid, report, segment_rows, &keys, &item_index)
        });
        self.merge_shards(shards)?;
        if obs::enabled() {
            sp.record("items", items.len());
            sp.observe_into("ingest.stream_batch_us");
            obs::count("ingest.stream_batches", 1);
        }
        Ok(())
    }

    fn merge_shards(&mut self, shards: Vec<Shard>) -> tinyframe::Result<()> {
        for (report, valid_arena, comp_arena, partitions) in shards {
            self.report.merge(&report);
            for (key, counts) in &partitions {
                self.partitions.entry(*key).or_default().merge(counts);
            }
            for frame in valid_arena {
                self.valid.append_frame(frame)?;
            }
            for frame in comp_arena {
                self.comparable.append_frame(frame)?;
            }
        }
        self.batches += 1;
        if obs::enabled() {
            obs::set_gauge("ingest.partitions", self.partitions.len() as i64);
        }
        Ok(())
    }

    /// Accumulated filter accounting over every batch so far.
    pub fn report(&self) -> &FilterReport {
        &self.report
    }

    /// Number of batches ingested.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Accumulated per-(year, vendor) partition cascade counts. Sums
    /// across partitions equal the corresponding [`Self::report`] totals
    /// for any batch split and thread count.
    pub fn partition_counts(&self) -> &BTreeMap<PartKey, StreamPartitionCounts> {
        &self.partitions
    }

    /// The segmented feature table of stage-1-valid runs.
    pub fn valid_features(&mut self) -> &mut SegFrame {
        &mut self.valid
    }

    /// The segmented feature table of comparable runs.
    pub fn comparable_features(&mut self) -> &mut SegFrame {
        &mut self.comparable
    }

    /// Tear down into `(valid, comparable, report)`.
    pub fn into_parts(self) -> (SegFrame, SegFrame, FilterReport) {
        (self.valid, self.comparable, self.report)
    }
}

/// Per-shard output of the streaming row cascade: the shard's stage-1/2
/// accounting, its routed `(key, batch-local input index, comparable,
/// row)` tuples and its per-partition counts.
type RowShard = (
    FilterReport,
    Vec<(PartKey, u32, bool, RunRow)>,
    BTreeMap<PartKey, StreamPartitionCounts>,
);

fn shard_rows(
    valid: Vec<RunResult>,
    report: FilterReport,
    keys: &[PartKey],
    item_index: &[u32],
    local_base: u32,
) -> RowShard {
    let (indices, stage2) = stage2_split(&valid);
    let mut report = report;
    report.comparable = indices.len();
    report.stage2 = stage2;
    let mut comparable = vec![false; valid.len()];
    for &i in &indices {
        comparable[i as usize] = true;
    }
    let mut partitions: BTreeMap<PartKey, StreamPartitionCounts> = BTreeMap::new();
    for key in keys {
        partitions.entry(*key).or_default().raw += 1;
    }
    let rows = extract_rows(&valid);
    let routed: Vec<(PartKey, u32, bool, RunRow)> = rows
        .into_iter()
        .zip(&comparable)
        .zip(item_index)
        .map(|((row, &comp), &input)| {
            let key = keys[input as usize];
            let counts = partitions.entry(key).or_default();
            counts.valid += 1;
            if comp {
                counts.comparable += 1;
            }
            (key, local_base + input, comp, row)
        })
        .collect();
    (report, routed, partitions)
}

/// Streaming [`RunRow`] cascade: push batches of reports, receive every
/// stage-1 survivor as a `(partition key, global corpus index, comparable,
/// row)` tuple through a sink, and read off the accumulated
/// [`FilterReport`] and per-partition counts at any point. This is how a
/// serve snapshot ingests a `--scale 100` corpus without ever holding the
/// texts, the parsed [`RunResult`]s or a merged row vector in memory —
/// the sink appends straight into an out-of-core row store.
///
/// Same correctness contract as [`StreamIngest`]: any batch split at any
/// thread count yields the identical report, and sorting the emitted
/// tuples by global index reproduces the partitioned driver's merged row
/// order exactly (pinned by tests below).
#[derive(Debug, Default)]
pub struct StreamRows {
    report: FilterReport,
    partitions: BTreeMap<PartKey, StreamPartitionCounts>,
}

impl StreamRows {
    /// Fresh cascade state.
    pub fn new() -> StreamRows {
        StreamRows::default()
    }

    fn merge_row_shards<E>(
        &mut self,
        shards: Vec<RowShard>,
        base: u32,
        sink: &mut impl FnMut(PartKey, u32, bool, RunRow) -> Result<(), E>,
    ) -> Result<(), E> {
        for (report, routed, partitions) in shards {
            self.report.merge(&report);
            for (key, counts) in &partitions {
                self.partitions.entry(*key).or_default().merge(counts);
            }
            for (key, local, comp, row) in routed {
                sink(key, base + local, comp, row)?;
            }
        }
        Ok(())
    }

    /// Ingest one batch of report texts, emitting each valid run's routed
    /// row through `sink`. Batches are sharded over the worker pool and
    /// merged in shard order, so emission order and global indices are
    /// identical for any batch split and thread count.
    pub fn push_batch<S, E>(
        &mut self,
        texts: &[S],
        mut sink: impl FnMut(PartKey, u32, bool, RunRow) -> Result<(), E>,
    ) -> Result<(), E>
    where
        S: AsRef<str> + Sync,
    {
        let base = self.report.raw as u32;
        let mut sp = obs::span("stream-rows-batch");
        let ranges = tinypool::run_chunks(texts.len(), |_| {});
        let shards: Vec<RowShard> = tinypool::parallel_map(&ranges, |range| {
            let slice = &texts[range.clone()];
            let keys: Vec<PartKey> = slice.iter().map(|t| part_key_of_text(t.as_ref())).collect();
            let (valid, report, item_index) = stage1_validate_inputs_indexed(
                slice
                    .iter()
                    .map(|t| (None::<String>, RawInputRef::Text(t.as_ref()))),
            );
            shard_rows(valid, report, &keys, &item_index, range.start as u32)
        });
        self.merge_row_shards(shards, base, &mut sink)?;
        if obs::enabled() {
            sp.record("items", texts.len());
            sp.observe_into("ingest.stream_batch_us");
            obs::count("ingest.stream_row_batches", 1);
        }
        Ok(())
    }

    /// [`Self::push_batch`] over `(origin, input)` pairs — the directory
    /// form, where unreadable files degrade to `io-error` parse failures.
    pub fn push_input_batch<E>(
        &mut self,
        items: &[(Option<String>, RawInput)],
        mut sink: impl FnMut(PartKey, u32, bool, RunRow) -> Result<(), E>,
    ) -> Result<(), E> {
        let base = self.report.raw as u32;
        let mut sp = obs::span("stream-rows-batch");
        let ranges = tinypool::run_chunks(items.len(), |_| {});
        let shards: Vec<RowShard> = tinypool::parallel_map(&ranges, |range| {
            let slice = &items[range.clone()];
            let keys: Vec<PartKey> = slice
                .iter()
                .map(|(_, input)| part_key_of_input(input))
                .collect();
            let (valid, report, item_index) = stage1_validate_inputs_indexed(
                slice
                    .iter()
                    .map(|(origin, input)| (origin.clone(), input.as_ref())),
            );
            shard_rows(valid, report, &keys, &item_index, range.start as u32)
        });
        self.merge_row_shards(shards, base, &mut sink)?;
        if obs::enabled() {
            sp.record("items", items.len());
            sp.observe_into("ingest.stream_batch_us");
            obs::count("ingest.stream_row_batches", 1);
        }
        Ok(())
    }

    /// Accumulated filter accounting over every batch so far.
    pub fn report(&self) -> &FilterReport {
        &self.report
    }

    /// Accumulated per-(year, vendor) cascade counts.
    pub fn partition_counts(&self) -> &BTreeMap<PartKey, StreamPartitionCounts> {
        &self.partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::load_from_texts;
    use spec_format::write_run;
    use spec_model::linear_test_run;

    fn corpus(n: u32) -> Vec<String> {
        let mut texts: Vec<String> = (0..n)
            .map(|i| {
                write_run(&linear_test_run(
                    i,
                    1e6 + i as f64 * 1e3,
                    50.0 + (i % 7) as f64,
                    300.0,
                ))
            })
            .collect();
        if n > 3 {
            texts[3] = "junk that is not a report".into();
        }
        if n > 11 {
            let mut sparc = linear_test_run(999, 1e6, 60.0, 300.0);
            sparc.system.cpu.name = "SPARC T3-1".into();
            texts[11] = write_run(&sparc);
        }
        texts
    }

    #[test]
    fn streaming_matches_monolithic_for_any_batch_split() {
        let texts = corpus(40);
        let legacy = load_from_texts(&texts);
        let want_valid = runs_to_frame(&legacy.valid).to_csv();
        let want_comp = runs_to_frame(&legacy.comparable).to_csv();
        for batch in [1usize, 7, 40] {
            let mut ingest = StreamIngest::new(&StreamConfig {
                segment_rows: 16,
                spill: None,
            })
            .unwrap();
            for chunk in texts.chunks(batch) {
                ingest.push_batch(chunk).unwrap();
            }
            assert_eq!(ingest.report(), &legacy.report, "batch={batch}");
            assert_eq!(
                ingest.valid_features().to_csv().unwrap(),
                want_valid,
                "batch={batch}"
            );
            assert_eq!(
                ingest.comparable_features().to_csv().unwrap(),
                want_comp,
                "batch={batch}"
            );
        }
    }

    #[test]
    fn all_rejected_corpus_keeps_schema() {
        let mut ingest = StreamIngest::new(&StreamConfig {
            segment_rows: 8,
            spill: None,
        })
        .unwrap();
        ingest.push_batch(&["junk", "more junk"]).unwrap();
        let legacy = load_from_texts(&["junk".to_string(), "more junk".to_string()]);
        assert_eq!(ingest.report(), &legacy.report);
        assert_eq!(
            ingest.valid_features().to_csv().unwrap(),
            runs_to_frame(&[]).to_csv()
        );
    }

    #[test]
    fn input_batches_degrade_io_errors_like_the_monolith() {
        let texts = corpus(10);
        let mut items: Vec<(Option<String>, RawInput)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (Some(format!("r{i}.txt")), RawInput::Text(t.clone())))
            .collect();
        items.push((
            Some("gone.txt".into()),
            RawInput::IoError("could not read file: EIO".into()),
        ));
        let legacy = crate::pipeline::load_from_inputs(items.clone());
        let mut ingest = StreamIngest::new(&StreamConfig {
            segment_rows: 4,
            spill: None,
        })
        .unwrap();
        for chunk in items.chunks(3) {
            ingest.push_input_batch(chunk).unwrap();
        }
        assert_eq!(ingest.report(), &legacy.report);
        assert_eq!(
            ingest.valid_features().to_csv().unwrap(),
            runs_to_frame(&legacy.valid).to_csv()
        );
    }

    #[test]
    fn partition_counts_are_split_invariant_and_match_the_stage_graph() {
        let mut texts = corpus(40);
        // Spread hardware years and vendors so several partitions exist.
        for (i, text) in texts.iter_mut().enumerate() {
            if text.contains("Hardware Availability") {
                let mut run = linear_test_run(i as u32, 1e6, 60.0, 300.0);
                run.dates.hw_available =
                    spec_model::YearMonth::new(2015 + (i as i32 % 5), 3).unwrap();
                if i % 2 == 0 {
                    run.system.cpu.name = format!("AMD EPYC {}", 7000 + i);
                }
                *text = write_run(&run);
            }
        }
        let mut reference = None;
        for batch in [1usize, 7, 40] {
            let mut ingest = StreamIngest::new(&StreamConfig {
                segment_rows: 16,
                spill: None,
            })
            .unwrap();
            for chunk in texts.chunks(batch) {
                ingest.push_batch(chunk).unwrap();
            }
            let counts = ingest.partition_counts().clone();
            // Partition sums reproduce the cascade totals.
            assert_eq!(
                counts.values().map(|c| c.raw).sum::<usize>(),
                ingest.report().raw
            );
            assert_eq!(
                counts.values().map(|c| c.valid).sum::<usize>(),
                ingest.report().valid
            );
            assert_eq!(
                counts.values().map(|c| c.comparable).sum::<usize>(),
                ingest.report().comparable
            );
            match &reference {
                None => reference = Some(counts),
                Some(want) => assert_eq!(&counts, want, "batch={batch}"),
            }
        }
        // And the streamed counts agree with the partitioned stage graph
        // over the identical corpus.
        let items: Vec<(Option<String>, String)> =
            texts.iter().map(|t| (None, t.clone())).collect();
        let mut driver = crate::stage::PartitionedDriver::new(
            crate::stage::CorpusSource::Memory(items),
            spec_ssj::Settings::fast(),
            7,
        );
        let summary = driver.partition_summary().unwrap();
        let want = reference.unwrap();
        assert_eq!(summary.len(), want.len());
        for part in summary {
            let counts = want.get(&part.key).expect("partition present");
            assert_eq!(counts.raw, part.reports, "{}", part.key.label());
            assert_eq!(counts.valid, part.valid, "{}", part.key.label());
            assert_eq!(counts.comparable, part.comparable, "{}", part.key.label());
        }
    }

    #[test]
    fn stream_rows_reproduce_the_merged_row_order_for_any_batch_split() {
        let mut texts = corpus(40);
        for (i, text) in texts.iter_mut().enumerate() {
            if text.contains("Hardware Availability") {
                let mut run = linear_test_run(i as u32, 1e6 + i as f64 * 1e3, 60.0, 300.0);
                run.dates.hw_available =
                    spec_model::YearMonth::new(2012 + (i as i32 % 4), 5).unwrap();
                if i % 2 == 0 {
                    run.system.cpu.name = format!("AMD EPYC {}", 7000 + i);
                }
                *text = write_run(&run);
            }
        }
        let items: Vec<(Option<String>, String)> =
            texts.iter().map(|t| (None, t.clone())).collect();
        let mut driver = crate::stage::PartitionedDriver::new(
            crate::stage::CorpusSource::Memory(items),
            spec_ssj::Settings::fast(),
            7,
        );
        let merged = driver.merged().unwrap();
        let report = driver.filter_report().unwrap();

        for batch in [1usize, 7, 40] {
            let mut stream = StreamRows::new();
            let mut tagged: Vec<(PartKey, u32, bool, RunRow)> = Vec::new();
            for chunk in texts.chunks(batch) {
                stream
                    .push_batch::<_, std::convert::Infallible>(chunk, |key, gidx, comp, row| {
                        tagged.push((key, gidx, comp, row));
                        Ok(())
                    })
                    .unwrap();
            }
            assert_eq!(stream.report(), &report, "batch={batch}");
            tagged.sort_unstable_by_key(|t| t.1);
            let valid: Vec<RunRow> = tagged.iter().map(|t| t.3).collect();
            let comparable: Vec<RunRow> = tagged.iter().filter(|t| t.2).map(|t| t.3).collect();
            assert_eq!(valid, merged.valid_rows, "batch={batch}");
            assert_eq!(comparable, merged.comparable_rows, "batch={batch}");
            // Routed keys agree with the partitioned split.
            let sums = stream.partition_counts();
            assert_eq!(
                sums.values().map(|c| c.valid).sum::<usize>(),
                merged.valid_rows.len()
            );
        }
    }

    #[test]
    fn stream_rows_sink_errors_propagate() {
        let texts = corpus(10);
        let mut stream = StreamRows::new();
        let err = stream
            .push_batch(&texts, |_, _, _, _| Err("sink full"))
            .unwrap_err();
        assert_eq!(err, "sink full");
    }

    #[test]
    fn spilling_stream_is_identical_and_bounded() {
        let texts = corpus(60);
        let legacy = load_from_texts(&texts);
        let dir = std::env::temp_dir().join("spec_stream_spill_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut ingest = StreamIngest::new(&StreamConfig {
            segment_rows: 8,
            spill: Some(SpillConfig {
                dir: dir.clone(),
                max_resident_bytes: 4096,
            }),
        })
        .unwrap();
        for chunk in texts.chunks(9) {
            ingest.push_batch(chunk).unwrap();
        }
        assert!(
            ingest.valid_features().segments_spilled() > 0,
            "a 4 KiB budget must force spill"
        );
        assert_eq!(
            ingest.valid_features().to_csv().unwrap(),
            runs_to_frame(&legacy.valid).to_csv()
        );
        assert_eq!(
            ingest.comparable_features().to_csv().unwrap(),
            runs_to_frame(&legacy.comparable).to_csv()
        );
        assert_eq!(ingest.report(), &legacy.report);
        drop(ingest);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
