//! # FaultNet — seeded adversarial HTTP clients
//!
//! The network-side twin of `spec-vfs`'s `FaultVfs`: deterministic,
//! seed-driven misbehaving clients for chaos-testing the serve daemon's
//! connection lifecycle. Each [`ClientKind`] models one hostile traffic
//! shape:
//!
//! | kind                    | behaviour                                          |
//! |-------------------------|----------------------------------------------------|
//! | `Valid`                 | well-formed keep-alive GETs (the control group)    |
//! | `SlowLoris`             | trickles a request head slower than the deadline   |
//! | `HeaderFlood`           | unbounded header lines (expects 431)               |
//! | `TornRequest`           | half a request head, then FIN                      |
//! | `MidResponseDisconnect` | valid GET, reads a few bytes, vanishes             |
//! | `PipelinedBurst`        | many requests in one write                         |
//!
//! [`run_client`] drives one client against a live daemon and returns a
//! [`ClientReport`] of what came back. The invariants the chaos suite
//! pins from these reports: **zero torn responses** (every byte sequence
//! the server emits parses as HTTP), and **every 503 carries
//! `Retry-After`**. Server-side lifecycle accounting is checked against
//! `/stats` separately — the reports here are the client's-eye view.
//!
//! [`read_response`] is also the response parser used by the daemon's
//! own keep-alive unit tests: it reads *exactly one* response (head
//! byte-at-a-time, body by `Content-Length`) and never over-reads into
//! the next pipelined response.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// xorshift64* — deterministic, seed-stable across platforms. Matches
/// the generator family `FaultVfs` and the chaos suite already use.
pub struct Rng(u64);

impl Rng {
    /// Seeded generator (zero is mapped to a fixed odd constant).
    pub fn seeded(seed: u64) -> Rng {
        Rng(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// One parsed HTTP response (or the torn prefix of one).
pub struct RespInfo {
    /// Parsed status code; 0 means the head did not parse (torn).
    pub status: u16,
    /// `Connection: close` was present.
    pub close: bool,
    /// A `Retry-After` header was present.
    pub retry_after: bool,
    /// The full `Content-Length` body arrived.
    pub complete: bool,
    /// Body bytes (or the torn prefix when `status == 0`).
    pub body: Vec<u8>,
}

impl RespInfo {
    /// The server emitted bytes that are not a valid HTTP response head.
    pub fn torn(&self) -> bool {
        self.status == 0
    }
}

fn torn_info(partial: Vec<u8>) -> RespInfo {
    RespInfo {
        status: 0,
        close: true,
        retry_after: false,
        complete: false,
        body: partial,
    }
}

/// Read exactly one HTTP/1.1 response off `stream`. Returns `Ok(None)`
/// on clean EOF at a response boundary. Head bytes are read one at a
/// time so pipelined follow-up responses are never consumed.
pub fn read_response(stream: &mut TcpStream) -> std::io::Result<Option<RespInfo>> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                if head.is_empty() {
                    return Ok(None);
                }
                return Ok(Some(torn_info(head)));
            }
            Ok(_) => {
                head.push(byte[0]);
                if head.ends_with(b"\r\n\r\n") {
                    break;
                }
                if head.len() > 64 * 1024 {
                    return Ok(Some(torn_info(head)));
                }
            }
            Err(e) => return Err(e),
        }
    }
    let text = String::from_utf8_lossy(&head).into_owned();
    if !text.starts_with("HTTP/1.1 ") {
        return Ok(Some(torn_info(head)));
    }
    let Some(status) = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
    else {
        return Ok(Some(torn_info(head)));
    };
    let mut content_length = 0usize;
    let mut close = false;
    let mut retry_after = false;
    for line in text.lines().skip(1) {
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        } else if lower.starts_with("connection:") && lower.contains("close") {
            close = true;
        } else if lower.starts_with("retry-after:") {
            retry_after = true;
        }
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        match stream.read(&mut body[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) => return Err(e),
        }
    }
    let complete = filled == content_length;
    body.truncate(filled);
    Ok(Some(RespInfo {
        status,
        close,
        retry_after,
        complete,
        body,
    }))
}

/// The adversarial client shapes. See the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientKind {
    /// Well-formed keep-alive GETs — the control group.
    Valid,
    /// Trickles a request head slower than the read deadline.
    SlowLoris,
    /// Writes header lines far past the head byte cap.
    HeaderFlood,
    /// Sends half a request head, then FIN.
    TornRequest,
    /// Sends a valid GET, reads a few bytes of the reply, vanishes.
    MidResponseDisconnect,
    /// Writes several requests in a single burst.
    PipelinedBurst,
}

/// All kinds, for building chaos fleets.
pub const KINDS: &[ClientKind] = &[
    ClientKind::Valid,
    ClientKind::SlowLoris,
    ClientKind::HeaderFlood,
    ClientKind::TornRequest,
    ClientKind::MidResponseDisconnect,
    ClientKind::PipelinedBurst,
];

/// Request targets the well-formed clients draw from: static, filtered
/// (memo-exercising), probes, and a not-found.
pub const TARGETS: &[&str] = &[
    "/",
    "/healthz",
    "/readyz",
    "/data/1",
    "/data/2",
    "/figures/3",
    "/data/2?vendor=amd",
    "/data/5?year=2011",
    "/figures/5?year=2012&vendor=intel",
    "/nope",
];

/// What one client saw. All counts are of *responses*, except `cut`,
/// which counts connections the server terminated mid-response or before
/// responding (expected for the hostile kinds).
#[derive(Debug, Default)]
pub struct ClientReport {
    /// Complete, well-formed responses received.
    pub completed: usize,
    /// 503 responses (shed / drain / blown deadline).
    pub shed: usize,
    /// 503 responses **missing** `Retry-After` — must stay 0.
    pub bad_shed: usize,
    /// Byte sequences that do not parse as an HTTP response — must stay 0.
    pub torn: usize,
    /// Connections ended by the server before/inside a response.
    pub cut: usize,
    /// The initial connect failed (daemon draining or backlog refused).
    pub connect_failed: bool,
}

impl ClientReport {
    fn observe(&mut self, resp: &RespInfo) {
        if resp.torn() {
            self.torn += 1;
        } else if !resp.complete {
            self.cut += 1;
        } else {
            self.completed += 1;
            if resp.status == 503 {
                self.shed += 1;
                if !resp.retry_after {
                    self.bad_shed += 1;
                }
            }
        }
    }
}

const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(10);

fn connect(addr: SocketAddr) -> Option<TcpStream> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).ok()?;
    stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT)).ok()?;
    let _ = stream.set_nodelay(true);
    Some(stream)
}

fn get_line(target: &str, close: bool) -> String {
    format!(
        "GET {target} HTTP/1.1\r\nHost: faultnet\r\n{}\r\n",
        if close { "Connection: close\r\n" } else { "" }
    )
}

/// Drain every remaining response on `stream` into `report`.
fn read_all(stream: &mut TcpStream, report: &mut ClientReport) {
    loop {
        match read_response(stream) {
            Ok(Some(resp)) => {
                let stop = resp.close || resp.torn() || !resp.complete;
                report.observe(&resp);
                if stop {
                    return;
                }
            }
            Ok(None) => return,
            Err(_) => {
                // Reset/timeout after the server killed the connection.
                report.cut += 1;
                return;
            }
        }
    }
}

/// Run one adversarial client to completion against a live daemon.
/// Never panics and never blocks longer than the client read timeout.
pub fn run_client(addr: SocketAddr, kind: ClientKind, seed: u64) -> ClientReport {
    let mut rng = Rng::seeded(seed);
    let mut report = ClientReport::default();
    let Some(mut stream) = connect(addr) else {
        report.connect_failed = true;
        return report;
    };
    match kind {
        ClientKind::Valid => {
            let n = 1 + rng.below(4) as usize;
            for i in 0..n {
                let target = TARGETS[rng.below(TARGETS.len() as u64) as usize];
                let last = i == n - 1;
                if stream.write_all(get_line(target, last).as_bytes()).is_err() {
                    report.cut += 1;
                    return report;
                }
                match read_response(&mut stream) {
                    Ok(Some(resp)) => {
                        let closed = resp.close || resp.torn() || !resp.complete;
                        report.observe(&resp);
                        if closed {
                            return report;
                        }
                    }
                    Ok(None) => {
                        report.cut += 1;
                        return report;
                    }
                    Err(_) => {
                        report.cut += 1;
                        return report;
                    }
                }
            }
        }
        ClientKind::SlowLoris => {
            // Trickle the head in 3-byte sips with 20–50 ms gaps: the
            // whole head takes far longer than any sane request deadline.
            let request = get_line("/stats", true);
            for chunk in request.as_bytes().chunks(3) {
                if stream.write_all(chunk).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20 + rng.below(31)));
            }
            read_all(&mut stream, &mut report);
        }
        ClientKind::HeaderFlood => {
            // ~24 KiB of headers — far past any sane head cap, but small
            // enough to stay inside kernel socket buffers.
            let mut flood = String::from("GET /stats HTTP/1.1\r\n");
            for i in 0..512 {
                flood.push_str(&format!("X-Flood-{i}: {}\r\n", "f".repeat(24)));
            }
            flood.push_str("\r\n");
            let _ = stream.write_all(flood.as_bytes());
            read_all(&mut stream, &mut report);
        }
        ClientKind::TornRequest => {
            // Half a request head, then FIN.
            let request = get_line("/data/2", false);
            let cut_at = 1 + rng.below(request.len() as u64 - 1) as usize;
            let _ = stream.write_all(&request.as_bytes()[..cut_at]);
            let _ = stream.shutdown(std::net::Shutdown::Write);
            read_all(&mut stream, &mut report);
        }
        ClientKind::MidResponseDisconnect => {
            // Ask for a large figure, read a token amount, vanish.
            let _ = stream.write_all(get_line("/figures/4", false).as_bytes());
            let mut sip = [0u8; 64];
            let _ = stream.read(&mut sip);
            drop(stream);
            // Nothing observable client-side; the server must simply
            // survive (asserted via /stats accounting and panic counts).
            return report;
        }
        ClientKind::PipelinedBurst => {
            let n = 2 + rng.below(5) as usize;
            let mut burst = String::new();
            for i in 0..n {
                let target = TARGETS[rng.below(TARGETS.len() as u64) as usize];
                burst.push_str(&get_line(target, i == n - 1));
            }
            let _ = stream.write_all(burst.as_bytes());
            read_all(&mut stream, &mut report);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::seeded(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seeded(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::seeded(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut r = Rng::seeded(0);
        for _ in 0..64 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn response_reader_parses_one_response_without_overreading() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let payload: &[u8] = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\nContent-Length: 5\r\nConnection: keep-alive\r\nRetry-After: 1\r\n\r\nhello\
                               HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok";
        let server = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().expect("accept");
            sock.write_all(payload).expect("write");
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        let first = read_response(&mut stream).expect("read").expect("resp 1");
        assert_eq!(first.status, 503);
        assert!(first.retry_after);
        assert!(!first.close);
        assert!(first.complete);
        assert_eq!(first.body, b"hello");
        let second = read_response(&mut stream).expect("read").expect("resp 2");
        assert_eq!(second.status, 200);
        assert!(second.close);
        assert_eq!(second.body, b"ok");
        assert!(read_response(&mut stream).expect("read").is_none());
        server.join().expect("server thread");
    }

    #[test]
    fn garbage_bytes_classify_as_torn() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().expect("accept");
            sock.write_all(b"not http at all\r\n\r\n").expect("write");
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        let resp = read_response(&mut stream).expect("read").expect("resp");
        assert!(resp.torn());
        server.join().expect("server thread");
    }
}
