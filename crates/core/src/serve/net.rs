//! Connection-layer plumbing for the serve daemon: request-head parsing,
//! hard limits, per-request deadlines over an injectable [`Clock`], and
//! the socket read/write state machine with timeout classification.
//!
//! The split from `serve.rs` is deliberate: everything in this module is
//! either a **pure function** over bytes ([`scan_head`], [`parse_head`] —
//! property-tested in `tests/serve_parser_props.rs` against arbitrary
//! byte soup) or a thin, classifying wrapper around one `TcpStream`
//! ([`Conn`]). Routing, snapshots and the worker pool stay in `serve.rs`.
//!
//! ## Timeout model
//!
//! Three distinct budgets, all enforced through `set_read_timeout` /
//! `set_write_timeout` so a stalled peer can never wedge a worker:
//!
//! * **idle** (`idle_timeout_ms`): how long a keep-alive connection may
//!   sit between requests before we close it;
//! * **request read deadline** (`request_deadline_ms`): from the first
//!   byte of a request head, how long the client has to finish sending
//!   it — a slow-loris client trickling one byte per second blows this
//!   and is shed. The remaining budget is recomputed from the injectable
//!   [`Clock`] before every `read`, so tests with a [`TestClock`] shed
//!   deterministically without waiting on the wall clock;
//! * **write budget** (`request_deadline_ms`, fixed per response): a
//!   client that stops reading mid-response trips the socket write
//!   timeout and the connection is classified `timed_out`. The write
//!   budget is a plain duration, *not* clock-derived, so an expired
//!   request deadline can still deliver its 503.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Hard limits and budgets for the connection lifecycle. All are
/// CLI-tunable (`--max-inflight`, `--queue-depth`, `--request-deadline-ms`,
/// `--idle-timeout-ms`, `--max-header-bytes`, `--drain-timeout-ms`).
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Connections being served concurrently; beyond this, arrivals queue.
    pub max_inflight: usize,
    /// Bounded admission queue depth; a full queue sheds with 503.
    pub queue_depth: usize,
    /// Per-request budget: read the head, compute, write the response.
    pub request_deadline_ms: u64,
    /// Keep-alive connections idle longer than this are closed.
    pub idle_timeout_ms: u64,
    /// Request line + headers larger than this are rejected with 431.
    pub max_header_bytes: usize,
    /// Query strings longer than this are rejected with 414.
    pub max_query_bytes: usize,
    /// Requests served per connection before we force `Connection: close`.
    pub max_requests_per_conn: u64,
    /// Graceful-drain budget: in-flight work past this is force-closed.
    pub drain_timeout_ms: u64,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_inflight: 32,
            queue_depth: 64,
            request_deadline_ms: 2_000,
            idle_timeout_ms: 5_000,
            max_header_bytes: 8 * 1024,
            max_query_bytes: 1024,
            max_requests_per_conn: 256,
            drain_timeout_ms: 5_000,
        }
    }
}

/// Monotonic time source for deadline math, injectable so tests can blow
/// a request deadline without sleeping. (Distinct from `spec_vfs::Clock`,
/// which injects *sleeps*; this one injects *now*.)
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current instant.
    fn now(&self) -> Instant;
}

/// Production clock: `Instant::now`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// Test clock: starts at a fixed instant and advances by a configurable
/// step on every `now()` call, so "time passes" exactly as fast as the
/// code under test observes it. `set_step(Duration::ZERO)` freezes it.
#[derive(Debug)]
pub struct TestClock {
    base: Instant,
    state: Mutex<(Duration, Duration)>, // (elapsed, step per call)
}

impl TestClock {
    /// A frozen clock (step zero).
    pub fn new() -> TestClock {
        TestClock::with_step(Duration::ZERO)
    }

    /// A clock that jumps forward by `step` every time it is read.
    pub fn with_step(step: Duration) -> TestClock {
        TestClock {
            base: Instant::now(),
            state: Mutex::new((Duration::ZERO, step)),
        }
    }

    /// Change the per-read jump.
    pub fn set_step(&self, step: Duration) {
        self.state.lock().expect("clock lock").1 = step;
    }

    /// Advance manually by `d`.
    pub fn advance(&self, d: Duration) {
        self.state.lock().expect("clock lock").0 += d;
    }
}

impl Default for TestClock {
    fn default() -> TestClock {
        TestClock::new()
    }
}

impl Clock for TestClock {
    fn now(&self) -> Instant {
        let mut state = self.state.lock().expect("clock lock");
        let now = self.base + state.0;
        let step = state.1;
        state.0 += step;
        now
    }
}

/// A per-request deadline: a fixed end instant compared against the
/// injectable clock. `Copy` so it can ride through the routing layer.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    end: Instant,
}

impl Deadline {
    /// A deadline `budget` from `clock.now()`.
    pub fn start(clock: &dyn Clock, budget: Duration) -> Deadline {
        Deadline {
            end: clock.now() + budget,
        }
    }

    /// Budget left, or `None` once expired.
    pub fn remaining(&self, clock: &dyn Clock) -> Option<Duration> {
        let now = clock.now();
        if now >= self.end {
            None
        } else {
            Some(self.end - now)
        }
    }

    /// True once the budget is spent.
    pub fn expired(&self, clock: &dyn Clock) -> bool {
        self.remaining(clock).is_none()
    }
}

/// Result of scanning a receive buffer for a complete request head.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeadScan {
    /// No head terminator yet; keep reading.
    Incomplete,
    /// The buffer exceeded `max_header_bytes` without a terminator: 431.
    TooLarge,
    /// Terminator found; the head occupies `buf[..len]` (terminator
    /// included).
    Complete(usize),
}

/// Find the end of the request head (`\r\n\r\n`, or bare `\n\n` from
/// sloppy clients) within the first `max + 4` bytes of `buf`.
pub fn scan_head(buf: &[u8], max: usize) -> HeadScan {
    // Scan only as far as the cap requires: a flood of header bytes must
    // classify as TooLarge in O(max), not O(flood).
    let horizon = buf.len().min(max + 4);
    let window = &buf[..horizon];
    let crlf = window.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4);
    let lf = window.windows(2).position(|w| w == b"\n\n").map(|p| p + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => HeadScan::Complete(a.min(b)),
        (Some(a), None) => HeadScan::Complete(a),
        (None, Some(b)) => HeadScan::Complete(b),
        (None, None) if buf.len() > max => HeadScan::TooLarge,
        (None, None) => HeadScan::Incomplete,
    }
}

/// A parsed, validated request head.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestHead {
    /// Always `GET` today (anything else is a [`Reject`]).
    pub method: String,
    /// Path component of the target, starting with `/`.
    pub path: String,
    /// Query component (without the `?`), possibly empty.
    pub query: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Client sent `Connection: close`.
    pub close: bool,
    /// Client sent `Connection: keep-alive` (matters for HTTP/1.0).
    pub keep_alive: bool,
}

impl RequestHead {
    /// Does this client allow the connection to persist after the
    /// response? HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    pub fn allows_keep_alive(&self) -> bool {
        if self.close {
            return false;
        }
        self.http11 || self.keep_alive
    }
}

/// A request rejected at the parse layer, with the status that names why.
/// Rejects always close the connection: after malformed bytes the framing
/// of anything that follows cannot be trusted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reject {
    /// HTTP status: 400, 405, 414, 431, 501 or 505.
    pub status: u16,
    /// Human-readable reason, echoed in the response body.
    pub detail: String,
}

impl Reject {
    fn new(status: u16, detail: impl Into<String>) -> Reject {
        Reject {
            status,
            detail: detail.into(),
        }
    }
}

/// Methods the HTTP spec defines; any of these that is not `GET` earns a
/// 405 (`Allow: GET`), while a token outside this set earns a 501.
const KNOWN_METHODS: [&str; 9] = [
    "GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH", "TRACE", "CONNECT",
];

/// Parse one complete request head (as delimited by [`scan_head`]) into a
/// [`RequestHead`], or classify exactly why it is rejected. Total: never
/// panics on any byte input (property-tested).
pub fn parse_head(head: &[u8], limits: &Limits) -> Result<RequestHead, Reject> {
    if head.len() > limits.max_header_bytes + 4 {
        return Err(Reject::new(431, "request head too large"));
    }
    let text = String::from_utf8_lossy(head);
    let mut lines = text.lines();
    let line = lines.next().unwrap_or("").trim_end_matches('\r');
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(Reject::new(400, format!("malformed request line {line:?}")));
    };
    if parts.next().is_some() {
        return Err(Reject::new(400, format!("malformed request line {line:?}")));
    }
    if method != "GET" {
        return if KNOWN_METHODS.contains(&method) {
            Err(Reject::new(405, format!("method {method} not allowed")))
        } else {
            Err(Reject::new(501, format!("method {method:?} not implemented")))
        };
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v => return Err(Reject::new(505, format!("unsupported version {v:?}"))),
    };
    if !target.starts_with('/') {
        return Err(Reject::new(400, format!("target must be absolute, got {target:?}")));
    }
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    if query.len() > limits.max_query_bytes {
        return Err(Reject::new(
            414,
            format!(
                "query string of {} bytes exceeds the {}-byte cap",
                query.len(),
                limits.max_query_bytes
            ),
        ));
    }
    let mut close = false;
    let mut keep_alive = false;
    for raw in lines {
        let raw = raw.trim_end_matches('\r');
        if raw.is_empty() {
            break; // end of headers (body bytes, if any, are not ours)
        }
        let Some((name, value)) = raw.split_once(':') else {
            return Err(Reject::new(400, format!("malformed header line {raw:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let n: u64 = value
                    .parse()
                    .map_err(|_| Reject::new(400, format!("bad Content-Length {value:?}")))?;
                if n > 0 {
                    return Err(Reject::new(400, "GET requests must not carry a body"));
                }
            }
            "transfer-encoding" => {
                return Err(Reject::new(400, "GET requests must not carry a body"));
            }
            "connection" => {
                for token in value.split(',') {
                    match token.trim().to_ascii_lowercase().as_str() {
                        "close" => close = true,
                        "keep-alive" => keep_alive = true,
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    Ok(RequestHead {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        http11,
        close,
        keep_alive,
    })
}

/// How one attempt to read a request off the wire ended.
#[derive(Debug)]
pub enum ReadEvent {
    /// A complete, valid head; the deadline started at its first byte.
    Head(RequestHead, Deadline),
    /// A complete head that the parser rejected (respond, then close).
    Reject(Reject),
    /// No bytes arrived within the idle budget (keep-alive expiry).
    IdleExpired,
    /// Clean EOF with no buffered request bytes.
    Eof,
    /// EOF mid-head: the client tore the request off.
    Torn,
    /// The per-request read deadline elapsed mid-head (slow loris).
    TimedOut,
    /// A hard socket error.
    Error(std::io::Error),
}

/// How writing a response ended.
#[derive(Debug)]
pub enum WriteEvent {
    /// Every byte handed to the kernel.
    Done,
    /// The socket write timeout fired (client stopped reading).
    TimedOut,
    /// A hard socket error (reset, broken pipe — mid-response disconnect).
    Error(std::io::Error),
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// One live connection: the stream plus a carry-over buffer so pipelined
/// requests parse without waiting for more bytes.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    /// Wrap an accepted stream.
    pub fn new(stream: TcpStream) -> Conn {
        let _ = stream.set_nodelay(true);
        Conn {
            stream,
            buf: Vec::with_capacity(512),
        }
    }

    /// The underlying stream (for peer-addr lookups and write timeouts).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Read (or finish reading) one request head. `idle_budget` bounds
    /// the wait for the *first* byte; once a byte is buffered, the
    /// per-request deadline from `limits.request_deadline_ms` — measured
    /// on `clock` — governs every further read.
    pub fn read_request(&mut self, limits: &Limits, clock: &dyn Clock, idle_budget: Duration) -> ReadEvent {
        let mut chunk = [0u8; 1024];
        // Idle phase: wait for the first byte of the next request unless
        // a pipelined client already delivered it.
        if self.buf.is_empty() {
            if set_read_timeout(&self.stream, idle_budget).is_err() {
                return ReadEvent::Error(std::io::Error::other("set_read_timeout failed"));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadEvent::Eof,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if is_timeout(&e) => return ReadEvent::IdleExpired,
                Err(e) => return ReadEvent::Error(e),
            }
        }
        // Request phase: the head must complete within the deadline.
        let deadline = Deadline::start(clock, Duration::from_millis(limits.request_deadline_ms));
        loop {
            match scan_head(&self.buf, limits.max_header_bytes) {
                HeadScan::Complete(len) => {
                    let head = parse_head(&self.buf[..len], limits);
                    // Keep pipelined leftovers for the next request.
                    self.buf.drain(..len);
                    return match head {
                        Ok(head) => ReadEvent::Head(head, deadline),
                        Err(reject) => ReadEvent::Reject(reject),
                    };
                }
                HeadScan::TooLarge => {
                    self.buf.clear();
                    return ReadEvent::Reject(Reject::new(431, "request head too large"));
                }
                HeadScan::Incomplete => {}
            }
            let Some(remaining) = deadline.remaining(clock) else {
                return ReadEvent::TimedOut;
            };
            if set_read_timeout(&self.stream, remaining).is_err() {
                return ReadEvent::Error(std::io::Error::other("set_read_timeout failed"));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadEvent::Torn,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if is_timeout(&e) => return ReadEvent::TimedOut,
                Err(e) => return ReadEvent::Error(e),
            }
        }
    }

    /// True when no pipelined carry-over bytes are buffered.
    pub fn buf_is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Lingering close: half-close the write side, then read and discard
    /// whatever the client already sent, bounded by `budget`. Without
    /// this, closing a socket with unread bytes in the kernel queue sends
    /// RST, which can destroy the error response we just wrote before the
    /// client reads it (classic with 431s and shed 503s).
    pub fn lingering_close(&mut self, budget: Duration) {
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
        if set_read_timeout(&self.stream, budget.min(Duration::from_millis(100))).is_err() {
            return;
        }
        let start = std::time::Instant::now();
        let mut scratch = [0u8; 4096];
        // Cap total discarded bytes too, so a firehose client can't pin
        // this thread for the full budget at line rate.
        let mut discarded = 0usize;
        while start.elapsed() < budget && discarded < 1 << 20 {
            match self.stream.read(&mut scratch) {
                Ok(0) | Err(_) => return,
                Ok(n) => discarded += n,
            }
        }
    }

    /// Write a fully rendered response within `budget`.
    pub fn write_response(&mut self, bytes: &[u8], budget: Duration) -> WriteEvent {
        if set_write_timeout(&self.stream, budget).is_err() {
            return WriteEvent::Error(std::io::Error::other("set_write_timeout failed"));
        }
        match self.stream.write_all(bytes).and_then(|()| self.stream.flush()) {
            Ok(()) => WriteEvent::Done,
            Err(e) if is_timeout(&e) => WriteEvent::TimedOut,
            Err(e) => WriteEvent::Error(e),
        }
    }
}

/// `set_read_timeout` rejects a zero duration; clamp to 1 ms instead so
/// an expiring budget means "time out almost immediately", never a panic
/// or an accidental infinite block.
fn set_read_timeout(stream: &TcpStream, d: Duration) -> std::io::Result<()> {
    stream.set_read_timeout(Some(d.max(Duration::from_millis(1))))
}

fn set_write_timeout(stream: &TcpStream, d: Duration) -> std::io::Result<()> {
    stream.set_write_timeout(Some(d.max(Duration::from_millis(1))))
}

/// Idle upstream connections kept per shard pool.
const POOL_IDLE_CAP: usize = 4;

/// A keep-alive HTTP/1.1 client pool to one upstream shard daemon — the
/// scatter side of the fan-out plane. Budgets are enforced with real
/// socket timeouts (not the injectable [`Clock`]): the peer is another
/// process, so only wall-clock time bounds it.
pub(crate) struct ShardPool {
    addr: String,
    idle: Mutex<Vec<TcpStream>>,
}

impl ShardPool {
    pub fn new(addr: String) -> ShardPool {
        ShardPool {
            addr,
            idle: Mutex::new(Vec::new()),
        }
    }

    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// `GET target` within `budget`. Tries one pooled connection first
    /// (the shard may have idled it out server-side), then one fresh
    /// connection; a complete keep-alive response returns the socket to
    /// the pool for the next query.
    pub fn get(&self, target: &str, budget: Duration) -> std::io::Result<super::faultnet::RespInfo> {
        let deadline = Instant::now() + budget;
        let mut last_err: Option<std::io::Error> = None;
        for fresh in [false, true] {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            let mut stream = if fresh {
                match self.connect(remaining) {
                    Ok(stream) => stream,
                    Err(e) => {
                        last_err = Some(e);
                        continue;
                    }
                }
            } else {
                match self.idle.lock().expect("pool lock").pop() {
                    Some(stream) => stream,
                    None => continue, // no pooled socket; go fresh
                }
            };
            match self.attempt(&mut stream, target, remaining) {
                Ok(resp) => {
                    if resp.complete && !resp.close {
                        let mut idle = self.idle.lock().expect("pool lock");
                        if idle.len() < POOL_IDLE_CAP {
                            idle.push(stream);
                        }
                    }
                    return Ok(resp);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .unwrap_or_else(|| std::io::Error::new(std::io::ErrorKind::TimedOut, "budget spent")))
    }

    fn connect(&self, budget: Duration) -> std::io::Result<TcpStream> {
        use std::net::ToSocketAddrs as _;
        let addr = self
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no such address"))?;
        TcpStream::connect_timeout(&addr, budget.max(Duration::from_millis(1)))
    }

    fn attempt(
        &self,
        stream: &mut TcpStream,
        target: &str,
        budget: Duration,
    ) -> std::io::Result<super::faultnet::RespInfo> {
        set_write_timeout(stream, budget)?;
        set_read_timeout(stream, budget)?;
        stream.write_all(format!("GET {target} HTTP/1.1\r\nHost: shard\r\n\r\n").as_bytes())?;
        match super::faultnet::read_response(stream)? {
            Some(resp) if resp.complete => Ok(resp),
            _ => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "truncated shard response",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> Limits {
        Limits::default()
    }

    fn parse(s: &str) -> Result<RequestHead, Reject> {
        parse_head(s.as_bytes(), &limits())
    }

    #[test]
    fn scan_finds_both_terminators() {
        assert_eq!(scan_head(b"GET / HTTP/1.1\r\n\r\nrest", 8192), HeadScan::Complete(18));
        assert_eq!(scan_head(b"GET / HTTP/1.1\n\nrest", 8192), HeadScan::Complete(16));
        assert_eq!(scan_head(b"GET / HT", 8192), HeadScan::Incomplete);
        assert_eq!(scan_head(&vec![b'a'; 9000], 8192), HeadScan::TooLarge);
    }

    #[test]
    fn scan_is_bounded_by_the_cap_not_the_flood() {
        // A terminator beyond the cap is irrelevant: the head is too large.
        let mut flood = vec![b'x'; 10_000];
        flood.extend_from_slice(b"\r\n\r\n");
        assert_eq!(scan_head(&flood, 8192), HeadScan::TooLarge);
    }

    #[test]
    fn parses_a_plain_get() {
        let head = parse("GET /data/2?vendor=amd HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(head.method, "GET");
        assert_eq!(head.path, "/data/2");
        assert_eq!(head.query, "vendor=amd");
        assert!(head.http11);
        assert!(head.allows_keep_alive());
    }

    #[test]
    fn connection_close_and_http10_defaults() {
        let head = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!head.allows_keep_alive());
        let head = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!head.allows_keep_alive());
        let head = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(head.allows_keep_alive());
    }

    #[test]
    fn known_methods_get_405_unknown_get_501() {
        assert_eq!(parse("POST / HTTP/1.1\r\n\r\n").unwrap_err().status, 405);
        assert_eq!(parse("DELETE / HTTP/1.1\r\n\r\n").unwrap_err().status, 405);
        assert_eq!(parse("BOGUS / HTTP/1.1\r\n\r\n").unwrap_err().status, 501);
        assert_eq!(parse("get / HTTP/1.1\r\n\r\n").unwrap_err().status, 501);
    }

    #[test]
    fn bodies_and_bad_versions_reject() {
        assert_eq!(
            parse("GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap_err().status,
            400
        );
        assert_eq!(
            parse("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err().status,
            400
        );
        // Content-Length: 0 is tolerated (no body follows).
        assert!(parse("GET / HTTP/1.1\r\nContent-Length: 0\r\n\r\n").is_ok());
        assert_eq!(parse("GET / HTTP/2.0\r\n\r\n").unwrap_err().status, 505);
        assert_eq!(parse("GET /\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET relative HTTP/1.1\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET / HTTP/1.1 extra\r\n\r\n").unwrap_err().status, 400);
    }

    #[test]
    fn query_cap_is_414() {
        let long = format!("GET /data/2?{} HTTP/1.1\r\n\r\n", "a".repeat(2000));
        assert_eq!(parse(&long).unwrap_err().status, 414);
    }

    #[test]
    fn malformed_header_line_is_400() {
        assert_eq!(parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err().status, 400);
    }

    #[test]
    fn test_clock_steps_deterministically() {
        let clock = TestClock::with_step(Duration::from_millis(100));
        let deadline = Deadline::start(&clock, Duration::from_millis(250));
        // start consumed one read; two more reads (100 ms each) stay inside.
        assert!(deadline.remaining(&clock).is_some());
        assert!(deadline.remaining(&clock).is_some());
        assert!(deadline.expired(&clock));
        clock.set_step(Duration::ZERO);
        let frozen = Deadline::start(&clock, Duration::from_millis(10));
        assert!(!frozen.expired(&clock));
        clock.advance(Duration::from_millis(20));
        assert!(frozen.expired(&clock));
    }
}
