//! Out-of-core per-partition [`RunRow`] stores backing serve snapshots.
//!
//! A snapshot used to hold every merged row in two `Vec<RunRow>`s; at
//! `--scale 100` that (plus the texts and parsed runs feeding it) is what
//! kept the daemon from hosting the corpora the streaming ingest already
//! handles. [`RowStore`] instead keeps one [`SegFrame`] per (year, vendor)
//! partition, each encoding rows as typed columns, with cold segments
//! spilled through the checksummed `spec-vfs` segment store under a
//! `--max-resident-mb` budget. Queries prune whole partitions by key
//! before touching a segment, stream matching rows out, and sort by
//! global corpus index — restoring the exact monolithic row order, so
//! every figure/CSV rendered from a query is byte-identical to one
//! rendered from the old in-memory vectors.
//!
//! `Option<f64>` fields ride in a presence bitmask column rather than a
//! NaN sentinel: `Some(NaN)` and `None` must round-trip distinctly for
//! the byte-identity contract to hold (`overall` is raw and may be
//! non-finite; the optional metrics are filtered upstream but the codec
//! does not get to assume that).

use std::path::PathBuf;
use std::sync::Arc;

use spec_model::CpuVendor;
use tinyframe::{Column, Frame, SegFrame, VfsSegmentStore};

use crate::figures::common::RunRow;
use crate::stage::PartKey;

/// A row tagged with its global corpus index and stage-2 flag — the unit
/// the scatter-gather plane ships between shards.
pub(crate) type TaggedRow = (u32, bool, RunRow);

/// How a [`RowStore`] is laid out.
#[derive(Clone, Debug)]
pub(crate) struct RowStoreConfig {
    /// Rows per sealed segment.
    pub segment_rows: usize,
    /// `(spill dir, total resident budget in bytes)`; `None` keeps every
    /// segment resident.
    pub spill: Option<(PathBuf, usize)>,
    /// Remove the spill dir when the store drops (per-generation scratch).
    pub cleanup: bool,
}

impl Default for RowStoreConfig {
    fn default() -> RowStoreConfig {
        RowStoreConfig {
            segment_rows: 4096,
            spill: None,
            cleanup: false,
        }
    }
}

/// The per-partition budget divisor: the 16-year SPEC Power corpus spans
/// roughly `years × vendors ≈ 48` partitions, and each partition's
/// `SegFrame` enforces its slice of the `--max-resident-mb` budget
/// independently (segment budgets cannot be rebalanced after spill ids
/// are handed out). A floor keeps tiny budgets from rounding to zero.
const BUDGET_PARTS: usize = 48;
const MIN_PART_BUDGET: usize = 4 * 1024;

struct RowPart {
    key: PartKey,
    frame: SegFrame,
    pending: Vec<TaggedRow>,
}

/// Per-partition, segment-backed store of tagged rows.
pub(crate) struct RowStore {
    parts: Vec<RowPart>,
    /// `parts` index by key (kept sorted for the stats table).
    segment_rows: usize,
    spill: Option<(PathBuf, usize)>,
    cleanup: Option<PathBuf>,
    n_rows: usize,
}

const COLUMNS: usize = 18;

/// The ten optional metrics, in bitmask-bit order.
fn optionals(row: &RunRow) -> [Option<f64>; 10] {
    [
        row.per_socket,
        row.p100,
        row.p70,
        row.p20,
        row.rel60,
        row.rel70,
        row.rel80,
        row.rel90,
        row.idle_fraction,
        row.quotient,
    ]
}

fn vendor_code(v: CpuVendor) -> i64 {
    match v {
        CpuVendor::Intel => 0,
        CpuVendor::Amd => 1,
        CpuVendor::Other => 2,
    }
}

fn vendor_of(code: i64) -> CpuVendor {
    match code {
        0 => CpuVendor::Intel,
        1 => CpuVendor::Amd,
        _ => CpuVendor::Other,
    }
}

/// Encode tagged rows as an 18-column frame. Column order is the codec;
/// [`frame_rows`] is its exact inverse (bit-exact for every f64,
/// including `Some(NaN)` vs `None`, via the presence bitmask).
fn rows_to_frame(rows: &[TaggedRow]) -> Frame {
    let n = rows.len();
    let mut gidx = Vec::with_capacity(n);
    let mut comp = Vec::with_capacity(n);
    let mut hw_year = Vec::with_capacity(n);
    let mut frac_year = Vec::with_capacity(n);
    let mut vendor = Vec::with_capacity(n);
    let mut features = Vec::with_capacity(n);
    let mut present = Vec::with_capacity(n);
    let mut overall = Vec::with_capacity(n);
    let mut opts: [Vec<f64>; 10] = std::array::from_fn(|_| Vec::with_capacity(n));
    for (g, c, row) in rows {
        gidx.push(*g as i64);
        comp.push(*c);
        hw_year.push(row.hw_year as i64);
        frac_year.push(row.frac_year);
        vendor.push(vendor_code(row.vendor));
        features.push(row.features as i64);
        overall.push(row.overall);
        let mut mask = 0i64;
        for (bit, value) in optionals(row).into_iter().enumerate() {
            if let Some(v) = value {
                mask |= 1 << bit;
                opts[bit].push(v);
            } else {
                opts[bit].push(0.0);
            }
        }
        present.push(mask);
    }
    let [per_socket, p100, p70, p20, rel60, rel70, rel80, rel90, idle_fraction, quotient] = opts;
    let frame = Frame::from_columns([
        ("gidx", Column::I64(gidx)),
        ("comparable", Column::Bool(comp)),
        ("hw_year", Column::I64(hw_year)),
        ("frac_year", Column::F64(frac_year)),
        ("vendor", Column::I64(vendor)),
        ("features", Column::I64(features)),
        ("present", Column::I64(present)),
        ("overall", Column::F64(overall)),
        ("per_socket", Column::F64(per_socket)),
        ("p100", Column::F64(p100)),
        ("p70", Column::F64(p70)),
        ("p20", Column::F64(p20)),
        ("rel60", Column::F64(rel60)),
        ("rel70", Column::F64(rel70)),
        ("rel80", Column::F64(rel80)),
        ("rel90", Column::F64(rel90)),
        ("idle_fraction", Column::F64(idle_fraction)),
        ("quotient", Column::F64(quotient)),
    ])
    .expect("fresh frame");
    debug_assert_eq!(frame.n_cols(), COLUMNS);
    frame
}

/// Decode every row of one segment, appending those `keep` accepts.
fn frame_rows(
    frame: &Frame,
    keep: &impl Fn(&RunRow) -> bool,
    out: &mut Vec<TaggedRow>,
) -> tinyframe::Result<()> {
    let gidx = frame.i64s("gidx")?;
    let comp = frame.bools("comparable")?;
    let hw_year = frame.i64s("hw_year")?;
    let frac_year = frame.f64s("frac_year")?;
    let vendor = frame.i64s("vendor")?;
    let features = frame.i64s("features")?;
    let present = frame.i64s("present")?;
    let overall = frame.f64s("overall")?;
    let cols = [
        frame.f64s("per_socket")?,
        frame.f64s("p100")?,
        frame.f64s("p70")?,
        frame.f64s("p20")?,
        frame.f64s("rel60")?,
        frame.f64s("rel70")?,
        frame.f64s("rel80")?,
        frame.f64s("rel90")?,
        frame.f64s("idle_fraction")?,
        frame.f64s("quotient")?,
    ];
    for i in 0..frame.n_rows() {
        let mask = present[i];
        let opt = |bit: usize| -> Option<f64> {
            if mask & (1 << bit) != 0 {
                Some(cols[bit][i])
            } else {
                None
            }
        };
        let row = RunRow {
            hw_year: hw_year[i] as i32,
            frac_year: frac_year[i],
            vendor: vendor_of(vendor[i]),
            features: features[i] as u8,
            per_socket: opt(0),
            p100: opt(1),
            p70: opt(2),
            p20: opt(3),
            overall: overall[i],
            rel60: opt(4),
            rel70: opt(5),
            rel80: opt(6),
            rel90: opt(7),
            idle_fraction: opt(8),
            quotient: opt(9),
        };
        if keep(&row) {
            out.push((gidx[i] as u32, comp[i], row));
        }
    }
    Ok(())
}

impl RowStore {
    /// An empty store; partitions materialize as rows arrive.
    pub fn new(config: RowStoreConfig) -> tinyframe::Result<RowStore> {
        let cleanup = match (&config.spill, config.cleanup) {
            (Some((dir, _)), true) => Some(dir.clone()),
            _ => None,
        };
        Ok(RowStore {
            parts: Vec::new(),
            segment_rows: config.segment_rows.max(1),
            spill: config.spill,
            cleanup,
            n_rows: 0,
        })
    }

    fn part_index(&mut self, key: PartKey) -> tinyframe::Result<usize> {
        if let Some(i) = self.parts.iter().position(|p| p.key == key) {
            return Ok(i);
        }
        let mut frame = SegFrame::new(self.segment_rows);
        if let Some((dir, total)) = &self.spill {
            let budget = (total / BUDGET_PARTS).max(MIN_PART_BUDGET);
            let store = VfsSegmentStore::open_default(dir.join(key.label()))
                .map_err(|e| tinyframe::FrameError::Spill(format!("opening spill store: {e}")))?;
            frame.enable_spill(Arc::new(store), budget)?;
        }
        let at = self
            .parts
            .binary_search_by(|p| p.key.cmp(&key))
            .unwrap_err();
        self.parts.insert(
            at,
            RowPart {
                key,
                frame,
                pending: Vec::new(),
            },
        );
        Ok(at)
    }

    /// Append one tagged row to its partition.
    pub fn push(&mut self, key: PartKey, gidx: u32, comparable: bool, row: RunRow) -> tinyframe::Result<()> {
        let segment_rows = self.segment_rows;
        let i = self.part_index(key)?;
        let part = &mut self.parts[i];
        part.pending.push((gidx, comparable, row));
        self.n_rows += 1;
        if part.pending.len() >= segment_rows {
            let frame = rows_to_frame(&part.pending);
            part.pending.clear();
            part.frame.append_frame(frame)?;
        }
        Ok(())
    }

    /// Append a whole [`crate::stage::PartRows`] (the graph-mode build).
    pub fn push_part(&mut self, part: &crate::stage::PartRows) -> tinyframe::Result<()> {
        for ((&gidx, &comp), &row) in part.gidx.iter().zip(&part.comparable).zip(&part.rows) {
            self.push(part.key, gidx, comp, row)?;
        }
        Ok(())
    }

    /// Flush buffered rows into their segment frames. Queries do this
    /// implicitly; builds call it once at the end so `resident_bytes`
    /// reflects the sealed store.
    pub fn seal(&mut self) -> tinyframe::Result<()> {
        for part in &mut self.parts {
            if !part.pending.is_empty() {
                let frame = rows_to_frame(&part.pending);
                part.pending.clear();
                part.frame.append_frame(frame)?;
            }
        }
        Ok(())
    }

    /// Every row matching the filter, sorted by global corpus index —
    /// exactly the slice of the monolithic merged order the filter keeps.
    /// Partitions whose key cannot match are pruned without touching (or
    /// reloading) a single segment.
    pub fn query(
        &mut self,
        matches_key: impl Fn(&PartKey) -> bool,
        matches_row: impl Fn(&RunRow) -> bool,
    ) -> tinyframe::Result<Vec<TaggedRow>> {
        self.seal()?;
        let mut out = Vec::new();
        for part in &mut self.parts {
            if !matches_key(&part.key) {
                continue;
            }
            part.frame
                .for_each_segment(|seg| frame_rows(seg, &matches_row, &mut out))?;
        }
        out.sort_unstable_by_key(|t| t.0);
        Ok(out)
    }

    /// Total rows stored.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Partitions present.
    pub fn n_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Resident bytes across every partition: sealed segments currently
    /// in memory, plus each frame's open tail and this store's own
    /// pending row buffers (neither is a spill victim, but both occupy
    /// heap — a small store living entirely in tails must not read 0).
    pub fn resident_bytes(&self) -> usize {
        self.parts
            .iter()
            .map(|p| {
                p.frame.resident_bytes()
                    + p.frame.tail_bytes()
                    + p.pending.capacity() * std::mem::size_of::<TaggedRow>()
            })
            .sum()
    }

    /// Segments currently spilled across every partition.
    pub fn segments_spilled(&self) -> usize {
        self.parts.iter().map(|p| p.frame.segments_spilled()).sum()
    }
}

impl Drop for RowStore {
    fn drop(&mut self) {
        if let Some(dir) = self.cleanup.take() {
            // Release the spill handles before deleting their files.
            self.parts.clear();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row(i: u32) -> RunRow {
        RunRow {
            hw_year: 2010 + (i as i32 % 5),
            frac_year: 2010.5 + f64::from(i),
            vendor: match i % 3 {
                0 => CpuVendor::Intel,
                1 => CpuVendor::Amd,
                _ => CpuVendor::Other,
            },
            features: (i % 8) as u8,
            per_socket: (i % 2 == 0).then(|| 100.0 + f64::from(i)),
            p100: Some(f64::from(i) * 3.5),
            p70: None,
            p20: (i % 4 == 0).then(|| f64::from(i)),
            overall: if i % 7 == 0 {
                f64::INFINITY
            } else {
                1000.0 / (1.0 + f64::from(i))
            },
            rel60: Some(0.5),
            rel70: (i % 3 == 0).then_some(f64::NAN),
            rel80: None,
            rel90: Some(-0.25),
            idle_fraction: Some(0.31),
            quotient: None,
        }
    }

    fn key_of(row: &RunRow) -> PartKey {
        PartKey {
            year: row.hw_year,
            vendor: row.vendor,
        }
    }

    fn bits(v: Option<f64>) -> Option<u64> {
        v.map(f64::to_bits)
    }

    fn assert_rows_bit_equal(a: &RunRow, b: &RunRow) {
        assert_eq!(a.hw_year, b.hw_year);
        assert_eq!(a.frac_year.to_bits(), b.frac_year.to_bits());
        assert_eq!(a.vendor, b.vendor);
        assert_eq!(a.features, b.features);
        assert_eq!(a.overall.to_bits(), b.overall.to_bits());
        assert_eq!(bits(a.per_socket), bits(b.per_socket));
        assert_eq!(bits(a.p100), bits(b.p100));
        assert_eq!(bits(a.p70), bits(b.p70));
        assert_eq!(bits(a.p20), bits(b.p20));
        assert_eq!(bits(a.rel60), bits(b.rel60));
        assert_eq!(bits(a.rel70), bits(b.rel70));
        assert_eq!(bits(a.rel80), bits(b.rel80));
        assert_eq!(bits(a.rel90), bits(b.rel90));
        assert_eq!(bits(a.idle_fraction), bits(b.idle_fraction));
        assert_eq!(bits(a.quotient), bits(b.quotient));
    }

    #[test]
    fn roundtrip_is_bit_exact_including_nan_vs_none() {
        let rows: Vec<TaggedRow> = (0..50)
            .map(|i| (i * 3 + 1, i % 2 == 0, sample_row(i)))
            .collect();
        let mut store = RowStore::new(RowStoreConfig {
            segment_rows: 7,
            ..RowStoreConfig::default()
        })
        .unwrap();
        // Push out of gidx order across partitions.
        for (g, c, row) in rows.iter().rev() {
            store.push(key_of(row), *g, *c, *row).unwrap();
        }
        let got = store.query(|_| true, |_| true).unwrap();
        assert_eq!(got.len(), rows.len());
        for ((wg, wc, want), (gg, gc, got)) in rows.iter().zip(&got) {
            assert_eq!((wg, wc), (gg, gc));
            assert_rows_bit_equal(want, got);
        }
        // rel70 mixes Some(NaN) and None: the mask must tell them apart.
        assert!(got.iter().any(|(_, _, r)| r.rel70.is_some_and(f64::is_nan)));
        assert!(got.iter().any(|(_, _, r)| r.rel70.is_none()));
    }

    #[test]
    fn partition_pruning_and_row_filter_agree() {
        let mut store = RowStore::new(RowStoreConfig::default()).unwrap();
        for i in 0..60 {
            let row = sample_row(i);
            store.push(key_of(&row), i, true, row).unwrap();
        }
        let amd = store
            .query(
                |k| k.vendor == CpuVendor::Amd,
                |r| r.vendor == CpuVendor::Amd,
            )
            .unwrap();
        let unpruned = store
            .query(|_| true, |r| r.vendor == CpuVendor::Amd)
            .unwrap();
        assert_eq!(amd, unpruned, "pruning never changes the result");
        assert!(!amd.is_empty());
        assert!(amd.windows(2).all(|w| w[0].0 < w[1].0), "gidx-sorted");
    }

    #[test]
    fn spill_budget_is_respected_and_queries_stay_exact() {
        let dir = std::env::temp_dir().join("spec_rowstore_spill_test");
        let _ = std::fs::remove_dir_all(&dir);
        // One hot partition so its SegFrame seals far past its budget.
        let rows: Vec<TaggedRow> = (0..400)
            .map(|i| {
                let mut row = sample_row(i);
                row.hw_year = 2015;
                row.vendor = CpuVendor::Intel;
                (i, i % 3 == 0, row)
            })
            .collect();
        let mut store = RowStore::new(RowStoreConfig {
            segment_rows: 16,
            spill: Some((dir.clone(), 1)), // floor budget per partition
            cleanup: true,
        })
        .unwrap();
        for (g, c, row) in &rows {
            store.push(key_of(row), *g, *c, *row).unwrap();
        }
        store.seal().unwrap();
        assert!(store.segments_spilled() > 0, "tiny budget must spill");
        let got = store.query(|_| true, |_| true).unwrap();
        assert_eq!(got.len(), rows.len());
        for ((wg, _, want), (gg, _, got)) in rows.iter().zip(&got) {
            assert_eq!(wg, gg);
            assert_rows_bit_equal(want, got);
        }
        // Repeated queries reload under the same budget, not unboundedly.
        let again = store.query(|_| true, |_| true).unwrap();
        assert_eq!(again.len(), rows.len());
        assert!(store.segments_spilled() > 0, "budget still enforced");
        drop(store);
        assert!(!dir.exists(), "cleanup removes the spill scratch");
    }
}
