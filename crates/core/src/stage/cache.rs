//! Content-addressed, self-healing on-disk artifact cache.
//!
//! Every stage output is stored in one file under the cache root, named by
//! the hex of its *key* — an [`fnv128`] hash over (code version, stage id,
//! upstream artifact content hashes, stage parameters). The entry's header
//! carries the *content hash* of the payload; since PR 3 every read
//! verifies the **full payload** against that hash
//! ([`ArtifactCache::verified_hash`]), not just the 20-byte header, so a
//! torn or bit-rotted entry can never satisfy a warm run.
//!
//! Entry layout: `b"SPT1"` magic ‖ 16-byte content hash ‖ codec payload.
//!
//! The cache is *self-healing* and degrades gracefully instead of failing:
//!
//! * corrupt entries (bad magic, truncated header, checksum mismatch,
//!   undecodable payload) are moved to `<root>/quarantine/` with a
//!   `.reason` sidecar and read as misses — the driver recomputes;
//! * orphaned `*.tmp` files from crashed runs are swept into quarantine
//!   when the cache opens;
//! * unreadable entries and failed writes are counted in [`CacheHealth`]
//!   and otherwise ignored — a broken cache disk makes runs slower, never
//!   wrong, and never aborts the pipeline;
//! * writes are crash-durable: temp file → fsync → read-back verification
//!   → rename → parent-directory fsync (see [`spec_vfs::Vfs::atomic_write_with`]).
//!
//! All disk access goes through an injectable [`spec_vfs::Vfs`], so the
//! chaos suite can schedule EIO/ENOSPC/torn-write faults against every one
//! of these paths. `spec-trends doctor` exposes [`ArtifactCache::fsck`].

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use spec_diag::TrendsError;
use spec_obs as obs;
use spec_vfs::Vfs;

use super::codec::{decode_from_slice, encode_to_vec, Codec};

/// 128-bit stable content hash (FNV-1a).
///
/// `std::hash` is documented to be unstable across releases, so cache keys
/// use a hand-rolled FNV-1a 128 instead: the same bytes hash identically on
/// every build, which is what makes on-disk keys meaningful across runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hash128(pub u128);

impl Hash128 {
    /// Lower-case hex, fixed 32 chars — used as the cache file name.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Big-endian bytes for embedding in entry headers.
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    /// Inverse of [`Self::to_bytes`].
    pub fn from_bytes(bytes: [u8; 16]) -> Hash128 {
        Hash128(u128::from_be_bytes(bytes))
    }
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Streaming FNV-1a 128 hasher.
#[derive(Clone)]
pub struct Fnv128 {
    state: u128,
}

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128 { state: FNV_OFFSET }
    }
}

impl Fnv128 {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv128 {
        Fnv128::default()
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb a length-prefixed field, so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn update_field(&mut self, bytes: &[u8]) -> &mut Self {
        self.update(&(bytes.len() as u64).to_le_bytes());
        self.update(bytes)
    }

    /// The digest so far.
    pub fn finish(&self) -> Hash128 {
        Hash128(self.state)
    }
}

/// One-shot FNV-1a 128 of a byte slice.
pub fn fnv128(bytes: &[u8]) -> Hash128 {
    Fnv128::new().update(bytes).finish()
}

const MAGIC: &[u8; 4] = b"SPT1";
const HEADER_LEN: usize = 4 + 16;

/// Name of the quarantine subdirectory under the cache root.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Degradation counters: how often the cache had to absorb a fault.
/// All-zero on a healthy disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheHealth {
    /// Entries that could not be read (I/O error after retries) and were
    /// treated as misses.
    pub read_errors: usize,
    /// Stores that failed (ENOSPC, EIO, torn write detected) and were
    /// skipped — the pipeline continued uncached.
    pub write_errors: usize,
    /// Corrupt entries moved to quarantine.
    pub quarantined: usize,
    /// Orphaned `*.tmp` files swept at open.
    pub orphans_swept: usize,
}

impl CacheHealth {
    /// True when every counter is zero.
    pub fn is_clean(&self) -> bool {
        *self == CacheHealth::default()
    }
}

/// Outcome of [`ArtifactCache::fsck`]: how every file in a cache directory
/// was classified (and, for corrupt/orphaned ones, repaired by moving to
/// quarantine).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Entries whose magic, header and full-payload checksum all verify.
    pub healthy: usize,
    /// Entries quarantined by this pass: `(file name, reason)`.
    pub quarantined: Vec<(String, String)>,
    /// Orphaned `*.tmp` files from crashed runs, quarantined by this pass.
    pub orphaned: Vec<String>,
    /// Files already sitting in `quarantine/` before this pass.
    pub previously_quarantined: usize,
}

impl FsckReport {
    /// Render the report the way `spec-trends doctor` prints it.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("healthy entries:      {}\n", self.healthy));
        out.push_str(&format!(
            "quarantined now:      {}\n",
            self.quarantined.len()
        ));
        for (name, reason) in &self.quarantined {
            out.push_str(&format!("  - {name}: {reason}\n"));
        }
        out.push_str(&format!("orphaned temp files:  {}\n", self.orphaned.len()));
        for name in &self.orphaned {
            out.push_str(&format!("  - {name}\n"));
        }
        out.push_str(&format!(
            "quarantined earlier:  {}\n",
            self.previously_quarantined
        ));
        out
    }
}

/// Why an entry failed verification. Returned by the shared validator so
/// the load path and `fsck` quarantine with identical reasons.
fn entry_defect(bytes: &[u8]) -> Option<String> {
    if bytes.len() < HEADER_LEN {
        return Some(format!(
            "truncated header: {} of {HEADER_LEN} bytes",
            bytes.len()
        ));
    }
    if &bytes[..4] != MAGIC {
        return Some("bad magic (not an artifact entry)".to_string());
    }
    let mut hash = [0u8; 16];
    hash.copy_from_slice(&bytes[4..HEADER_LEN]);
    if fnv128(&bytes[HEADER_LEN..]) != Hash128::from_bytes(hash) {
        return Some("payload checksum mismatch (torn write or bit rot)".to_string());
    }
    None
}

/// The on-disk artifact store rooted at `--cache-dir`.
#[derive(Clone, Debug)]
pub struct ArtifactCache {
    root: PathBuf,
    vfs: Arc<dyn Vfs>,
    health: Arc<Mutex<CacheHealth>>,
}

impl ArtifactCache {
    /// Open (creating if needed) a cache rooted at `root` on the default
    /// (real, retrying) filesystem, sweeping any orphaned temp files left
    /// by a crashed run into quarantine.
    pub fn open(root: impl Into<PathBuf>) -> spec_diag::Result<ArtifactCache> {
        Self::open_with(root, spec_vfs::default_vfs())
    }

    /// [`Self::open`] on an explicit backend (fault injection in tests).
    pub fn open_with(
        root: impl Into<PathBuf>,
        vfs: Arc<dyn Vfs>,
    ) -> spec_diag::Result<ArtifactCache> {
        let cache = Self::open_no_sweep(root, vfs)?;
        cache.sweep_orphans();
        Ok(cache)
    }

    /// Open without the orphan sweep — `fsck` uses this so it can *report*
    /// the orphans it repairs.
    fn open_no_sweep(
        root: impl Into<PathBuf>,
        vfs: Arc<dyn Vfs>,
    ) -> spec_diag::Result<ArtifactCache> {
        let root = root.into();
        vfs.create_dir_all(&root)
            .map_err(|e| TrendsError::cache("cache", format!("create {}: {e}", root.display())))?;
        Ok(ArtifactCache {
            root,
            vfs,
            health: Arc::new(Mutex::new(CacheHealth::default())),
        })
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The filesystem backend this cache runs on.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// Snapshot of the degradation counters.
    pub fn health(&self) -> CacheHealth {
        *self.lock_health()
    }

    fn lock_health(&self) -> std::sync::MutexGuard<'_, CacheHealth> {
        match self.health.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn entry_path(&self, key: &Hash128) -> PathBuf {
        self.root.join(format!("{}.art", key.hex()))
    }

    /// The quarantine directory (created lazily).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join(QUARANTINE_DIR)
    }

    /// Move a defective file into quarantine and record why in a `.reason`
    /// sidecar. Best-effort: if even the move fails the file is deleted,
    /// and if that fails too the entry will simply be overwritten by the
    /// next store — quarantine never escalates an error.
    fn quarantine(&self, path: &Path, reason: &str) {
        let Some(name) = path.file_name() else {
            return;
        };
        let qdir = self.quarantine_dir();
        if self.vfs.create_dir_all(&qdir).is_err() {
            let _ = self.vfs.remove_file(path);
            return;
        }
        let dest = qdir.join(name);
        if self.vfs.rename(path, &dest).is_err() {
            let _ = self.vfs.remove_file(path);
        }
        let mut reason_name = name.to_os_string();
        reason_name.push(".reason");
        let _ = self.vfs.write(&qdir.join(reason_name), reason.as_bytes());
        self.lock_health().quarantined += 1;
        obs::count("cache.quarantined", 1);
    }

    /// Sweep `*.tmp` orphans left by crashed runs into quarantine.
    /// Returns how many were found. Best-effort, like all healing paths.
    pub fn sweep_orphans(&self) -> usize {
        let Ok(entries) = self.vfs.read_dir(&self.root) else {
            return 0;
        };
        let mut swept = 0;
        for path in entries {
            if path.extension().is_some_and(|ext| ext == "tmp") {
                self.quarantine(&path, "orphaned temp file from an interrupted run");
                swept += 1;
            }
        }
        self.lock_health().orphans_swept += swept;
        if swept > 0 {
            obs::count("cache.orphans_swept", swept as u64);
        }
        swept
    }

    /// Read and fully verify an entry, returning its raw payload and
    /// content hash. Misses, unreadable files (degradation) and
    /// quarantined corruption all read as `None`.
    fn read_entry(&self, key: &Hash128) -> Option<(Hash128, Vec<u8>)> {
        let path = self.entry_path(key);
        let bytes = match self.vfs.read_verified(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                obs::count("cache.miss", 1);
                return None;
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                // The file is shorter than its metadata says: a short read
                // or concurrent truncation. Quarantine and recompute.
                self.quarantine(&path, &format!("short read: {e}"));
                obs::count("cache.miss", 1);
                return None;
            }
            Err(_) => {
                // Unreadable (EIO after retries, permissions): leave it in
                // place for `doctor`, count the degradation, recompute.
                self.lock_health().read_errors += 1;
                obs::count("cache.read_error", 1);
                obs::count("cache.miss", 1);
                return None;
            }
        };
        if let Some(reason) = entry_defect(&bytes) {
            self.quarantine(&path, &reason);
            obs::count("cache.miss", 1);
            return None;
        }
        obs::count("cache.hit", 1);
        let mut hash = [0u8; 16];
        hash.copy_from_slice(&bytes[4..HEADER_LEN]);
        let mut payload = bytes;
        payload.drain(..HEADER_LEN);
        Some((Hash128::from_bytes(hash), payload))
    }

    /// The payload's content hash, after verifying the **entire payload**
    /// against the header checksum (not just peeking the header). Enough
    /// to derive downstream stage keys without decoding. `None` on miss,
    /// unreadable entry, or (quarantined) corruption.
    pub fn verified_hash(&self, key: &Hash128) -> Option<Hash128> {
        self.read_entry(key).map(|(hash, _)| hash)
    }

    /// Load and decode an entry. `None` on miss or any defect — corrupt
    /// and undecodable entries are quarantined and the caller recomputes.
    pub fn load<T: Codec>(&self, key: &Hash128) -> Option<(T, Hash128)> {
        let (content_hash, payload) = self.read_entry(key)?;
        match decode_from_slice::<T>(&payload) {
            Ok(value) => Some((value, content_hash)),
            Err(e) => {
                // Checksum-valid but undecodable: wrong artifact type or
                // version skew that slipped the key. Quarantine so the
                // next store starts clean.
                self.quarantine(
                    &self.entry_path(key),
                    &format!("undecodable payload: {e}"),
                );
                obs::count("cache.decode_error", 1);
                None
            }
        }
    }

    /// Encode and store an artifact under `key`; returns its content hash.
    /// Crash-durable: temp file → fsync → read-back verification → rename
    /// → parent-dir fsync. A failed store (ENOSPC, EIO, torn write) is
    /// counted in [`CacheHealth`] and otherwise ignored — the pipeline
    /// continues uncached rather than aborting.
    pub fn store<T: Codec>(&self, key: &Hash128, value: &T) -> Hash128 {
        self.store_encoded(key, &encode_to_vec(value))
    }

    /// [`Self::store`] for an already-encoded payload. The driver encodes
    /// each artifact exactly once (for sizing and hashing) and hands the
    /// bytes here, so instrumentation never doubles the encode cost.
    pub fn store_encoded(&self, key: &Hash128, payload: &[u8]) -> Hash128 {
        let content_hash = fnv128(payload);
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&content_hash.to_bytes());
        bytes.extend_from_slice(payload);
        let path = self.entry_path(key);
        let tmp = self.root.join(format!(".{}.tmp", key.hex()));
        if self.vfs.atomic_write_with(&tmp, &path, &bytes).is_err() {
            self.lock_health().write_errors += 1;
            obs::count("cache.write_error", 1);
        } else {
            obs::count("cache.store", 1);
            obs::count("cache.store_bytes", payload.len() as u64);
        }
        content_hash
    }

    /// Number of entries currently stored (for tests and `explain`).
    pub fn len(&self) -> spec_diag::Result<usize> {
        let entries = self
            .vfs
            .read_dir(&self.root)
            .map_err(|e| TrendsError::cache("cache", format!("list cache: {e}")))?;
        Ok(entries
            .iter()
            .filter(|p| p.extension().is_some_and(|ext| ext == "art"))
            .count())
    }

    /// True when no artifacts are stored.
    pub fn is_empty(&self) -> spec_diag::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// fsck a cache directory on the default backend: verify every entry's
    /// magic, header and full-payload checksum, quarantine defects and
    /// orphaned temp files, and report the classification. This is
    /// `spec-trends doctor`.
    pub fn fsck(root: impl Into<PathBuf>) -> spec_diag::Result<FsckReport> {
        Self::fsck_with(root, spec_vfs::default_vfs())
    }

    /// [`Self::fsck`] on an explicit backend.
    pub fn fsck_with(root: impl Into<PathBuf>, vfs: Arc<dyn Vfs>) -> spec_diag::Result<FsckReport> {
        let cache = Self::open_no_sweep(root, vfs)?;
        let entries = cache
            .vfs
            .read_dir(&cache.root)
            .map_err(|e| TrendsError::cache("doctor", format!("list cache: {e}")))?;
        let mut report = FsckReport::default();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.extension().is_some_and(|ext| ext == "tmp") {
                cache.quarantine(&path, "orphaned temp file from an interrupted run");
                report.orphaned.push(name);
                continue;
            }
            if path.extension().is_none_or(|ext| ext != "art") {
                continue;
            }
            match cache.vfs.read_verified(&path) {
                Ok(bytes) => match entry_defect(&bytes) {
                    None => report.healthy += 1,
                    Some(reason) => {
                        cache.quarantine(&path, &reason);
                        report.quarantined.push((name, reason));
                    }
                },
                Err(e) => {
                    let reason = format!("unreadable: {e}");
                    cache.quarantine(&path, &reason);
                    report.quarantined.push((name, reason));
                }
            }
        }
        if let Ok(q) = cache.vfs.read_dir(&cache.quarantine_dir()) {
            report.previously_quarantined = q
                .iter()
                .filter(|p| p.extension().is_some_and(|ext| ext == "art"))
                .count()
                .saturating_sub(
                    report.quarantined.len()
                        + report
                            .orphaned
                            .iter()
                            .filter(|n| n.ends_with(".art"))
                            .count(),
                );
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_vfs::RealVfs;

    fn tmp_cache(name: &str) -> ArtifactCache {
        let dir = std::env::temp_dir().join(format!("spec_cache_test_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::open_with(dir, Arc::new(RealVfs)).unwrap()
    }

    fn cleanup(cache: &ArtifactCache) {
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn fnv_is_stable() {
        // Reference value pinned so the on-disk format can never silently
        // drift: changing the hash breaks every existing cache.
        assert_eq!(
            fnv128(b"hello").hex(),
            "e3e1efd54283d94f7081314b599d31b3"
        );
        assert_eq!(fnv128(b"").0, FNV_OFFSET);
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
    }

    #[test]
    fn field_framing_distinguishes_splits() {
        let mut a = Fnv128::new();
        a.update_field(b"ab").update_field(b"c");
        let mut b = Fnv128::new();
        b.update_field(b"a").update_field(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn store_load_verify_roundtrip() {
        let cache = tmp_cache("roundtrip");
        let key = fnv128(b"stage-key");
        assert_eq!(cache.verified_hash(&key), None);
        assert!(cache.load::<Vec<u32>>(&key).is_none());

        let value: Vec<u32> = vec![1, 2, 3];
        let stored_hash = cache.store(&key, &value);
        assert_eq!(cache.verified_hash(&key), Some(stored_hash));
        let (loaded, loaded_hash) = cache.load::<Vec<u32>>(&key).unwrap();
        assert_eq!(loaded, value);
        assert_eq!(loaded_hash, stored_hash);
        assert_eq!(cache.len().unwrap(), 1);
        assert!(cache.health().is_clean());
        cleanup(&cache);
    }

    #[test]
    fn corrupt_entries_are_quarantined_with_reasons() {
        let cache = tmp_cache("corrupt");
        let vfs = cache.vfs().clone();
        let key = fnv128(b"k");
        cache.store(&key, &vec![7u32]);
        let path = cache.root().join(format!("{}.art", key.hex()));

        // Flip a payload byte: full-payload checksum mismatch → quarantine.
        let mut bytes = vfs.read_verified(&path).expect("entry readable");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        vfs.write(&path, &bytes).expect("rewrite corrupted entry");
        assert!(cache.load::<Vec<u32>>(&key).is_none());
        let qdir = cache.quarantine_dir();
        let qfile = qdir.join(format!("{}.art", key.hex()));
        assert!(qfile.exists(), "corrupt entry moved to quarantine");
        let reason = vfs
            .read_to_string(&qdir.join(format!("{}.art.reason", key.hex())))
            .expect("reason sidecar written");
        assert!(reason.contains("checksum mismatch"), "{reason}");
        assert_eq!(cache.health().quarantined, 1);

        // Bad magic → quarantined likewise, for both load and verify.
        cache.store(&key, &vec![7u32]);
        vfs.write(&path, b"JUNKxxxxxxxxxxxxxxxxxxxx").expect("bad magic");
        assert!(cache.load::<Vec<u32>>(&key).is_none());
        assert_eq!(cache.verified_hash(&key), None);

        // Recompute path: store overwrites, entry healthy again.
        cache.store(&key, &vec![7u32]);
        assert!(cache.load::<Vec<u32>>(&key).is_some());
        cleanup(&cache);
    }

    #[test]
    fn torn_payload_fails_full_verification() {
        // A torn write that kept the header intact passes the old 20-byte
        // peek but must fail the full-payload verification.
        let cache = tmp_cache("torn");
        let vfs = cache.vfs().clone();
        let key = fnv128(b"k");
        cache.store(&key, &vec![1u32, 2, 3, 4, 5, 6, 7, 8]);
        let path = cache.root().join(format!("{}.art", key.hex()));
        let bytes = vfs.read_verified(&path).expect("entry readable");
        assert!(bytes.len() > HEADER_LEN + 4);
        vfs.write(&path, &bytes[..HEADER_LEN + 4]).expect("tear");
        assert_eq!(cache.verified_hash(&key), None, "torn entry must not verify");
        assert!(cache
            .quarantine_dir()
            .join(format!("{}.art", key.hex()))
            .exists());
        cleanup(&cache);
    }

    #[test]
    fn truncated_header_is_quarantined() {
        let cache = tmp_cache("trunc_header");
        let vfs = cache.vfs().clone();
        let key = fnv128(b"k");
        cache.store(&key, &vec![9u32]);
        let path = cache.root().join(format!("{}.art", key.hex()));
        vfs.write(&path, b"SPT1\x00\x01").expect("truncate inside header");
        assert!(cache.load::<Vec<u32>>(&key).is_none());
        let reason = vfs
            .read_to_string(
                &cache
                    .quarantine_dir()
                    .join(format!("{}.art.reason", key.hex())),
            )
            .expect("reason sidecar");
        assert!(reason.contains("truncated header"), "{reason}");
        cleanup(&cache);
    }

    #[test]
    fn wrong_type_decode_is_quarantined_miss() {
        let cache = tmp_cache("wrong_type");
        let key = fnv128(b"k");
        cache.store(&key, &"text".to_string());
        // Decoding a String entry as Vec<u64> must fail cleanly (the length
        // prefix reads as a huge vec length), not panic or alias.
        assert!(cache.load::<Vec<u64>>(&key).is_none());
        assert_eq!(cache.health().quarantined, 1);
        cleanup(&cache);
    }

    #[test]
    fn open_sweeps_orphaned_tmp_files() {
        let dir = std::env::temp_dir().join("spec_cache_test_orphans");
        let _ = std::fs::remove_dir_all(&dir);
        let vfs: Arc<dyn Vfs> = Arc::new(RealVfs);
        vfs.create_dir_all(&dir).expect("mk cache dir");
        vfs.write(&dir.join(".deadbeef.tmp"), b"half-written")
            .expect("plant orphan");
        let cache = ArtifactCache::open_with(&dir, vfs.clone()).unwrap();
        assert_eq!(cache.health().orphans_swept, 1);
        assert!(!dir.join(".deadbeef.tmp").exists(), "orphan gone from root");
        assert!(
            cache.quarantine_dir().join(".deadbeef.tmp").exists(),
            "orphan preserved in quarantine for inspection"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_survives_write_faults_by_degrading() {
        use spec_vfs::{FaultKind, FaultVfs, OpKind};
        let dir = std::env::temp_dir().join("spec_cache_test_enospc");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let fault: Arc<dyn Vfs> = Arc::new(
            FaultVfs::new(Arc::new(RealVfs)).with_fault(OpKind::Write, 0, FaultKind::Enospc),
        );
        let cache = ArtifactCache::open_with(&dir, fault).unwrap();
        let key = fnv128(b"k");
        let hash = cache.store(&key, &vec![1u32]);
        assert_eq!(cache.health().write_errors, 1, "ENOSPC absorbed");
        assert_eq!(hash, fnv128(&encode_to_vec(&vec![1u32])), "hash still exact");
        assert!(cache.load::<Vec<u32>>(&key).is_none(), "nothing stored");
        // A later store on a healthy disk succeeds.
        cache.store(&key, &vec![1u32]);
        assert!(cache.load::<Vec<u32>>(&key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_classifies_healthy_torn_and_orphaned() {
        let cache = tmp_cache("fsck");
        let vfs = cache.vfs().clone();
        let good = fnv128(b"good");
        let torn = fnv128(b"torn");
        cache.store(&good, &vec![1u32, 2, 3]);
        cache.store(&torn, &vec![4u32, 5, 6, 7, 8, 9, 10, 11]);
        let torn_path = cache.root().join(format!("{}.art", torn.hex()));
        let bytes = vfs.read_verified(&torn_path).expect("entry readable");
        vfs.write(&torn_path, &bytes[..HEADER_LEN + 2]).expect("tear");
        vfs.write(&cache.root().join(".feed.tmp"), b"orphan")
            .expect("plant orphan");

        let report = ArtifactCache::fsck_with(cache.root(), vfs.clone()).unwrap();
        assert_eq!(report.healthy, 1);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, format!("{}.art", torn.hex()));
        assert!(report.quarantined[0].1.contains("checksum mismatch"));
        assert_eq!(report.orphaned, vec![".feed.tmp".to_string()]);

        let text = report.to_text();
        assert!(text.contains("healthy entries:      1"), "{text}");
        assert!(text.contains("orphaned temp files:  1"), "{text}");

        // Second pass: everything already repaired.
        let again = ArtifactCache::fsck_with(cache.root(), vfs).unwrap();
        assert_eq!(again.healthy, 1);
        assert!(again.quarantined.is_empty());
        assert!(again.orphaned.is_empty());
        assert_eq!(again.previously_quarantined, 1);
        cleanup(&cache);
    }

    #[test]
    fn store_is_durable_through_the_vfs_sync_protocol() {
        use spec_vfs::{FaultVfs, OpKind};
        let dir = std::env::temp_dir().join("spec_cache_test_durable");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let fault = Arc::new(FaultVfs::new(Arc::new(RealVfs)));
        let cache = ArtifactCache::open_with(&dir, fault.clone()).unwrap();
        cache.store(&fnv128(b"k"), &vec![1u32]);
        // The write path must fsync the temp file AND the parent directory
        // around the rename — that is what makes the rename crash-durable.
        assert_eq!(fault.op_count(OpKind::SyncFile), 1, "temp file fsynced");
        assert_eq!(fault.op_count(OpKind::SyncDir), 1, "parent dir fsynced");
        assert_eq!(fault.op_count(OpKind::Rename), 1);
        let trace = fault.trace();
        let order: Vec<OpKind> = trace
            .iter()
            .map(|t| t.op)
            .filter(|o| {
                matches!(
                    o,
                    OpKind::Write | OpKind::SyncFile | OpKind::Rename | OpKind::SyncDir
                )
            })
            .collect();
        assert_eq!(
            order,
            vec![OpKind::Write, OpKind::SyncFile, OpKind::Rename, OpKind::SyncDir],
            "fsync file before rename, fsync dir after"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
