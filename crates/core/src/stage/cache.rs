//! Content-addressed on-disk artifact cache.
//!
//! Every stage output is stored in one file under the cache root, named by
//! the hex of its *key* — an [`fnv128`] hash over (code version, stage id,
//! upstream artifact content hashes, stage parameters). The entry's header
//! carries the *content hash* of the payload, so a warm run can derive
//! downstream keys by reading 20-byte headers ([`ArtifactCache::peek_hash`])
//! without decoding — or even reading — the payloads themselves.
//!
//! Entry layout: `b"SPT1"` magic ‖ 16-byte content hash ‖ codec payload.
//! Writes go through a temp file + rename, so a crashed run never leaves a
//! torn entry behind; malformed entries read as misses and are recomputed.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use spec_diag::TrendsError;

use super::codec::{decode_from_slice, encode_to_vec, Codec};

/// 128-bit stable content hash (FNV-1a).
///
/// `std::hash` is documented to be unstable across releases, so cache keys
/// use a hand-rolled FNV-1a 128 instead: the same bytes hash identically on
/// every build, which is what makes on-disk keys meaningful across runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hash128(pub u128);

impl Hash128 {
    /// Lower-case hex, fixed 32 chars — used as the cache file name.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Big-endian bytes for embedding in entry headers.
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    /// Inverse of [`Self::to_bytes`].
    pub fn from_bytes(bytes: [u8; 16]) -> Hash128 {
        Hash128(u128::from_be_bytes(bytes))
    }
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Streaming FNV-1a 128 hasher.
#[derive(Clone)]
pub struct Fnv128 {
    state: u128,
}

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128 { state: FNV_OFFSET }
    }
}

impl Fnv128 {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv128 {
        Fnv128::default()
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb a length-prefixed field, so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn update_field(&mut self, bytes: &[u8]) -> &mut Self {
        self.update(&(bytes.len() as u64).to_le_bytes());
        self.update(bytes)
    }

    /// The digest so far.
    pub fn finish(&self) -> Hash128 {
        Hash128(self.state)
    }
}

/// One-shot FNV-1a 128 of a byte slice.
pub fn fnv128(bytes: &[u8]) -> Hash128 {
    Fnv128::new().update(bytes).finish()
}

const MAGIC: &[u8; 4] = b"SPT1";
const HEADER_LEN: usize = 4 + 16;

/// The on-disk artifact store rooted at `--cache-dir`.
#[derive(Clone, Debug)]
pub struct ArtifactCache {
    root: PathBuf,
}

impl ArtifactCache {
    /// Open (creating if needed) a cache rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> spec_diag::Result<ArtifactCache> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| TrendsError::cache("cache", format!("create {}: {e}", root.display())))?;
        Ok(ArtifactCache { root })
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, key: &Hash128) -> PathBuf {
        self.root.join(format!("{}.art", key.hex()))
    }

    /// Read only an entry's header and return the payload's content hash —
    /// enough to derive downstream stage keys without decoding the payload.
    /// `Ok(None)` on miss or malformed entry.
    pub fn peek_hash(&self, key: &Hash128) -> spec_diag::Result<Option<Hash128>> {
        let path = self.entry_path(key);
        let mut file = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(
                    TrendsError::cache("cache", format!("open {}: {e}", path.display()))
                )
            }
        };
        let mut header = [0u8; HEADER_LEN];
        if file.read_exact(&mut header).is_err() || &header[..4] != MAGIC {
            return Ok(None);
        }
        let mut hash = [0u8; 16];
        hash.copy_from_slice(&header[4..]);
        Ok(Some(Hash128::from_bytes(hash)))
    }

    /// Load and decode an entry. `Ok(None)` on miss or any malformed entry
    /// (bad magic, hash mismatch, codec failure) — the caller recomputes
    /// and overwrites.
    pub fn load<T: Codec>(&self, key: &Hash128) -> spec_diag::Result<Option<(T, Hash128)>> {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(
                    TrendsError::cache("cache", format!("read {}: {e}", path.display()))
                )
            }
        };
        if bytes.len() < HEADER_LEN || &bytes[..4] != MAGIC {
            return Ok(None);
        }
        let mut hash = [0u8; 16];
        hash.copy_from_slice(&bytes[4..HEADER_LEN]);
        let content_hash = Hash128::from_bytes(hash);
        let payload = &bytes[HEADER_LEN..];
        if fnv128(payload) != content_hash {
            return Ok(None);
        }
        match decode_from_slice::<T>(payload) {
            Ok(value) => Ok(Some((value, content_hash))),
            Err(_) => Ok(None),
        }
    }

    /// Encode and store an artifact under `key`; returns its content hash.
    /// Atomic: written to a temp file first, then renamed into place.
    pub fn store<T: Codec>(&self, key: &Hash128, value: &T) -> spec_diag::Result<Hash128> {
        let payload = encode_to_vec(value);
        let content_hash = fnv128(&payload);
        let path = self.entry_path(key);
        let tmp = self.root.join(format!(".{}.tmp", key.hex()));
        let write = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(MAGIC)?;
            file.write_all(&content_hash.to_bytes())?;
            file.write_all(&payload)?;
            file.sync_all()?;
            std::fs::rename(&tmp, &path)
        };
        write().map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            TrendsError::cache("cache", format!("write {}: {e}", path.display()))
        })?;
        Ok(content_hash)
    }

    /// Number of entries currently stored (for tests and `explain`).
    pub fn len(&self) -> spec_diag::Result<usize> {
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| TrendsError::cache("cache", format!("list cache: {e}")))?;
        let mut n = 0;
        for entry in entries {
            let entry =
                entry.map_err(|e| TrendsError::cache("cache", format!("list cache: {e}")))?;
            if entry.path().extension().is_some_and(|ext| ext == "art") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// True when no artifacts are stored.
    pub fn is_empty(&self) -> spec_diag::Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cache(name: &str) -> ArtifactCache {
        let dir = std::env::temp_dir().join(format!("spec_cache_test_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::open(dir).unwrap()
    }

    #[test]
    fn fnv_is_stable() {
        // Reference value pinned so the on-disk format can never silently
        // drift: changing the hash breaks every existing cache.
        assert_eq!(
            fnv128(b"hello").hex(),
            "e3e1efd54283d94f7081314b599d31b3"
        );
        assert_eq!(fnv128(b"").0, FNV_OFFSET);
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
    }

    #[test]
    fn field_framing_distinguishes_splits() {
        let mut a = Fnv128::new();
        a.update_field(b"ab").update_field(b"c");
        let mut b = Fnv128::new();
        b.update_field(b"a").update_field(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn store_load_peek_roundtrip() {
        let cache = tmp_cache("roundtrip");
        let key = fnv128(b"stage-key");
        assert_eq!(cache.peek_hash(&key).unwrap(), None);
        assert!(cache.load::<Vec<u32>>(&key).unwrap().is_none());

        let value: Vec<u32> = vec![1, 2, 3];
        let stored_hash = cache.store(&key, &value).unwrap();
        assert_eq!(cache.peek_hash(&key).unwrap(), Some(stored_hash));
        let (loaded, loaded_hash) = cache.load::<Vec<u32>>(&key).unwrap().unwrap();
        assert_eq!(loaded, value);
        assert_eq!(loaded_hash, stored_hash);
        assert_eq!(cache.len().unwrap(), 1);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let cache = tmp_cache("corrupt");
        let key = fnv128(b"k");
        cache.store(&key, &vec![7u32]).unwrap();
        let path = cache.root().join(format!("{}.art", key.hex()));

        // Flip a payload byte: content hash mismatch → miss.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.load::<Vec<u32>>(&key).unwrap().is_none());

        // Bad magic → miss, for both load and peek.
        std::fs::write(&path, b"JUNKxxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(cache.load::<Vec<u32>>(&key).unwrap().is_none());
        assert_eq!(cache.peek_hash(&key).unwrap(), None);

        // Recompute path: store overwrites the bad entry.
        cache.store(&key, &vec![7u32]).unwrap();
        assert!(cache.load::<Vec<u32>>(&key).unwrap().is_some());
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn wrong_type_decode_is_a_miss() {
        let cache = tmp_cache("wrong_type");
        let key = fnv128(b"k");
        cache.store(&key, &"text".to_string()).unwrap();
        // Decoding a String entry as Vec<u64> must fail cleanly (the length
        // prefix reads as a huge vec length), not panic or alias.
        assert!(cache.load::<Vec<u64>>(&key).unwrap().is_none());
        let _ = std::fs::remove_dir_all(cache.root());
    }
}
