//! Exact binary codec for cached artifacts.
//!
//! The vendored `serde` is a no-op marker crate, so artifacts are encoded
//! with a small hand-rolled binary format instead. Two properties matter:
//!
//! * **bit-exactness** — `f64` round-trips through [`f64::to_bits`], so a
//!   decoded artifact is indistinguishable from the freshly computed one
//!   (including `NaN` payloads); cache hits are byte-identical to cold runs;
//! * **stability** — the byte layout is explicit little-endian with length
//!   prefixes and never depends on `std` hashing or struct memory layout.
//!
//! Decoding is defensive: every read is bounds-checked and enum tags are
//! validated, so a corrupt or stale cache entry yields a [`CodecError`]
//! (treated as a cache miss by the driver) rather than garbage data.

use std::collections::BTreeMap;
use std::fmt;

use spec_format::{ComparabilityIssue, ParseFailure, ValidityIssue};
use spec_model::{
    Cpu, JvmInfo, LevelMeasurement, LoadLevel, Megahertz, OpsPerWatt, OsInfo, RunDates, RunResult,
    RunStatus, SsjOps, SystemConfig, Watts, YearMonth,
};
use tinystats::{BoxStats, CorrelationMatrix, LinearFit, MannKendall, TheilSen};

use crate::correlation::{IdleCorrelationReport, VendorStats};
use crate::figures::common::RunRow;
use crate::figures::{fig1, fig2, fig3, fig4, fig5, fig6};
use crate::pipeline::{FilterReport, ParseFailureRecord};
use crate::proportionality::EpTrend;
use crate::table1::{Table1, Table1Entry};

/// Decoding failure: the buffer does not contain a valid artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn bad(detail: impl Into<String>) -> CodecError {
    CodecError(detail.into())
}

/// Append-only encode buffer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty buffer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked decode cursor.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad(format!("unexpected end of buffer at offset {}", self.pos)))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Error unless every byte was consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad(format!(
                "{} trailing bytes after artifact",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// Exact binary encode/decode for one artifact type.
pub trait Codec: Sized {
    /// Append this value to the buffer.
    fn encode(&self, w: &mut Writer);
    /// Decode one value from the cursor.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// Encode a value into a standalone byte vector.
pub fn encode_to_vec<T: Codec>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decode a value from a standalone byte vector, requiring full consumption.
pub fn decode_from_slice<T: Codec>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

macro_rules! int_codec {
    ($($ty:ty),*) => {$(
        impl Codec for $ty {
            fn encode(&self, w: &mut Writer) {
                w.buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                let bytes = r.take(std::mem::size_of::<$ty>())?;
                let mut arr = [0u8; std::mem::size_of::<$ty>()];
                arr.copy_from_slice(bytes);
                Ok(<$ty>::from_le_bytes(arr))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i32, i64);

impl Codec for usize {
    fn encode(&self, w: &mut Writer) {
        (*self as u64).encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| bad(format!("usize overflow: {v}")))
    }
}

impl Codec for f64 {
    fn encode(&self, w: &mut Writer) {
        self.to_bits().encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Codec for bool {
    fn encode(&self, w: &mut Writer) {
        (*self as u8).encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(bad(format!("invalid bool tag {t}"))),
        }
    }
}

impl Codec for String {
    fn encode(&self, w: &mut Writer) {
        self.len().encode(w);
        w.buf.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = usize::decode(r)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("string is not UTF-8"))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => 0u8.encode(w),
            Some(v) => {
                1u8.encode(w);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(bad(format!("invalid Option tag {t}"))),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        self.len().encode(w);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = usize::decode(r)?;
        // Guard against absurd lengths from corrupt buffers before
        // allocating: each element takes at least one byte.
        if len > r.buf.len().saturating_sub(r.pos) {
            return Err(bad(format!("vec length {len} exceeds remaining buffer")));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<K: Codec + Ord, V: Codec> Codec for BTreeMap<K, V> {
    fn encode(&self, w: &mut Writer) {
        self.len().encode(w);
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = usize::decode(r)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------- model ---

macro_rules! unit_codec {
    ($($ty:ident),*) => {$(
        impl Codec for $ty {
            fn encode(&self, w: &mut Writer) {
                self.0.encode(w);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok($ty(f64::decode(r)?))
            }
        }
    )*};
}

unit_codec!(Watts, SsjOps, OpsPerWatt, Megahertz);

impl Codec for YearMonth {
    fn encode(&self, w: &mut Writer) {
        self.year().encode(w);
        self.month().encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let year = i32::decode(r)?;
        let month = u8::decode(r)?;
        YearMonth::new(year, month).map_err(|e| bad(format!("invalid date {year}-{month}: {e:?}")))
    }
}

impl Codec for LoadLevel {
    fn encode(&self, w: &mut Writer) {
        match self {
            LoadLevel::Percent(p) => {
                0u8.encode(w);
                p.encode(w);
            }
            LoadLevel::ActiveIdle => 1u8.encode(w),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(LoadLevel::Percent(u8::decode(r)?)),
            1 => Ok(LoadLevel::ActiveIdle),
            t => Err(bad(format!("invalid LoadLevel tag {t}"))),
        }
    }
}

impl Codec for RunStatus {
    fn encode(&self, w: &mut Writer) {
        match self {
            RunStatus::Accepted => 0u8.encode(w),
            RunStatus::NotAccepted(reason) => {
                1u8.encode(w);
                reason.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(RunStatus::Accepted),
            1 => Ok(RunStatus::NotAccepted(String::decode(r)?)),
            t => Err(bad(format!("invalid RunStatus tag {t}"))),
        }
    }
}

impl Codec for spec_model::CpuVendor {
    fn encode(&self, w: &mut Writer) {
        let tag: u8 = match self {
            spec_model::CpuVendor::Intel => 0,
            spec_model::CpuVendor::Amd => 1,
            spec_model::CpuVendor::Other => 2,
        };
        tag.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(spec_model::CpuVendor::Intel),
            1 => Ok(spec_model::CpuVendor::Amd),
            2 => Ok(spec_model::CpuVendor::Other),
            t => Err(bad(format!("invalid CpuVendor tag {t}"))),
        }
    }
}

macro_rules! struct_codec {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl Codec for $ty {
            fn encode(&self, w: &mut Writer) {
                $(self.$field.encode(w);)+
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok(Self {
                    $($field: Codec::decode(r)?,)+
                })
            }
        }
    };
}

struct_codec!(Cpu {
    name,
    microarchitecture,
    nominal,
    max_boost,
    cores_per_chip,
    threads_per_core,
    tdp,
    vector_bits,
});

impl Codec for OsInfo {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(OsInfo::new(String::decode(r)?))
    }
}

struct_codec!(JvmInfo { vendor, version });

struct_codec!(SystemConfig {
    manufacturer,
    model,
    form_factor,
    nodes,
    chips,
    cpu,
    memory_gb,
    dimm_count,
    psu_rating,
    psu_count,
    os,
    jvm,
    jvm_instances,
});

struct_codec!(RunDates {
    test,
    publication,
    hw_available,
    sw_available,
});

struct_codec!(LevelMeasurement {
    level,
    target_ops,
    actual_ops,
    avg_power,
});

struct_codec!(RunResult {
    id,
    submitter,
    system,
    dates,
    status,
    calibrated_max,
    levels,
    reported_overall,
});

// --------------------------------------------------------------- format ---

impl Codec for ValidityIssue {
    fn encode(&self, w: &mut Writer) {
        let tag: u8 = match self {
            ValidityIssue::NotAccepted => 0,
            ValidityIssue::AmbiguousDate => 1,
            ValidityIssue::ImplausibleDate => 2,
            ValidityIssue::AmbiguousCpuName => 3,
            ValidityIssue::MissingNodeCount => 4,
            ValidityIssue::InconsistentCoreThread => 5,
            ValidityIssue::ImplausibleCoreThread => 6,
            ValidityIssue::Malformed => 7,
        };
        tag.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match u8::decode(r)? {
            0 => ValidityIssue::NotAccepted,
            1 => ValidityIssue::AmbiguousDate,
            2 => ValidityIssue::ImplausibleDate,
            3 => ValidityIssue::AmbiguousCpuName,
            4 => ValidityIssue::MissingNodeCount,
            5 => ValidityIssue::InconsistentCoreThread,
            6 => ValidityIssue::ImplausibleCoreThread,
            7 => ValidityIssue::Malformed,
            t => return Err(bad(format!("invalid ValidityIssue tag {t}"))),
        })
    }
}

impl Codec for ComparabilityIssue {
    fn encode(&self, w: &mut Writer) {
        let tag: u8 = match self {
            ComparabilityIssue::NonX86Vendor => 0,
            ComparabilityIssue::NotServerClass => 1,
            ComparabilityIssue::ExcludedTopology => 2,
        };
        tag.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match u8::decode(r)? {
            0 => ComparabilityIssue::NonX86Vendor,
            1 => ComparabilityIssue::NotServerClass,
            2 => ComparabilityIssue::ExcludedTopology,
            t => return Err(bad(format!("invalid ComparabilityIssue tag {t}"))),
        })
    }
}

/// Decode a string that must match one entry of a static interning table
/// (used for `&'static str` fields). Unknown strings — e.g. from a cache
/// written by a different code version — are a decode error, which the
/// driver treats as a miss.
fn intern(s: &str, table: &[&'static str]) -> Result<&'static str, CodecError> {
    table
        .iter()
        .copied()
        .find(|&t| t == s)
        .ok_or_else(|| bad(format!("unknown interned string {s:?}")))
}

impl Codec for ParseFailure {
    fn encode(&self, w: &mut Writer) {
        self.category.to_string().encode(w);
        self.detail.encode(w);
        self.line.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let category = String::decode(r)?;
        Ok(ParseFailure {
            category: intern(&category, &spec_format::parser::PARSE_FAILURE_CATEGORIES)?,
            detail: String::decode(r)?,
            line: Option::<u32>::decode(r)?,
        })
    }
}

struct_codec!(ParseFailureRecord {
    index,
    origin,
    failure,
});

impl Codec for crate::pipeline::RawInput {
    fn encode(&self, w: &mut Writer) {
        use crate::pipeline::RawInput;
        // `Shared` encodes byte-identically to `Text` (and decodes back as
        // `Text`): the zero-copy representation is an in-memory detail and
        // must not perturb content hashes or cached artifacts.
        match self {
            RawInput::Text(t) => {
                0u8.encode(w);
                t.encode(w);
            }
            RawInput::Shared(t) => {
                0u8.encode(w);
                t.len().encode(w);
                w.buf.extend_from_slice(t.as_str().as_bytes());
            }
            RawInput::IoError(e) => {
                1u8.encode(w);
                e.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        use crate::pipeline::RawInput;
        match u8::decode(r)? {
            0 => Ok(RawInput::Text(String::decode(r)?)),
            1 => Ok(RawInput::IoError(String::decode(r)?)),
            t => Err(bad(format!("invalid RawInput tag {t}"))),
        }
    }
}

struct_codec!(FilterReport {
    raw,
    not_reports,
    parse_failures,
    stage1,
    valid,
    stage2,
    comparable,
});

// ------------------------------------------- dictionary-encoded runs ---

impl Codec for spec_intern::Sym {
    /// A `Sym` encodes as its **resolved string**, never its token value:
    /// token numerics depend on intern order within one process and must
    /// not leak into cache bytes. Decoding re-interns in the reader's
    /// process.
    fn encode(&self, w: &mut Writer) {
        let s = self.resolve();
        s.len().encode(w);
        w.buf.extend_from_slice(s.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(spec_intern::intern(&String::decode(r)?))
    }
}

/// Encode-side string dictionary: distinct strings in first-use order.
///
/// The Validate artifact holds ~1000 runs whose nine-odd string fields
/// (submitter, manufacturer, model, CPU name, OS name, JVM vendor …) draw
/// from a few dozen distinct values. Writing each string once and 4-byte
/// ids thereafter shrinks the artifact and makes warm decodes allocate one
/// `String` per *distinct* value instead of one per field per run.
#[derive(Default)]
pub struct StringDict {
    ids: std::collections::HashMap<String, u32>,
    order: Vec<String>,
}

impl StringDict {
    /// Id for `s`, assigning the next one on first use.
    fn id(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.order.len() as u32;
        self.ids.insert(s.to_owned(), id);
        self.order.push(s.to_owned());
        id
    }
}

fn dict_str(w: &mut Writer, dict: &mut StringDict, s: &str) {
    dict.id(s).encode(w);
}

fn undict_str(r: &mut Reader<'_>, dict: &[String]) -> Result<String, CodecError> {
    let id = u32::decode(r)?;
    dict.get(id as usize)
        .cloned()
        .ok_or_else(|| bad(format!("dictionary id {id} out of range ({})", dict.len())))
}

/// Encode one run with its string fields replaced by dictionary ids.
/// Field order mirrors the plain [`Codec`] derivations above.
pub fn encode_run_dict(run: &RunResult, w: &mut Writer, dict: &mut StringDict) {
    run.id.encode(w);
    dict_str(w, dict, &run.submitter);
    let sys = &run.system;
    dict_str(w, dict, &sys.manufacturer);
    dict_str(w, dict, &sys.model);
    dict_str(w, dict, &sys.form_factor);
    sys.nodes.encode(w);
    sys.chips.encode(w);
    dict_str(w, dict, &sys.cpu.name);
    dict_str(w, dict, &sys.cpu.microarchitecture);
    sys.cpu.nominal.encode(w);
    sys.cpu.max_boost.encode(w);
    sys.cpu.cores_per_chip.encode(w);
    sys.cpu.threads_per_core.encode(w);
    sys.cpu.tdp.encode(w);
    sys.cpu.vector_bits.encode(w);
    sys.memory_gb.encode(w);
    sys.dimm_count.encode(w);
    sys.psu_rating.encode(w);
    sys.psu_count.encode(w);
    dict_str(w, dict, &sys.os.name);
    dict_str(w, dict, &sys.jvm.vendor);
    dict_str(w, dict, &sys.jvm.version);
    sys.jvm_instances.encode(w);
    run.dates.encode(w);
    match &run.status {
        RunStatus::Accepted => 0u8.encode(w),
        RunStatus::NotAccepted(reason) => {
            1u8.encode(w);
            dict_str(w, dict, reason);
        }
    }
    run.calibrated_max.encode(w);
    run.levels.encode(w);
    run.reported_overall.encode(w);
}

/// Decode one dictionary-encoded run. Ids outside the dictionary are a
/// [`CodecError`] (corrupt or stale cache → treated as a miss).
pub fn decode_run_dict(r: &mut Reader<'_>, dict: &[String]) -> Result<RunResult, CodecError> {
    let id = u32::decode(r)?;
    let submitter = undict_str(r, dict)?;
    let manufacturer = undict_str(r, dict)?;
    let model = undict_str(r, dict)?;
    let form_factor = undict_str(r, dict)?;
    let nodes = u32::decode(r)?;
    let chips = u32::decode(r)?;
    let cpu = Cpu {
        name: undict_str(r, dict)?,
        microarchitecture: undict_str(r, dict)?,
        nominal: Megahertz::decode(r)?,
        max_boost: Megahertz::decode(r)?,
        cores_per_chip: u32::decode(r)?,
        threads_per_core: u32::decode(r)?,
        tdp: Watts::decode(r)?,
        vector_bits: u32::decode(r)?,
    };
    let memory_gb = u32::decode(r)?;
    let dimm_count = u32::decode(r)?;
    let psu_rating = Watts::decode(r)?;
    let psu_count = u32::decode(r)?;
    let os = OsInfo::new(undict_str(r, dict)?);
    let jvm = JvmInfo {
        vendor: undict_str(r, dict)?,
        version: undict_str(r, dict)?,
    };
    let jvm_instances = u32::decode(r)?;
    let system = SystemConfig {
        manufacturer,
        model,
        form_factor,
        nodes,
        chips,
        cpu,
        memory_gb,
        dimm_count,
        psu_rating,
        psu_count,
        os,
        jvm,
        jvm_instances,
    };
    let dates = RunDates::decode(r)?;
    let status = match u8::decode(r)? {
        0 => RunStatus::Accepted,
        1 => RunStatus::NotAccepted(undict_str(r, dict)?),
        t => return Err(bad(format!("invalid RunStatus tag {t}"))),
    };
    Ok(RunResult {
        id,
        submitter,
        system,
        dates,
        status,
        calibrated_max: SsjOps::decode(r)?,
        levels: Vec::<LevelMeasurement>::decode(r)?,
        reported_overall: OpsPerWatt::decode(r)?,
    })
}

/// Runs per artifact segment: matches the frame layer's
/// [`tinyframe::DEFAULT_SEGMENT_ROWS`] so the Validate artifact streams in
/// the same granularity as the column store it feeds.
pub const ARTIFACT_SEGMENT_RUNS: usize = 64 * 1024;

/// Segmented Validate-artifact encoding with an explicit segment size
/// (tests shrink it to cover multi-segment layouts cheaply; production
/// always passes [`ARTIFACT_SEGMENT_RUNS`]).
pub(crate) fn encode_validate_segmented(
    artifact: &super::artifact::ValidateArtifact,
    w: &mut Writer,
    segment_runs: usize,
) {
    let segment_runs = segment_runs.max(1);
    let chunks: Vec<&[RunResult]> = if artifact.valid.is_empty() {
        Vec::new()
    } else {
        artifact.valid.chunks(segment_runs).collect()
    };
    chunks.len().encode(w);
    for chunk in chunks {
        let mut dict = StringDict::default();
        let mut body = Writer::new();
        chunk.len().encode(&mut body);
        for run in chunk {
            encode_run_dict(run, &mut body, &mut dict);
        }
        dict.order.encode(w);
        w.buf.extend_from_slice(&body.buf);
    }
    artifact.report.encode(w);
}

impl Codec for super::artifact::ValidateArtifact {
    /// Segmented layout: segment count, then per segment a fresh string
    /// dictionary (first-use order), its run count and the
    /// dictionary-encoded runs; the [`FilterReport`] trails. Each segment
    /// covers at most [`ARTIFACT_SEGMENT_RUNS`] runs, so encode-side
    /// dictionary state and decode-side dictionary lifetime stay bounded
    /// regardless of corpus scale, and a ×1000 corpus never needs one
    /// giant dictionary resident while the rest of the buffer streams.
    fn encode(&self, w: &mut Writer) {
        encode_validate_segmented(self, w, ARTIFACT_SEGMENT_RUNS);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n_segments = usize::decode(r)?;
        if n_segments > r.buf.len().saturating_sub(r.pos) {
            return Err(bad(format!(
                "segment count {n_segments} exceeds remaining buffer"
            )));
        }
        let mut valid = Vec::new();
        for _ in 0..n_segments {
            let dict = Vec::<String>::decode(r)?;
            let n = usize::decode(r)?;
            if n > ARTIFACT_SEGMENT_RUNS {
                return Err(bad(format!(
                    "segment run count {n} exceeds segment capacity {ARTIFACT_SEGMENT_RUNS}"
                )));
            }
            if n > r.buf.len().saturating_sub(r.pos) {
                return Err(bad(format!("run count {n} exceeds remaining buffer")));
            }
            valid.reserve(n);
            for _ in 0..n {
                valid.push(decode_run_dict(r, &dict)?);
            }
        }
        Ok(super::artifact::ValidateArtifact {
            valid,
            report: FilterReport::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------- stats ---

struct_codec!(BoxStats {
    n,
    min,
    q1,
    median,
    q3,
    max,
    mean,
    whisker_lo,
    whisker_hi,
    outliers,
});

struct_codec!(LinearFit {
    slope,
    intercept,
    r2,
    slope_stderr,
    n,
});

struct_codec!(TheilSen {
    slope,
    intercept,
    n,
});

struct_codec!(MannKendall { s, z, p_value, n });

struct_codec!(CorrelationMatrix { labels, values });

// -------------------------------------------------------------- figures ---

impl Codec for fig1::Fig1Features {
    fn encode(&self, w: &mut Writer) {
        self.years.encode(w);
        self.counts.encode(w);
        let shares: Vec<(String, Vec<f64>)> = self
            .shares
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        shares.encode(w);
        self.mean_per_year_2005_2023.encode(w);
        self.mean_per_year_2013_2017.encode(w);
        self.linux_share_pre2018.encode(w);
        self.linux_share_post2018.encode(w);
        self.amd_share_pre2018.encode(w);
        self.amd_share_post2018.encode(w);
        self.windows_share_to_2017.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let years = Vec::<i32>::decode(r)?;
        let counts = Vec::<usize>::decode(r)?;
        let raw_shares = Vec::<(String, Vec<f64>)>::decode(r)?;
        let mut shares = BTreeMap::new();
        for (k, v) in raw_shares {
            shares.insert(intern(&k, &fig1::FEATURES)?, v);
        }
        Ok(fig1::Fig1Features {
            years,
            counts,
            shares,
            mean_per_year_2005_2023: f64::decode(r)?,
            mean_per_year_2013_2017: f64::decode(r)?,
            linux_share_pre2018: f64::decode(r)?,
            linux_share_post2018: f64::decode(r)?,
            amd_share_pre2018: f64::decode(r)?,
            amd_share_post2018: f64::decode(r)?,
            windows_share_to_2017: f64::decode(r)?,
        })
    }
}

struct_codec!(fig2::LevelGrowth {
    percent,
    mean_pre2010_w,
    mean_post2022_w,
    ratio,
});

struct_codec!(fig2::Fig2Power {
    scatter,
    yearly_means,
    per_socket_growth,
    level_growth,
});

struct_codec!(fig3::Fig3Efficiency {
    scatter,
    yearly_means,
    amd_in_top100,
    intel_in_top100,
    best,
});

struct_codec!(fig4::Fig4Cell {
    year,
    vendor,
    load,
    stats,
});

struct_codec!(fig4::Fig4Proportionality { cells });

struct_codec!(fig5::Fig5Idle {
    scatter,
    yearly_means,
    overall_yearly_mean,
    earliest,
    minimum,
    latest,
    recent_slope,
});

impl Codec for fig6::Fig6Extrapolated {
    fn encode(&self, w: &mut Writer) {
        self.scatter.encode(w);
        self.yearly_means.encode(w);
        self.trend.encode(w);
        self.robust_trend.encode(w);
        self.mk_test.encode(w);
        for v in self.spread_by_era {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(fig6::Fig6Extrapolated {
            scatter: Codec::decode(r)?,
            yearly_means: Codec::decode(r)?,
            trend: Codec::decode(r)?,
            robust_trend: Codec::decode(r)?,
            mk_test: Codec::decode(r)?,
            spread_by_era: [f64::decode(r)?, f64::decode(r)?, f64::decode(r)?],
        })
    }
}

struct_codec!(RunRow {
    hw_year,
    frac_year,
    vendor,
    features,
    per_socket,
    p100,
    p70,
    p20,
    overall,
    rel60,
    rel70,
    rel80,
    rel90,
    idle_fraction,
    quotient,
});

// ----------------------------------------------------- table1 & friends ---

impl Codec for Table1Entry {
    fn encode(&self, w: &mut Writer) {
        self.benchmark.to_string().encode(w);
        self.intel.encode(w);
        self.amd.encode(w);
        self.factor.encode(w);
        self.paper_factor.encode(w);
        self.paper_intel.encode(w);
        self.paper_amd.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let benchmark = String::decode(r)?;
        Ok(Table1Entry {
            benchmark: intern(&benchmark, &crate::table1::BENCHMARK_NAMES)?,
            intel: f64::decode(r)?,
            amd: f64::decode(r)?,
            factor: f64::decode(r)?,
            paper_factor: f64::decode(r)?,
            paper_intel: f64::decode(r)?,
            paper_amd: f64::decode(r)?,
        })
    }
}

struct_codec!(Table1 {
    intel_system,
    amd_system,
    entries,
});

struct_codec!(VendorStats {
    vendor,
    n,
    mean_cores,
    mean_ghz,
    std_ghz,
    mean_idle_fraction,
});

struct_codec!(IdleCorrelationReport {
    since_year,
    n_runs,
    pearson,
    spearman,
    per_vendor_pearson,
    vendor_stats,
});

struct_codec!(EpTrend {
    yearly_ep,
    yearly_dynamic_range,
    ep_test,
});

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::linear_test_run;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = encode_to_vec(value);
        let back: T = decode_from_slice(&bytes).expect("decode");
        assert_eq!(&back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&42u32);
        roundtrip(&(-7i32));
        roundtrip(&usize::MAX);
        roundtrip(&true);
        roundtrip(&"héllo wörld".to_string());
        roundtrip(&Some(3.25f64));
        roundtrip(&None::<u32>);
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&(1u8, "x".to_string(), -1i64));
    }

    #[test]
    fn f64_is_bit_exact() {
        for v in [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, 1e-308, 0.1] {
            let bytes = encode_to_vec(&v);
            let back: f64 = decode_from_slice(&bytes).expect("decode");
            assert_eq!(back.to_bits(), v.to_bits());
        }
        let nan = f64::from_bits(0x7ff8_0000_0000_1234);
        let back: f64 = decode_from_slice(&encode_to_vec(&nan)).expect("decode");
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn run_result_roundtrips_exactly() {
        let mut run = linear_test_run(17, 2.5e6, 55.5, 312.5);
        run.status = RunStatus::NotAccepted("oversubmitted".into());
        roundtrip(&run);
    }

    #[test]
    fn filter_report_roundtrips() {
        let texts = [
            "junk".to_string(),
            spec_format::write_run(&linear_test_run(1, 1e6, 60.0, 300.0)),
        ];
        let report = crate::pipeline::load_from_texts(&texts).report;
        assert_eq!(report.parse_failures.len(), 1);
        roundtrip(&report);
    }

    #[test]
    fn truncated_buffers_fail_cleanly() {
        let run = linear_test_run(3, 1e6, 60.0, 300.0);
        let bytes = encode_to_vec(&run);
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_from_slice::<RunResult>(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        // Trailing garbage is also rejected.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_from_slice::<RunResult>(&extended).is_err());
    }

    #[test]
    fn invalid_enum_tags_fail() {
        assert!(decode_from_slice::<bool>(&[2]).is_err());
        let mut w = Writer::new();
        9u8.encode(&mut w);
        assert!(decode_from_slice::<ValidityIssue>(&w.into_bytes()).is_err());
    }

    #[test]
    fn corrupt_vec_length_does_not_overallocate() {
        let mut w = Writer::new();
        u64::MAX.encode(&mut w);
        assert!(decode_from_slice::<Vec<u64>>(&w.into_bytes()).is_err());
    }

    #[test]
    fn sym_codec_roundtrips_by_string() {
        let sym = spec_intern::intern("Hewlett-Packard Company");
        let back: spec_intern::Sym = decode_from_slice(&encode_to_vec(&sym)).expect("decode");
        assert_eq!(back, sym);
        assert_eq!(back.resolve(), "Hewlett-Packard Company");
    }

    #[test]
    fn validate_artifact_dictionary_roundtrips_and_dedups() {
        use super::super::artifact::ValidateArtifact;
        let mut valid: Vec<RunResult> = (0..50)
            .map(|i| linear_test_run(i, 1e6, 60.0, 300.0))
            .collect();
        valid[7].status = RunStatus::NotAccepted("oversubmitted".into());
        let texts: Vec<String> = valid.iter().map(spec_format::write_run).collect();
        let report = crate::pipeline::load_from_texts(&texts).report;
        let artifact = ValidateArtifact { valid, report };

        let bytes = encode_to_vec(&artifact);
        let back: ValidateArtifact = decode_from_slice(&bytes).expect("decode");
        assert_eq!(back, artifact);

        // Dictionary compression must bite: 50 runs share one submitter /
        // manufacturer / CPU name, so the dictionary-encoded artifact is
        // smaller than the plain per-field encoding of the same data.
        let plain =
            encode_to_vec(&artifact.valid).len() + encode_to_vec(&artifact.report).len();
        assert!(
            bytes.len() < plain,
            "dictionary encoding did not dedup ({} vs {plain} bytes)",
            bytes.len()
        );
    }

    #[test]
    fn validate_artifact_rejects_out_of_range_dict_ids() {
        use super::super::artifact::ValidateArtifact;
        // Hand-built buffer: one segment with an empty dictionary and one
        // run whose submitter id dangles. Must be a clean decode error,
        // not garbage data.
        let mut w = Writer::new();
        1usize.encode(&mut w); // segment count
        Vec::<String>::new().encode(&mut w);
        1usize.encode(&mut w); // run count
        1u32.encode(&mut w); // run.id
        5u32.encode(&mut w); // submitter dict id — out of range
        assert!(decode_from_slice::<ValidateArtifact>(&w.into_bytes()).is_err());
    }

    #[test]
    fn validate_artifact_multi_segment_roundtrips() {
        use super::super::artifact::ValidateArtifact;
        let valid: Vec<RunResult> = (0..25)
            .map(|i| linear_test_run(i, 1e6, 60.0, 300.0))
            .collect();
        let texts: Vec<String> = valid.iter().map(spec_format::write_run).collect();
        let report = crate::pipeline::load_from_texts(&texts).report;
        let artifact = ValidateArtifact { valid, report };

        // Force many segments (segment size 4 → 7 segments for 25 runs),
        // each with its own dictionary; the decoder never sees the segment
        // size, so the standard decode path must reassemble it exactly.
        let mut w = Writer::new();
        encode_validate_segmented(&artifact, &mut w, 4);
        let back: ValidateArtifact = decode_from_slice(&w.into_bytes()).expect("decode");
        assert_eq!(back, artifact);

        // Empty artifact → zero segments, still round-trips.
        let empty = ValidateArtifact {
            valid: Vec::new(),
            report: crate::pipeline::load_from_texts(Vec::<String>::new()).report,
        };
        let back: ValidateArtifact =
            decode_from_slice(&encode_to_vec(&empty)).expect("decode empty");
        assert_eq!(back, empty);
    }

    #[test]
    fn validate_artifact_rejects_oversized_segment_count() {
        use super::super::artifact::ValidateArtifact;
        let mut w = Writer::new();
        u64::MAX.encode(&mut w); // segment count far beyond the buffer
        assert!(decode_from_slice::<ValidateArtifact>(&w.into_bytes()).is_err());
    }
}
