//! The pipeline driver: walks the stage DAG, memoizes artifacts in memory,
//! and (when a cache is attached) persists every stage output under a
//! content-addressed key.
//!
//! A stage's key is `fnv128(code version ‖ stage name ‖ upstream content
//! hashes ‖ parameters)`. On a warm run the driver resolves upstream keys
//! through checksum-verified [`ArtifactCache::verified_hash`] reads, so
//! e.g. `figures` after `analyze` decodes exactly one artifact (the
//! rendered SVGs) and re-parses **nothing** — asserted by the
//! stage-invocation counters in [`StageStats`].
//!
//! Cache faults never abort a run: a corrupt or unreadable entry reads as
//! a miss (and is quarantined), a failed store is skipped, and the stage
//! recomputes — see [`super::cache`]. All driver I/O (corpus reads, cache,
//! figure/CSV writers) flows through an injectable [`spec_vfs::Vfs`].

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Arc;

use spec_model::RunResult;
use spec_obs as obs;
use spec_ssj::Settings;
use spec_synth::{generate_dataset, SynthConfig};
use spec_vfs::Vfs;

use super::artifact::{
    assemble_set, ComparableArtifact, CorpusArtifact, DeriveArtifact, FilesArtifact,
    ValidateArtifact,
};
use super::cache::{fnv128, ArtifactCache, Fnv128, Hash128};
use super::codec::{encode_to_vec, Codec};
use super::graph::{
    ComparableStage, DeriveStage, ExportDataStage, ExportFiguresStage, Fig1Stage, Fig2Stage,
    Fig3Stage, Fig4Stage, Fig5Stage, Fig6Stage, Stage, StageId, ValidateStage,
};
use super::CODE_VERSION;
use crate::figures::{fig1, fig2, fig3, fig4, fig5, fig6};
use crate::pipeline::{AnalysisSet, FilterReport, RawInput};
use crate::report::Study;

/// Where the raw corpus comes from.
#[derive(Clone, Debug)]
pub enum CorpusSource {
    /// The built-in synthetic dataset; the corpus is a pure function of the
    /// config, so its cache key needs no file reads at all.
    Synthetic(SynthConfig),
    /// A directory of `*.txt` report files (read in sorted order). The
    /// files are read and content-hashed every run — reading is not
    /// parsing — so edits to the directory invalidate downstream artifacts
    /// automatically.
    Dir(PathBuf),
    /// An in-memory corpus of `(origin, text)` pairs (tests, embedding).
    Memory(Vec<(Option<String>, String)>),
}

/// Per-stage invocation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Times the stage's compute function actually ran.
    pub executed: usize,
    /// Times the stage was satisfied from the artifact cache.
    pub hits: usize,
}

/// Drives the stage graph for one configuration (source, settings, seed).
///
/// All CLI commands, the bench harness and the figure writers go through
/// one driver so the cascade is computed (or fetched) exactly once per
/// process, whatever combination of outputs is requested.
pub struct PipelineDriver {
    source: CorpusSource,
    settings: Settings,
    seed: u64,
    vfs: Arc<dyn Vfs>,
    cache: Option<ArtifactCache>,
    stats: BTreeMap<StageId, StageStats>,
    hashes: BTreeMap<StageId, Hash128>,
    /// Encoded artifact sizes for executed stages; feeds the per-span
    /// `in_bytes`/`out_bytes` fields (only populated while tracing).
    sizes: BTreeMap<StageId, usize>,
    corpus: Option<Rc<CorpusArtifact>>,
    validate: Option<Rc<ValidateArtifact>>,
    comparable: Option<Rc<ComparableArtifact>>,
    comparable_runs: Option<Rc<Vec<RunResult>>>,
    fig1: Option<Rc<fig1::Fig1Features>>,
    fig2: Option<Rc<fig2::Fig2Power>>,
    fig3: Option<Rc<fig3::Fig3Efficiency>>,
    fig4: Option<Rc<fig4::Fig4Proportionality>>,
    fig5: Option<Rc<fig5::Fig5Idle>>,
    fig6: Option<Rc<fig6::Fig6Extrapolated>>,
    derive: Option<Rc<DeriveArtifact>>,
    export_data: Option<Rc<FilesArtifact>>,
    export_figures: Option<Rc<FilesArtifact>>,
}

impl PipelineDriver {
    /// A driver with no cache attached (everything computes in memory).
    pub fn new(source: CorpusSource, settings: Settings, seed: u64) -> PipelineDriver {
        PipelineDriver {
            source,
            settings,
            seed,
            vfs: spec_vfs::default_vfs(),
            cache: None,
            stats: BTreeMap::new(),
            hashes: BTreeMap::new(),
            sizes: BTreeMap::new(),
            corpus: None,
            validate: None,
            comparable: None,
            comparable_runs: None,
            fig1: None,
            fig2: None,
            fig3: None,
            fig4: None,
            fig5: None,
            fig6: None,
            derive: None,
            export_data: None,
            export_figures: None,
        }
    }

    /// Attach an on-disk artifact cache (`--cache-dir`).
    #[must_use]
    pub fn with_cache(mut self, cache: ArtifactCache) -> PipelineDriver {
        self.cache = Some(cache);
        self
    }

    /// Replace the filesystem backend used for corpus reads and
    /// figure/CSV writes (fault injection in tests). The cache keeps the
    /// backend it was opened with — fault them independently.
    #[must_use]
    pub fn with_vfs(mut self, vfs: Arc<dyn Vfs>) -> PipelineDriver {
        self.vfs = vfs;
        self
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&ArtifactCache> {
        self.cache.as_ref()
    }

    /// The filesystem backend used for corpus reads and export writes.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// Per-stage invocation counters for this driver's lifetime.
    pub fn stats(&self) -> &BTreeMap<StageId, StageStats> {
        &self.stats
    }

    /// Total stage executions (0 on a fully warm run).
    pub fn executed_total(&self) -> usize {
        self.stats.values().map(|s| s.executed).sum()
    }

    /// Total cache hits.
    pub fn hits_total(&self) -> usize {
        self.stats.values().map(|s| s.hits).sum()
    }

    fn stat_mut(&mut self, id: StageId) -> &mut StageStats {
        self.stats.entry(id).or_default()
    }

    fn note_cache_hit(&mut self, id: StageId) {
        self.stat_mut(id).hits += 1;
        if obs::enabled() {
            obs::count(&format!("stage.{}.cache_hit", id.name()), 1);
        }
    }

    /// Run a stage's compute function, encode its output once, and
    /// store/hash the encoded payload. This is the single point every
    /// stage execution flows through: `sp` is the stage span opened by the
    /// `resolve_*` caller (before upstream resolution, so dependency spans
    /// already nest inside it); on exit it carries the stage name,
    /// input/output artifact sizes and the computed outcome, and the
    /// per-stage `executed` counter lands in the metrics registry.
    fn compute_stage<T: Codec>(
        &mut self,
        id: StageId,
        key: Hash128,
        mut sp: obs::Span,
        compute: impl FnOnce(&mut PipelineDriver) -> spec_diag::Result<T>,
    ) -> spec_diag::Result<(T, Hash128)> {
        let value = compute(self)?;
        let payload = encode_to_vec(&value);
        let h = match &self.cache {
            Some(cache) => cache.store_encoded(&key, &payload),
            None => fnv128(&payload),
        };
        self.stat_mut(id).executed += 1;
        if obs::enabled() {
            self.sizes.insert(id, payload.len());
            let in_bytes: u64 = id
                .deps()
                .iter()
                .filter_map(|d| self.sizes.get(d))
                .map(|&n| n as u64)
                .sum();
            sp.record("kind", "stage");
            sp.record("outcome", "computed");
            sp.record("in_bytes", in_bytes);
            sp.record("out_bytes", payload.len());
            sp.observe_into("stage.execute_us");
            obs::count(&format!("stage.{}.executed", id.name()), 1);
        }
        Ok((value, h))
    }

    fn stage_key(&self, id: StageId, deps: &[Hash128], salt: &[u8]) -> Hash128 {
        let mut h = Fnv128::new();
        h.update_field(CODE_VERSION.as_bytes());
        h.update_field(id.name().as_bytes());
        for dep in deps {
            h.update_field(&dep.to_bytes());
        }
        h.update_field(salt);
        h.finish()
    }

    /// Resolve a stage's content hash as cheaply as possible: memo → cache
    /// header peek → compute (and store).
    ///
    /// The stage span opens *before* `key_fn` runs, and key derivation is
    /// what resolves upstream stages — so dependency spans nest inside
    /// their dependent's span and the trace mirrors the stage graph. A
    /// memo or cache hit cancels the span: only executed stages appear.
    fn resolve_hash<T: Codec>(
        &mut self,
        id: StageId,
        key_fn: impl FnOnce(&mut PipelineDriver) -> spec_diag::Result<Hash128>,
        slot: fn(&mut PipelineDriver) -> &mut Option<Rc<T>>,
        compute: impl FnOnce(&mut PipelineDriver) -> spec_diag::Result<T>,
    ) -> spec_diag::Result<Hash128> {
        if let Some(&h) = self.hashes.get(&id) {
            return Ok(h);
        }
        let mut sp = obs::span(id.name());
        let key = key_fn(self)?;
        if let Some(cache) = &self.cache {
            if let Some(h) = cache.verified_hash(&key) {
                sp.cancel();
                self.note_cache_hit(id);
                self.hashes.insert(id, h);
                return Ok(h);
            }
        }
        let (value, h) = self.compute_stage(id, key, sp, compute)?;
        self.hashes.insert(id, h);
        *slot(self) = Some(Rc::new(value));
        Ok(h)
    }

    /// Resolve a stage's artifact value: memo → cache decode → compute
    /// (and store). Same span discipline as [`Self::resolve_hash`].
    fn resolve_value<T: Codec>(
        &mut self,
        id: StageId,
        key_fn: impl FnOnce(&mut PipelineDriver) -> spec_diag::Result<Hash128>,
        slot: fn(&mut PipelineDriver) -> &mut Option<Rc<T>>,
        compute: impl FnOnce(&mut PipelineDriver) -> spec_diag::Result<T>,
    ) -> spec_diag::Result<Rc<T>> {
        if let Some(v) = slot(self).clone() {
            return Ok(v);
        }
        let mut sp = obs::span(id.name());
        let key = key_fn(self)?;
        if let Some(cache) = self.cache.clone() {
            if let Some((value, h)) = cache.load::<T>(&key) {
                sp.cancel();
                if !self.hashes.contains_key(&id) {
                    self.note_cache_hit(id);
                }
                self.hashes.insert(id, h);
                let rc = Rc::new(value);
                *slot(self) = Some(rc.clone());
                return Ok(rc);
            }
        }
        let (value, h) = self.compute_stage(id, key, sp, compute)?;
        self.hashes.insert(id, h);
        let rc = Rc::new(value);
        *slot(self) = Some(rc.clone());
        Ok(rc)
    }

    // ------------------------------------------------------------ ingest --

    fn synthetic_corpus_key(&self, config: &SynthConfig) -> Hash128 {
        let mut h = Fnv128::new();
        h.update_field(CODE_VERSION.as_bytes());
        h.update_field(StageId::Ingest.name().as_bytes());
        h.update_field(b"synthetic");
        h.update_field(&config.seed.to_le_bytes());
        // Settings has no stable binary layout of its own; its Debug
        // rendering covers every field and only changes when the struct
        // does, which is exactly when old artifacts must be invalidated.
        h.update_field(format!("{:?}", config.settings).as_bytes());
        h.finish()
    }

    fn generate_synthetic(config: &SynthConfig) -> CorpusArtifact {
        let dataset = generate_dataset(config);
        CorpusArtifact {
            items: dataset
                .texts()
                .map(|t| (None, RawInput::Text(t.to_string())))
                .collect(),
        }
    }

    /// Read a directory corpus through the driver's [`Vfs`]. An unreadable
    /// directory is a typed error; an unreadable *file* degrades into a
    /// [`RawInput::IoError`] record that the Validate stage counts as an
    /// `io-error` parse failure — one lost file never aborts the run.
    fn read_dir_corpus(&self, dir: &std::path::Path) -> spec_diag::Result<CorpusArtifact> {
        let files = crate::pipeline::list_report_files(&*self.vfs, dir)?;
        let items = crate::pipeline::read_inputs_shared(&*self.vfs, &files);
        Ok(CorpusArtifact { items })
    }

    /// Content hash of the corpus, computed as cheaply as the source allows.
    fn corpus_hash(&mut self) -> spec_diag::Result<Hash128> {
        if let Some(&h) = self.hashes.get(&StageId::Ingest) {
            return Ok(h);
        }
        match self.source.clone() {
            CorpusSource::Synthetic(config) => {
                let key_config = config.clone();
                self.resolve_hash(
                    StageId::Ingest,
                    move |me| Ok(me.synthetic_corpus_key(&key_config)),
                    |me| &mut me.corpus,
                    move |_| Ok(Self::generate_synthetic(&config)),
                )
            }
            CorpusSource::Dir(dir) => {
                // Reading the files *is* the ingest work for a directory
                // source; the content hash doubles as the cache key input.
                let mut sp = obs::span(StageId::Ingest.name());
                let artifact = self.read_dir_corpus(&dir)?;
                let payload = encode_to_vec(&artifact);
                let h = fnv128(&payload);
                self.stat_mut(StageId::Ingest).executed += 1;
                if obs::enabled() {
                    self.sizes.insert(StageId::Ingest, payload.len());
                    sp.record("kind", "stage");
                    sp.record("outcome", "computed");
                    sp.record("files", artifact.items.len());
                    sp.record("out_bytes", payload.len());
                    sp.observe_into("stage.execute_us");
                    obs::count("stage.ingest.executed", 1);
                }
                self.hashes.insert(StageId::Ingest, h);
                self.corpus = Some(Rc::new(artifact));
                Ok(h)
            }
            CorpusSource::Memory(items) => {
                let artifact = CorpusArtifact {
                    items: items
                        .into_iter()
                        .map(|(origin, text)| (origin, RawInput::Text(text)))
                        .collect(),
                };
                let h = fnv128(&encode_to_vec(&artifact));
                self.hashes.insert(StageId::Ingest, h);
                self.corpus = Some(Rc::new(artifact));
                Ok(h)
            }
        }
    }

    fn corpus(&mut self) -> spec_diag::Result<Rc<CorpusArtifact>> {
        if let Some(c) = &self.corpus {
            return Ok(c.clone());
        }
        match self.source.clone() {
            CorpusSource::Synthetic(config) => {
                let key_config = config.clone();
                self.resolve_value(
                    StageId::Ingest,
                    move |me| Ok(me.synthetic_corpus_key(&key_config)),
                    |me| &mut me.corpus,
                    move |_| Ok(Self::generate_synthetic(&config)),
                )
            }
            CorpusSource::Dir(_) | CorpusSource::Memory(_) => {
                self.corpus_hash()?;
                Ok(self
                    .corpus
                    .clone()
                    .expect("corpus_hash materializes dir/memory corpora"))
            }
        }
    }

    // -------------------------------------------------- cascade stages ----

    fn validate_key(&mut self) -> spec_diag::Result<Hash128> {
        let ck = self.corpus_hash()?;
        Ok(self.stage_key(StageId::Validate, &[ck], &[]))
    }

    fn validate_hash(&mut self) -> spec_diag::Result<Hash128> {
        if let Some(&h) = self.hashes.get(&StageId::Validate) {
            return Ok(h);
        }
        self.resolve_hash(StageId::Validate, Self::validate_key, |me| &mut me.validate, |me| {
            let corpus = me.corpus()?;
            ValidateStage::run(&corpus)
        })
    }

    /// The Validate artifact (valid runs + stage-1 accounting).
    pub fn validate(&mut self) -> spec_diag::Result<Rc<ValidateArtifact>> {
        if let Some(v) = &self.validate {
            return Ok(v.clone());
        }
        self.resolve_value(StageId::Validate, Self::validate_key, |me| &mut me.validate, |me| {
            let corpus = me.corpus()?;
            ValidateStage::run(&corpus)
        })
    }

    fn comparable_key(&mut self) -> spec_diag::Result<Hash128> {
        let vh = self.validate_hash()?;
        Ok(self.stage_key(StageId::Comparable, &[vh], &[]))
    }

    fn comparable_hash(&mut self) -> spec_diag::Result<Hash128> {
        if let Some(&h) = self.hashes.get(&StageId::Comparable) {
            return Ok(h);
        }
        self.resolve_hash(StageId::Comparable, Self::comparable_key, |me| &mut me.comparable, |me| {
            let validate = me.validate()?;
            ComparableStage::run(&validate)
        })
    }

    /// The Comparable artifact (indices + stage-2 accounting).
    pub fn comparable(&mut self) -> spec_diag::Result<Rc<ComparableArtifact>> {
        if let Some(c) = &self.comparable {
            return Ok(c.clone());
        }
        self.resolve_value(StageId::Comparable, Self::comparable_key, |me| &mut me.comparable, |me| {
            let validate = me.validate()?;
            ComparableStage::run(&validate)
        })
    }

    /// The comparable runs, materialized once from (Validate, Comparable).
    fn comparable_runs(&mut self) -> spec_diag::Result<Rc<Vec<RunResult>>> {
        if let Some(r) = &self.comparable_runs {
            return Ok(r.clone());
        }
        let validate = self.validate()?;
        let comparable = self.comparable()?;
        let runs: Vec<RunResult> = comparable
            .indices
            .iter()
            .map(|&i| validate.valid[i as usize].clone())
            .collect();
        let rc = Rc::new(runs);
        self.comparable_runs = Some(rc.clone());
        Ok(rc)
    }

    /// The legacy [`AnalysisSet`] view, assembled from stage artifacts.
    pub fn analysis_set(&mut self) -> spec_diag::Result<AnalysisSet> {
        let validate = self.validate()?;
        let comparable = self.comparable()?;
        Ok(assemble_set(&validate, &comparable))
    }

    /// The complete filter accounting (both stages), without materializing
    /// the comparable runs — what `spec-trends explain` prints.
    pub fn filter_report(&mut self) -> spec_diag::Result<FilterReport> {
        let validate = self.validate()?;
        let comparable = self.comparable()?;
        let mut report = validate.report.clone();
        report.stage2 = comparable.stage2.clone();
        report.comparable = comparable.indices.len();
        Ok(report)
    }

    // ---------------------------------------------------- figure stages ---

    fn figure_key(&mut self, id: StageId) -> spec_diag::Result<Hash128> {
        let vh = self.validate_hash()?;
        if id == StageId::Fig1 {
            // Figure 1 is computed over the *valid* set only.
            return Ok(self.stage_key(id, &[vh], &[]));
        }
        let ch = self.comparable_hash()?;
        Ok(self.stage_key(id, &[vh, ch], &[]))
    }
}

macro_rules! figure_accessors {
    ($value_fn:ident, $hash_fn:ident, $slot:ident, $stage:ty, $out:ty, $input:ident) => {
        impl PipelineDriver {
            /// The figure artifact.
            pub fn $value_fn(&mut self) -> spec_diag::Result<Rc<$out>> {
                if let Some(v) = &self.$slot {
                    return Ok(v.clone());
                }
                self.resolve_value(<$stage>::ID, |me| me.figure_key(<$stage>::ID), |me| &mut me.$slot, |me| {
                    let runs = me.$input()?;
                    <$stage>::run(&runs)
                })
            }

            fn $hash_fn(&mut self) -> spec_diag::Result<Hash128> {
                if let Some(&h) = self.hashes.get(&<$stage>::ID) {
                    return Ok(h);
                }
                self.resolve_hash(<$stage>::ID, |me| me.figure_key(<$stage>::ID), |me| &mut me.$slot, |me| {
                    let runs = me.$input()?;
                    <$stage>::run(&runs)
                })
            }
        }
    };
}

figure_accessors!(fig1, fig1_hash, fig1, Fig1Stage, fig1::Fig1Features, valid_runs_for_fig1);
figure_accessors!(fig2, fig2_hash, fig2, Fig2Stage, fig2::Fig2Power, comparable_runs);
figure_accessors!(fig3, fig3_hash, fig3, Fig3Stage, fig3::Fig3Efficiency, comparable_runs);
figure_accessors!(fig4, fig4_hash, fig4, Fig4Stage, fig4::Fig4Proportionality, comparable_runs);
figure_accessors!(fig5, fig5_hash, fig5, Fig5Stage, fig5::Fig5Idle, comparable_runs);
figure_accessors!(fig6, fig6_hash, fig6, Fig6Stage, fig6::Fig6Extrapolated, comparable_runs);

impl PipelineDriver {
    /// The valid runs, for Figure 1 (borrows the Validate artifact).
    fn valid_runs_for_fig1(&mut self) -> spec_diag::Result<Rc<Vec<RunResult>>> {
        let validate = self.validate()?;
        Ok(Rc::new(validate.valid.clone()))
    }

    fn derive_key(&mut self) -> spec_diag::Result<Hash128> {
        let vh = self.validate_hash()?;
        let ch = self.comparable_hash()?;
        let mut salt = Vec::new();
        salt.extend_from_slice(&self.seed.to_le_bytes());
        salt.extend_from_slice(format!("{:?}", self.settings).as_bytes());
        Ok(self.stage_key(StageId::Derive, &[vh, ch], &salt))
    }

    /// The Derive artifact (Table I, correlation, proportionality).
    pub fn derive(&mut self) -> spec_diag::Result<Rc<DeriveArtifact>> {
        if let Some(d) = &self.derive {
            return Ok(d.clone());
        }
        let settings = self.settings.clone();
        let seed = self.seed;
        self.resolve_value(StageId::Derive, Self::derive_key, |me| &mut me.derive, move |me| {
            let runs = me.comparable_runs()?;
            DeriveStage::run((&runs, &settings, seed))
        })
    }

    fn derive_hash(&mut self) -> spec_diag::Result<Hash128> {
        if let Some(&h) = self.hashes.get(&StageId::Derive) {
            return Ok(h);
        }
        let settings = self.settings.clone();
        let seed = self.seed;
        self.resolve_hash(StageId::Derive, Self::derive_key, |me| &mut me.derive, move |me| {
            let runs = me.comparable_runs()?;
            DeriveStage::run((&runs, &settings, seed))
        })
    }

    /// The full [`Study`], assembled from stage artifacts. Identical to
    /// `run_study(load_from_texts(...), ...)` by construction.
    pub fn study(&mut self) -> spec_diag::Result<Study> {
        let set = self.analysis_set()?;
        let fig1 = self.fig1()?;
        let fig2 = self.fig2()?;
        let fig3 = self.fig3()?;
        let fig4 = self.fig4()?;
        let fig5 = self.fig5()?;
        let fig6 = self.fig6()?;
        let derive = self.derive()?;
        Ok(Study {
            set,
            fig1: (*fig1).clone(),
            fig2: (*fig2).clone(),
            fig3: (*fig3).clone(),
            fig4: (*fig4).clone(),
            fig5: (*fig5).clone(),
            fig6: (*fig6).clone(),
            table1: derive.table1.clone(),
            correlation: derive.correlation.clone(),
            proportionality: derive.proportionality.clone(),
        })
    }

    fn export_key(&mut self, id: StageId) -> spec_diag::Result<Hash128> {
        let deps = [
            self.validate_hash()?,
            self.comparable_hash()?,
            self.fig1_hash()?,
            self.fig2_hash()?,
            self.fig3_hash()?,
            self.fig4_hash()?,
            self.fig5_hash()?,
            self.fig6_hash()?,
            self.derive_hash()?,
        ];
        Ok(self.stage_key(id, &deps, &[]))
    }

    /// The rendered figure SVGs. On a warm run this decodes one cache
    /// entry and executes no stage at all.
    pub fn export_figures(&mut self) -> spec_diag::Result<Rc<FilesArtifact>> {
        if let Some(f) = &self.export_figures {
            return Ok(f.clone());
        }
        self.resolve_value(
            StageId::ExportFigures,
            |me| me.export_key(StageId::ExportFigures),
            |me| &mut me.export_figures,
            |me| {
                let study = me.study()?;
                ExportFiguresStage::run(&study)
            },
        )
    }

    /// The rendered CSV exports (same warm-run property as figures).
    pub fn export_data(&mut self) -> spec_diag::Result<Rc<FilesArtifact>> {
        if let Some(f) = &self.export_data {
            return Ok(f.clone());
        }
        self.resolve_value(
            StageId::ExportData,
            |me| me.export_key(StageId::ExportData),
            |me| &mut me.export_data,
            |me| {
                let study = me.study()?;
                ExportDataStage::run(&study)
            },
        )
    }

    /// Write all figure SVGs into `dir`; returns the written paths. Each
    /// file lands atomically; a permanent write failure (ENOSPC, EIO after
    /// retries, torn write) escalates as a typed error — outputs are the
    /// run's deliverable, so unlike cache faults they must never degrade
    /// silently.
    pub fn write_figures(&mut self, dir: &std::path::Path) -> spec_diag::Result<Vec<PathBuf>> {
        let files = self.export_figures()?;
        super::write_files_vfs(&*self.vfs, dir, &files.files)
            .map_err(|e| spec_diag::TrendsError::io("export-figures", &e))
    }

    /// Write all CSV exports into `dir`; returns the written paths. Same
    /// atomicity and escalation contract as [`Self::write_figures`].
    pub fn write_data(&mut self, dir: &std::path::Path) -> spec_diag::Result<Vec<PathBuf>> {
        let files = self.export_data()?;
        super::write_files_vfs(&*self.vfs, dir, &files.files)
            .map_err(|e| spec_diag::TrendsError::io("export-data", &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_format::write_run;
    use spec_model::linear_test_run;

    fn memory_source(n: u32) -> CorpusSource {
        let mut items: Vec<(Option<String>, String)> = (0..n)
            .map(|i| (None, write_run(&linear_test_run(i, 1e6, 60.0, 300.0))))
            .collect();
        items.push((Some("junk.txt".to_string()), "not a report".to_string()));
        let mut sparc = linear_test_run(900, 1e6, 60.0, 300.0);
        sparc.system.cpu.name = "SPARC T3-1".into();
        items.push((None, write_run(&sparc)));
        CorpusSource::Memory(items)
    }

    fn driver(cache: Option<ArtifactCache>) -> PipelineDriver {
        let d = PipelineDriver::new(memory_source(20), Settings::fast(), 7);
        match cache {
            Some(c) => d.with_cache(c),
            None => d,
        }
    }

    fn tmp_cache(name: &str) -> ArtifactCache {
        let dir = std::env::temp_dir().join(format!("spec_driver_test_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::open(dir).unwrap()
    }

    #[test]
    fn uncached_driver_matches_legacy_pipeline() {
        let mut d = driver(None);
        let set = d.analysis_set().unwrap();
        assert_eq!(set.report.raw, 22);
        assert_eq!(set.report.not_reports, 1);
        assert_eq!(set.valid.len(), 21);
        assert_eq!(set.comparable.len(), 20);
        assert_eq!(set.report.parse_failures[0].origin.as_deref(), Some("junk.txt"));
        // Each cascade stage executed exactly once despite repeated access.
        let _ = d.analysis_set().unwrap();
        let _ = d.filter_report().unwrap();
        assert_eq!(d.stats()[&StageId::Validate].executed, 1);
        assert_eq!(d.stats()[&StageId::Comparable].executed, 1);
    }

    #[test]
    fn warm_run_executes_nothing_and_is_identical() {
        let cache = tmp_cache("warm");

        let mut cold = driver(Some(cache.clone()));
        let cold_files = cold.export_figures().unwrap();
        assert!(cold.executed_total() > 0);

        let mut warm = driver(Some(cache.clone()));
        let warm_files = warm.export_figures().unwrap();
        assert_eq!(warm.executed_total(), 0, "warm run must execute no stage");
        assert!(warm.hits_total() > 0);
        assert_eq!(warm_files.files, cold_files.files);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corpus_change_invalidates_downstream() {
        let cache = tmp_cache("invalidate");
        let mut a = driver(Some(cache.clone()));
        let _ = a.export_figures().unwrap();

        let mut items = match memory_source(20) {
            CorpusSource::Memory(items) => items,
            _ => unreachable!(),
        };
        items.push((None, "another junk file".to_string()));
        let mut b =
            PipelineDriver::new(CorpusSource::Memory(items), Settings::fast(), 7).with_cache(cache.clone());
        let _ = b.export_figures().unwrap();
        assert!(
            b.stats()[&StageId::Validate].executed == 1,
            "changed corpus must re-validate"
        );
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn seed_only_affects_derive() {
        let cache = tmp_cache("seed");
        let mut a = driver(Some(cache.clone()));
        let _ = a.study().unwrap();

        let mut b = PipelineDriver::new(memory_source(20), Settings::fast(), 8)
            .with_cache(cache.clone());
        let _ = b.study().unwrap();
        assert_eq!(b.stats()[&StageId::Validate].executed, 0);
        assert_eq!(b.stats()[&StageId::Fig2].executed, 0);
        assert_eq!(b.stats()[&StageId::Derive].executed, 1, "new seed recomputes derive");
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn driver_study_equals_run_study() {
        let items = match memory_source(20) {
            CorpusSource::Memory(items) => items,
            _ => unreachable!(),
        };
        let legacy_set =
            crate::pipeline::load_from_named_texts(items.iter().map(|(o, t)| (o.clone(), t)));
        let legacy = crate::report::run_study(legacy_set, &Settings::fast(), 7);

        let mut d = driver(None);
        let study = d.study().unwrap();
        assert_eq!(study.set.report, legacy.set.report);
        assert_eq!(study.to_markdown(), legacy.to_markdown());
        assert_eq!(
            study.figure_files(),
            legacy.figure_files(),
            "figure SVGs must match the legacy path byte for byte"
        );
        assert_eq!(study.data_files(), legacy.data_files());
    }
}
