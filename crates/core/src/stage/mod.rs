//! # Stage-graph pipeline
//!
//! The end-to-end flow — ingest → validate → comparable → figure/derive
//! aggregates → export — expressed as a typed DAG of named [`Stage`]s,
//! driven by one [`PipelineDriver`] shared by the CLI, the bench harness
//! and the figure writers.
//!
//! Each stage's output is a typed, codec-serializable artifact
//! ([`artifact`]), keyed by a content hash of (code version, stage id,
//! upstream artifact hashes, parameters) and persisted in an on-disk
//! [`ArtifactCache`] when `--cache-dir` is given. Warm runs resolve
//! upstream stages by verifying each entry's full-payload checksum and
//! decode only the artifact actually requested — `figures` after `analyze`
//! re-parses nothing, and its output is byte-identical to a cold run
//! because export stages cache the fully rendered file contents.
//!
//! The cache is self-healing (see [`cache`]): corrupt or torn entries are
//! quarantined and transparently recomputed, failed cache I/O degrades to
//! recomputation, and all disk access flows through an injectable
//! [`spec_vfs::Vfs`] so the chaos suite can fault every path.

pub mod artifact;
pub mod cache;
pub mod codec;
pub mod driver;
pub mod graph;
pub mod partition;

pub use artifact::{
    assemble_set, ComparableArtifact, CorpusArtifact, DeriveArtifact, FilesArtifact,
    ValidateArtifact,
};
pub use cache::{
    fnv128, ArtifactCache, CacheHealth, Fnv128, FsckReport, Hash128, QUARANTINE_DIR,
};
pub use codec::{decode_from_slice, encode_to_vec, Codec, CodecError, Reader, Writer};
pub use driver::{CorpusSource, PipelineDriver, StageStats};
pub use partition::{
    part_key_of_input, part_key_of_text, shard_of, MergedAnalysis, PartKey, PartRows,
    PartStageKind, PartValidateArtifact, PartitionSummary, PartitionedDriver, ShardSpec,
};
pub use graph::{
    ComparableStage, DeriveStage, ExportDataStage, ExportFiguresStage, Fig1Stage, Fig2Stage,
    Fig3Stage, Fig4Stage, Fig5Stage, Fig6Stage, Stage, StageId, ValidateStage,
};

/// Version tag folded into every cache key. Bump when any stage's output
/// semantics or the codec layout change; old cache entries then read as
/// misses instead of stale hits.
/// (`/2`: the corpus artifact gained the `RawInput` tag byte.
/// `/3`: the Validate artifact switched to dictionary-encoded strings.
/// `/5`: artifacts are partitioned by (year, vendor) with merge stages.)
pub const CODE_VERSION: &str = "spec-trends/stage-graph/6";

/// Write rendered `(name, content)` files into `dir` (created if needed)
/// through `vfs`, returning the written paths in order. Each file lands
/// atomically (temp + fsync + verified rename), so a crash or torn write
/// mid-export can never leave a half-written figure or CSV under its
/// final name.
pub fn write_files_vfs(
    vfs: &dyn spec_vfs::Vfs,
    dir: &std::path::Path,
    files: &[(String, String)],
) -> std::io::Result<Vec<std::path::PathBuf>> {
    vfs.create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(files.len());
    for (name, content) in files {
        let path = dir.join(name);
        vfs.atomic_write(&path, content.as_bytes())?;
        paths.push(path);
    }
    Ok(paths)
}

/// [`write_files_vfs`] on the default (real, retrying) filesystem.
pub fn write_files(
    dir: &std::path::Path,
    files: &[(String, String)],
) -> std::io::Result<Vec<std::path::PathBuf>> {
    write_files_vfs(&*spec_vfs::default_vfs(), dir, files)
}
