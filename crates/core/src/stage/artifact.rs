//! The typed artifacts flowing along the stage graph.
//!
//! Each is a plain serializable value (see [`super::codec`]); figure stages
//! use the figure structs themselves as artifacts. [`ComparableArtifact`]
//! stores *indices* into the valid set rather than cloned runs, so the
//! comparable dataset is represented once.

use std::collections::BTreeMap;

use spec_format::ComparabilityIssue;
use spec_model::RunResult;

use super::codec::{Codec, CodecError, Reader, Writer};
use crate::pipeline::{AnalysisSet, FilterReport, RawInput};
use crate::table1::Table1;

/// The raw corpus: `(origin, input)` per input file. Origin is the file
/// name for directory sources, `None` for synthetic submissions. An input
/// is either the report text or an [`RawInput::IoError`] record for a file
/// that could not be read — degradation is part of the corpus identity, so
/// a run that lost files cache-keys differently from one that read all of
/// them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusArtifact {
    /// One entry per raw input, in corpus order.
    pub items: Vec<(Option<String>, RawInput)>,
}

impl Codec for CorpusArtifact {
    fn encode(&self, w: &mut Writer) {
        self.items.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(CorpusArtifact {
            items: Codec::decode(r)?,
        })
    }
}

/// Output of the Validate stage: the stage-1-valid runs plus a
/// [`FilterReport`] whose stage-2 fields are still empty.
///
/// Its [`Codec`] impl (in [`super::codec`]) is dictionary-encoded: each
/// distinct string is written once, and every run's categorical fields
/// become 4-byte dictionary ids.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidateArtifact {
    /// Runs surviving parse + validity checks (the paper's 960).
    pub valid: Vec<RunResult>,
    /// Accounting through stage 1 (raw, not_reports + reasons, stage1).
    pub report: FilterReport,
}

/// Output of the Comparable stage: which valid runs survive stage 2, by
/// index, plus the per-category rejection counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComparableArtifact {
    /// Indices into the valid set (ascending; the paper's 676).
    pub indices: Vec<u32>,
    /// Stage-2 rejections by category.
    pub stage2: BTreeMap<ComparabilityIssue, usize>,
}

impl Codec for ComparableArtifact {
    fn encode(&self, w: &mut Writer) {
        self.indices.encode(w);
        self.stage2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ComparableArtifact {
            indices: Codec::decode(r)?,
            stage2: Codec::decode(r)?,
        })
    }
}

/// Assemble the legacy [`AnalysisSet`] view from the Validate and
/// Comparable artifacts. This is the bridge between the stage graph and
/// every consumer of the old pipeline API — by construction it is
/// value-identical to [`crate::pipeline::load_from_texts`].
pub fn assemble_set(validate: &ValidateArtifact, comparable: &ComparableArtifact) -> AnalysisSet {
    let runs: Vec<RunResult> = comparable
        .indices
        .iter()
        .map(|&i| validate.valid[i as usize].clone())
        .collect();
    let mut report = validate.report.clone();
    report.stage2 = comparable.stage2.clone();
    report.comparable = runs.len();
    AnalysisSet {
        valid: validate.valid.clone(),
        comparable: runs,
        report,
    }
}

/// Output of the Derive stage: everything the study needs beyond the
/// figures.
#[derive(Clone, Debug, PartialEq)]
pub struct DeriveArtifact {
    /// Table I.
    pub table1: Table1,
    /// §IV correlation exploration.
    pub correlation: crate::correlation::IdleCorrelationReport,
    /// Energy-proportionality trend extension.
    pub proportionality: crate::proportionality::EpTrend,
}

impl Codec for DeriveArtifact {
    fn encode(&self, w: &mut Writer) {
        self.table1.encode(w);
        self.correlation.encode(w);
        self.proportionality.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(DeriveArtifact {
            table1: Codec::decode(r)?,
            correlation: Codec::decode(r)?,
            proportionality: Codec::decode(r)?,
        })
    }
}

/// Output of an export stage: rendered text files, `(name, content)` in
/// write order. A warm run writes these bytes verbatim, which is what makes
/// cache hits byte-identical to cold runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilesArtifact {
    /// Rendered files in write order.
    pub files: Vec<(String, String)>,
}

impl Codec for FilesArtifact {
    fn encode(&self, w: &mut Writer) {
        self.files.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(FilesArtifact {
            files: Codec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{load_from_texts, stage1_validate, stage2_split};
    use spec_format::write_run;
    use spec_model::linear_test_run;

    #[test]
    fn assemble_matches_legacy_loader() {
        let mut texts: Vec<String> = (0..40)
            .map(|i| write_run(&linear_test_run(i, 1e6, 60.0, 300.0)))
            .collect();
        texts[3] = "junk".into();
        let mut sparc = linear_test_run(99, 1e6, 60.0, 300.0);
        sparc.system.cpu.name = "SPARC T3-1".into();
        texts[11] = write_run(&sparc);

        let legacy = load_from_texts(&texts);

        let (valid, report) = stage1_validate(texts.iter().map(|t| (None::<String>, t)));
        let (indices, stage2) = stage2_split(&valid);
        let assembled = assemble_set(
            &ValidateArtifact { valid, report },
            &ComparableArtifact { indices, stage2 },
        );

        assert_eq!(assembled.report, legacy.report);
        assert_eq!(assembled.valid, legacy.valid);
        assert_eq!(assembled.comparable, legacy.comparable);
    }

    #[test]
    fn artifacts_roundtrip_through_codec() {
        use super::super::codec::{decode_from_slice, encode_to_vec};
        let texts = [
            write_run(&linear_test_run(0, 1e6, 60.0, 300.0)),
            "junk".to_string(),
        ];
        let (valid, report) = stage1_validate(texts.iter().map(|t| (None::<String>, t)));
        let (indices, stage2) = stage2_split(&valid);

        let mut items: Vec<(Option<String>, RawInput)> = texts
            .iter()
            .map(|t| (Some("x.txt".to_string()), RawInput::Text(t.clone())))
            .collect();
        items.push((
            Some("gone.txt".to_string()),
            RawInput::IoError("could not read file: EIO".to_string()),
        ));
        let corpus = CorpusArtifact { items };
        let back: CorpusArtifact = decode_from_slice(&encode_to_vec(&corpus)).unwrap();
        assert_eq!(back, corpus);

        let validate = ValidateArtifact { valid, report };
        let back: ValidateArtifact = decode_from_slice(&encode_to_vec(&validate)).unwrap();
        assert_eq!(back, validate);

        let comparable = ComparableArtifact { indices, stage2 };
        let back: ComparableArtifact = decode_from_slice(&encode_to_vec(&comparable)).unwrap();
        assert_eq!(back, comparable);

        let files = FilesArtifact {
            files: vec![("a.csv".into(), "x,y\n1,2\n".into())],
        };
        let back: FilesArtifact = decode_from_slice(&encode_to_vec(&files)).unwrap();
        assert_eq!(back, files);
    }
}
