//! Partitioned incremental stage graph: per-(year, vendor) artifacts plus
//! a cheap merge/reduce, so one changed report re-executes one partition.
//!
//! The monolithic [`super::driver::PipelineDriver`] keys every artifact over
//! the *whole* corpus hash — a single new SPEC Power submission invalidates
//! everything downstream. This module splits the corpus by a key derived
//! from the raw report text (hardware-availability year × CPU vendor) and
//! runs the §II cascade per partition:
//!
//! ```text
//! Split ─▶ part(validate) ─▶ part(comparable) ─▶ Merge ─▶ Study/exports
//!              └──────────▶ part(rows) ─────────────┘
//! ```
//!
//! * **Split** (always runs, cheap): materialize the corpus, assign each
//!   input to a partition, record the global index of every input and a
//!   content hash per partition. Keys are *partition-local* — they never
//!   include global indices, so adding a report to partition A cannot
//!   invalidate partition B through index shifts.
//! * **Per-partition stages** (cached): `validate` (parse + stage 1, plus
//!   the valid→input index map), `comparable` (stage-2 indices), `rows`
//!   (the per-run [`RunRow`] metric extracts every figure reduces over).
//! * **Merge** (always runs, cheap): interleave partition outputs back
//!   into global corpus order. Because the global order of the survivors
//!   of an unchanged partition is unaffected by insertions elsewhere, the
//!   merged valid/comparable sets, filter report, figures and exports are
//!   **byte-identical** to a cold monolithic run — pinned by tests here
//!   and the `partition_incremental` property test.

use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

use spec_model::{CpuVendor, RunResult};
use spec_obs as obs;
use spec_ssj::Settings;
use spec_synth::generate_dataset;
use spec_vfs::Vfs;

use super::artifact::{ComparableArtifact, CorpusArtifact, ValidateArtifact};
use super::cache::{fnv128, ArtifactCache, Fnv128, Hash128};
use super::codec::{encode_to_vec, Codec, CodecError, Reader, Writer};
use super::driver::{CorpusSource, StageStats};
use super::CODE_VERSION;
use crate::figures::common::{extract_rows, RunRow};
use crate::figures::{fig1, fig2, fig3, fig4, fig5, fig6};
use crate::pipeline::{
    stage1_validate_inputs_indexed, stage2_split, AnalysisSet, FilterReport, ParseFailureRecord,
    RawInput,
};
use crate::report::Study;
use crate::table1::Table1;

/// A partition of the corpus: hardware-availability year × CPU vendor.
///
/// Derived from the raw report text *before* parsing (see
/// [`part_key_of_text`]) so the Split stage stays cheap; inputs whose
/// header lines are missing or unparseable land in [`PartKey::UNKNOWN`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PartKey {
    /// Hardware-availability year (`-1` when unknown).
    pub year: i32,
    /// CPU vendor classified from the `CPU Name` header.
    pub vendor: CpuVendor,
}

fn vendor_rank(v: CpuVendor) -> u8 {
    match v {
        CpuVendor::Intel => 0,
        CpuVendor::Amd => 1,
        CpuVendor::Other => 2,
    }
}

impl PartialOrd for PartKey {
    fn partial_cmp(&self, other: &PartKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PartKey {
    fn cmp(&self, other: &PartKey) -> std::cmp::Ordering {
        (self.year, vendor_rank(self.vendor)).cmp(&(other.year, vendor_rank(other.vendor)))
    }
}

impl PartKey {
    /// The sink partition for unreadable inputs and reports without a
    /// recognizable availability/vendor header.
    pub const UNKNOWN: PartKey = PartKey {
        year: -1,
        vendor: CpuVendor::Other,
    };

    /// Stable label, used in cache keys, stats tables and the serve API.
    pub fn label(&self) -> String {
        let vendor = match self.vendor {
            CpuVendor::Intel => "intel",
            CpuVendor::Amd => "amd",
            CpuVendor::Other => "other",
        };
        if self.year < 0 {
            format!("unknown-{vendor}")
        } else {
            format!("{}-{vendor}", self.year)
        }
    }
}

/// Derive the partition key from raw report text without running the full
/// parser, using the parser's own SWAR header scan
/// ([`spec_format::header_lines`]) so the two walks classify lines
/// identically: level rows (any line containing a pipe) are skipped, keys
/// and values are trimmed the same way, and `\r\n` endings behave like
/// `\n`.
///
/// Last occurrence wins for duplicated headers, *including* when the last
/// value is unparseable — the parser overwrites `hw_available` with the
/// ambiguous value (no year), so the key must fall back to `-1` rather
/// than keep a year from an earlier line. [`spec_format::date_year`]
/// encodes exactly the parser's date semantics; the
/// `part_key_agreement` proptest pins the equivalence.
pub fn part_key_of_text(text: &str) -> PartKey {
    let mut year = -1;
    let mut vendor = CpuVendor::Other;
    for (key, value) in spec_format::header_lines(text) {
        match key {
            "Hardware Availability" => year = spec_format::date_year(value).unwrap_or(-1),
            "CPU Name" => vendor = CpuVendor::classify(value),
            _ => {}
        }
    }
    PartKey { year, vendor }
}

/// Partition key of one raw input; unreadable inputs go to
/// [`PartKey::UNKNOWN`].
pub fn part_key_of_input(input: &RawInput) -> PartKey {
    match input {
        RawInput::Text(text) => part_key_of_text(text),
        RawInput::Shared(text) => part_key_of_text(text.as_str()),
        RawInput::IoError(_) => PartKey::UNKNOWN,
    }
}

/// Deterministic shard assignment for a partition: an FNV hash of the
/// partition label folded modulo the shard count. Every process — shard
/// daemons, the fan-out front-end, tests and smoke scripts — derives the
/// same owner for a key from nothing but `(key, shard_count)`, so shards
/// need no coordination and the union over `0..count` covers every
/// partition exactly once.
pub fn shard_of(key: &PartKey, count: usize) -> usize {
    if count <= 1 {
        return 0;
    }
    let bytes = fnv128(key.label().as_bytes()).to_bytes();
    let mut lo = [0u8; 8];
    lo.copy_from_slice(&bytes[..8]);
    (u64::from_le_bytes(lo) % count as u64) as usize
}

/// One shard's identity in an N-way partition split (`--shard i/N`).
/// `index` is zero-based internally; the CLI form is one-based (`1/2`,
/// `2/2`) because "shard 0 of 2" reads like an error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based shard index, `< count`.
    pub index: usize,
    /// Total shard count, `>= 1`.
    pub count: usize,
}

impl ShardSpec {
    /// Parse the CLI form `i/N` with one-based `i` in `1..=N`.
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("shard must look like i/N, got {s:?}"))?;
        let index: usize = i
            .parse()
            .map_err(|_| format!("shard index must be an integer, got {i:?}"))?;
        let count: usize = n
            .parse()
            .map_err(|_| format!("shard count must be an integer, got {n:?}"))?;
        if count == 0 || index == 0 || index > count {
            return Err(format!(
                "shard index must be in 1..={count} (one-based), got {s:?}"
            ));
        }
        Ok(ShardSpec {
            index: index - 1,
            count,
        })
    }

    /// True when this shard owns `key` under the deterministic assignment.
    pub fn owns(&self, key: &PartKey) -> bool {
        shard_of(key, self.count) == self.index
    }
}

/// The kinds of cached per-partition stages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PartStageKind {
    /// Parse + §II stage-1 validity checks for one partition.
    Validate,
    /// §II stage-2 comparability split for one partition.
    Comparable,
    /// Per-run figure metric extraction ([`RunRow`]) for one partition.
    Rows,
}

impl PartStageKind {
    /// Stable name, used in cache keys and stats output.
    pub fn name(self) -> &'static str {
        match self {
            PartStageKind::Validate => "part-validate",
            PartStageKind::Comparable => "part-comparable",
            PartStageKind::Rows => "part-rows",
        }
    }
}

/// Output of a partition's Validate stage: the partition-local
/// [`ValidateArtifact`] plus, for each valid run, the index of the
/// partition input it came from — the merge needs it to place survivors
/// back into global corpus order.
#[derive(Clone, Debug, PartialEq)]
pub struct PartValidateArtifact {
    /// The partition-local valid runs and stage-1 accounting.
    pub validate: ValidateArtifact,
    /// For each valid run, the zero-based partition-input index.
    pub item_index: Vec<u32>,
}

impl Codec for PartValidateArtifact {
    fn encode(&self, w: &mut Writer) {
        self.validate.encode(w);
        self.item_index.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PartValidateArtifact {
            validate: Codec::decode(r)?,
            item_index: Codec::decode(r)?,
        })
    }
}

/// One partition as produced by the Split stage.
#[derive(Clone, Debug)]
struct Partition {
    /// The partition's inputs, in global corpus order.
    items: Vec<(Option<String>, RawInput)>,
    /// Global corpus index of each input.
    gidx: Vec<u32>,
    /// Content hash over the encoded inputs — the partition-local cache
    /// key root. Global indices are deliberately excluded so insertions
    /// elsewhere in the corpus cannot invalidate this partition.
    hash: Hash128,
}

/// Resolved artifacts for one partition plus hit/executed flags per stage.
struct PartResolved {
    validate: PartValidateArtifact,
    comparable: ComparableArtifact,
    rows: Vec<RunRow>,
    /// `(kind, was_cache_hit)` per stage, in execution order.
    flags: [(PartStageKind, bool); 3],
}

/// Per-partition cascade summary for stats output and the serve API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionSummary {
    /// The partition.
    pub key: PartKey,
    /// Raw inputs routed to this partition.
    pub reports: usize,
    /// Stage-1 survivors.
    pub valid: usize,
    /// Stage-2 survivors.
    pub comparable: usize,
    /// Stage executions in this driver's lifetime.
    pub executed: usize,
    /// Cache hits in this driver's lifetime.
    pub hits: usize,
}

/// One partition's per-run row extracts with global corpus indices and
/// comparable flags — the serve snapshot's out-of-core row source.
/// Sorting the union of all partitions' `(gidx, row)` pairs by `gidx`
/// restores exact global corpus order, which is what makes scatter-gather
/// responses byte-identical to a single-process daemon (float reduces are
/// order-sensitive; the merge preserves the monolithic order).
#[derive(Clone, Debug)]
pub struct PartRows {
    /// The partition.
    pub key: PartKey,
    /// Global corpus index of each valid run, aligned with `rows`.
    pub gidx: Vec<u32>,
    /// Stage-2 survivorship flag per valid run, aligned with `rows`.
    pub comparable: Vec<bool>,
    /// [`RunRow`] extract per valid run.
    pub rows: Vec<RunRow>,
}

/// The merged (global-order) view the reduce stages consume.
#[derive(Clone, Debug)]
pub struct MergedAnalysis {
    /// Merged valid runs + full stage-1 accounting, identical to the
    /// monolithic Validate artifact.
    pub validate: ValidateArtifact,
    /// Merged stage-2 indices/accounting, identical to the monolithic
    /// Comparable artifact.
    pub comparable: ComparableArtifact,
    /// [`RunRow`] extracts of the merged valid runs (Figure 1 input).
    pub valid_rows: Vec<RunRow>,
    /// [`RunRow`] extracts of the merged comparable runs (Figures 2–6).
    pub comparable_rows: Vec<RunRow>,
}

fn part_stage_key(kind: PartStageKind, label: &str, dep: Hash128) -> Hash128 {
    let mut h = Fnv128::new();
    h.update_field(CODE_VERSION.as_bytes());
    h.update_field(kind.name().as_bytes());
    h.update_field(label.as_bytes());
    h.update_field(&dep.to_bytes());
    h.finish()
}

/// Load-or-compute one partition stage: cache decode on hit, compute +
/// encode + store on miss. Returns the artifact, its content hash and
/// whether the cache satisfied it.
fn resolve_part_stage<T: Codec>(
    cache: &Option<ArtifactCache>,
    kind: PartStageKind,
    label: &str,
    key: Hash128,
    compute: impl FnOnce() -> T,
) -> (T, Hash128, bool) {
    let mut sp = obs::span(kind.name());
    if let Some(cache) = cache {
        if let Some((value, h)) = cache.load::<T>(&key) {
            sp.cancel();
            if obs::enabled() {
                obs::count(&format!("stage.{}.cache_hit", kind.name()), 1);
            }
            return (value, h, true);
        }
    }
    let value = compute();
    let payload = encode_to_vec(&value);
    let h = match cache {
        Some(cache) => cache.store_encoded(&key, &payload),
        None => fnv128(&payload),
    };
    if obs::enabled() {
        sp.record("kind", "stage");
        sp.record("partition", label);
        sp.record("outcome", "computed");
        sp.record("out_bytes", payload.len());
        sp.observe_into("stage.execute_us");
        obs::count(&format!("stage.{}.executed", kind.name()), 1);
    }
    (value, h, false)
}

/// Run (or fetch) the full per-partition cascade. Pure per partition, so
/// the driver fans partitions out over `tinypool` — the order-preserving
/// `parallel_map` keeps results deterministic at any thread count.
fn resolve_partition(
    cache: &Option<ArtifactCache>,
    key: &PartKey,
    part: &Partition,
) -> PartResolved {
    let label = key.label();
    let vkey = part_stage_key(PartStageKind::Validate, &label, part.hash);
    let (validate, vh, vhit) = resolve_part_stage(cache, PartStageKind::Validate, &label, vkey, || {
        let (valid, report, item_index) = stage1_validate_inputs_indexed(
            part.items
                .iter()
                .map(|(origin, input)| (origin.as_deref(), input.as_ref())),
        );
        PartValidateArtifact {
            validate: ValidateArtifact { valid, report },
            item_index,
        }
    });
    let ckey = part_stage_key(PartStageKind::Comparable, &label, vh);
    let (comparable, _, chit) =
        resolve_part_stage(cache, PartStageKind::Comparable, &label, ckey, || {
            let (indices, stage2) = stage2_split(&validate.validate.valid);
            ComparableArtifact { indices, stage2 }
        });
    let rkey = part_stage_key(PartStageKind::Rows, &label, vh);
    let (rows, _, rhit) = resolve_part_stage(cache, PartStageKind::Rows, &label, rkey, || {
        extract_rows(&validate.validate.valid)
    });
    PartResolved {
        validate,
        comparable,
        rows,
        flags: [
            (PartStageKind::Validate, vhit),
            (PartStageKind::Comparable, chit),
            (PartStageKind::Rows, rhit),
        ],
    }
}

/// Materialize the raw corpus for a source (the partitioned Split stage
/// reads the corpus every run — reading is not parsing, and it is what
/// detects changed inputs).
fn materialize_corpus(
    source: &CorpusSource,
    vfs: &Arc<dyn Vfs>,
) -> spec_diag::Result<CorpusArtifact> {
    match source {
        CorpusSource::Synthetic(config) => {
            let dataset = generate_dataset(config);
            Ok(CorpusArtifact {
                items: dataset
                    .texts()
                    .map(|t| (None, RawInput::Text(t.to_string())))
                    .collect(),
            })
        }
        CorpusSource::Dir(dir) => {
            let files = crate::pipeline::list_report_files(&**vfs, dir)?;
            let items = files
                .iter()
                .map(|path| crate::pipeline::read_input(&**vfs, path))
                .collect();
            Ok(CorpusArtifact { items })
        }
        CorpusSource::Memory(items) => Ok(CorpusArtifact {
            items: items
                .iter()
                .map(|(origin, text)| (origin.clone(), RawInput::Text(text.clone())))
                .collect(),
        }),
    }
}

/// Drives the partitioned stage graph for one configuration.
///
/// Same contract as [`super::driver::PipelineDriver`] — `study()`,
/// `export_figures()`, `export_data()` and `filter_report()` return
/// byte-identical results — but cached work is per (year, vendor)
/// partition, so a warm run after one new report re-executes only that
/// partition's stages plus the always-run Split/Merge reduce.
pub struct PartitionedDriver {
    source: CorpusSource,
    settings: Settings,
    seed: u64,
    vfs: Arc<dyn Vfs>,
    cache: Option<ArtifactCache>,
    shard: Option<ShardSpec>,
    stats: BTreeMap<(PartStageKind, PartKey), StageStats>,
    split_runs: usize,
    merge_runs: usize,
    table1_stats: StageStats,
    partitions: Option<Rc<Vec<(PartKey, Partition)>>>,
    resolved: Option<Rc<Vec<PartResolved>>>,
    merged: Option<Rc<MergedAnalysis>>,
    table1: Option<Rc<Table1>>,
    study: Option<Rc<Study>>,
}

impl PartitionedDriver {
    /// A driver with no cache attached (everything computes in memory).
    pub fn new(source: CorpusSource, settings: Settings, seed: u64) -> PartitionedDriver {
        PartitionedDriver {
            source,
            settings,
            seed,
            vfs: spec_vfs::default_vfs(),
            cache: None,
            shard: None,
            stats: BTreeMap::new(),
            split_runs: 0,
            merge_runs: 0,
            table1_stats: StageStats::default(),
            partitions: None,
            resolved: None,
            merged: None,
            table1: None,
            study: None,
        }
    }

    /// Attach an on-disk artifact cache (`--cache-dir`).
    #[must_use]
    pub fn with_cache(mut self, cache: ArtifactCache) -> PartitionedDriver {
        self.cache = Some(cache);
        self
    }

    /// Replace the filesystem backend used for corpus reads.
    #[must_use]
    pub fn with_vfs(mut self, vfs: Arc<dyn Vfs>) -> PartitionedDriver {
        self.vfs = vfs;
        self
    }

    /// Restrict this driver to the partitions a shard owns (see
    /// [`shard_of`]). Split still reads the whole corpus — global indices
    /// must stay consistent across shards for the scatter-gather merge —
    /// but only owned partitions are resolved, merged and reported.
    #[must_use]
    pub fn with_shard(mut self, shard: ShardSpec) -> PartitionedDriver {
        self.shard = Some(shard);
        self
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&ArtifactCache> {
        self.cache.as_ref()
    }

    /// Per-(stage, partition) invocation counters.
    pub fn stats(&self) -> &BTreeMap<(PartStageKind, PartKey), StageStats> {
        &self.stats
    }

    /// Total per-partition stage executions (0 on a fully warm run).
    pub fn executed_total(&self) -> usize {
        self.stats.values().map(|s| s.executed).sum()
    }

    /// Total per-partition cache hits.
    pub fn hits_total(&self) -> usize {
        self.stats.values().map(|s| s.hits).sum()
    }

    /// How many partitions had at least one stage execution.
    pub fn partitions_executed(&self) -> usize {
        let keys: std::collections::BTreeSet<PartKey> = self
            .stats
            .iter()
            .filter(|(_, s)| s.executed > 0)
            .map(|((_, key), _)| *key)
            .collect();
        keys.len()
    }

    /// Times the always-run Merge reduce ran.
    pub fn merge_runs(&self) -> usize {
        self.merge_runs
    }

    /// Times the always-run Split stage ran.
    pub fn split_runs(&self) -> usize {
        self.split_runs
    }

    /// Split the corpus into partitions (always runs; cheap — no parsing).
    fn split(&mut self) -> spec_diag::Result<Rc<Vec<(PartKey, Partition)>>> {
        if let Some(p) = &self.partitions {
            return Ok(p.clone());
        }
        let mut sp = obs::span("part-split");
        let corpus = materialize_corpus(&self.source, &self.vfs)?;
        let total = corpus.items.len();
        let mut map: BTreeMap<PartKey, Partition> = BTreeMap::new();
        for (g, (origin, input)) in corpus.items.into_iter().enumerate() {
            let key = part_key_of_input(&input);
            let part = map.entry(key).or_insert_with(|| Partition {
                items: Vec::new(),
                gidx: Vec::new(),
                hash: fnv128(&[]),
            });
            part.gidx.push(g as u32);
            part.items.push((origin, input));
        }
        if let Some(shard) = self.shard {
            map.retain(|key, _| shard.owns(key));
        }
        for part in map.values_mut() {
            part.hash = fnv128(&encode_to_vec(&part.items));
        }
        self.split_runs += 1;
        let parts: Vec<(PartKey, Partition)> = map.into_iter().collect();
        if obs::enabled() {
            sp.record("kind", "stage");
            sp.record("outcome", "computed");
            sp.record("inputs", total);
            sp.record("partitions", parts.len());
            sp.observe_into("stage.execute_us");
            obs::count("stage.part-split.executed", 1);
        } else {
            sp.cancel();
        }
        let rc = Rc::new(parts);
        self.partitions = Some(rc.clone());
        Ok(rc)
    }

    /// Resolve every partition's cascade, fanning out over `tinypool`.
    fn resolve_partitions(&mut self) -> spec_diag::Result<Rc<Vec<PartResolved>>> {
        if let Some(r) = &self.resolved {
            return Ok(r.clone());
        }
        let parts = self.split()?;
        let cache = self.cache.clone();
        let results: Vec<PartResolved> =
            tinypool::parallel_map(&parts, |(key, part)| resolve_partition(&cache, key, part));
        for ((key, _), res) in parts.iter().zip(&results) {
            for (kind, hit) in res.flags {
                let stat = self.stats.entry((kind, *key)).or_default();
                if hit {
                    stat.hits += 1;
                } else {
                    stat.executed += 1;
                }
            }
        }
        let rc = Rc::new(results);
        self.resolved = Some(rc.clone());
        Ok(rc)
    }

    /// The always-run Merge reduce: interleave partition outputs back into
    /// global corpus order.
    pub fn merged(&mut self) -> spec_diag::Result<Rc<MergedAnalysis>> {
        if let Some(m) = &self.merged {
            return Ok(m.clone());
        }
        let parts = self.split()?;
        let resolved = self.resolve_partitions()?;
        let mut sp = obs::span("part-merge");

        // (global index, partition position, local valid position) per
        // surviving run; sorting by global index restores corpus order.
        let mut order: Vec<(u32, usize, usize)> = Vec::new();
        for (p, res) in resolved.iter().enumerate() {
            let gidx = &parts[p].1.gidx;
            for (j, &item) in res.validate.item_index.iter().enumerate() {
                order.push((gidx[item as usize], p, j));
            }
        }
        order.sort_unstable();

        let mut valid = Vec::with_capacity(order.len());
        let mut valid_rows = Vec::with_capacity(order.len());
        for &(_, p, j) in &order {
            valid.push(resolved[p].validate.validate.valid[j].clone());
            valid_rows.push(resolved[p].rows[j]);
        }

        // Merge the stage-1 accounting: counts sum; retained parse-failure
        // records map partition-local input indices to global ones and
        // sort, matching the monolithic single-pass order.
        let mut report = FilterReport::default();
        let mut stage2 = BTreeMap::new();
        let mut comparable_flags: Vec<Vec<bool>> = Vec::with_capacity(resolved.len());
        for (p, res) in resolved.iter().enumerate() {
            let part_report = &res.validate.validate.report;
            report.raw += part_report.raw;
            report.not_reports += part_report.not_reports;
            for record in &part_report.parse_failures {
                report.parse_failures.push(ParseFailureRecord {
                    index: parts[p].1.gidx[record.index] as usize,
                    origin: record.origin.clone(),
                    failure: record.failure.clone(),
                });
            }
            for (&issue, &n) in &part_report.stage1 {
                *report.stage1.entry(issue).or_insert(0) += n;
            }
            for (&issue, &n) in &res.comparable.stage2 {
                *stage2.entry(issue).or_insert(0) += n;
            }
            let mut flags = vec![false; res.validate.validate.valid.len()];
            for &i in &res.comparable.indices {
                flags[i as usize] = true;
            }
            comparable_flags.push(flags);
        }
        report.parse_failures.sort_by_key(|r| r.index);
        report.valid = valid.len();

        let mut indices = Vec::new();
        let mut comparable_rows = Vec::new();
        for (i, &(_, p, j)) in order.iter().enumerate() {
            if comparable_flags[p][j] {
                indices.push(i as u32);
                comparable_rows.push(resolved[p].rows[j]);
            }
        }

        self.merge_runs += 1;
        if obs::enabled() {
            sp.record("kind", "stage");
            sp.record("outcome", "computed");
            sp.record("valid", valid.len());
            sp.record("comparable", indices.len());
            sp.observe_into("stage.execute_us");
            obs::count("stage.part-merge.executed", 1);
        } else {
            sp.cancel();
        }

        let merged = MergedAnalysis {
            validate: ValidateArtifact { valid, report },
            comparable: ComparableArtifact { indices, stage2 },
            valid_rows,
            comparable_rows,
        };
        let rc = Rc::new(merged);
        self.merged = Some(rc.clone());
        Ok(rc)
    }

    /// Table I depends only on (settings, seed) — cached globally, not per
    /// partition.
    fn table1(&mut self) -> spec_diag::Result<Rc<Table1>> {
        if let Some(t) = &self.table1 {
            return Ok(t.clone());
        }
        let mut h = Fnv128::new();
        h.update_field(CODE_VERSION.as_bytes());
        h.update_field(b"part-table1");
        h.update_field(&self.seed.to_le_bytes());
        h.update_field(format!("{:?}", self.settings).as_bytes());
        let key = h.finish();
        let mut sp = obs::span("part-table1");
        let table1 = match self.cache.as_ref().and_then(|c| c.load::<Table1>(&key)) {
            Some((table1, _)) => {
                sp.cancel();
                self.table1_stats.hits += 1;
                if obs::enabled() {
                    obs::count("stage.part-table1.cache_hit", 1);
                }
                table1
            }
            None => {
                let table1 = crate::table1::compute(&self.settings, self.seed);
                if let Some(cache) = &self.cache {
                    cache.store_encoded(&key, &encode_to_vec(&table1));
                }
                self.table1_stats.executed += 1;
                if obs::enabled() {
                    sp.record("kind", "stage");
                    sp.record("outcome", "computed");
                    sp.observe_into("stage.execute_us");
                    obs::count("stage.part-table1.executed", 1);
                }
                table1
            }
        };
        let rc = Rc::new(table1);
        self.table1 = Some(rc.clone());
        Ok(rc)
    }

    /// The complete filter accounting (both stages), identical to the
    /// monolithic driver's.
    pub fn filter_report(&mut self) -> spec_diag::Result<FilterReport> {
        let merged = self.merged()?;
        let mut report = merged.validate.report.clone();
        report.stage2 = merged.comparable.stage2.clone();
        report.comparable = merged.comparable.indices.len();
        Ok(report)
    }

    /// The full [`Study`], byte-identical to the monolithic driver's: the
    /// figures reduce over merged rows, everything else over the merged
    /// runs.
    pub fn study(&mut self) -> spec_diag::Result<Rc<Study>> {
        if let Some(s) = &self.study {
            return Ok(s.clone());
        }
        let merged = self.merged()?;
        let table1 = self.table1()?;
        let comparable_runs: Vec<RunResult> = merged
            .comparable
            .indices
            .iter()
            .map(|&i| merged.validate.valid[i as usize].clone())
            .collect();
        let mut report = merged.validate.report.clone();
        report.stage2 = merged.comparable.stage2.clone();
        report.comparable = comparable_runs.len();
        let set = AnalysisSet {
            valid: merged.validate.valid.clone(),
            comparable: comparable_runs.clone(),
            report,
        };
        let study = Study {
            set,
            fig1: fig1::compute_rows(&merged.valid_rows),
            fig2: fig2::compute_rows(&merged.comparable_rows),
            fig3: fig3::compute_rows(&merged.comparable_rows),
            fig4: fig4::compute_rows(&merged.comparable_rows),
            fig5: fig5::compute_rows(&merged.comparable_rows),
            fig6: fig6::compute_rows(&merged.comparable_rows),
            table1: (*table1).clone(),
            correlation: crate::correlation::explore(&comparable_runs, 2021),
            proportionality: crate::proportionality::ep_trend(&comparable_runs),
        };
        let rc = Rc::new(study);
        self.study = Some(rc.clone());
        Ok(rc)
    }

    /// The rendered figure SVGs, `(name, content)` in write order.
    pub fn figure_files(&mut self) -> spec_diag::Result<Vec<(String, String)>> {
        Ok(self.study()?.figure_files())
    }

    /// The rendered CSV exports, `(name, content)` in write order.
    pub fn data_files(&mut self) -> spec_diag::Result<Vec<(String, String)>> {
        Ok(self.study()?.data_files())
    }

    /// Write all figure SVGs into `dir`; returns the written paths.
    pub fn write_figures(
        &mut self,
        dir: &std::path::Path,
    ) -> spec_diag::Result<Vec<std::path::PathBuf>> {
        let files = self.figure_files()?;
        super::write_files_vfs(&*self.vfs, dir, &files)
            .map_err(|e| spec_diag::TrendsError::io("export-figures", &e))
    }

    /// Write all CSV exports into `dir`; returns the written paths.
    pub fn write_data(
        &mut self,
        dir: &std::path::Path,
    ) -> spec_diag::Result<Vec<std::path::PathBuf>> {
        let files = self.data_files()?;
        super::write_files_vfs(&*self.vfs, dir, &files)
            .map_err(|e| spec_diag::TrendsError::io("export-data", &e))
    }

    /// Per-partition row extracts with global indices and comparable
    /// flags (the serve snapshot's out-of-core row source). The union of
    /// all partitions' `(gidx, row)` pairs, sorted by `gidx`, is exactly
    /// [`Self::merged`]'s `valid_rows`/`comparable_rows` — pinned by the
    /// `partition_rows_reassemble_the_merged_rows` test below.
    pub fn partition_rows(&mut self) -> spec_diag::Result<Vec<PartRows>> {
        let parts = self.split()?;
        let resolved = self.resolve_partitions()?;
        Ok(parts
            .iter()
            .zip(resolved.iter())
            .map(|((key, part), res)| {
                let gidx: Vec<u32> = res
                    .validate
                    .item_index
                    .iter()
                    .map(|&item| part.gidx[item as usize])
                    .collect();
                let mut comparable = vec![false; res.rows.len()];
                for &i in &res.comparable.indices {
                    comparable[i as usize] = true;
                }
                PartRows {
                    key: *key,
                    gidx,
                    comparable,
                    rows: res.rows.clone(),
                }
            })
            .collect())
    }

    /// Per-partition cascade summary (reports/valid/comparable counts and
    /// this driver's invocation counters).
    pub fn partition_summary(&mut self) -> spec_diag::Result<Vec<PartitionSummary>> {
        let parts = self.split()?;
        let resolved = self.resolve_partitions()?;
        Ok(parts
            .iter()
            .zip(resolved.iter())
            .map(|((key, part), res)| {
                let executed = self
                    .stats
                    .iter()
                    .filter(|((_, k), _)| k == key)
                    .map(|(_, s)| s.executed)
                    .sum();
                let hits = self
                    .stats
                    .iter()
                    .filter(|((_, k), _)| k == key)
                    .map(|(_, s)| s.hits)
                    .sum();
                PartitionSummary {
                    key: *key,
                    reports: part.items.len(),
                    valid: res.validate.validate.valid.len(),
                    comparable: res.comparable.indices.len(),
                    executed,
                    hits,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::driver::PipelineDriver;
    use spec_format::write_run;
    use spec_model::linear_test_run;

    /// A corpus spanning several (year, vendor) partitions, plus junk.
    fn corpus(n: u32) -> Vec<(Option<String>, String)> {
        let mut items: Vec<(Option<String>, String)> = (0..n)
            .map(|i| {
                let mut r = linear_test_run(i, 1e6 + i as f64 * 1e4, 60.0, 300.0);
                r.dates.hw_available =
                    spec_model::YearMonth::new(2010 + (i % 6) as i32, 1 + (i % 12) as u8).unwrap();
                if i % 3 == 0 {
                    r.system.cpu.name = format!("AMD EPYC {}", 7000 + i);
                }
                (Some(format!("r{i:04}.txt")), write_run(&r))
            })
            .collect();
        items.push((Some("junk.txt".to_string()), "not a report".to_string()));
        let mut sparc = linear_test_run(900, 1e6, 60.0, 300.0);
        sparc.system.cpu.name = "SPARC T3-1".into();
        items.push((None, write_run(&sparc)));
        items
    }

    fn tmp_cache(name: &str) -> ArtifactCache {
        let dir = std::env::temp_dir().join(format!("spec_partition_test_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::open(dir).unwrap()
    }

    #[test]
    fn part_key_scans_header_lines() {
        let r = linear_test_run(3, 1e6, 60.0, 300.0);
        let key = part_key_of_text(&write_run(&r));
        assert_eq!(key.year, r.hw_year());
        assert_eq!(key.vendor, CpuVendor::Intel);
        assert_eq!(part_key_of_text("no headers here"), PartKey::UNKNOWN);
        assert_eq!(
            part_key_of_input(&RawInput::IoError("EIO".into())),
            PartKey::UNKNOWN
        );
        let text = "CPU Name: AMD EPYC 9654\nHardware Availability: Jun-2023\n";
        let key = part_key_of_text(text);
        assert_eq!((key.year, key.vendor), (2023, CpuVendor::Amd));
        assert_eq!(key.label(), "2023-amd");
        assert_eq!(PartKey::UNKNOWN.label(), "unknown-other");
    }

    #[test]
    fn partitioned_study_matches_monolithic() {
        let items = corpus(24);
        let mut mono = PipelineDriver::new(
            CorpusSource::Memory(items.clone()),
            Settings::fast(),
            7,
        );
        let mono_study = mono.study().unwrap();

        let mut part =
            PartitionedDriver::new(CorpusSource::Memory(items), Settings::fast(), 7);
        let part_study = part.study().unwrap();

        assert_eq!(part_study.set.report, mono_study.set.report);
        assert_eq!(part_study.set.valid, mono_study.set.valid);
        assert_eq!(part_study.set.comparable, mono_study.set.comparable);
        assert_eq!(part_study.to_markdown(), mono_study.to_markdown());
        assert_eq!(
            part_study.figure_files(),
            mono_study.figure_files(),
            "figure SVGs must match the monolithic path byte for byte"
        );
        assert_eq!(part_study.data_files(), mono_study.data_files());
    }

    #[test]
    fn warm_run_hits_every_partition_stage() {
        let cache = tmp_cache("warm");
        let items = corpus(24);

        let mut cold = PartitionedDriver::new(
            CorpusSource::Memory(items.clone()),
            Settings::fast(),
            7,
        )
        .with_cache(cache.clone());
        let cold_files = cold.figure_files().unwrap();
        assert!(cold.executed_total() > 0);

        let mut warm =
            PartitionedDriver::new(CorpusSource::Memory(items), Settings::fast(), 7)
                .with_cache(cache.clone());
        let warm_files = warm.figure_files().unwrap();
        assert_eq!(warm.executed_total(), 0, "warm run executes no partition stage");
        assert!(warm.hits_total() > 0);
        assert_eq!(warm_files, cold_files);
        assert_eq!(warm.merge_runs(), 1, "merge always runs");
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn one_new_report_re_executes_one_partition() {
        let cache = tmp_cache("incremental");
        let mut items = corpus(24);

        let mut cold = PartitionedDriver::new(
            CorpusSource::Memory(items.clone()),
            Settings::fast(),
            7,
        )
        .with_cache(cache.clone());
        let _ = cold.figure_files().unwrap();

        // Add one 2012/Intel report; only that partition may re-execute.
        let mut extra = linear_test_run(500, 1.3e6, 55.0, 280.0);
        extra.dates.hw_available = spec_model::YearMonth::new(2012, 3).unwrap();
        items.push((Some("extra.txt".to_string()), write_run(&extra)));
        let touched = PartKey {
            year: 2012,
            vendor: CpuVendor::Intel,
        };

        let mut warm =
            PartitionedDriver::new(CorpusSource::Memory(items.clone()), Settings::fast(), 7)
                .with_cache(cache.clone());
        let warm_files = warm.figure_files().unwrap();
        for ((kind, key), stat) in warm.stats() {
            if *key == touched {
                assert_eq!(stat.executed, 1, "{}/{} executes", kind.name(), key.label());
            } else {
                assert_eq!(stat.executed, 0, "{}/{} stays warm", kind.name(), key.label());
            }
        }
        assert_eq!(warm.partitions_executed(), 1);

        // Byte-identical to a cold full recompute of the grown corpus.
        let mut fresh =
            PartitionedDriver::new(CorpusSource::Memory(items), Settings::fast(), 7);
        assert_eq!(warm_files, fresh.figure_files().unwrap());
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn partition_summary_accounts_for_every_input() {
        let items = corpus(24);
        let total = items.len();
        let mut d = PartitionedDriver::new(CorpusSource::Memory(items), Settings::fast(), 7);
        let summary = d.partition_summary().unwrap();
        assert!(summary.len() > 2, "corpus spans several partitions");
        assert_eq!(summary.iter().map(|s| s.reports).sum::<usize>(), total);
        let report = d.filter_report().unwrap();
        assert_eq!(summary.iter().map(|s| s.valid).sum::<usize>(), report.valid);
        assert_eq!(
            summary.iter().map(|s| s.comparable).sum::<usize>(),
            report.comparable
        );
        // Sorted by key: years ascending.
        let years: Vec<i32> = summary.iter().map(|s| s.key.year).collect();
        let mut sorted = years.clone();
        sorted.sort_unstable();
        assert_eq!(years, sorted);
    }

    #[test]
    fn shard_assignment_is_deterministic_and_covers_every_partition() {
        let keys: Vec<PartKey> = (2006..2024)
            .flat_map(|year| {
                [CpuVendor::Intel, CpuVendor::Amd, CpuVendor::Other]
                    .into_iter()
                    .map(move |vendor| PartKey { year, vendor })
            })
            .chain([PartKey::UNKNOWN])
            .collect();
        for count in [1usize, 2, 3, 4, 8] {
            let mut owned = vec![0usize; count];
            for key in &keys {
                let shard = shard_of(key, count);
                assert!(shard < count);
                assert_eq!(shard, shard_of(key, count), "stable");
                // Exactly one ShardSpec owns the key.
                let owners = (0..count)
                    .filter(|&i| ShardSpec { index: i, count }.owns(key))
                    .count();
                assert_eq!(owners, 1, "{} at count {count}", key.label());
                owned[shard] += 1;
            }
            assert_eq!(owned.iter().sum::<usize>(), keys.len());
            if count > 1 {
                // The hash spreads: no shard owns everything.
                assert!(owned.iter().all(|&n| n < keys.len()), "{owned:?}");
            }
        }
    }

    #[test]
    fn shard_spec_parses_one_based_cli_form() {
        assert_eq!(
            ShardSpec::parse("1/2"),
            Ok(ShardSpec { index: 0, count: 2 })
        );
        assert_eq!(
            ShardSpec::parse("3/3"),
            Ok(ShardSpec { index: 2, count: 3 })
        );
        for bad in ["0/2", "3/2", "2", "a/2", "2/b", "/", ""] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn partition_rows_reassemble_the_merged_rows() {
        let items = corpus(24);
        let mut d = PartitionedDriver::new(CorpusSource::Memory(items), Settings::fast(), 7);
        let merged = d.merged().unwrap();
        let parts = d.partition_rows().unwrap();
        let mut tagged: Vec<(u32, bool, RunRow)> = Vec::new();
        for part in &parts {
            assert_eq!(part.gidx.len(), part.rows.len());
            assert_eq!(part.comparable.len(), part.rows.len());
            for ((&g, &c), &row) in part.gidx.iter().zip(&part.comparable).zip(&part.rows) {
                // The key agrees with the row it owns (valid rows always
                // carry the header-scanned year/vendor).
                assert_eq!((part.key.year, part.key.vendor), (row.hw_year, row.vendor));
                tagged.push((g, c, row));
            }
        }
        tagged.sort_unstable_by_key(|t| t.0);
        let valid: Vec<RunRow> = tagged.iter().map(|t| t.2).collect();
        let comparable: Vec<RunRow> = tagged.iter().filter(|t| t.1).map(|t| t.2).collect();
        assert_eq!(valid, merged.valid_rows);
        assert_eq!(comparable, merged.comparable_rows);
    }

    #[test]
    fn sharded_drivers_union_to_the_full_partition_set() {
        let items = corpus(24);
        let mut full =
            PartitionedDriver::new(CorpusSource::Memory(items.clone()), Settings::fast(), 7);
        let all: Vec<PartKey> = full
            .partition_summary()
            .unwrap()
            .iter()
            .map(|s| s.key)
            .collect();
        let count = 3;
        let mut seen: Vec<PartKey> = Vec::new();
        for index in 0..count {
            let mut shard = PartitionedDriver::new(
                CorpusSource::Memory(items.clone()),
                Settings::fast(),
                7,
            )
            .with_shard(ShardSpec { index, count });
            for summary in shard.partition_summary().unwrap() {
                assert!(ShardSpec { index, count }.owns(&summary.key));
                seen.push(summary.key);
            }
        }
        seen.sort();
        assert_eq!(seen, all, "shards partition the key set exactly");
    }

    #[test]
    fn empty_corpus_is_fine() {
        let mut d = PartitionedDriver::new(CorpusSource::Memory(Vec::new()), Settings::fast(), 7);
        let report = d.filter_report().unwrap();
        assert_eq!(report.raw, 0);
        assert_eq!(report.valid, 0);
        assert!(d.partition_summary().unwrap().is_empty());
        let study = d.study().unwrap();
        assert!(study.set.valid.is_empty());
    }
}
