//! The stage DAG: stage identities, their dependency edges, and the typed
//! [`Stage`] trait each named stage implements.
//!
//! ```text
//! Ingest ─▶ Validate ─▶ Comparable ─▶ Fig2..Fig6, Derive ─▶ ExportData
//!               │                         Fig1 ──────┘      ExportFigures
//!               └────────▶ Fig1
//! ```
//!
//! The driver walks this graph; the stages themselves are pure functions
//! from typed inputs to typed, codec-serializable outputs. Keeping the
//! compute layer free of caching/IO concerns is what lets the golden tests
//! assert stage-graph output ≡ legacy `load_from_texts` exactly.

use spec_model::RunResult;
use spec_ssj::Settings;

use super::artifact::{
    ComparableArtifact, CorpusArtifact, DeriveArtifact, FilesArtifact, ValidateArtifact,
};
use super::codec::Codec;
use crate::figures::{fig1, fig2, fig3, fig4, fig5, fig6};
use crate::pipeline::{stage1_validate_inputs, stage2_split};
use crate::report::Study;

/// Identity of one pipeline stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageId {
    /// Acquire the raw corpus (synthetic generation or directory read).
    Ingest,
    /// Parse + §II stage-1 validity checks → the 960-run valid set.
    Validate,
    /// §II stage-2 comparability filters → indices of the 676-run set.
    Comparable,
    /// Figure 1 aggregate (feature shares; computed over the *valid* set).
    Fig1,
    /// Figure 2 aggregate (per-socket power).
    Fig2,
    /// Figure 3 aggregate (overall efficiency).
    Fig3,
    /// Figure 4 aggregate (relative-efficiency distributions).
    Fig4,
    /// Figure 5 aggregate (idle fraction).
    Fig5,
    /// Figure 6 aggregate (extrapolated idle quotient).
    Fig6,
    /// Table I + §IV correlation + energy-proportionality trend.
    Derive,
    /// Rendered CSV exports.
    ExportData,
    /// Rendered figure SVGs.
    ExportFigures,
}

impl StageId {
    /// Stable name, used in cache keys and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            StageId::Ingest => "ingest",
            StageId::Validate => "validate",
            StageId::Comparable => "comparable",
            StageId::Fig1 => "fig1",
            StageId::Fig2 => "fig2",
            StageId::Fig3 => "fig3",
            StageId::Fig4 => "fig4",
            StageId::Fig5 => "fig5",
            StageId::Fig6 => "fig6",
            StageId::Derive => "derive",
            StageId::ExportData => "export-data",
            StageId::ExportFigures => "export-figures",
        }
    }

    /// The stages whose artifacts feed this one's cache key.
    pub fn deps(self) -> &'static [StageId] {
        match self {
            StageId::Ingest => &[],
            StageId::Validate => &[StageId::Ingest],
            StageId::Comparable => &[StageId::Validate],
            StageId::Fig1 => &[StageId::Validate],
            StageId::Fig2
            | StageId::Fig3
            | StageId::Fig4
            | StageId::Fig5
            | StageId::Fig6
            | StageId::Derive => &[StageId::Validate, StageId::Comparable],
            StageId::ExportData => &[
                StageId::Validate,
                StageId::Comparable,
                StageId::Fig1,
                StageId::Fig2,
                StageId::Fig3,
                StageId::Fig4,
                StageId::Fig5,
                StageId::Fig6,
                StageId::Derive,
            ],
            StageId::ExportFigures => &[
                StageId::Validate,
                StageId::Comparable,
                StageId::Fig1,
                StageId::Fig2,
                StageId::Fig3,
                StageId::Fig4,
                StageId::Fig5,
                StageId::Fig6,
                StageId::Derive,
            ],
        }
    }

    /// Every stage, in one valid topological order.
    pub fn all() -> [StageId; 12] {
        [
            StageId::Ingest,
            StageId::Validate,
            StageId::Comparable,
            StageId::Fig1,
            StageId::Fig2,
            StageId::Fig3,
            StageId::Fig4,
            StageId::Fig5,
            StageId::Fig6,
            StageId::Derive,
            StageId::ExportData,
            StageId::ExportFigures,
        ]
    }
}

/// One named stage of the pipeline: a pure function from a typed input to
/// a typed, serializable artifact. The driver supplies inputs (resolving
/// them from upstream artifacts or the cache) and owns all memoization.
pub trait Stage {
    /// What the stage consumes (borrowed from the driver's artifact store).
    type In<'a>;
    /// What the stage produces — must be codec-serializable to be cached.
    type Out: Codec;

    /// This stage's identity in the graph.
    const ID: StageId;

    /// Run the stage. Pure: same input ⇒ byte-identical output.
    fn run(input: Self::In<'_>) -> spec_diag::Result<Self::Out>;
}

/// Parse + validate (§II stage 1).
pub struct ValidateStage;

impl Stage for ValidateStage {
    type In<'a> = &'a CorpusArtifact;
    type Out = ValidateArtifact;
    const ID: StageId = StageId::Validate;

    fn run(corpus: &CorpusArtifact) -> spec_diag::Result<ValidateArtifact> {
        let (valid, report) = stage1_validate_inputs(
            corpus
                .items
                .iter()
                .map(|(origin, input)| (origin.as_deref(), input.as_ref())),
        );
        Ok(ValidateArtifact { valid, report })
    }
}

/// Comparability filters (§II stage 2).
pub struct ComparableStage;

impl Stage for ComparableStage {
    type In<'a> = &'a ValidateArtifact;
    type Out = ComparableArtifact;
    const ID: StageId = StageId::Comparable;

    fn run(validate: &ValidateArtifact) -> spec_diag::Result<ComparableArtifact> {
        let (indices, stage2) = stage2_split(&validate.valid);
        Ok(ComparableArtifact { indices, stage2 })
    }
}

macro_rules! figure_stage {
    ($stage:ident, $id:expr, $out:ty, $compute:path) => {
        /// Figure aggregate stage.
        pub struct $stage;

        impl Stage for $stage {
            type In<'a> = &'a [RunResult];
            type Out = $out;
            const ID: StageId = $id;

            fn run(runs: &[RunResult]) -> spec_diag::Result<$out> {
                Ok($compute(runs))
            }
        }
    };
}

figure_stage!(Fig1Stage, StageId::Fig1, fig1::Fig1Features, fig1::compute);
figure_stage!(Fig2Stage, StageId::Fig2, fig2::Fig2Power, fig2::compute);
figure_stage!(Fig3Stage, StageId::Fig3, fig3::Fig3Efficiency, fig3::compute);
figure_stage!(Fig4Stage, StageId::Fig4, fig4::Fig4Proportionality, fig4::compute);
figure_stage!(Fig5Stage, StageId::Fig5, fig5::Fig5Idle, fig5::compute);
figure_stage!(Fig6Stage, StageId::Fig6, fig6::Fig6Extrapolated, fig6::compute);

/// Table I + §IV correlation + proportionality trend.
pub struct DeriveStage;

impl Stage for DeriveStage {
    type In<'a> = (&'a [RunResult], &'a Settings, u64);
    type Out = DeriveArtifact;
    const ID: StageId = StageId::Derive;

    fn run((comparable, settings, seed): Self::In<'_>) -> spec_diag::Result<DeriveArtifact> {
        Ok(DeriveArtifact {
            table1: crate::table1::compute(settings, seed),
            correlation: crate::correlation::explore(comparable, 2021),
            proportionality: crate::proportionality::ep_trend(comparable),
        })
    }
}

/// Render the per-figure CSV exports.
pub struct ExportDataStage;

impl Stage for ExportDataStage {
    type In<'a> = &'a Study;
    type Out = FilesArtifact;
    const ID: StageId = StageId::ExportData;

    fn run(study: &Study) -> spec_diag::Result<FilesArtifact> {
        Ok(FilesArtifact {
            files: study.data_files(),
        })
    }
}

/// Render the figure SVGs.
pub struct ExportFiguresStage;

impl Stage for ExportFiguresStage {
    type In<'a> = &'a Study;
    type Out = FilesArtifact;
    const ID: StageId = StageId::ExportFigures;

    fn run(study: &Study) -> spec_diag::Result<FilesArtifact> {
        Ok(FilesArtifact {
            files: study.figure_files(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn all_is_a_topological_order() {
        let mut seen = BTreeSet::new();
        for id in StageId::all() {
            for dep in id.deps() {
                assert!(seen.contains(dep), "{id:?} before its dep {dep:?}");
            }
            seen.insert(id);
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn names_are_unique_and_stable() {
        let names: BTreeSet<&str> = StageId::all().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 12);
        assert_eq!(StageId::Validate.name(), "validate");
        assert_eq!(StageId::ExportFigures.name(), "export-figures");
    }

    #[test]
    fn deps_are_acyclic_from_every_node() {
        // Walk transitively from each stage; a cycle would loop forever, so
        // bound the walk by the node count.
        for start in StageId::all() {
            let mut frontier = vec![start];
            for _ in 0..=StageId::all().len() {
                frontier = frontier
                    .iter()
                    .flat_map(|s| s.deps().iter().copied())
                    .collect();
                if frontier.is_empty() {
                    break;
                }
            }
            assert!(frontier.is_empty(), "cycle reachable from {start:?}");
        }
    }
}
