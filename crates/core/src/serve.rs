//! # `spec-trends serve` — the warm-partition query daemon
//!
//! A std-only HTTP/1.1 server over [`std::net`] that answers figure and
//! data queries straight from warm partition artifacts. The daemon keeps
//! one immutable [`Snapshot`] — pre-rendered figures/CSVs plus an
//! out-of-core per-partition row store (`SegFrame`-backed, spilling
//! cold segments checksummed to disk under `max_resident_mb`) — behind
//! an `RwLock<Arc<_>>`; every request reads whichever snapshot is
//! current, so a refresh that fails mid-flight — including under
//! `FaultVfs` chaos — can never produce a torn response: the old
//! snapshot simply stays live.
//!
//! Endpoints (all `GET`):
//!
//! | path            | response                                        |
//! |-----------------|-------------------------------------------------|
//! | `/`             | plain-text index of endpoints                   |
//! | `/figures/<n>`  | Figure *n* (1–6) as SVG                         |
//! | `/data/<n>`     | the CSV behind figure *n*                       |
//! | `/stats`        | cascade, partitions, lifecycle, obs metrics     |
//! | `/healthz`      | liveness probe (always 200 while the process is up) |
//! | `/readyz`       | readiness probe (503 once draining)             |
//! | `/shutdown`     | begins graceful drain                           |
//! | `/shard/meta`   | shard-mode only: generation, cascade, owned partitions |
//! | `/shard/rows`   | shard-mode only: codec-framed filtered rows     |
//!
//! `/figures/<n>` and `/data/<n>` accept `?year=YYYY`, `?year=YYYY-YYYY`
//! ranges, `?vendor=v[,v...]` lists over `intel|amd|other`, and
//! `?agg=year` (yearly-mean CSVs, `/data/2|3|5|6` only); malformed
//! filters answer typed `400`s. Filtered responses are recomputed from
//! the snapshot's row store via the same `compute_rows` reduce the
//! pipeline uses, then memoized per snapshot in an LRU bounded by
//! `memo_cap` (`serve.memo_entries` / `serve.memo_evictions` gauges) so
//! repeated queries are sub-millisecond. Unfiltered responses serve the
//! stage graph's cached export bytes unchanged.
//!
//! ## Snapshots, shards and fan-out (see DESIGN.md §17)
//!
//! [`SnapshotMode::Graph`] builds through the partitioned stage graph;
//! [`SnapshotMode::Stream`] streams the corpus (optionally `scale`×
//! replicated) through [`crate::stream::StreamRows`] straight into the
//! row store, so a ×100 corpus serves in fixed RSS. Both modes produce
//! byte-identical responses.
//!
//! `ServeConfig::shard = Some(i/N)` keeps only the partitions a
//! deterministic hash of the partition key assigns to shard *i*;
//! `ServeConfig::fan_out = [addr, ...]` runs a front end with **no local
//! snapshot** that scatters each filtered query to every shard over
//! keep-alive HTTP/1.1 (`/shard/rows`), gathers the codec-framed
//! partial rows, re-sorts them by global row index and runs the same
//! reduce — responses are byte-identical to a single-process daemon. A
//! dead shard degrades that query to `503` + `Retry-After` inside the
//! request deadline; `/stats` grows a per-shard table (address, owned
//! partitions, proxied requests, p99, last error).
//!
//! ## Connection lifecycle (see [`net`] and DESIGN.md §15)
//!
//! Connections are **HTTP/1.1 keep-alive** with a hard lifecycle: one
//! acceptor thread admits sockets into a **bounded queue** in front of
//! the worker pool; a full queue (or a drain in progress) sheds the
//! connection with `503` + `Retry-After` instead of piling up threads.
//! Workers enforce a per-connection idle budget, a per-request read
//! deadline measured on an injectable [`net::Clock`] (slow-loris clients
//! are shed deterministically), a fixed write budget, request-head byte
//! caps (`431`), and a requests-per-connection cap. The per-request
//! deadline propagates into the filtered-recompute path: a recompute
//! that blows its budget answers `503`, is **not** memoized, and leaves
//! the snapshot untouched.
//!
//! `/shutdown` (or [`Server::shutdown`]) begins a **graceful drain**:
//! admissions stop, queued connections are shed, in-flight requests
//! finish (or deadline out) within `drain_timeout_ms`, and every
//! terminal connection is accounted in `/stats` — `conns_offered` always
//! equals shed + accepted (+ transiently queued), and accepted always
//! equals completed + timed-out + aborted (+ transiently active). The
//! `tests/serve_chaos.rs` suite pins that balance under seeded
//! adversarial clients from [`faultnet`].
//!
//! A watcher thread polls the corpus directory's fingerprint and rebuilds
//! the [`PartitionedDriver`] on change — only the touched (year, vendor)
//! partition's stages re-execute, which `/stats` reports per refresh.
//!
//! Request handling is panic-proof: each connection runs under
//! `catch_unwind`, malformed requests map to typed 4xx/5xx through the
//! [`net`] parser (`405` known method, `501` unknown method, `431` header
//! flood, `414` query flood, `400` bodies/garbage), and every request
//! records a `spec-obs` span plus log₂-µs latency histograms
//! (`serve.request_us`, `serve.<endpoint>_us`, `serve.queue_wait_us`,
//! `serve.conn_requests`) and the shed/timeout counters
//! (`serve.shed`, `serve.timeout.{read,write,deadline}`,
//! `serve.drain_completed`, `serve.queue_depth`, `serve.inflight`).

pub mod faultnet;
pub mod net;
mod rows;

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spec_diag::TrendsError;
use spec_model::CpuVendor;
use spec_obs as obs;
use spec_ssj::Settings;
use spec_vfs::Vfs;
use tinyframe::{Column, Frame};

use crate::export::{fig1_frame, fig4_frame, series_frame};
use crate::figures::common::RunRow;
use crate::figures::{fig1, fig2, fig3, fig4, fig5, fig6};
use crate::pipeline::{FilterReport, RawInput};
use crate::stage::{
    decode_from_slice, encode_to_vec, ArtifactCache, CorpusSource, PartKey, PartitionSummary,
    PartitionedDriver, ShardSpec,
};
use crate::stream::StreamRows;

pub use net::Limits;

/// Reports per streaming ingest batch (the CLI's ingest batch size).
const STREAM_BATCH: usize = 4096;

/// Map a row-store frame error into the serve error category.
fn frame_err(e: tinyframe::FrameError) -> TrendsError {
    TrendsError::config("serve", format!("row store: {e}"))
}

/// Which build path produces snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SnapshotMode {
    /// Drive the partitioned stage graph (artifact-cached, incremental).
    #[default]
    Graph,
    /// Stream the corpus in bounded batches straight into the out-of-core
    /// row store: fixed RSS, no artifact cache — the ×100 hosting path.
    Stream,
}

/// How the daemon is built and where it listens.
#[derive(Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Where the corpus comes from (usually [`CorpusSource::Dir`]).
    pub source: CorpusSource,
    /// Simulation settings folded into derive-stage keys.
    pub settings: Settings,
    /// Table 1 seed.
    pub seed: u64,
    /// Artifact cache shared with `analyze` (warm partitions).
    pub cache: Option<ArtifactCache>,
    /// Worker threads serving admitted connections.
    pub threads: usize,
    /// Directory to poll for corpus changes (None disables the watcher).
    pub watch: Option<PathBuf>,
    /// Watcher poll interval.
    pub poll_ms: u64,
    /// Filesystem backend for corpus reads (chaos-injectable).
    pub vfs: Arc<dyn Vfs>,
    /// Connection-lifecycle limits (queue depth, deadlines, byte caps).
    pub limits: Limits,
    /// Time source for request deadlines (chaos-injectable).
    pub clock: Arc<dyn net::Clock>,
    /// Snapshot build path: stage graph (cached) or streaming (bounded RSS).
    pub mode: SnapshotMode,
    /// Synthetic corpus replication factor (streaming builds only).
    pub scale: u32,
    /// Resident row-store budget in MiB; rows past it spill to checksummed
    /// segment files. `None` keeps every row resident.
    pub max_resident_mb: Option<usize>,
    /// Spill directory for out-of-core rows (a temp dir when `None`).
    pub spill_dir: Option<PathBuf>,
    /// Filtered-response memo capacity (LRU entries per snapshot).
    pub memo_cap: usize,
    /// Serve only the partitions this shard owns (`--shard i/N`).
    pub shard: Option<ShardSpec>,
    /// Scatter queries to these shard daemons instead of local rows
    /// (`--fan-out addr,addr,...`); mutually exclusive with `shard`.
    pub fan_out: Vec<String>,
}

impl ServeConfig {
    /// A config with conventional defaults for `source`.
    pub fn new(source: CorpusSource) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            source,
            settings: Settings::default(),
            seed: 42,
            cache: None,
            threads: 4,
            watch: None,
            poll_ms: 500,
            vfs: spec_vfs::default_vfs(),
            limits: Limits::default(),
            clock: Arc::new(net::SystemClock),
            mode: SnapshotMode::Graph,
            scale: 1,
            max_resident_mb: None,
            spill_dir: None,
            memo_cap: 256,
            shard: None,
            fan_out: Vec::new(),
        }
    }
}

/// One rendered HTTP response body.
struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    /// 503s carry `Retry-After` so well-behaved clients back off.
    retry_after: bool,
}

impl Response {
    fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type,
            body: body.into(),
            retry_after: false,
        }
    }

    fn error(status: u16, detail: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: format!("{} {}\n{detail}\n", status, status_text(status)).into_bytes(),
            retry_after: false,
        }
    }

    /// A 503 with `Retry-After: 1` — the load-shedding / drain / blown-
    /// deadline answer.
    fn unavailable(detail: &str) -> Response {
        Response {
            retry_after: true,
            ..Response::error(503, detail)
        }
    }

    fn reject(reject: &net::Reject) -> Response {
        Response::error(reject.status, &reject.detail)
    }

    /// Render head + body. `keep_alive` decides the `Connection` header;
    /// the client uses it to learn whether this response ends the
    /// connection.
    fn render(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        if self.retry_after {
            head.push_str("Retry-After: 1\r\n");
        }
        if self.status == 405 {
            head.push_str("Allow: GET\r\n");
        }
        head.push_str("\r\n");
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Internal Server Error",
    }
}

/// A bounded LRU of memoized responses. `tick` is a logical clock
/// bumped on every touch; reaching `cap` evicts the least-recently
/// touched entry, so distinct query strings can no longer grow the memo
/// without bound. Entry count and eviction total surface in `/stats` as
/// `serve.memo_entries` / `serve.memo_evictions`.
struct Memo {
    cap: usize,
    tick: u64,
    evictions: u64,
    map: HashMap<String, (u64, Arc<Response>)>,
}

impl Memo {
    fn new(cap: usize) -> Memo {
        Memo {
            cap: cap.max(1),
            tick: 0,
            evictions: 0,
            map: HashMap::new(),
        }
    }

    fn get(&mut self, key: &str) -> Option<Arc<Response>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(t, response)| {
            *t = tick;
            Arc::clone(response)
        })
    }

    fn insert(&mut self, key: String, response: Arc<Response>) {
        self.tick += 1;
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone());
            if let Some(oldest) = oldest {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.map.insert(key, (self.tick, response));
        obs::set_gauge("serve.memo_entries", self.map.len() as i64);
        obs::set_gauge("serve.memo_evictions", self.evictions as i64);
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn clear(&mut self) {
        self.map.clear();
    }
}

/// Everything a request can be answered from, built once per refresh.
/// Immutable after construction except the out-of-core row store (whose
/// spill slots shuffle under queries) and the response memo.
struct Snapshot {
    /// Monotonic refresh counter (0 = the startup build).
    generation: u64,
    /// Full §II cascade accounting (shard builds: the owned slice).
    report: FilterReport,
    /// Out-of-core `(gidx, comparable, row)` store, per partition — the
    /// filtered-query and scatter-gather row source.
    rows: Mutex<rows::RowStore>,
    /// Pre-rendered figure SVGs, by file name.
    figure_files: Vec<(String, String)>,
    /// Pre-rendered CSVs, by file name.
    data_files: Vec<(String, String)>,
    /// Per-partition cascade summary from the build that made this.
    partitions: Vec<PartitionSummary>,
    /// Stage executions during the refresh that built this snapshot.
    executed: usize,
    /// Cache hits during the refresh that built this snapshot.
    hits: usize,
    /// Partitions with ≥1 execution during the refresh.
    partitions_executed: usize,
    /// Which build path produced this snapshot.
    mode: SnapshotMode,
    /// Memoized filtered responses, keyed by `path?query` (LRU-bounded).
    memo: Mutex<Memo>,
}

impl Snapshot {
    fn build(config: &ServeConfig, generation: u64) -> spec_diag::Result<Snapshot> {
        match config.mode {
            SnapshotMode::Graph => Snapshot::build_graph(config, generation),
            SnapshotMode::Stream => Snapshot::build_stream(config, generation),
        }
    }

    /// The per-generation row store, spilling once `--max-resident-mb`
    /// is set. Each generation gets its own scratch subdirectory so a
    /// refresh can never collide with the snapshot still serving, and
    /// the store removes it on drop.
    fn row_store(config: &ServeConfig, generation: u64) -> spec_diag::Result<rows::RowStore> {
        let spill = config.max_resident_mb.map(|mb| {
            let dir = config
                .spill_dir
                .clone()
                .unwrap_or_else(std::env::temp_dir)
                .join(format!(
                    "spec-serve-spill-{}-gen{generation}",
                    std::process::id()
                ));
            (dir, mb.saturating_mul(1024 * 1024).max(1))
        });
        rows::RowStore::new(rows::RowStoreConfig {
            spill,
            cleanup: true,
            ..rows::RowStoreConfig::default()
        })
        .map_err(frame_err)
    }

    /// Build a snapshot by driving the partitioned stage graph. Runs
    /// entirely in the calling thread (the driver is single-threaded
    /// state; partition work inside still fans out over `tinypool`).
    fn build_graph(config: &ServeConfig, generation: u64) -> spec_diag::Result<Snapshot> {
        let mut sp = obs::span("serve.refresh");
        let mut driver = PartitionedDriver::new(
            config.source.clone(),
            config.settings.clone(),
            config.seed,
        )
        .with_vfs(Arc::clone(&config.vfs));
        if let Some(cache) = &config.cache {
            driver = driver.with_cache(cache.clone());
        }
        if let Some(shard) = config.shard {
            driver = driver.with_shard(shard);
        }
        let report = driver.filter_report()?;
        let figure_files = driver.figure_files()?;
        let data_files = driver.data_files()?;
        let partitions = driver.partition_summary()?;
        let mut store = Snapshot::row_store(config, generation)?;
        for part in driver.partition_rows()? {
            store.push_part(&part).map_err(frame_err)?;
        }
        store.seal().map_err(frame_err)?;
        sp.record("generation", generation);
        sp.record("executed", driver.executed_total());
        sp.observe_into("serve.refresh_us");
        Ok(Snapshot {
            generation,
            report,
            rows: Mutex::new(store),
            figure_files,
            data_files,
            partitions,
            executed: driver.executed_total(),
            hits: driver.hits_total(),
            partitions_executed: driver.partitions_executed(),
            mode: SnapshotMode::Graph,
            memo: Mutex::new(Memo::new(config.memo_cap)),
        })
    }

    /// Build a snapshot by streaming the corpus in bounded batches
    /// straight into the row store — fixed RSS, no stage-graph
    /// artifacts. The exports are then rendered from one full-row
    /// query; by the stream/merge-order invariant those bytes equal the
    /// stage graph's cached exports for the same corpus.
    fn build_stream(config: &ServeConfig, generation: u64) -> spec_diag::Result<Snapshot> {
        let mut sp = obs::span("serve.refresh");
        let shard = config.shard;
        let owns = |key: &PartKey| shard.is_none_or(|s| s.owns(key));
        let mut stream = StreamRows::new();
        let mut store = Snapshot::row_store(config, generation)?;
        {
            let mut sink = |key: PartKey, gidx: u32, comparable: bool, row: RunRow| {
                if owns(&key) {
                    store.push(key, gidx, comparable, row)
                } else {
                    Ok(())
                }
            };
            match &config.source {
                CorpusSource::Synthetic(synth) => {
                    let base = spec_synth::generate_dataset(synth);
                    spec_synth::for_each_scaled_batch(
                        &base,
                        config.scale.max(1),
                        STREAM_BATCH,
                        |texts| stream.push_batch(texts, &mut sink),
                    )
                    .map_err(frame_err)?;
                }
                CorpusSource::Dir(dir) => {
                    let files = crate::pipeline::list_report_files(&*config.vfs, dir)?;
                    for chunk in files.chunks(STREAM_BATCH) {
                        let items: Vec<(Option<String>, RawInput)> = chunk
                            .iter()
                            .map(|path| crate::pipeline::read_input(&*config.vfs, path))
                            .collect();
                        stream
                            .push_input_batch(&items, &mut sink)
                            .map_err(frame_err)?;
                    }
                }
                CorpusSource::Memory(items) => {
                    for chunk in items.chunks(STREAM_BATCH) {
                        let owned: Vec<(Option<String>, RawInput)> = chunk
                            .iter()
                            .map(|(origin, text)| {
                                (origin.clone(), RawInput::Text(text.clone()))
                            })
                            .collect();
                        stream
                            .push_input_batch(&owned, &mut sink)
                            .map_err(frame_err)?;
                    }
                }
            }
        }
        store.seal().map_err(frame_err)?;
        let mut query_sp = obs::span("serve.refresh.full_query");
        let tagged = store.query(|_| true, |_| true).map_err(frame_err)?;
        let (valid, comparable) = split_tagged(&tagged);
        drop(tagged);
        query_sp.observe_into("serve.refresh_full_query_us");
        let figure_files: Vec<(String, String)> = (1..=6)
            .map(|n| {
                let mut fig_sp = obs::span("serve.refresh.render_figure");
                fig_sp.record("figure", u64::from(n));
                let rendered = render_figure(n, &valid, &comparable);
                fig_sp.observe_into("serve.refresh_render_us");
                (figure_file_name(n).to_string(), rendered)
            })
            .collect();
        let data_files: Vec<(String, String)> = (1..=6)
            .map(|n| {
                let mut data_sp = obs::span("serve.refresh.render_data");
                data_sp.record("data", u64::from(n));
                let rendered = render_data(n, &valid, &comparable);
                data_sp.observe_into("serve.refresh_render_us");
                (data_file_name(n).to_string(), rendered)
            })
            .collect();
        let partitions: Vec<PartitionSummary> = stream
            .partition_counts()
            .iter()
            .filter(|(key, _)| owns(key))
            .map(|(key, counts)| PartitionSummary {
                key: *key,
                reports: counts.raw,
                valid: counts.valid,
                comparable: counts.comparable,
                executed: 0,
                hits: 0,
            })
            .collect();
        let report = if shard.is_some() {
            // A shard's cascade header counts the partitions it owns.
            let mut report = FilterReport::default();
            report.raw = partitions.iter().map(|p| p.reports).sum();
            report.valid = partitions.iter().map(|p| p.valid).sum();
            report.comparable = partitions.iter().map(|p| p.comparable).sum();
            report
        } else {
            stream.report().clone()
        };
        sp.record("generation", generation);
        sp.record("rows", store.n_rows());
        sp.observe_into("serve.refresh_us");
        Ok(Snapshot {
            generation,
            report,
            rows: Mutex::new(store),
            figure_files,
            data_files,
            partitions,
            executed: 0,
            hits: 0,
            partitions_executed: 0,
            mode: SnapshotMode::Stream,
            memo: Mutex::new(Memo::new(config.memo_cap)),
        })
    }

    fn file(&self, files: &[(String, String)], name: &str) -> Option<Arc<Response>> {
        let content_type = if name.ends_with(".svg") {
            "image/svg+xml"
        } else {
            "text/csv; charset=utf-8"
        };
        files
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, body)| Arc::new(Response::ok(content_type, body.as_bytes())))
    }
}

/// Aggregation level for `/data` responses (`agg=year` groups the CSV
/// by vendor × hardware year; figures — and the share/grid CSVs, which
/// carry no yearly-mean series — reject it with 400).
#[derive(Clone, Copy, Default, PartialEq, Eq)]
enum AggLevel {
    #[default]
    None,
    Year,
}

/// The bit each vendor occupies in a [`RowFilter`] vendor mask.
fn vendor_bit(vendor: CpuVendor) -> u8 {
    match vendor {
        CpuVendor::Intel => 0,
        CpuVendor::Amd => 1,
        CpuVendor::Other => 2,
    }
}

/// A parsed `?year=`/`?vendor=`/`?agg=` filter over the row extracts.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
struct RowFilter {
    /// Inclusive hardware-year range (`year=2010` or `year=2010-2015`).
    years: Option<(i32, i32)>,
    /// Accepted vendors as a [`vendor_bit`] mask (`vendor=intel,amd`).
    vendors: Option<u8>,
    agg: AggLevel,
}

impl RowFilter {
    fn is_empty(self) -> bool {
        self.years.is_none() && self.vendors.is_none() && self.agg == AggLevel::None
    }

    fn matches_row(self, row: &RunRow) -> bool {
        self.years
            .is_none_or(|(lo, hi)| (lo..=hi).contains(&row.hw_year))
            && self
                .vendors
                .is_none_or(|mask| mask & (1 << vendor_bit(row.vendor)) != 0)
    }

    /// Partition-pruning predicate: whether any row keyed here can match.
    fn matches_key(self, key: &PartKey) -> bool {
        self.years
            .is_none_or(|(lo, hi)| (lo..=hi).contains(&key.year))
            && self
                .vendors
                .is_none_or(|mask| mask & (1 << vendor_bit(key.vendor)) != 0)
    }
}

/// Parse the query string; unknown keys and malformed values are client
/// errors (400), reported through a [`spec_diag`] config-category error.
///
/// Grammar: `year=YYYY` or `year=YYYY-YYYY` (inclusive range),
/// `vendor=v[,v...]` with each v in intel|amd|other, `agg=none|year`.
fn parse_filter(query: &str) -> Result<RowFilter, TrendsError> {
    let bad = |detail: String| TrendsError::config("serve", detail);
    let mut filter = RowFilter::default();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "year" => {
                let parse = |s: &str| {
                    s.parse::<i32>().map_err(|_| {
                        bad(format!(
                            "year must be an integer or a YYYY-YYYY range, got {value:?}"
                        ))
                    })
                };
                let range = match value.split_once('-') {
                    Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                    None => {
                        let year = parse(value)?;
                        (year, year)
                    }
                };
                if range.0 > range.1 {
                    return Err(bad(format!("year range is reversed: {value:?}")));
                }
                filter.years = Some(range);
            }
            "vendor" => {
                let mut mask = 0u8;
                for token in value.split(',') {
                    mask |= 1 << vendor_bit(match token.to_ascii_lowercase().as_str() {
                        "intel" => CpuVendor::Intel,
                        "amd" => CpuVendor::Amd,
                        "other" => CpuVendor::Other,
                        _ => {
                            return Err(bad(format!(
                                "vendor must be a comma list of intel|amd|other, got {token:?}"
                            )))
                        }
                    });
                }
                filter.vendors = Some(mask);
            }
            "agg" => {
                filter.agg = match value {
                    "none" => AggLevel::None,
                    "year" => AggLevel::Year,
                    _ => return Err(bad(format!("agg must be none|year, got {value:?}"))),
                };
            }
            _ => return Err(bad(format!("unknown query parameter {key:?}"))),
        }
    }
    Ok(filter)
}

/// Canonical export file name for figure `n` (the stage graph's bytes).
fn figure_file_name(n: u8) -> &'static str {
    match n {
        1 => "fig1_shares.svg",
        2 => "fig2_power.svg",
        3 => "fig3_efficiency.svg",
        4 => "fig4_grid.svg",
        5 => "fig5_idle.svg",
        _ => "fig6_extrapolated.svg",
    }
}

/// Canonical export file name for figure `n`'s data CSV.
fn data_file_name(n: u8) -> &'static str {
    match n {
        1 => "fig1_shares.csv",
        2 => "fig2_per_socket_power.csv",
        3 => "fig3_overall_efficiency.csv",
        4 => "fig4_relative_efficiency.csv",
        5 => "fig5_idle_fraction.csv",
        _ => "fig6_extrapolated_quotient.csv",
    }
}

/// Render figure `n` over (possibly filtered) rows with the same
/// `compute_rows` reduce and chart geometry the export stages use.
fn render_figure(n: u8, valid: &[RunRow], comparable: &[RunRow]) -> String {
    match n {
        1 => fig1::compute_rows(valid).share_chart().to_svg(860, 520),
        2 => fig2::compute_rows(comparable).chart().to_svg(860, 520),
        3 => fig3::compute_rows(comparable).chart().to_svg(860, 520),
        4 => {
            let fig = fig4::compute_rows(comparable);
            let panels: Vec<tinyplot::Chart> =
                fig4::LOADS.iter().map(|&load| fig.chart(load)).collect();
            tinyplot::render_grid(&panels, 2, 640, 430)
        }
        5 => fig5::compute_rows(comparable).chart().to_svg(860, 520),
        _ => fig6::compute_rows(comparable).chart().to_svg(860, 520),
    }
}

/// Render figure `n`'s CSV over (possibly filtered) rows with the same
/// frame builders `Study::data_files` uses.
fn render_data(n: u8, valid: &[RunRow], comparable: &[RunRow]) -> String {
    match n {
        1 => fig1_frame(&fig1::compute_rows(valid)).to_csv(),
        2 => series_frame(&fig2::compute_rows(comparable).scatter, "w_per_socket").to_csv(),
        3 => series_frame(&fig3::compute_rows(comparable).scatter, "overall_eff").to_csv(),
        4 => fig4_frame(&fig4::compute_rows(comparable)).to_csv(),
        5 => series_frame(&fig5::compute_rows(comparable).scatter, "idle_fraction").to_csv(),
        _ => series_frame(&fig6::compute_rows(comparable).scatter, "extrap_quotient").to_csv(),
    }
}

/// Split `(gidx, comparable, row)` tuples — already sorted by global
/// corpus index — into the valid/comparable row vectors every render
/// path consumes. The order is exactly the monolithic merged order,
/// which makes the float reduces (and therefore the rendered bytes)
/// identical whether the rows came from one process or a gather.
fn split_tagged(tagged: &[rows::TaggedRow]) -> (Vec<RunRow>, Vec<RunRow>) {
    let mut valid = Vec::with_capacity(tagged.len());
    let mut comparable = Vec::new();
    for (_, comp, row) in tagged {
        valid.push(*row);
        if *comp {
            comparable.push(*row);
        }
    }
    (valid, comparable)
}

/// `agg=year`: the per-vendor yearly-mean series behind figure `n`'s
/// trend lines, as CSV. Only figures 2/3/5/6 carry such a series.
fn render_agg_year(n: u8, comparable: &[RunRow]) -> String {
    let (metric, means) = match n {
        2 => (
            "w_per_socket_mean",
            fig2::compute_rows(comparable).yearly_means,
        ),
        3 => (
            "overall_eff_mean",
            fig3::compute_rows(comparable).yearly_means,
        ),
        5 => (
            "idle_fraction_mean",
            fig5::compute_rows(comparable).yearly_means,
        ),
        _ => (
            "extrap_quotient_mean",
            fig6::compute_rows(comparable).yearly_means,
        ),
    };
    let mut vendors = Vec::new();
    let mut years = Vec::new();
    let mut values = Vec::new();
    for (vendor, points) in &means {
        for &(year, mean) in points {
            vendors.push(vendor.label().to_string());
            years.push(i64::from(year));
            values.push(mean);
        }
    }
    Frame::from_columns([
        ("vendor", Column::Str(vendors)),
        ("year", Column::I64(years)),
        (metric, Column::F64(values)),
    ])
    .expect("aggregate frame")
    .to_csv()
}

/// Which row-backed endpoint family a path names.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Figures,
    Data,
}

/// Parse and validate a figure/data target: path shape, figure number,
/// filter grammar, and the agg-vs-endpoint rule. Any failure is the
/// exact typed 4xx response to send — shared by the local and fan-out
/// paths so both reject malformed input identically.
fn parse_target(path: &str, query: &str) -> Result<(Kind, u8, RowFilter), Response> {
    let (kind, rest) = if let Some(rest) = path.strip_prefix("/figures/") {
        (Kind::Figures, rest)
    } else if let Some(rest) = path.strip_prefix("/data/") {
        (Kind::Data, rest)
    } else {
        return Err(Response::error(404, &format!("no such endpoint {path:?}")));
    };
    let Ok(n @ 1..=6) = rest.parse::<u8>() else {
        return Err(Response::error(
            404,
            &format!("figure number must be 1..=6, got {rest:?}"),
        ));
    };
    let filter = match parse_filter(query) {
        Ok(filter) => filter,
        // Malformed request → 4xx through the spec-diag error, never a
        // panic; the category names the config-error class.
        Err(err) => {
            return Err(Response::error(
                400,
                &format!("[{}] {err}", err.kind.category()),
            ))
        }
    };
    if filter.agg == AggLevel::Year {
        if kind == Kind::Figures {
            return Err(Response::error(
                400,
                "agg=year applies to /data/<n> endpoints only",
            ));
        }
        if n == 1 || n == 4 {
            return Err(Response::error(
                400,
                "agg=year needs a yearly-mean series: use /data/2, /data/3, /data/5 or /data/6",
            ));
        }
    }
    Ok((kind, n, filter))
}

/// Render one filtered (or aggregated) response from gathered rows.
fn render_filtered(kind: Kind, n: u8, filter: RowFilter, tagged: &[rows::TaggedRow]) -> Response {
    let (valid, comparable) = split_tagged(tagged);
    match (kind, filter.agg) {
        (Kind::Figures, _) => Response::ok("image/svg+xml", render_figure(n, &valid, &comparable)),
        (Kind::Data, AggLevel::None) => Response::ok(
            "text/csv; charset=utf-8",
            render_data(n, &valid, &comparable),
        ),
        (Kind::Data, AggLevel::Year) => {
            Response::ok("text/csv; charset=utf-8", render_agg_year(n, &comparable))
        }
    }
}

/// Terminal fate of one admitted connection (exactly one per connection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Outcome {
    /// Served to a clean close (including zero-request clean EOFs and
    /// keep-alive idle expiry after at least one response).
    Completed,
    /// Killed by a read, write or idle timeout — a shed slow client.
    TimedOut,
    /// Torn off by the client or a hard socket error mid-lifecycle.
    Aborted,
}

/// Connection-lifecycle accounting. Plain atomics (not `spec-obs`, which
/// is off unless tracing is enabled) so `/stats` balances **exactly**:
///
/// ```text
/// offered  == shed + accepted + queued(now)
/// accepted == completed + timed_out + aborted + active(now)
/// ```
#[derive(Default)]
struct Lifecycle {
    /// Connections the acceptor saw (excluding post-drain arrivals).
    offered: AtomicU64,
    /// Refused with 503 + `Retry-After` (queue full, or drain).
    shed: AtomicU64,
    /// Handed to a worker.
    accepted: AtomicU64,
    /// Currently being served.
    active: AtomicU64,
    /// Terminal: clean close.
    completed: AtomicU64,
    /// Terminal: timed out (read/write/idle).
    timed_out: AtomicU64,
    /// Terminal: client abort / socket error / handler panic.
    aborted: AtomicU64,
    /// Responses fully written (any status).
    requests: AtomicU64,
    /// Request-head reads that blew the per-request deadline.
    timeout_read: AtomicU64,
    /// Response writes that blew the write budget.
    timeout_write: AtomicU64,
    /// Filtered recomputes that blew the request deadline (503, unmemoized).
    timeout_deadline: AtomicU64,
    /// Responses completed after the drain began.
    drain_completed: AtomicU64,
    /// Handler panics caught (counted as aborted connections too).
    panics: AtomicU64,
}

impl Lifecycle {
    fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// How many recent per-shard request latencies feed the `/stats` p99.
const SHARD_LAT_WINDOW: usize = 512;

/// Health and cascade header re-polled from a shard's `/shard/meta`.
#[derive(Clone, Default)]
struct ShardMeta {
    /// At least one successful poll has happened.
    fetched: bool,
    /// The most recent poll succeeded.
    reachable: bool,
    generation: u64,
    raw: u64,
    valid: u64,
    comparable: u64,
    /// Partition labels the shard owns.
    partitions: Vec<String>,
}

/// One upstream shard: a keep-alive connection pool plus the health and
/// latency accounting behind the front-end's `/stats` shard table.
struct ShardClient {
    pool: net::ShardPool,
    /// Row fetches answered by this shard.
    proxied: AtomicU64,
    /// Row fetches that failed (connect, status, decode, timeout).
    errors: AtomicU64,
    last_error: Mutex<String>,
    lat_us: Mutex<VecDeque<u64>>,
    meta: Mutex<ShardMeta>,
}

impl ShardClient {
    fn new(addr: &str) -> ShardClient {
        ShardClient {
            pool: net::ShardPool::new(addr.to_string()),
            proxied: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            last_error: Mutex::new(String::new()),
            lat_us: Mutex::new(VecDeque::new()),
            meta: Mutex::new(ShardMeta::default()),
        }
    }

    fn record_latency(&self, us: u64) {
        let mut window = self.lat_us.lock().expect("latency lock");
        if window.len() == SHARD_LAT_WINDOW {
            window.pop_front();
        }
        window.push_back(us);
    }

    fn p99_us(&self) -> u64 {
        let window = self.lat_us.lock().expect("latency lock");
        if window.is_empty() {
            return 0;
        }
        let mut sorted: Vec<u64> = window.iter().copied().collect();
        sorted.sort_unstable();
        sorted[(sorted.len() - 1) * 99 / 100]
    }

    fn fail(&self, detail: String) -> String {
        self.errors.fetch_add(1, Ordering::Relaxed);
        detail.clone_into(&mut self.last_error.lock().expect("error lock"));
        detail
    }

    /// Fetch this shard's filtered rows within `budget`.
    fn fetch_rows(&self, query: &str, budget: Duration) -> Result<Vec<rows::TaggedRow>, String> {
        let target = if query.is_empty() {
            "/shard/rows".to_string()
        } else {
            format!("/shard/rows?{query}")
        };
        let start = Instant::now();
        let resp = match self.pool.get(&target, budget) {
            Ok(resp) => resp,
            Err(e) => return Err(self.fail(e.to_string())),
        };
        self.record_latency(start.elapsed().as_micros() as u64);
        if resp.status != 200 {
            return Err(self.fail(format!("status {}", resp.status)));
        }
        let (_generation, tagged): (u64, Vec<rows::TaggedRow>) =
            match decode_from_slice(&resp.body) {
                Ok(decoded) => decoded,
                Err(e) => return Err(self.fail(format!("bad row payload: {e}"))),
            };
        self.proxied.fetch_add(1, Ordering::Relaxed);
        Ok(tagged)
    }
}

/// The scatter-gather front-end state: one client per shard plus a
/// front-end response memo (invalidated when any shard's generation
/// moves).
struct FanOut {
    shards: Vec<ShardClient>,
    memo: Mutex<Memo>,
}

/// Where responses come from: a local snapshot, or a scatter over
/// shard daemons.
enum Backend {
    /// Rows and pre-rendered exports live in this process.
    Local { snapshot: RwLock<Arc<Snapshot>> },
    /// Front-end: gather rows from shards, render locally.
    FanOut(FanOut),
}

/// Shared state between the acceptor, workers, watcher and [`Server`].
struct Shared {
    listener: TcpListener,
    addr: SocketAddr,
    backend: Backend,
    shutdown: AtomicBool,
    generation: AtomicU64,
    /// Refresh failures since startup (stale snapshot kept each time).
    refresh_errors: AtomicU64,
    limits: Limits,
    clock: Arc<dyn net::Clock>,
    /// Bounded admission queue: sockets waiting for a worker.
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    queue_cv: Condvar,
    /// Wall-clock end of the drain budget, set once when the drain begins.
    drain_end: Mutex<Option<Instant>>,
    life: Lifecycle,
}

impl Shared {
    /// The live local snapshot. Local-backend paths only — every
    /// fan-out route branches away before calling this.
    fn current(&self) -> Arc<Snapshot> {
        match &self.backend {
            Backend::Local { snapshot } => Arc::clone(&snapshot.read().expect("snapshot lock")),
            Backend::FanOut(_) => unreachable!("fan-out front-end has no local snapshot"),
        }
    }

    fn swap(&self, next: Snapshot) {
        if let Backend::Local { snapshot } = &self.backend {
            *snapshot.write().expect("snapshot lock") = Arc::new(next);
        }
    }

    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn drain_expired(&self) -> bool {
        self.drain_end
            .lock()
            .expect("drain lock")
            .map(|end| self.clock.now() >= end)
            .unwrap_or(false)
    }

    fn queue_len(&self) -> usize {
        self.queue.lock().expect("queue lock").len()
    }
}

/// Flip the daemon into drain mode exactly once: stop admissions, wake
/// every parked worker, and poke the acceptor out of `accept()`.
fn begin_drain(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already draining
    }
    let end = shared.clock.now() + Duration::from_millis(shared.limits.drain_timeout_ms);
    *shared.drain_end.lock().expect("drain lock") = Some(end);
    obs::count("serve.drain_begin", 1);
    shared.queue_cv.notify_all();
    // The acceptor blocks in accept(); one throwaway connection wakes it.
    let _ = TcpStream::connect(shared.addr);
}

/// The running daemon: one acceptor, N workers, an optional watcher.
pub struct Server {
    shared: Arc<Shared>,
    config: ServeConfig,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, build the initial snapshot (propagating corpus errors) and
    /// start the acceptor + worker + watcher threads. A fan-out config
    /// builds no local snapshot; it polls its shards' `/shard/meta`
    /// instead.
    pub fn start(config: ServeConfig) -> spec_diag::Result<Server> {
        if config.shard.is_some() && !config.fan_out.is_empty() {
            return Err(TrendsError::config(
                "serve",
                "--shard and --fan-out are mutually exclusive",
            ));
        }
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| TrendsError::io("serve", &e).with_origin(config.addr.clone()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| TrendsError::io("serve", &e))?;
        let backend = if config.fan_out.is_empty() {
            Backend::Local {
                snapshot: RwLock::new(Arc::new(Snapshot::build(&config, 0)?)),
            }
        } else {
            Backend::FanOut(FanOut {
                shards: config.fan_out.iter().map(|a| ShardClient::new(a)).collect(),
                memo: Mutex::new(Memo::new(config.memo_cap)),
            })
        };
        let shared = Arc::new(Shared {
            listener,
            addr,
            backend,
            shutdown: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            refresh_errors: AtomicU64::new(0),
            limits: config.limits,
            clock: Arc::clone(&config.clock),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            drain_end: Mutex::new(None),
            life: Lifecycle::default(),
        });
        if matches!(shared.backend, Backend::FanOut(_)) {
            // Best-effort initial shard census so the first requests and
            // /stats see reachability without waiting a poll interval.
            fanout_poll_meta(&shared);
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("serve-acceptor".to_string())
                    .spawn(move || acceptor_loop(&shared))
                    .expect("spawn acceptor"),
            )
        };

        let workers = (0..config.threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let watcher = match &shared.backend {
            Backend::Local { .. } => config.watch.as_ref().map(|dir| {
                let shared = Arc::clone(&shared);
                let config = config.clone();
                let dir = dir.clone();
                std::thread::Builder::new()
                    .name("serve-watcher".to_string())
                    .spawn(move || watcher_loop(&shared, &config, &dir))
                    .expect("spawn watcher")
            }),
            Backend::FanOut(_) => {
                let shared = Arc::clone(&shared);
                let poll_ms = config.poll_ms;
                Some(
                    std::thread::Builder::new()
                        .name("serve-shard-meta".to_string())
                        .spawn(move || fanout_meta_loop(&shared, poll_ms))
                        .expect("spawn shard meta poller"),
                )
            }
        };

        obs::count("serve.started", 1);
        Ok(Server {
            shared,
            config,
            acceptor,
            workers,
            watcher,
        })
    }

    /// The bound address (useful with `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// True once `/shutdown` was requested (or [`Self::shutdown`] ran).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Rebuild the snapshot now (what the watcher does on a change).
    /// On failure the previous snapshot stays live and the error is
    /// returned.
    pub fn refresh(&self) -> spec_diag::Result<u64> {
        refresh(&self.shared, &self.config)
    }

    /// The `/stats` body, readable in-process — usable even during or
    /// after a drain, when the HTTP path no longer admits connections.
    /// The chaos suite uses this for final accounting.
    pub fn stats_text(&self) -> String {
        String::from_utf8(stats_response(&self.shared).body).unwrap_or_default()
    }

    /// Block until a shutdown request arrives, polling every 100 ms.
    pub fn wait(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    /// Graceful drain + join: stop admitting, shed the queue, let
    /// in-flight requests finish (or deadline out, bounded by
    /// `drain_timeout_ms`), then join every thread.
    pub fn shutdown(mut self) {
        begin_drain(&self.shared);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(watcher) = self.watcher.take() {
            let _ = watcher.join();
        }
    }
}

/// Refresh the shared snapshot from the corpus; stale-on-failure.
fn refresh(shared: &Shared, config: &ServeConfig) -> spec_diag::Result<u64> {
    if matches!(shared.backend, Backend::FanOut(_)) {
        return Err(TrendsError::config(
            "serve",
            "fan-out front-ends hold no local snapshot to refresh",
        ));
    }
    let generation = shared.generation.load(Ordering::SeqCst) + 1;
    match Snapshot::build(config, generation) {
        Ok(snapshot) => {
            shared.swap(snapshot);
            shared.generation.store(generation, Ordering::SeqCst);
            obs::count("serve.refresh", 1);
            Ok(generation)
        }
        Err(err) => {
            shared.refresh_errors.fetch_add(1, Ordering::SeqCst);
            obs::count("serve.refresh_error", 1);
            Err(err)
        }
    }
}

/// `(name, len, mtime)` for every entry in the watched directory; any
/// change to the triple set means the corpus changed. Uses `std::fs`
/// directly — the watcher never reads file contents, so chaos injection
/// on the corpus read path cannot wedge the fingerprint.
fn dir_fingerprint(dir: &std::path::Path) -> Vec<(String, u64, u128)> {
    let mut entries = Vec::new();
    let Ok(read) = std::fs::read_dir(dir) else {
        return entries;
    };
    for entry in read.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Ok(meta) = entry.metadata() else { continue };
        let mtime = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        entries.push((name, meta.len(), mtime));
    }
    entries.sort();
    entries
}

fn watcher_loop(shared: &Shared, config: &ServeConfig, dir: &std::path::Path) {
    let mut last = dir_fingerprint(dir);
    let step = Duration::from_millis(config.poll_ms.clamp(10, 1000));
    while !shared.draining() {
        std::thread::sleep(step);
        let next = dir_fingerprint(dir);
        if next != last {
            last = next;
            // Stale-on-failure: a failed rebuild keeps the old snapshot.
            let _ = refresh(shared, config);
        }
    }
}

/// Parse a `/shard/meta` body (`key value` lines).
fn parse_shard_meta(body: &[u8]) -> Option<ShardMeta> {
    let text = std::str::from_utf8(body).ok()?;
    let mut meta = ShardMeta::default();
    for line in text.lines() {
        let (key, value) = line.split_once(' ')?;
        match key {
            "generation" => meta.generation = value.parse().ok()?,
            "raw" => meta.raw = value.parse().ok()?,
            "valid" => meta.valid = value.parse().ok()?,
            "comparable" => meta.comparable = value.parse().ok()?,
            "partitions" => {
                meta.partitions = value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            _ => {}
        }
    }
    Some(meta)
}

/// Poll every shard's `/shard/meta` once. A generation change on any
/// previously seen shard invalidates the front-end memo — its gathered
/// renders may no longer match what the shards would answer.
fn fanout_poll_meta(shared: &Shared) {
    let Backend::FanOut(fan) = &shared.backend else {
        return;
    };
    let mut changed = false;
    for client in &fan.shards {
        let fetched = client
            .pool
            .get("/shard/meta", Duration::from_millis(500))
            .ok()
            .filter(|resp| resp.status == 200)
            .and_then(|resp| parse_shard_meta(&resp.body));
        let mut meta = client.meta.lock().expect("meta lock");
        match fetched {
            Some(mut next) => {
                next.fetched = true;
                next.reachable = true;
                if meta.fetched && meta.generation != next.generation {
                    changed = true;
                }
                *meta = next;
            }
            None => meta.reachable = false,
        }
    }
    if changed {
        fan.memo.lock().expect("memo lock").clear();
        obs::count("serve.fanout_memo_invalidated", 1);
    }
}

/// The fan-out front-end's watcher-slot thread: keep the shard census
/// fresh so dead shards surface in `/stats` within a poll interval.
fn fanout_meta_loop(shared: &Shared, poll_ms: u64) {
    let step = Duration::from_millis(poll_ms.clamp(10, 1000));
    while !shared.draining() {
        std::thread::sleep(step);
        fanout_poll_meta(shared);
    }
}

/// Best-effort 503 + `Retry-After` on a connection we will not serve.
/// A short write budget keeps a slow-reading shed client from wedging
/// whichever thread is doing the shedding.
fn shed_connection(stream: TcpStream, detail: &str) {
    let mut conn = net::Conn::new(stream);
    let rendered = Response::unavailable(detail).render(false);
    if let net::WriteEvent::Done = conn.write_response(&rendered, Duration::from_millis(250)) {
        // The client may have written a full request we never read;
        // linger briefly so the 503 isn't destroyed by an RST.
        conn.lingering_close(Duration::from_millis(100));
    }
}

/// Accept connections and admit them into the bounded queue; shed with
/// 503 when the queue is full. The acceptor never parses a byte, so a
/// hostile client cannot slow admission for everyone else.
fn acceptor_loop(shared: &Arc<Shared>) {
    loop {
        let stream = match shared.listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.draining() {
                    return;
                }
                continue;
            }
        };
        if shared.draining() {
            // The drain poke, or a late client racing it: admissions are
            // over. Dropped without accounting — `offered` counts only
            // connections the daemon was willing to consider.
            return;
        }
        shared.life.bump(&shared.life.offered);
        let mut queue = shared.queue.lock().expect("queue lock");
        if queue.len() >= shared.limits.queue_depth {
            drop(queue);
            shared.life.bump(&shared.life.shed);
            obs::count("serve.shed", 1);
            shed_connection(stream, "admission queue full");
        } else {
            queue.push_back((stream, Instant::now()));
            let depth = queue.len();
            drop(queue);
            obs::set_gauge("serve.queue_depth", depth as i64);
            shared.queue_cv.notify_one();
        }
    }
}

/// What a worker found when it went looking for work.
enum Job {
    /// Serve this connection (the in-flight slot is already claimed).
    Serve(TcpStream, Instant),
    /// Draining: shed this queued connection with 503.
    DrainShed(TcpStream),
    /// Draining and the queue is empty: exit.
    Exit,
}

fn next_job(shared: &Shared) -> Job {
    let mut queue = shared.queue.lock().expect("queue lock");
    loop {
        if shared.draining() {
            return match queue.pop_front() {
                Some((stream, _)) => Job::DrainShed(stream),
                None => Job::Exit,
            };
        }
        if (shared.life.active.load(Ordering::SeqCst) as usize) < shared.limits.max_inflight {
            if let Some((stream, enqueued)) = queue.pop_front() {
                // Claim the slot under the queue lock so concurrent
                // workers can never overshoot max_inflight.
                shared.life.active.fetch_add(1, Ordering::SeqCst);
                obs::set_gauge("serve.queue_depth", queue.len() as i64);
                return Job::Serve(stream, enqueued);
            }
        }
        let (guard, _) = shared
            .queue_cv
            .wait_timeout(queue, Duration::from_millis(50))
            .expect("queue lock");
        queue = guard;
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        match next_job(shared) {
            Job::Exit => return,
            Job::DrainShed(stream) => {
                shared.life.bump(&shared.life.shed);
                obs::count("serve.shed", 1);
                shed_connection(stream, "server draining");
            }
            Job::Serve(stream, enqueued) => {
                shared.life.bump(&shared.life.accepted);
                if obs::enabled() {
                    obs::set_gauge(
                        "serve.inflight",
                        shared.life.active.load(Ordering::SeqCst) as i64,
                    );
                    obs::observe_us("serve.queue_wait_us", enqueued.elapsed().as_micros() as u64);
                }
                // A connection must never take a worker down: handler
                // panics (e.g. a poisoned lock under chaos) terminate the
                // connection as `aborted`, and the worker lives on.
                let result = catch_unwind(AssertUnwindSafe(|| handle_connection(shared, stream)));
                let outcome = match result {
                    Ok(outcome) => outcome,
                    Err(_) => {
                        shared.life.bump(&shared.life.panics);
                        obs::count("serve.panic", 1);
                        Outcome::Aborted
                    }
                };
                let counter = match outcome {
                    Outcome::Completed => &shared.life.completed,
                    Outcome::TimedOut => &shared.life.timed_out,
                    Outcome::Aborted => &shared.life.aborted,
                };
                shared.life.bump(counter);
                shared.life.active.fetch_sub(1, Ordering::SeqCst);
                // The freed in-flight slot may unblock a parked worker.
                shared.queue_cv.notify_one();
            }
        }
    }
}

/// Drive one connection through its keep-alive lifecycle; returns its
/// terminal [`Outcome`]. See the module docs for the timeout model.
fn handle_connection(shared: &Shared, stream: TcpStream) -> Outcome {
    let mut conn = net::Conn::new(stream);
    let mut served: u64 = 0;
    let outcome = connection_loop(shared, &mut conn, &mut served);
    if obs::enabled() {
        obs::observe_us("serve.conn_requests", served);
    }
    outcome
}

fn connection_loop(shared: &Shared, conn: &mut net::Conn, served: &mut u64) -> Outcome {
    let limits = &shared.limits;
    let clock = shared.clock.as_ref();
    let write_budget = Duration::from_millis(limits.request_deadline_ms);
    loop {
        // Drain: keep-alive connections close after the in-flight
        // request; once the drain budget is spent, close immediately.
        if shared.draining() && shared.drain_expired() {
            return Outcome::Completed;
        }
        let idle = if shared.draining() {
            // Don't park on an idle keep-alive while the daemon drains.
            Duration::from_millis(20)
        } else {
            Duration::from_millis(limits.idle_timeout_ms)
        };
        match conn.read_request(limits, clock, idle) {
            net::ReadEvent::Eof => return Outcome::Completed,
            net::ReadEvent::IdleExpired => {
                if *served == 0 && !shared.draining() {
                    // Connected and never finished a request: a slow
                    // client shed by the idle budget.
                    shared.life.bump(&shared.life.timeout_read);
                    obs::count("serve.timeout.read", 1);
                    return Outcome::TimedOut;
                }
                // Normal keep-alive expiry after ≥1 served request.
                return Outcome::Completed;
            }
            net::ReadEvent::Torn => {
                obs::count("serve.torn_request", 1);
                return Outcome::Aborted;
            }
            net::ReadEvent::TimedOut => {
                shared.life.bump(&shared.life.timeout_read);
                obs::count("serve.timeout.read", 1);
                return Outcome::TimedOut;
            }
            net::ReadEvent::Error(_) => return Outcome::Aborted,
            net::ReadEvent::Reject(reject) => {
                obs::count(&format!("serve.status.{}", reject.status), 1);
                let rendered = Response::reject(&reject).render(false);
                return match conn.write_response(&rendered, write_budget) {
                    net::WriteEvent::Done => {
                        shared.life.bump(&shared.life.requests);
                        // Rejected clients (431 floods especially) often
                        // have unread bytes in flight; linger so the
                        // error response survives the close.
                        conn.lingering_close(Duration::from_millis(250));
                        Outcome::Completed
                    }
                    net::WriteEvent::TimedOut => {
                        shared.life.bump(&shared.life.timeout_write);
                        obs::count("serve.timeout.write", 1);
                        Outcome::TimedOut
                    }
                    net::WriteEvent::Error(_) => Outcome::Aborted,
                };
            }
            net::ReadEvent::Head(head, deadline) => {
                let start = Instant::now();
                let response = route(shared, &head, deadline);
                *served += 1;
                let keep_alive = head.allows_keep_alive()
                    && *served < limits.max_requests_per_conn
                    // Draining: no new idle waits, but requests this
                    // client already pipelined still get answers (that's
                    // what "finish in-flight work" means for keep-alive).
                    && (!shared.draining() || !conn.buf_is_empty())
                    // Yield under pressure: while connections wait in the
                    // admission queue, finish this response and free the
                    // worker instead of idling on a parked keep-alive.
                    && shared.queue_len() == 0;
                let rendered = response.render(keep_alive);
                let write = conn.write_response(&rendered, write_budget);
                if obs::enabled() {
                    obs::observe_us("serve.request_us", start.elapsed().as_micros() as u64);
                    obs::count(&format!("serve.status.{}", response.status), 1);
                }
                match write {
                    net::WriteEvent::Done => {
                        shared.life.bump(&shared.life.requests);
                        if shared.draining() {
                            shared.life.bump(&shared.life.drain_completed);
                            obs::count("serve.drain_completed", 1);
                        }
                        if !keep_alive {
                            // If we're cutting short a client that wanted
                            // keep-alive (yield-under-pressure, request
                            // cap, drain) it may have pipelined requests
                            // we'll never read — linger to protect the
                            // response we did write.
                            if head.allows_keep_alive() || !conn.buf_is_empty() {
                                conn.lingering_close(Duration::from_millis(100));
                            }
                            return Outcome::Completed;
                        }
                    }
                    net::WriteEvent::TimedOut => {
                        shared.life.bump(&shared.life.timeout_write);
                        obs::count("serve.timeout.write", 1);
                        return Outcome::TimedOut;
                    }
                    net::WriteEvent::Error(_) => return Outcome::Aborted,
                }
            }
        }
    }
}

/// Dispatch one parsed request to its endpoint.
fn route(shared: &Shared, head: &net::RequestHead, deadline: net::Deadline) -> Arc<Response> {
    let mut sp = obs::span("serve.request");
    let (path, query) = (head.path.as_str(), head.query.as_str());
    let endpoint_hist = match path {
        "/" => "serve.index_us",
        "/stats" => "serve.stats_us",
        "/healthz" | "/readyz" => "serve.probe_us",
        "/shutdown" => "serve.shutdown_us",
        p if p.starts_with("/shard/") => "serve.shard_us",
        p if p.starts_with("/figures/") => "serve.figures_us",
        p if p.starts_with("/data/") => "serve.data_us",
        _ => "serve.other_us",
    };
    let response = match path {
        "/" => Arc::new(index_response()),
        "/stats" => Arc::new(stats_response(shared)),
        "/healthz" => Arc::new(Response::ok("text/plain; charset=utf-8", "ok\n")),
        "/readyz" => Arc::new(if shared.draining() {
            Response::unavailable("draining")
        } else {
            Response::ok("text/plain; charset=utf-8", "ready\n")
        }),
        "/shutdown" => {
            begin_drain(shared);
            obs::count("serve.shutdown_requests", 1);
            Arc::new(Response::ok("text/plain; charset=utf-8", "shutting down\n"))
        }
        "/shard/meta" => shard_meta_response(shared),
        "/shard/rows" => shard_rows_response(shared, query, deadline),
        _ => match &shared.backend {
            Backend::Local { .. } => figure_or_data(shared, path, query, deadline),
            Backend::FanOut(fan) => fanout_figure_or_data(shared, fan, path, query, deadline),
        },
    };
    if obs::enabled() {
        sp.record("path", path);
        sp.record("status", response.status as u32);
        sp.observe_into(endpoint_hist);
    } else {
        sp.cancel();
    }
    response
}

/// Record a filtered recompute that blew its request deadline: typed 503,
/// never memoized, snapshot untouched.
fn deadline_blown(shared: &Shared, phase: &str) -> Arc<Response> {
    shared.life.bump(&shared.life.timeout_deadline);
    obs::count("serve.timeout.deadline", 1);
    Arc::new(Response::unavailable(&format!(
        "request deadline exceeded {phase}"
    )))
}

fn figure_or_data(
    shared: &Shared,
    path: &str,
    query: &str,
    deadline: net::Deadline,
) -> Arc<Response> {
    let (kind, n, filter) = match parse_target(path, query) {
        Ok(target) => target,
        Err(response) => return Arc::new(response),
    };

    let snapshot = shared.current();
    if filter.is_empty() {
        // Unfiltered: the build's pre-rendered export bytes, verbatim.
        let (files, name) = match kind {
            Kind::Figures => (&snapshot.figure_files, figure_file_name(n)),
            Kind::Data => (&snapshot.data_files, data_file_name(n)),
        };
        return match snapshot.file(files, name) {
            Some(response) => response,
            None => Arc::new(Response::error(500, "export artifact missing")),
        };
    }

    let memo_key = format!("{path}?{query}");
    if let Some(hit) = snapshot.memo.lock().expect("memo lock").get(&memo_key) {
        obs::count("serve.memo_hit", 1);
        return hit;
    }

    // The filtered recompute is the expensive path the per-request
    // deadline guards: already over budget → don't start; over budget by
    // the time the render lands → typed 503, and the result is *not*
    // memoized (a response computed past its deadline must not become a
    // cache entry other requests trust).
    let clock = shared.clock.as_ref();
    if deadline.expired(clock) {
        return deadline_blown(shared, "before recompute");
    }
    let tagged = match snapshot
        .rows
        .lock()
        .expect("rows lock")
        .query(|key| filter.matches_key(key), |row| filter.matches_row(row))
    {
        Ok(tagged) => tagged,
        Err(e) => return Arc::new(Response::error(500, &format!("row store: {e}"))),
    };
    let response = Arc::new(render_filtered(kind, n, filter, &tagged));
    if deadline.expired(clock) {
        return deadline_blown(shared, "during recompute");
    }
    snapshot
        .memo
        .lock()
        .expect("memo lock")
        .insert(memo_key, Arc::clone(&response));
    obs::count("serve.memo_fill", 1);
    response
}

/// `/shard/meta` — the census line a fan-out front-end polls.
fn shard_meta_response(shared: &Shared) -> Arc<Response> {
    if matches!(shared.backend, Backend::FanOut(_)) {
        return Arc::new(Response::error(404, "front-end daemons hold no shard rows"));
    }
    let snapshot = shared.current();
    let labels: Vec<String> = snapshot.partitions.iter().map(|p| p.key.label()).collect();
    Arc::new(Response::ok(
        "text/plain; charset=utf-8",
        format!(
            "generation {}\nraw {}\nvalid {}\ncomparable {}\npartitions {}\n",
            snapshot.generation,
            snapshot.report.raw,
            snapshot.report.valid,
            snapshot.report.comparable,
            labels.join(","),
        ),
    ))
}

/// `/shard/rows?<filter>` — the scatter-gather wire endpoint: this
/// daemon's matching tagged rows, codec-encoded as
/// `(generation, Vec<(gidx, comparable, RunRow)>)`.
fn shard_rows_response(shared: &Shared, query: &str, deadline: net::Deadline) -> Arc<Response> {
    if matches!(shared.backend, Backend::FanOut(_)) {
        return Arc::new(Response::error(404, "front-end daemons hold no shard rows"));
    }
    let filter = match parse_filter(query) {
        Ok(filter) => filter,
        Err(err) => {
            return Arc::new(Response::error(
                400,
                &format!("[{}] {err}", err.kind.category()),
            ))
        }
    };
    let snapshot = shared.current();
    let memo_key = format!("/shard/rows?{query}");
    if let Some(hit) = snapshot.memo.lock().expect("memo lock").get(&memo_key) {
        obs::count("serve.memo_hit", 1);
        return hit;
    }
    let clock = shared.clock.as_ref();
    if deadline.expired(clock) {
        return deadline_blown(shared, "before row scan");
    }
    let tagged = match snapshot
        .rows
        .lock()
        .expect("rows lock")
        .query(|key| filter.matches_key(key), |row| filter.matches_row(row))
    {
        Ok(tagged) => tagged,
        Err(e) => return Arc::new(Response::error(500, &format!("row store: {e}"))),
    };
    let body = encode_to_vec(&(snapshot.generation, tagged));
    if deadline.expired(clock) {
        return deadline_blown(shared, "during row scan");
    }
    let response = Arc::new(Response::ok("application/octet-stream", body));
    snapshot
        .memo
        .lock()
        .expect("memo lock")
        .insert(memo_key, Arc::clone(&response));
    obs::count("serve.memo_fill", 1);
    response
}

/// Front-end answer path: parse and validate locally (typed 4xx never
/// needs a network hop), scatter the filter to every shard, gather the
/// partial rows, restore the global merged order, and render through
/// the same reduce/render path a single-process daemon uses — which is
/// what makes the bytes identical. Any shard failure degrades the
/// answer to 503 + `Retry-After` within the request deadline: a partial
/// gather must never render, because missing rows would silently change
/// the reduces.
fn fanout_figure_or_data(
    shared: &Shared,
    fan: &FanOut,
    path: &str,
    query: &str,
    deadline: net::Deadline,
) -> Arc<Response> {
    let (kind, n, filter) = match parse_target(path, query) {
        Ok(target) => target,
        Err(response) => return Arc::new(response),
    };
    let memo_key = if query.is_empty() {
        path.to_string()
    } else {
        format!("{path}?{query}")
    };
    if let Some(hit) = fan.memo.lock().expect("memo lock").get(&memo_key) {
        obs::count("serve.memo_hit", 1);
        return hit;
    }
    let clock = shared.clock.as_ref();
    let Some(budget) = deadline.remaining(clock) else {
        return deadline_blown(shared, "before scatter");
    };
    let gathered: Vec<Result<Vec<rows::TaggedRow>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = fan
            .shards
            .iter()
            .map(|client| scope.spawn(move || client.fetch_rows(query, budget)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("gather thread panicked".to_string()))
            })
            .collect()
    });
    let mut tagged = Vec::new();
    for (client, result) in fan.shards.iter().zip(gathered) {
        match result {
            Ok(rows) => tagged.extend(rows),
            Err(detail) => {
                obs::count("serve.fanout_error", 1);
                return Arc::new(Response::unavailable(&format!(
                    "shard {} unavailable: {detail}",
                    client.pool.addr()
                )));
            }
        }
    }
    // Restore the monolithic merged order before the reduces run.
    tagged.sort_unstable_by_key(|t| t.0);
    let response = Arc::new(render_filtered(kind, n, filter, &tagged));
    if deadline.expired(clock) {
        return deadline_blown(shared, "during gather");
    }
    fan.memo
        .lock()
        .expect("memo lock")
        .insert(memo_key, Arc::clone(&response));
    obs::count("serve.memo_fill", 1);
    response
}

fn index_response() -> Response {
    Response::ok(
        "text/plain; charset=utf-8",
        "spec-trends serve\n\
         endpoints:\n\
         \x20 /figures/<1..6>[?filter]  figure SVG\n\
         \x20 /data/<1..6>[?filter]     figure CSV (filter may add agg=year on 2,3,5,6)\n\
         \x20 /stats                    cascade + partitions + lifecycle + metrics\n\
         \x20 /shard/meta               shard census (generation, cascade, partitions)\n\
         \x20 /shard/rows[?filter]      codec-encoded tagged rows (scatter-gather wire)\n\
         \x20 /healthz                  liveness probe\n\
         \x20 /readyz                   readiness probe (503 while draining)\n\
         \x20 /shutdown                 graceful drain\n\
         filter grammar:\n\
         \x20 year=YYYY | year=YYYY-YYYY   inclusive hardware-year range\n\
         \x20 vendor=v[,v...]              v in intel|amd|other\n\
         \x20 agg=none|year                per-vendor yearly means (data 2,3,5,6)\n",
    )
}

/// The lifecycle block shared by local and fan-out `/stats`.
fn push_lifecycle_stats(shared: &Shared, out: &mut String) {
    let life = &shared.life;
    let load = |c: &AtomicU64| c.load(Ordering::SeqCst);
    out.push_str(&format!(
        "lifecycle:\n\
         conns_offered {}\n\
         conns_shed {}\n\
         conns_accepted {}\n\
         conns_active {}\n\
         conns_queued {}\n\
         conns_completed {}\n\
         conns_timed_out {}\n\
         conns_aborted {}\n\
         requests_served {}\n\
         timeout_read {}\n\
         timeout_write {}\n\
         timeout_deadline {}\n\
         drain_completed {}\n\
         draining {}\n\
         worker_panics {}\n\n",
        load(&life.offered),
        load(&life.shed),
        load(&life.accepted),
        load(&life.active),
        shared.queue_len(),
        load(&life.completed),
        load(&life.timed_out),
        load(&life.aborted),
        load(&life.requests),
        load(&life.timeout_read),
        load(&life.timeout_write),
        load(&life.timeout_deadline),
        load(&life.drain_completed),
        u8::from(shared.draining()),
        load(&life.panics),
    ));
}

fn stats_response(shared: &Shared) -> Response {
    match &shared.backend {
        Backend::Local { .. } => local_stats_response(shared),
        Backend::FanOut(fan) => fanout_stats_response(shared, fan),
    }
}

fn local_stats_response(shared: &Shared) -> Response {
    let snapshot = shared.current();
    let mut out = String::new();
    out.push_str(&format!(
        "generation {}\nraw {}\nvalid {}\ncomparable {}\nrefresh_errors {}\n",
        snapshot.generation,
        snapshot.report.raw,
        snapshot.report.valid,
        snapshot.report.comparable,
        shared.refresh_errors.load(Ordering::SeqCst),
    ));
    out.push_str(&format!(
        "last_refresh: executed {} hits {} partitions_executed {}\n",
        snapshot.executed, snapshot.hits, snapshot.partitions_executed
    ));
    let (memo_entries, memo_evictions) = {
        let memo = snapshot.memo.lock().expect("memo lock");
        (memo.len(), memo.evictions)
    };
    let (rows_stored, rows_partitions, resident_bytes, spilled) = {
        let rows = snapshot.rows.lock().expect("rows lock");
        (
            rows.n_rows(),
            rows.n_partitions(),
            rows.resident_bytes(),
            rows.segments_spilled(),
        )
    };
    out.push_str(&format!(
        "snapshot_mode {}\n\
         memo_entries {memo_entries}\n\
         memo_evictions {memo_evictions}\n\
         rows_stored {rows_stored}\n\
         rows_partitions {rows_partitions}\n\
         rows_resident_bytes {resident_bytes}\n\
         rows_spilled_segments {spilled}\n\n",
        match snapshot.mode {
            SnapshotMode::Graph => "graph",
            SnapshotMode::Stream => "stream",
        },
    ));
    push_lifecycle_stats(shared, &mut out);
    out.push_str("partition       reports  valid  comparable  executed  hits\n");
    for p in &snapshot.partitions {
        out.push_str(&format!(
            "{:<14} {:>8} {:>6} {:>11} {:>9} {:>5}\n",
            p.key.label(),
            p.reports,
            p.valid,
            p.comparable,
            p.executed,
            p.hits
        ));
    }
    if obs::enabled() {
        out.push('\n');
        out.push_str(&obs::snapshot().to_table());
    }
    Response::ok("text/plain; charset=utf-8", out)
}

/// Front-end `/stats`: summed cascade header plus the per-shard table —
/// a dead shard shows `?` partitions and its last error at a glance.
fn fanout_stats_response(shared: &Shared, fan: &FanOut) -> Response {
    let metas: Vec<ShardMeta> = fan
        .shards
        .iter()
        .map(|c| c.meta.lock().expect("meta lock").clone())
        .collect();
    let mut out = String::new();
    out.push_str(&format!(
        "generation {}\nraw {}\nvalid {}\ncomparable {}\nrefresh_errors {}\n",
        metas.iter().map(|m| m.generation).max().unwrap_or(0),
        metas.iter().map(|m| m.raw).sum::<u64>(),
        metas.iter().map(|m| m.valid).sum::<u64>(),
        metas.iter().map(|m| m.comparable).sum::<u64>(),
        shared.refresh_errors.load(Ordering::SeqCst),
    ));
    let (memo_entries, memo_evictions) = {
        let memo = fan.memo.lock().expect("memo lock");
        (memo.len(), memo.evictions)
    };
    out.push_str(&format!(
        "snapshot_mode fan-out\nmemo_entries {memo_entries}\nmemo_evictions {memo_evictions}\n\n",
    ));
    push_lifecycle_stats(shared, &mut out);
    out.push_str("shard                     partitions  proxied  errors  p99_us  last_error\n");
    for (client, meta) in fan.shards.iter().zip(&metas) {
        let partitions = if meta.reachable {
            meta.partitions.len().to_string()
        } else {
            "?".to_string()
        };
        let last_error = {
            let e = client.last_error.lock().expect("error lock");
            if e.is_empty() {
                "-".to_string()
            } else {
                e.clone()
            }
        };
        out.push_str(&format!(
            "{:<25} {:>10} {:>8} {:>7} {:>7}  {}\n",
            client.pool.addr(),
            partitions,
            client.proxied.load(Ordering::Relaxed),
            client.errors.load(Ordering::Relaxed),
            client.p99_us(),
            last_error,
        ));
    }
    if obs::enabled() {
        out.push('\n');
        out.push_str(&obs::snapshot().to_table());
    }
    Response::ok("text/plain; charset=utf-8", out)
}

#[cfg(test)]
mod tests {
    use super::faultnet::read_response;
    use super::*;
    use std::io::{Read as _, Write as _};
    use spec_format::write_run;
    use spec_model::{linear_test_run, YearMonth};

    fn corpus_texts(n: u32) -> Vec<(Option<String>, String)> {
        (0..n)
            .map(|i| {
                let mut run = linear_test_run(i, 1e6, 60.0, 300.0);
                run.dates.hw_available = YearMonth::new(2010 + (i as i32 % 4), 6).unwrap();
                if i % 3 == 0 {
                    run.system.cpu.name = format!("AMD EPYC {}", 9000 + i);
                }
                (Some(format!("run{i}.txt")), write_run(&run))
            })
            .collect()
    }

    fn test_config(n: u32) -> ServeConfig {
        let mut config = ServeConfig::new(CorpusSource::Memory(corpus_texts(n)));
        config.addr = "127.0.0.1:0".to_string();
        config.threads = 2;
        config.settings = Settings::fast();
        config
    }

    fn test_server(n: u32) -> Server {
        Server::start(test_config(n)).expect("server starts")
    }

    /// One-shot GET (`Connection: close`): the server closes after the
    /// response, so read-to-end sees exactly one response.
    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
            )
            .expect("request");
        let mut buf = String::new();
        stream.read_to_string(&mut buf).expect("response");
        let status: u16 = buf
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = buf
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    /// Send raw bytes, read the whole reply (server closes on rejects).
    fn raw(addr: SocketAddr, bytes: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(bytes).expect("send");
        let mut buf = String::new();
        let _ = stream.read_to_string(&mut buf);
        buf
    }

    fn stat_line(stats: &str, key: &str) -> u64 {
        stats
            .lines()
            .find_map(|l| l.strip_prefix(key).and_then(|r| r.trim().parse().ok()))
            .unwrap_or_else(|| panic!("no {key} in {stats}"))
    }

    /// One-shot GET returning raw body bytes (for binary endpoints).
    fn get_bytes(addr: SocketAddr, target: &str) -> (u16, Vec<u8>) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
            )
            .expect("request");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let resp = read_response(&mut stream).expect("read").expect("response");
        (resp.status, resp.body)
    }

    #[test]
    fn query_grammar_accepts_ranges_lists_and_agg() {
        let server = test_server(12);
        let addr = server.addr();
        let (status, body) = get(addr, "/data/2?year=2010-2012&vendor=intel,amd");
        assert_eq!(status, 200, "{body}");
        let (status, agg) = get(addr, "/data/2?agg=year");
        assert_eq!(status, 200, "{agg}");
        assert!(agg.starts_with("vendor,year,w_per_socket_mean"), "{agg}");
        let (status, _) = get(addr, "/data/5?year=2010-2011&vendor=amd&agg=year");
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn query_grammar_rejects_malformed_input_with_400() {
        let server = test_server(6);
        let addr = server.addr();
        for target in [
            "/data/2?year=banana",
            "/data/2?year=2015-2010",
            "/data/2?year=2010-2015-2020",
            "/data/2?vendor=intel,sparc",
            "/data/2?vendor=",
            "/data/2?agg=decade",
            "/figures/2?agg=year",
            "/data/1?agg=year",
            "/data/4?agg=year",
        ] {
            let (status, body) = get(addr, target);
            assert_eq!(status, 400, "{target} → {body}");
        }
        server.shutdown();
    }

    #[test]
    fn memo_is_lru_bounded_and_reports_evictions() {
        let mut config = test_config(12);
        config.memo_cap = 2;
        let server = Server::start(config).expect("server starts");
        let addr = server.addr();
        for year in [2010, 2011, 2012, 2013] {
            let (status, _) = get(addr, &format!("/data/2?year={year}"));
            assert_eq!(status, 200);
        }
        let (_, stats) = get(addr, "/stats");
        assert!(stat_line(&stats, "memo_entries ") <= 2, "{stats}");
        assert_eq!(stat_line(&stats, "memo_evictions "), 2, "{stats}");
        // An evicted query still answers correctly (recomputed + refilled).
        assert_eq!(get(addr, "/data/2?year=2010").0, 200);
        server.shutdown();
    }

    #[test]
    fn stream_mode_serves_the_same_bytes_as_graph_mode() {
        let graph = test_server(24);
        let mut config = test_config(24);
        config.mode = SnapshotMode::Stream;
        config.max_resident_mb = Some(1);
        let stream = Server::start(config).expect("stream server starts");
        for target in [
            "/figures/1",
            "/figures/4",
            "/data/2",
            "/data/6",
            "/data/3?vendor=amd",
            "/figures/5?year=2011&vendor=intel",
            "/data/2?agg=year",
        ] {
            let (graph_status, graph_body) = get(graph.addr(), target);
            let (stream_status, stream_body) = get(stream.addr(), target);
            assert_eq!(graph_status, stream_status, "{target}");
            assert_eq!(graph_body, stream_body, "{target} bytes differ");
        }
        let (_, stats) = get(stream.addr(), "/stats");
        assert!(stats.contains("snapshot_mode stream"), "{stats}");
        graph.shutdown();
        stream.shutdown();
    }

    #[test]
    fn shard_rows_endpoint_ships_codec_rows() {
        let server = test_server(12);
        let addr = server.addr();
        let (status, meta) = get(addr, "/shard/meta");
        assert_eq!(status, 200);
        assert!(meta.contains("generation 0"), "{meta}");
        assert!(meta.contains("partitions "), "{meta}");
        let (status, body) = get_bytes(addr, "/shard/rows?vendor=amd");
        assert_eq!(status, 200);
        let (generation, tagged): (u64, Vec<rows::TaggedRow>) =
            decode_from_slice(&body).expect("decode rows");
        assert_eq!(generation, 0);
        assert!(!tagged.is_empty());
        assert!(tagged.iter().all(|(_, _, row)| row.vendor == CpuVendor::Amd));
        assert!(tagged.windows(2).all(|w| w[0].0 < w[1].0), "gidx sorted");
        server.shutdown();
    }

    fn shard_test_config(n: u32, index: usize, count: usize) -> ServeConfig {
        let mut config = test_config(n);
        config.shard = Some(ShardSpec { index, count });
        config
    }

    #[test]
    fn two_shard_fan_out_is_byte_identical_and_degrades_to_503() {
        let single = test_server(24);
        let shard_a = Server::start(shard_test_config(24, 0, 2)).expect("shard a");
        let shard_b = Server::start(shard_test_config(24, 1, 2)).expect("shard b");
        let mut front_config = ServeConfig::new(CorpusSource::Memory(Vec::new()));
        front_config.addr = "127.0.0.1:0".to_string();
        front_config.threads = 2;
        front_config.poll_ms = 50;
        front_config.fan_out = vec![shard_a.addr().to_string(), shard_b.addr().to_string()];
        let front = Server::start(front_config).expect("front-end starts");
        let addr = front.addr();
        for n in 1..=6 {
            for target in [format!("/figures/{n}"), format!("/data/{n}")] {
                let (single_status, single_body) = get(single.addr(), &target);
                let (front_status, front_body) = get(addr, &target);
                assert_eq!(single_status, front_status, "{target}");
                assert_eq!(single_body, front_body, "{target} bytes differ");
            }
        }
        for target in [
            "/data/2?vendor=amd",
            "/figures/5?year=2010-2012&vendor=intel,amd",
            "/data/3?agg=year",
        ] {
            let (single_status, single_body) = get(single.addr(), target);
            let (front_status, front_body) = get(addr, target);
            assert_eq!(single_status, front_status, "{target}");
            assert_eq!(single_body, front_body, "{target} bytes differ");
        }
        // Typed 4xx is validated locally, never scattered.
        assert_eq!(get(addr, "/data/2?year=banana").0, 400);
        // /stats: summed cascade header + per-shard table.
        let (_, stats) = get(addr, "/stats");
        assert_eq!(stat_line(&stats, "raw "), 24, "{stats}");
        assert!(stats.contains(&shard_a.addr().to_string()), "{stats}");
        assert!(stats.contains("last_error"), "{stats}");
        // Kill one shard: an uncached query degrades to 503 + Retry-After
        // within the request deadline — never a hang, never a partial render.
        shard_b.shutdown();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /data/2?year=2013&vendor=intel HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("request");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let resp = read_response(&mut stream).expect("read").expect("degraded");
        assert_eq!(resp.status, 503);
        assert!(resp.retry_after, "503 must carry Retry-After");
        front.shutdown();
        shard_a.shutdown();
        single.shutdown();
    }

    #[test]
    fn serves_every_endpoint() {
        let server = test_server(12);
        let addr = server.addr();
        let (status, body) = get(addr, "/");
        assert_eq!(status, 200);
        assert!(body.contains("/figures/"));
        for n in 1..=6 {
            let (status, body) = get(addr, &format!("/figures/{n}"));
            assert_eq!(status, 200, "figure {n}");
            assert!(body.contains("<svg"), "figure {n} is SVG");
            let (status, body) = get(addr, &format!("/data/{n}"));
            assert_eq!(status, 200, "data {n}");
            assert!(body.contains('\n'), "data {n} is CSV");
        }
        let (status, body) = get(addr, "/stats");
        assert_eq!(status, 200);
        assert!(body.contains("generation 0"));
        assert!(body.contains("partition"));
        assert!(body.contains("conns_offered"));
        server.shutdown();
    }

    #[test]
    fn health_and_readiness_probes() {
        let server = test_server(6);
        let addr = server.addr();
        let (status, body) = get(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, body) = get(addr, "/readyz");
        assert_eq!((status, body.as_str()), (200, "ready\n"));
        server.shutdown();
    }

    #[test]
    fn unfiltered_bytes_match_the_stage_graph_export() {
        let server = test_server(12);
        let addr = server.addr();
        let mut driver = PartitionedDriver::new(
            CorpusSource::Memory(corpus_texts(12)),
            Settings::fast(),
            42,
        );
        let figures = driver.figure_files().expect("figures");
        let expected = &figures.iter().find(|(n, _)| n == "fig2_power.svg").expect("fig2").1;
        let (status, body) = get(addr, "/figures/2");
        assert_eq!(status, 200);
        assert_eq!(&body, expected);
        server.shutdown();
    }

    #[test]
    fn filtered_query_recomputes_from_rows() {
        let server = test_server(12);
        let addr = server.addr();
        let (status, all) = get(addr, "/data/2");
        assert_eq!(status, 200);
        let (status, amd) = get(addr, "/data/2?vendor=amd");
        assert_eq!(status, 200);
        assert!(amd.lines().count() < all.lines().count());
        assert!(!amd.contains("Intel"));
        // Memoized second hit returns identical bytes.
        let (_, amd2) = get(addr, "/data/2?vendor=amd");
        assert_eq!(amd, amd2);
        let (status, year) = get(addr, "/figures/5?year=2011&vendor=intel");
        assert_eq!(status, 200);
        assert!(year.contains("<svg"));
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let server = test_server(12);
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        for i in 0..5 {
            stream
                .write_all(format!("GET /data/{} HTTP/1.1\r\nHost: t\r\n\r\n", 1 + i % 6).as_bytes())
                .expect("request");
            let resp = read_response(&mut stream)
                .expect("read")
                .expect("one response per request");
            assert_eq!(resp.status, 200, "request {i}");
            assert!(resp.complete, "request {i} complete body");
            assert!(!resp.close, "connection persists after request {i}");
        }
        // The same socket served all five: /stats sees one accepted
        // connection carrying five (now six) requests.
        stream
            .write_all(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("request");
        let resp = read_response(&mut stream).expect("read").expect("stats");
        assert!(resp.close, "close honoured on request");
        let stats = String::from_utf8_lossy(&resp.body).to_string();
        assert_eq!(stat_line(&stats, "conns_accepted "), 1, "{stats}");
        assert_eq!(stat_line(&stats, "requests_served "), 5, "{stats}");
        server.shutdown();
    }

    #[test]
    fn pipelined_burst_answers_every_request_in_order() {
        let server = test_server(12);
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut burst = String::new();
        for _ in 0..3 {
            burst.push_str("GET /data/1 HTTP/1.1\r\nHost: t\r\n\r\n");
        }
        burst.push_str("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        stream.write_all(burst.as_bytes()).expect("pipelined send");
        for i in 0..3 {
            let resp = read_response(&mut stream).expect("read").expect("response");
            assert_eq!(resp.status, 200, "pipelined {i}");
            assert!(resp.complete, "pipelined {i}");
        }
        let last = read_response(&mut stream).expect("read").expect("final");
        assert_eq!(last.status, 200);
        assert_eq!(last.body, b"ok\n");
        assert!(last.close);
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_typed_status_codes_not_panics() {
        let server = test_server(6);
        let addr = server.addr();
        assert_eq!(get(addr, "/data/2?year=banana").0, 400);
        assert_eq!(get(addr, "/data/2?frobnicate=1").0, 400);
        assert_eq!(get(addr, "/data/9").0, 404);
        assert_eq!(get(addr, "/nope").0, 404);
        // Unknown method → 501; known-but-unsupported → 405 with Allow.
        assert!(raw(addr, b"BOGUS / HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 501"));
        let post = raw(addr, b"POST /stats HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "got {post:?}");
        assert!(post.contains("Allow: GET"), "got {post:?}");
        // A GET smuggling a body is rejected outright.
        let body = raw(addr, b"GET /stats HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        assert!(body.starts_with("HTTP/1.1 400"), "got {body:?}");
        // Unsupported version → 505.
        assert!(raw(addr, b"GET / HTTP/3.0\r\n\r\n").starts_with("HTTP/1.1 505"));
        // Server still alive and serving.
        assert_eq!(get(addr, "/stats").0, 200);
        server.shutdown();
    }

    #[test]
    fn header_flood_is_431_and_query_flood_is_414() {
        let server = test_server(6);
        let addr = server.addr();
        let mut flood = String::from("GET /stats HTTP/1.1\r\n");
        for i in 0..2000 {
            flood.push_str(&format!("X-Flood-{i}: {}\r\n", "a".repeat(32)));
        }
        flood.push_str("\r\n");
        let reply = raw(addr, flood.as_bytes());
        assert!(reply.starts_with("HTTP/1.1 431"), "got {:?}", &reply[..40.min(reply.len())]);
        let long_query = format!("GET /data/2?{} HTTP/1.1\r\n\r\n", "y".repeat(4096));
        let reply = raw(addr, long_query.as_bytes());
        assert!(reply.starts_with("HTTP/1.1 414"), "got {:?}", &reply[..40.min(reply.len())]);
        assert_eq!(get(addr, "/stats").0, 200);
        server.shutdown();
    }

    #[test]
    fn overload_sheds_with_503_and_retry_after() {
        let mut config = test_config(6);
        config.threads = 1;
        config.limits.max_inflight = 1;
        config.limits.queue_depth = 1;
        config.limits.idle_timeout_ms = 10_000;
        let server = Server::start(config).expect("server starts");
        let addr = server.addr();
        // Two silent connections: one occupies the only worker (parked in
        // its idle read), the next occupies the whole admission queue.
        let hold_a = TcpStream::connect(addr).expect("hold a");
        std::thread::sleep(Duration::from_millis(150));
        let hold_b = TcpStream::connect(addr).expect("hold b");
        std::thread::sleep(Duration::from_millis(150));
        // The third connection must be shed at admission.
        let mut stream = TcpStream::connect(addr).expect("shed victim");
        stream
            .write_all(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("request");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let resp = read_response(&mut stream).expect("read").expect("shed response");
        assert_eq!(resp.status, 503);
        assert!(resp.retry_after, "503 must carry Retry-After");
        assert!(resp.complete);
        drop(hold_a);
        drop(hold_b);
        // The daemon keeps serving; the shed connection is accounted.
        std::thread::sleep(Duration::from_millis(100));
        let (status, stats) = get(addr, "/stats");
        assert_eq!(status, 200);
        assert_eq!(stat_line(&stats, "conns_shed "), 1, "{stats}");
        server.shutdown();
    }

    #[test]
    fn blown_deadline_is_503_and_never_memoized() {
        let mut config = test_config(12);
        let clock = Arc::new(net::TestClock::new());
        config.clock = Arc::clone(&clock) as Arc<dyn net::Clock>;
        config.limits.request_deadline_ms = 100;
        let server = Server::start(config).expect("server starts");
        let addr = server.addr();
        // Frozen clock: everything is instant; the memo fills normally.
        let (status, _) = get(addr, "/data/2?vendor=intel");
        assert_eq!(status, 200);
        // Step the clock past the deadline on every read: the next
        // *uncached* filtered recompute blows its budget mid-flight.
        clock.set_step(Duration::from_millis(250));
        let (status, body) = get(addr, "/data/3?vendor=amd");
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("deadline"), "{body}");
        // Memoized responses still answer 200 (no recompute to guard) and
        // static exports are untouched.
        assert_eq!(get(addr, "/data/2?vendor=intel").0, 200);
        assert_eq!(get(addr, "/data/2").0, 200);
        // Freeze time again: the failed query recomputes from scratch —
        // proof the 503 was never memoized.
        clock.set_step(Duration::ZERO);
        let (status, body) = get(addr, "/data/3?vendor=amd");
        assert_eq!(status, 200, "{body}");
        let (_, stats) = get(addr, "/stats");
        assert_eq!(stat_line(&stats, "timeout_deadline "), 1, "{stats}");
        server.shutdown();
    }

    #[test]
    fn slow_loris_is_shed_by_the_read_deadline() {
        let mut config = test_config(6);
        config.limits.request_deadline_ms = 200;
        config.limits.idle_timeout_ms = 200;
        let server = Server::start(config).expect("server starts");
        let addr = server.addr();
        // Trickle a request head slower than the deadline allows.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"GET /st").expect("partial");
        std::thread::sleep(Duration::from_millis(400));
        // The server has cut us off; the write eventually fails or the
        // read returns EOF with no response bytes.
        let mut buf = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let _ = stream.read_to_end(&mut buf);
        assert!(buf.is_empty(), "no torn response for a timed-out request");
        let (_, stats) = get(addr, "/stats");
        assert_eq!(stat_line(&stats, "conns_timed_out "), 1, "{stats}");
        assert_eq!(stat_line(&stats, "timeout_read "), 1, "{stats}");
        server.shutdown();
    }

    #[test]
    fn refresh_swaps_snapshot_and_drain_completes_in_flight() {
        let server = test_server(6);
        let addr = server.addr();
        assert_eq!(server.refresh().expect("refresh"), 1);
        let (_, body) = get(addr, "/stats");
        assert!(body.contains("generation 1"), "got {body}");
        let (status, _) = get(addr, "/shutdown");
        assert_eq!(status, 200);
        assert!(server.shutdown_requested());
        server.shutdown();
    }

    #[test]
    fn stats_accounting_balances_exactly() {
        let server = test_server(12);
        let addr = server.addr();
        for target in ["/", "/data/1", "/figures/2", "/data/2?vendor=amd", "/nope"] {
            let _ = get(addr, target);
        }
        // Brief settle: terminal accounting lands when the worker finishes
        // the connection, marginally after the client sees the close.
        std::thread::sleep(Duration::from_millis(100));
        let (_, stats) = get(addr, "/stats");
        let offered = stat_line(&stats, "conns_offered ");
        let shed = stat_line(&stats, "conns_shed ");
        let accepted = stat_line(&stats, "conns_accepted ");
        let queued = stat_line(&stats, "conns_queued ");
        let active = stat_line(&stats, "conns_active ");
        let completed = stat_line(&stats, "conns_completed ");
        let timed_out = stat_line(&stats, "conns_timed_out ");
        let aborted = stat_line(&stats, "conns_aborted ");
        assert_eq!(offered, shed + accepted + queued, "{stats}");
        assert_eq!(accepted, completed + timed_out + aborted + active, "{stats}");
        assert_eq!(active, 1, "the /stats request itself: {stats}");
        assert_eq!(stat_line(&stats, "worker_panics "), 0, "{stats}");
        server.shutdown();
    }
}
