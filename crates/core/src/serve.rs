//! # `spec-trends serve` — the warm-partition query daemon
//!
//! A std-only HTTP/1.1 server over [`std::net`] that answers figure and
//! data queries straight from warm partition artifacts. The daemon keeps
//! one immutable [`Snapshot`] (pre-rendered figures/CSVs plus the merged
//! [`RunRow`] extracts) behind an `RwLock<Arc<_>>`; every request reads
//! whichever snapshot is current, so a refresh that fails mid-flight —
//! including under `FaultVfs` chaos — can never produce a torn response:
//! the old snapshot simply stays live.
//!
//! Endpoints (all `GET`, `Connection: close`):
//!
//! | path            | response                                        |
//! |-----------------|-------------------------------------------------|
//! | `/`             | plain-text index of endpoints                   |
//! | `/figures/<n>`  | Figure *n* (1–6) as SVG                         |
//! | `/data/<n>`     | the CSV behind figure *n*                       |
//! | `/stats`        | corpus cascade, partition table, obs metrics    |
//! | `/shutdown`     | begins graceful shutdown                        |
//!
//! `/figures/<n>` and `/data/<n>` accept `?year=YYYY` and
//! `?vendor=intel|amd|other` filters; filtered responses are recomputed
//! from the snapshot's row extracts via the same `compute_rows` reduce
//! the pipeline uses, then memoized per snapshot so repeated queries are
//! sub-millisecond. Unfiltered responses serve the stage graph's cached
//! export bytes unchanged.
//!
//! A watcher thread polls the corpus directory's fingerprint and rebuilds
//! the [`PartitionedDriver`] on change — only the touched (year, vendor)
//! partition's stages re-execute, which `/stats` reports per refresh.
//!
//! Request handling is panic-proof: each connection runs under
//! `catch_unwind`, malformed requests map to 4xx through [`spec_diag`]
//! error categories, and every request records a `spec-obs` span plus
//! log₂-µs latency histograms (`serve.request_us`, `serve.<endpoint>_us`).

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spec_diag::TrendsError;
use spec_model::CpuVendor;
use spec_obs as obs;
use spec_ssj::Settings;
use spec_vfs::Vfs;

use crate::export::{fig1_frame, fig4_frame, series_frame};
use crate::figures::common::RunRow;
use crate::figures::{fig1, fig2, fig3, fig4, fig5, fig6};
use crate::pipeline::FilterReport;
use crate::stage::{ArtifactCache, CorpusSource, PartitionSummary, PartitionedDriver};

/// Largest request head (request line + headers) we accept before 400.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How the daemon is built and where it listens.
#[derive(Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Where the corpus comes from (usually [`CorpusSource::Dir`]).
    pub source: CorpusSource,
    /// Simulation settings folded into derive-stage keys.
    pub settings: Settings,
    /// Table 1 seed.
    pub seed: u64,
    /// Artifact cache shared with `analyze` (warm partitions).
    pub cache: Option<ArtifactCache>,
    /// Worker threads accepting connections.
    pub threads: usize,
    /// Directory to poll for corpus changes (None disables the watcher).
    pub watch: Option<PathBuf>,
    /// Watcher poll interval.
    pub poll_ms: u64,
    /// Filesystem backend for corpus reads (chaos-injectable).
    pub vfs: Arc<dyn Vfs>,
}

impl ServeConfig {
    /// A config with conventional defaults for `source`.
    pub fn new(source: CorpusSource) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            source,
            settings: Settings::default(),
            seed: 42,
            cache: None,
            threads: 4,
            watch: None,
            poll_ms: 500,
            vfs: spec_vfs::default_vfs(),
        }
    }
}

/// One rendered HTTP response body.
struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type,
            body: body.into(),
        }
    }

    fn error(status: u16, detail: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: format!("{} {}\n{detail}\n", status, status_text(status)).into_bytes(),
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

/// Everything a request can be answered from, built once per refresh.
/// Immutable after construction except the per-snapshot response memo.
struct Snapshot {
    /// Monotonic refresh counter (0 = the startup build).
    generation: u64,
    /// Full §II cascade accounting.
    report: FilterReport,
    /// Row extracts of the valid runs (Figure 1 input).
    valid_rows: Vec<RunRow>,
    /// Row extracts of the comparable runs (Figures 2–6 input).
    comparable_rows: Vec<RunRow>,
    /// Pre-rendered figure SVGs from the stage graph, by file name.
    figure_files: Vec<(String, String)>,
    /// Pre-rendered CSVs from the stage graph, by file name.
    data_files: Vec<(String, String)>,
    /// Per-partition cascade summary from the build that made this.
    partitions: Vec<PartitionSummary>,
    /// Stage executions during the refresh that built this snapshot.
    executed: usize,
    /// Cache hits during the refresh that built this snapshot.
    hits: usize,
    /// Partitions with ≥1 execution during the refresh.
    partitions_executed: usize,
    /// Memoized filtered responses, keyed by `path?query`.
    memo: Mutex<HashMap<String, Arc<Response>>>,
}

impl Snapshot {
    /// Build a snapshot by driving the partitioned stage graph. Runs
    /// entirely in the calling thread (the driver is single-threaded
    /// state; partition work inside still fans out over `tinypool`).
    fn build(config: &ServeConfig, generation: u64) -> spec_diag::Result<Snapshot> {
        let mut sp = obs::span("serve.refresh");
        let mut driver = PartitionedDriver::new(
            config.source.clone(),
            config.settings.clone(),
            config.seed,
        )
        .with_vfs(Arc::clone(&config.vfs));
        if let Some(cache) = &config.cache {
            driver = driver.with_cache(cache.clone());
        }
        let report = driver.filter_report()?;
        let merged = driver.merged()?;
        let valid_rows = merged.valid_rows.clone();
        let comparable_rows = merged.comparable_rows.clone();
        let figure_files = driver.figure_files()?;
        let data_files = driver.data_files()?;
        let partitions = driver.partition_summary()?;
        sp.record("generation", generation);
        sp.record("executed", driver.executed_total());
        sp.observe_into("serve.refresh_us");
        Ok(Snapshot {
            generation,
            report,
            valid_rows,
            comparable_rows,
            figure_files,
            data_files,
            partitions,
            executed: driver.executed_total(),
            hits: driver.hits_total(),
            partitions_executed: driver.partitions_executed(),
            memo: Mutex::new(HashMap::new()),
        })
    }

    fn file(&self, files: &[(String, String)], name: &str) -> Option<Arc<Response>> {
        let content_type = if name.ends_with(".svg") {
            "image/svg+xml"
        } else {
            "text/csv; charset=utf-8"
        };
        files
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, body)| Arc::new(Response::ok(content_type, body.as_bytes())))
    }
}

/// A `?year=`/`?vendor=` filter over the row extracts.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
struct RowFilter {
    year: Option<i32>,
    vendor: Option<CpuVendor>,
}

impl RowFilter {
    fn is_empty(self) -> bool {
        self.year.is_none() && self.vendor.is_none()
    }

    fn apply(self, rows: &[RunRow]) -> Vec<RunRow> {
        rows.iter()
            .filter(|r| self.year.is_none_or(|y| r.hw_year == y))
            .filter(|r| self.vendor.is_none_or(|v| r.vendor == v))
            .copied()
            .collect()
    }
}

/// Parse the query string; unknown keys and malformed values are client
/// errors (400), reported through a [`spec_diag`] config-category error.
fn parse_filter(query: &str) -> Result<RowFilter, TrendsError> {
    let mut filter = RowFilter::default();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "year" => {
                let year: i32 = value.parse().map_err(|_| {
                    TrendsError::config("serve", format!("year must be an integer, got {value:?}"))
                })?;
                filter.year = Some(year);
            }
            "vendor" => {
                filter.vendor = Some(match value.to_ascii_lowercase().as_str() {
                    "intel" => CpuVendor::Intel,
                    "amd" => CpuVendor::Amd,
                    "other" => CpuVendor::Other,
                    _ => {
                        return Err(TrendsError::config(
                            "serve",
                            format!("vendor must be intel|amd|other, got {value:?}"),
                        ))
                    }
                });
            }
            _ => {
                return Err(TrendsError::config(
                    "serve",
                    format!("unknown query parameter {key:?}"),
                ))
            }
        }
    }
    Ok(filter)
}

/// Canonical export file name for figure `n` (the stage graph's bytes).
fn figure_file_name(n: u8) -> &'static str {
    match n {
        1 => "fig1_shares.svg",
        2 => "fig2_power.svg",
        3 => "fig3_efficiency.svg",
        4 => "fig4_grid.svg",
        5 => "fig5_idle.svg",
        _ => "fig6_extrapolated.svg",
    }
}

/// Canonical export file name for figure `n`'s data CSV.
fn data_file_name(n: u8) -> &'static str {
    match n {
        1 => "fig1_shares.csv",
        2 => "fig2_per_socket_power.csv",
        3 => "fig3_overall_efficiency.csv",
        4 => "fig4_relative_efficiency.csv",
        5 => "fig5_idle_fraction.csv",
        _ => "fig6_extrapolated_quotient.csv",
    }
}

/// Render figure `n` over (possibly filtered) rows with the same
/// `compute_rows` reduce and chart geometry the export stages use.
fn render_figure(n: u8, valid: &[RunRow], comparable: &[RunRow]) -> String {
    match n {
        1 => fig1::compute_rows(valid).share_chart().to_svg(860, 520),
        2 => fig2::compute_rows(comparable).chart().to_svg(860, 520),
        3 => fig3::compute_rows(comparable).chart().to_svg(860, 520),
        4 => {
            let fig = fig4::compute_rows(comparable);
            let panels: Vec<tinyplot::Chart> =
                fig4::LOADS.iter().map(|&load| fig.chart(load)).collect();
            tinyplot::render_grid(&panels, 2, 640, 430)
        }
        5 => fig5::compute_rows(comparable).chart().to_svg(860, 520),
        _ => fig6::compute_rows(comparable).chart().to_svg(860, 520),
    }
}

/// Render figure `n`'s CSV over (possibly filtered) rows with the same
/// frame builders `Study::data_files` uses.
fn render_data(n: u8, valid: &[RunRow], comparable: &[RunRow]) -> String {
    match n {
        1 => fig1_frame(&fig1::compute_rows(valid)).to_csv(),
        2 => series_frame(&fig2::compute_rows(comparable).scatter, "w_per_socket").to_csv(),
        3 => series_frame(&fig3::compute_rows(comparable).scatter, "overall_eff").to_csv(),
        4 => fig4_frame(&fig4::compute_rows(comparable)).to_csv(),
        5 => series_frame(&fig5::compute_rows(comparable).scatter, "idle_fraction").to_csv(),
        _ => series_frame(&fig6::compute_rows(comparable).scatter, "extrap_quotient").to_csv(),
    }
}

/// Shared state between workers, the watcher and [`Server`].
struct Shared {
    listener: TcpListener,
    addr: SocketAddr,
    snapshot: RwLock<Arc<Snapshot>>,
    shutdown: AtomicBool,
    generation: AtomicU64,
    /// Refresh failures since startup (stale snapshot kept each time).
    refresh_errors: AtomicU64,
}

impl Shared {
    fn current(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock"))
    }

    fn swap(&self, snapshot: Snapshot) {
        *self.snapshot.write().expect("snapshot lock") = Arc::new(snapshot);
    }
}

/// The running daemon: N accept workers plus an optional corpus watcher.
pub struct Server {
    shared: Arc<Shared>,
    config: ServeConfig,
    workers: Vec<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, build the initial snapshot (propagating corpus errors) and
    /// start the worker + watcher threads.
    pub fn start(config: ServeConfig) -> spec_diag::Result<Server> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| TrendsError::io("serve", &e).with_origin(config.addr.clone()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| TrendsError::io("serve", &e))?;
        let snapshot = Snapshot::build(&config, 0)?;
        let shared = Arc::new(Shared {
            listener,
            addr,
            snapshot: RwLock::new(Arc::new(snapshot)),
            shutdown: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            refresh_errors: AtomicU64::new(0),
        });

        let workers = (0..config.threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let watcher = config.watch.as_ref().map(|dir| {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            let dir = dir.clone();
            std::thread::Builder::new()
                .name("serve-watcher".to_string())
                .spawn(move || watcher_loop(&shared, &config, &dir))
                .expect("spawn watcher")
        });

        obs::count("serve.started", 1);
        Ok(Server {
            shared,
            config,
            workers,
            watcher,
        })
    }

    /// The bound address (useful with `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// True once `/shutdown` was requested (or [`Self::shutdown`] ran).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Rebuild the snapshot now (what the watcher does on a change).
    /// On failure the previous snapshot stays live and the error is
    /// returned.
    pub fn refresh(&self) -> spec_diag::Result<u64> {
        refresh(&self.shared, &self.config)
    }

    /// Block until a shutdown request arrives, polling every 100 ms.
    pub fn wait(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    /// Graceful shutdown: stop accepting, wake blocked workers, join all
    /// threads.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Workers block in accept(); poke each once so they observe the
        // flag. Failures are fine — the worker may already be gone.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.shared.addr);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(watcher) = self.watcher.take() {
            let _ = watcher.join();
        }
    }
}

/// Refresh the shared snapshot from the corpus; stale-on-failure.
fn refresh(shared: &Shared, config: &ServeConfig) -> spec_diag::Result<u64> {
    let generation = shared.generation.load(Ordering::SeqCst) + 1;
    match Snapshot::build(config, generation) {
        Ok(snapshot) => {
            shared.swap(snapshot);
            shared.generation.store(generation, Ordering::SeqCst);
            obs::count("serve.refresh", 1);
            Ok(generation)
        }
        Err(err) => {
            shared.refresh_errors.fetch_add(1, Ordering::SeqCst);
            obs::count("serve.refresh_error", 1);
            Err(err)
        }
    }
}

/// `(name, len, mtime)` for every entry in the watched directory; any
/// change to the triple set means the corpus changed. Uses `std::fs`
/// directly — the watcher never reads file contents, so chaos injection
/// on the corpus read path cannot wedge the fingerprint.
fn dir_fingerprint(dir: &std::path::Path) -> Vec<(String, u64, u128)> {
    let mut entries = Vec::new();
    let Ok(read) = std::fs::read_dir(dir) else {
        return entries;
    };
    for entry in read.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Ok(meta) = entry.metadata() else { continue };
        let mtime = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        entries.push((name, meta.len(), mtime));
    }
    entries.sort();
    entries
}

fn watcher_loop(shared: &Shared, config: &ServeConfig, dir: &std::path::Path) {
    let mut last = dir_fingerprint(dir);
    let step = Duration::from_millis(config.poll_ms.clamp(10, 1000));
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(step);
        let next = dir_fingerprint(dir);
        if next != last {
            last = next;
            // Stale-on-failure: a failed rebuild keeps the old snapshot.
            let _ = refresh(shared, config);
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match shared.listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // A connection must never take a worker down: handler panics
        // (e.g. a poisoned lock under chaos) become 500s.
        let result = catch_unwind(AssertUnwindSafe(|| handle_connection(shared, stream)));
        if result.is_err() {
            obs::count("serve.panic", 1);
        }
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let start = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let response = match read_request(&mut stream) {
        Ok((method, target)) => route(shared, &method, &target),
        Err(detail) => Arc::new(Response::error(400, &detail)),
    };
    let _ = response.write_to(&mut stream);
    if obs::enabled() {
        let us = start.elapsed().as_micros() as u64;
        obs::observe_us("serve.request_us", us);
        obs::count(&format!("serve.status.{}", response.status), 1);
    }
}

/// Read and parse the request line; returns `(method, target)`.
fn read_request(stream: &mut TcpStream) -> Result<(String, String), String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the end of headers (or just the request line for
    // pipelined-free clients like curl).
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err("request head too large".to_string());
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err("request read failed".to_string()),
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let line = text.lines().next().unwrap_or("").trim();
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(format!("malformed request line {line:?}"));
    };
    Ok((method.to_string(), target.to_string()))
}

/// Dispatch one parsed request to its endpoint.
fn route(shared: &Shared, method: &str, target: &str) -> Arc<Response> {
    let mut sp = obs::span("serve.request");
    if method != "GET" {
        sp.cancel();
        return Arc::new(Response::error(405, &format!("method {method} not allowed")));
    }
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    let endpoint_hist = match path {
        "/" => "serve.index_us",
        "/stats" => "serve.stats_us",
        "/shutdown" => "serve.shutdown_us",
        p if p.starts_with("/figures/") => "serve.figures_us",
        p if p.starts_with("/data/") => "serve.data_us",
        _ => "serve.other_us",
    };
    let response = match path {
        "/" => Arc::new(index_response()),
        "/stats" => Arc::new(stats_response(shared)),
        "/shutdown" => {
            shared.shutdown.store(true, Ordering::SeqCst);
            obs::count("serve.shutdown_requests", 1);
            Arc::new(Response::ok("text/plain; charset=utf-8", "shutting down\n"))
        }
        _ => figure_or_data(shared, path, query),
    };
    if obs::enabled() {
        sp.record("path", path);
        sp.record("status", response.status as u32);
        sp.observe_into(endpoint_hist);
    } else {
        sp.cancel();
    }
    response
}

fn figure_or_data(shared: &Shared, path: &str, query: &str) -> Arc<Response> {
    let (kind, rest) = if let Some(rest) = path.strip_prefix("/figures/") {
        ("figures", rest)
    } else if let Some(rest) = path.strip_prefix("/data/") {
        ("data", rest)
    } else {
        return Arc::new(Response::error(404, &format!("no such endpoint {path:?}")));
    };
    let Ok(n @ 1..=6) = rest.parse::<u8>() else {
        return Arc::new(Response::error(
            404,
            &format!("figure number must be 1..=6, got {rest:?}"),
        ));
    };
    let filter = match parse_filter(query) {
        Ok(filter) => filter,
        // Malformed request → 4xx through the spec-diag error, never a
        // panic; the category names the config-error class.
        Err(err) => {
            return Arc::new(Response::error(
                400,
                &format!("[{}] {err}", err.kind.category()),
            ))
        }
    };

    let snapshot = shared.current();
    if filter.is_empty() {
        // Unfiltered: the stage graph's cached export bytes, verbatim.
        let (files, name) = match kind {
            "figures" => (&snapshot.figure_files, figure_file_name(n)),
            _ => (&snapshot.data_files, data_file_name(n)),
        };
        return match snapshot.file(files, name) {
            Some(response) => response,
            None => Arc::new(Response::error(500, "export artifact missing")),
        };
    }

    let memo_key = format!("{path}?{query}");
    if let Some(hit) = snapshot.memo.lock().expect("memo lock").get(&memo_key) {
        obs::count("serve.memo_hit", 1);
        return Arc::clone(hit);
    }

    let valid = filter.apply(&snapshot.valid_rows);
    let comparable = filter.apply(&snapshot.comparable_rows);
    let response = Arc::new(if kind == "figures" {
        Response::ok("image/svg+xml", render_figure(n, &valid, &comparable))
    } else {
        Response::ok(
            "text/csv; charset=utf-8",
            render_data(n, &valid, &comparable),
        )
    });
    snapshot
        .memo
        .lock()
        .expect("memo lock")
        .insert(memo_key, Arc::clone(&response));
    obs::count("serve.memo_fill", 1);
    response
}

fn index_response() -> Response {
    Response::ok(
        "text/plain; charset=utf-8",
        "spec-trends serve\n\
         endpoints:\n\
         \x20 /figures/<1..6>[?year=YYYY][&vendor=intel|amd|other]  figure SVG\n\
         \x20 /data/<1..6>[?year=YYYY][&vendor=intel|amd|other]     figure CSV\n\
         \x20 /stats                                                cascade + partitions + metrics\n\
         \x20 /shutdown                                             graceful shutdown\n",
    )
}

fn stats_response(shared: &Shared) -> Response {
    let snapshot = shared.current();
    let mut out = String::new();
    out.push_str(&format!(
        "generation {}\nraw {}\nvalid {}\ncomparable {}\nrefresh_errors {}\n",
        snapshot.generation,
        snapshot.report.raw,
        snapshot.report.valid,
        snapshot.report.comparable,
        shared.refresh_errors.load(Ordering::SeqCst),
    ));
    out.push_str(&format!(
        "last_refresh: executed {} hits {} partitions_executed {}\n\n",
        snapshot.executed, snapshot.hits, snapshot.partitions_executed
    ));
    out.push_str("partition       reports  valid  comparable  executed  hits\n");
    for p in &snapshot.partitions {
        out.push_str(&format!(
            "{:<14} {:>8} {:>6} {:>11} {:>9} {:>5}\n",
            p.key.label(),
            p.reports,
            p.valid,
            p.comparable,
            p.executed,
            p.hits
        ));
    }
    if obs::enabled() {
        out.push('\n');
        out.push_str(&obs::snapshot().to_table());
    }
    Response::ok("text/plain; charset=utf-8", out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_format::write_run;
    use spec_model::{linear_test_run, YearMonth};

    fn corpus_texts(n: u32) -> Vec<(Option<String>, String)> {
        (0..n)
            .map(|i| {
                let mut run = linear_test_run(i, 1e6, 60.0, 300.0);
                run.dates.hw_available = YearMonth::new(2010 + (i as i32 % 4), 6).unwrap();
                if i % 3 == 0 {
                    run.system.cpu.name = format!("AMD EPYC {}", 9000 + i);
                }
                (Some(format!("run{i}.txt")), write_run(&run))
            })
            .collect()
    }

    fn test_server(n: u32) -> Server {
        let mut config = ServeConfig::new(CorpusSource::Memory(corpus_texts(n)));
        config.addr = "127.0.0.1:0".to_string();
        config.threads = 2;
        config.settings = Settings::fast();
        Server::start(config).expect("server starts")
    }

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .expect("request");
        let mut buf = String::new();
        stream.read_to_string(&mut buf).expect("response");
        let status: u16 = buf
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = buf
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_every_endpoint() {
        let server = test_server(12);
        let addr = server.addr();
        let (status, body) = get(addr, "/");
        assert_eq!(status, 200);
        assert!(body.contains("/figures/"));
        for n in 1..=6 {
            let (status, body) = get(addr, &format!("/figures/{n}"));
            assert_eq!(status, 200, "figure {n}");
            assert!(body.contains("<svg"), "figure {n} is SVG");
            let (status, body) = get(addr, &format!("/data/{n}"));
            assert_eq!(status, 200, "data {n}");
            assert!(body.contains('\n'), "data {n} is CSV");
        }
        let (status, body) = get(addr, "/stats");
        assert_eq!(status, 200);
        assert!(body.contains("generation 0"));
        assert!(body.contains("partition"));
        server.shutdown();
    }

    #[test]
    fn unfiltered_bytes_match_the_stage_graph_export() {
        let server = test_server(12);
        let addr = server.addr();
        let mut driver = PartitionedDriver::new(
            CorpusSource::Memory(corpus_texts(12)),
            Settings::fast(),
            42,
        );
        let figures = driver.figure_files().expect("figures");
        let expected = &figures.iter().find(|(n, _)| n == "fig2_power.svg").expect("fig2").1;
        let (status, body) = get(addr, "/figures/2");
        assert_eq!(status, 200);
        assert_eq!(&body, expected);
        server.shutdown();
    }

    #[test]
    fn filtered_query_recomputes_from_rows() {
        let server = test_server(12);
        let addr = server.addr();
        let (status, all) = get(addr, "/data/2");
        assert_eq!(status, 200);
        let (status, amd) = get(addr, "/data/2?vendor=amd");
        assert_eq!(status, 200);
        assert!(amd.lines().count() < all.lines().count());
        assert!(!amd.contains("Intel"));
        // Memoized second hit returns identical bytes.
        let (_, amd2) = get(addr, "/data/2?vendor=amd");
        assert_eq!(amd, amd2);
        let (status, year) = get(addr, "/figures/5?year=2011&vendor=intel");
        assert_eq!(status, 200);
        assert!(year.contains("<svg"));
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_4xx_not_panics() {
        let server = test_server(6);
        let addr = server.addr();
        assert_eq!(get(addr, "/data/2?year=banana").0, 400);
        assert_eq!(get(addr, "/data/2?frobnicate=1").0, 400);
        assert_eq!(get(addr, "/data/9").0, 404);
        assert_eq!(get(addr, "/nope").0, 404);
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"BOGUS\r\n\r\n").expect("send");
        let mut buf = String::new();
        stream.read_to_string(&mut buf).expect("read");
        assert!(buf.starts_with("HTTP/1.1 400"), "got {buf:?}");
        // POST is rejected with 405.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /stats HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("send");
        let mut buf = String::new();
        stream.read_to_string(&mut buf).expect("read");
        assert!(buf.starts_with("HTTP/1.1 405"), "got {buf:?}");
        // Server still alive and serving.
        assert_eq!(get(addr, "/stats").0, 200);
        server.shutdown();
    }

    #[test]
    fn refresh_swaps_snapshot_and_shutdown_joins() {
        let server = test_server(6);
        let addr = server.addr();
        assert_eq!(server.refresh().expect("refresh"), 1);
        let (_, body) = get(addr, "/stats");
        assert!(body.contains("generation 1"), "got {body}");
        let (status, _) = get(addr, "/shutdown");
        assert_eq!(status, 200);
        assert!(server.shutdown_requested());
        server.shutdown();
    }
}
