//! Feature extraction: runs → a [`tinyframe::Frame`] with one row per run.
//!
//! This is the tabular backbone of every figure and of the §IV correlation
//! exploration. Missing/derived-undefined values become `NaN`.

use spec_model::{LoadLevel, RunResult};
use tinyframe::{Column, Frame, SegFrame};

/// Column names produced by [`runs_to_frame`], in order.
pub const FEATURE_COLUMNS: [&str; 24] = [
    "id",
    "year",
    "frac_year",
    "vendor",
    "os_family",
    "nodes",
    "chips",
    "cores_per_chip",
    "total_cores",
    "total_threads",
    "nominal_ghz",
    "boost_ghz",
    "tdp_w",
    "memory_gb",
    "dimms",
    "psu_w",
    "jvm_instances",
    "full_power_w",
    "per_socket_w",
    "idle_w",
    "idle_fraction",
    "overall_eff",
    "extrap_idle_w",
    "extrap_quotient",
];

/// Build the feature frame. Adds four extra columns `rel_eff_60` …
/// `rel_eff_90` beyond [`FEATURE_COLUMNS`].
pub fn runs_to_frame(runs: &[RunResult]) -> Frame {
    let n = runs.len();
    let mut id = Vec::with_capacity(n);
    let mut year = Vec::with_capacity(n);
    let mut frac_year = Vec::with_capacity(n);
    let mut vendor = Vec::with_capacity(n);
    let mut os_family = Vec::with_capacity(n);
    let mut nodes = Vec::with_capacity(n);
    let mut chips = Vec::with_capacity(n);
    let mut cores_per_chip = Vec::with_capacity(n);
    let mut total_cores = Vec::with_capacity(n);
    let mut total_threads = Vec::with_capacity(n);
    let mut nominal_ghz = Vec::with_capacity(n);
    let mut boost_ghz = Vec::with_capacity(n);
    let mut tdp_w = Vec::with_capacity(n);
    let mut memory_gb = Vec::with_capacity(n);
    let mut dimms = Vec::with_capacity(n);
    let mut psu_w = Vec::with_capacity(n);
    let mut jvm_instances = Vec::with_capacity(n);
    let mut full_power = Vec::with_capacity(n);
    let mut per_socket = Vec::with_capacity(n);
    let mut idle_w = Vec::with_capacity(n);
    let mut idle_fraction = Vec::with_capacity(n);
    let mut overall_eff = Vec::with_capacity(n);
    let mut extrap_idle = Vec::with_capacity(n);
    let mut extrap_quotient = Vec::with_capacity(n);
    let mut rel: [Vec<f64>; 4] = [
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
    ];

    let nan = f64::NAN;
    for run in runs {
        let sys = &run.system;
        id.push(run.id as i64);
        year.push(run.hw_year() as i64);
        frac_year.push(run.dates.hw_available.fractional_year());
        // Categorical columns intern to 4-byte tokens: the handful of
        // distinct labels in a 100k-run corpus dedup to one allocation
        // each, and group-bys over them compare tokens, not strings.
        vendor.push(spec_intern::intern(sys.cpu.vendor().label()));
        os_family.push(spec_intern::intern(sys.os.family().label()));
        nodes.push(sys.nodes as i64);
        chips.push(sys.chips as i64);
        cores_per_chip.push(sys.cpu.cores_per_chip as i64);
        total_cores.push(sys.total_cores() as i64);
        total_threads.push(sys.total_threads() as i64);
        nominal_ghz.push(sys.cpu.nominal.ghz());
        boost_ghz.push(sys.cpu.max_boost.ghz());
        tdp_w.push(sys.cpu.tdp.value());
        memory_gb.push(sys.memory_gb as i64);
        dimms.push(sys.dimm_count as i64);
        psu_w.push(sys.psu_rating.value());
        jvm_instances.push(sys.jvm_instances as i64);
        full_power.push(
            run.power_at(LoadLevel::Percent(100))
                .map_or(nan, |w| w.value()),
        );
        per_socket.push(run.per_socket_full_load_power().map_or(nan, |w| w.value()));
        idle_w.push(
            run.power_at(LoadLevel::ActiveIdle)
                .map_or(nan, |w| w.value()),
        );
        idle_fraction.push(run.idle_fraction().unwrap_or(nan));
        overall_eff.push(run.overall_efficiency().value());
        extrap_idle.push(run.extrapolated_idle_power().map_or(nan, |w| w.value()));
        extrap_quotient.push(run.extrapolated_idle_quotient().unwrap_or(nan));
        for (slot, pct) in rel.iter_mut().zip([60u8, 70, 80, 90]) {
            slot.push(run.relative_efficiency(pct).unwrap_or(nan));
        }
    }

    let [rel60, rel70, rel80, rel90] = rel;
    Frame::from_columns([
        ("id", Column::from(id)),
        ("year", Column::from(year)),
        ("frac_year", Column::from(frac_year)),
        ("vendor", Column::from(vendor)),
        ("os_family", Column::from(os_family)),
        ("nodes", Column::from(nodes)),
        ("chips", Column::from(chips)),
        ("cores_per_chip", Column::from(cores_per_chip)),
        ("total_cores", Column::from(total_cores)),
        ("total_threads", Column::from(total_threads)),
        ("nominal_ghz", Column::from(nominal_ghz)),
        ("boost_ghz", Column::from(boost_ghz)),
        ("tdp_w", Column::from(tdp_w)),
        ("memory_gb", Column::from(memory_gb)),
        ("dimms", Column::from(dimms)),
        ("psu_w", Column::from(psu_w)),
        ("jvm_instances", Column::from(jvm_instances)),
        ("full_power_w", Column::from(full_power)),
        ("per_socket_w", Column::from(per_socket)),
        ("idle_w", Column::from(idle_w)),
        ("idle_fraction", Column::from(idle_fraction)),
        ("overall_eff", Column::from(overall_eff)),
        ("extrap_idle_w", Column::from(extrap_idle)),
        ("extrap_quotient", Column::from(extrap_quotient)),
        ("rel_eff_60", Column::from(rel60)),
        ("rel_eff_70", Column::from(rel70)),
        ("rel_eff_80", Column::from(rel80)),
        ("rel_eff_90", Column::from(rel90)),
    ])
    .expect("columns share length by construction")
}

/// Build the feature table as a segmented store: parallel shards fill
/// private segment arenas (each a run of `runs_to_frame` chunks at
/// `segment_rows` granularity) and the merge splices them in shard order,
/// so row order — and therefore every downstream aggregate — is identical
/// to `runs_to_frame(runs)` for any thread count.
pub fn runs_to_seg_frame(runs: &[RunResult], segment_rows: usize) -> SegFrame {
    let segment_rows = segment_rows.max(1);
    let mut seg = SegFrame::new(segment_rows);
    if runs.is_empty() {
        seg.append_frame(runs_to_frame(&[]))
            .expect("fresh store adopts the feature schema");
        return seg;
    }
    let ranges = tinypool::run_chunks(runs.len(), |_| {});
    let arenas: Vec<Vec<Frame>> = tinypool::parallel_map(&ranges, |range| {
        runs[range.clone()]
            .chunks(segment_rows)
            .map(runs_to_frame)
            .collect()
    });
    for arena in arenas {
        for frame in arena {
            seg.push_sealed(frame).expect("uniform feature schema");
        }
    }
    seg
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::linear_test_run;

    #[test]
    fn frame_shape() {
        let runs: Vec<RunResult> = (0..4).map(|i| linear_test_run(i, 1e6, 60.0, 300.0)).collect();
        let f = runs_to_frame(&runs);
        assert_eq!(f.n_rows(), 4);
        assert_eq!(f.n_cols(), FEATURE_COLUMNS.len() + 4);
        for name in FEATURE_COLUMNS {
            assert!(f.column(name).is_ok(), "missing column {name}");
        }
    }

    #[test]
    fn derived_values_match_model() {
        let run = linear_test_run(9, 1e6, 60.0, 300.0);
        let f = runs_to_frame(std::slice::from_ref(&run));
        assert_eq!(f.i64s("year").unwrap()[0], 2020);
        assert_eq!(f.syms("vendor").unwrap()[0].resolve(), "Intel");
        assert_eq!(f.syms("os_family").unwrap()[0].resolve(), "Windows");
        assert!((f.f64s("per_socket_w").unwrap()[0] - 150.0).abs() < 1e-9);
        assert!((f.f64s("idle_fraction").unwrap()[0] - 0.2).abs() < 1e-12);
        assert!((f.f64s("extrap_quotient").unwrap()[0] - 1.0).abs() < 1e-9);
        assert!((f.f64s("rel_eff_70").unwrap()[0]
            - run.relative_efficiency(70).unwrap())
        .abs()
            < 1e-12);
    }

    #[test]
    fn empty_input() {
        let f = runs_to_frame(&[]);
        assert_eq!(f.n_rows(), 0);
        assert_eq!(f.n_cols(), FEATURE_COLUMNS.len() + 4);
    }

    #[test]
    fn groupable_by_year_and_vendor() {
        let runs: Vec<RunResult> = (0..6).map(|i| linear_test_run(i, 1e6, 60.0, 300.0)).collect();
        let f = runs_to_frame(&runs);
        let g = f.group_by(&["year", "vendor"]).unwrap();
        assert_eq!(g.len(), 1);
    }
}
