//! The §II data pipeline: raw report texts → validated runs → the
//! comparable analysis set, with a per-category accounting of everything
//! that was filtered out.
//!
//! The cascade is embarrassingly parallel per report, so
//! [`load_from_texts_parallel`] shards the input into contiguous ranges,
//! runs the full two-stage cascade per shard on the `tinypool` pool, and
//! merges the per-shard [`FilterReport`]s and run vectors **in shard
//! order**. Because every count lives in a `BTreeMap` and the merge is
//! ordered concatenation, the result is identical to the sequential
//! [`load_from_texts`] for every thread count.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use spec_format::{
    comparability_issues, parse_run_interned_diagnosed, validate_interned, ComparabilityIssue,
    ParseFailure, ValidityIssue,
};
use spec_model::RunResult;
use spec_obs as obs;
use spec_vfs::Vfs;

/// One raw corpus input: either the report text, or the record that the
/// input could not be read.
///
/// The `IoError` variant is the graceful-degradation path: a single
/// unreadable or vanished file no longer aborts ingest — the cascade
/// counts it as a parse failure in category `io-error` (with the OS error
/// detail) and keeps going, so `spec-trends explain` can surface exactly
/// which files were lost and why.
#[derive(Clone, Debug)]
pub enum RawInput {
    /// The input was read successfully into an owned string.
    Text(String),
    /// The input was read successfully into a slice of a shared slab
    /// ([`spec_vfs::SlabArena`]) — the zero-copy ingest path. Semantically
    /// identical to [`RawInput::Text`]: same [`RawInputRef`], same
    /// equality, same cache encoding.
    Shared(spec_vfs::SharedText),
    /// The input could not be read; the payload is the error detail.
    IoError(String),
}

impl RawInput {
    /// Borrowed view, for the cascade.
    pub fn as_ref(&self) -> RawInputRef<'_> {
        match self {
            RawInput::Text(t) => RawInputRef::Text(t),
            RawInput::Shared(t) => RawInputRef::Text(t.as_str()),
            RawInput::IoError(e) => RawInputRef::IoError(e),
        }
    }
}

/// Equality follows the borrowed view, so a `Shared` input compares equal
/// to the `Text` input with the same content — the two are
/// interchangeable everywhere (and encode identically into the artifact
/// cache).
impl PartialEq for RawInput {
    fn eq(&self, other: &RawInput) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for RawInput {}

/// Borrowed view of a [`RawInput`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RawInputRef<'a> {
    /// The input text.
    Text(&'a str),
    /// The read-failure detail.
    IoError(&'a str),
}

/// One retained parse failure: which input failed, and why.
///
/// `index` is the position of the input within the whole corpus (stable
/// across sharding: [`FilterReport::merge`] offsets shard-local indices);
/// `origin` is the file name when the corpus came from a directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseFailureRecord {
    /// Zero-based position of the failing input in the corpus.
    pub index: usize,
    /// Originating file/input name, when known.
    pub origin: Option<String>,
    /// The categorized diagnosis.
    pub failure: ParseFailure,
}

impl ParseFailureRecord {
    /// Render as a full [`spec_diag::TrendsError`] attributed to `ingest`.
    pub fn to_error(&self) -> spec_diag::TrendsError {
        let err = self.failure.to_error("ingest");
        match &self.origin {
            Some(origin) => err.with_origin(origin.clone()),
            None => err.with_origin(format!("input #{}", self.index)),
        }
    }
}

/// Per-rule accounting of the filter cascade (the numbers §II reports).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FilterReport {
    /// Raw input files.
    pub raw: usize,
    /// Files that were not SPEC Power reports at all.
    pub not_reports: usize,
    /// Why each non-report failed, in corpus order
    /// (`parse_failures.len() == not_reports`).
    pub parse_failures: Vec<ParseFailureRecord>,
    /// Stage-1 rejections by category. A run rejected for several reasons is
    /// attributed to its *first* category in the paper's order, mirroring a
    /// sequential filter script.
    pub stage1: BTreeMap<ValidityIssue, usize>,
    /// Runs surviving stage 1 (the paper's 960).
    pub valid: usize,
    /// Stage-2 rejections by category, attributed sequentially likewise.
    pub stage2: BTreeMap<ComparabilityIssue, usize>,
    /// Runs surviving both stages (the paper's 676).
    pub comparable: usize,
}

impl FilterReport {
    /// Total stage-1 rejections.
    pub fn stage1_total(&self) -> usize {
        self.stage1.values().sum()
    }

    /// Total stage-2 rejections.
    pub fn stage2_total(&self) -> usize {
        self.stage2.values().sum()
    }

    /// Parse-failure counts grouped by diagnosis category, in stable
    /// (alphabetical) order.
    pub fn parse_failure_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for record in &self.parse_failures {
            *counts.entry(record.failure.category).or_insert(0) += 1;
        }
        counts
    }

    /// Fold another (shard) report into this one: every count adds, with
    /// `BTreeMap` categories merged key-wise and the other report's
    /// shard-local parse-failure indices shifted by this report's size.
    /// Deterministic regardless of how the input was sharded, and
    /// associative: `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`.
    pub fn merge(&mut self, other: &FilterReport) {
        let offset = self.raw;
        self.raw += other.raw;
        self.not_reports += other.not_reports;
        self.parse_failures
            .extend(other.parse_failures.iter().map(|r| ParseFailureRecord {
                index: offset + r.index,
                origin: r.origin.clone(),
                failure: r.failure.clone(),
            }));
        for (&issue, &n) in &other.stage1 {
            *self.stage1.entry(issue).or_insert(0) += n;
        }
        self.valid += other.valid;
        for (&issue, &n) in &other.stage2 {
            *self.stage2.entry(issue).or_insert(0) += n;
        }
        self.comparable += other.comparable;
    }

    /// Render the cascade as the paper describes it.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("raw submissions: {}\n", self.raw));
        if self.not_reports > 0 {
            out.push_str(&format!("  not parseable as reports: {}\n", self.not_reports));
            for (category, n) in self.parse_failure_counts() {
                out.push_str(&format!("    - {category}: {n}\n"));
            }
        }
        for (issue, n) in &self.stage1 {
            out.push_str(&format!("  - {}: {}\n", issue.label(), n));
        }
        out.push_str(&format!("valid dataset: {}\n", self.valid));
        for (issue, n) in &self.stage2 {
            out.push_str(&format!("  - {}: {}\n", issue.label(), n));
        }
        out.push_str(&format!("comparable dataset: {}\n", self.comparable));
        out
    }

    /// Render the full cascade *with* per-file parse-failure diagnoses —
    /// the view `spec-trends explain` prints. Includes everything
    /// [`Self::to_markdown`] shows plus one line per discarded input.
    pub fn explain(&self) -> String {
        let mut out = self.to_markdown();
        if !self.parse_failures.is_empty() {
            out.push_str("\ndiscarded inputs:\n");
            for record in &self.parse_failures {
                out.push_str(&format!("  {}\n", record.to_error()));
            }
        }
        out
    }
}

/// The outcome of loading a dataset.
#[derive(Clone, Debug)]
pub struct AnalysisSet {
    /// All stage-1-valid runs (the 960-run dataset; Figure 1 uses these).
    pub valid: Vec<RunResult>,
    /// The comparable subset (the 676-run dataset; Figures 2–6 use these).
    pub comparable: Vec<RunResult>,
    /// Filter accounting.
    pub report: FilterReport,
}

/// Run the §II cascade over report texts.
pub fn load_from_texts<I, S>(texts: I) -> AnalysisSet
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    load_from_named_texts(texts.into_iter().map(|t| (None::<String>, t)))
}

/// Run the §II cascade over `(origin, text)` pairs, attaching the origin
/// (typically a file name) to any parse-failure diagnostics. This is the
/// workhorse behind [`load_from_texts`] and [`load_from_dir`].
pub fn load_from_named_texts<I, N, S>(items: I) -> AnalysisSet
where
    I: IntoIterator<Item = (Option<N>, S)>,
    N: Into<String>,
    S: AsRef<str>,
{
    let (valid, mut report) = stage1_validate(items);
    let (indices, stage2) = stage2_split(&valid);
    let comparable: Vec<RunResult> = indices
        .iter()
        .map(|&i| valid[i as usize].clone())
        .collect();
    report.stage2 = stage2;
    report.comparable = comparable.len();
    AnalysisSet {
        valid,
        comparable,
        report,
    }
}

/// Stage 0+1 of the cascade: parse every text and run the §II validity
/// checks. Returns the surviving runs and a [`FilterReport`] whose stage-2
/// fields are still empty — the `Validate` stage of the stage graph.
pub fn stage1_validate<I, N, S>(items: I) -> (Vec<RunResult>, FilterReport)
where
    I: IntoIterator<Item = (Option<N>, S)>,
    N: Into<String>,
    S: AsRef<str>,
{
    let owned: Vec<(Option<String>, S)> = items
        .into_iter()
        .map(|(origin, text)| (origin.map(Into::into), text))
        .collect();
    stage1_validate_inputs(
        owned
            .iter()
            .map(|(origin, text)| (origin.as_deref(), RawInputRef::Text(text.as_ref()))),
    )
}

/// [`stage1_validate`] over [`RawInputRef`]s: texts run the normal
/// parse+validate path; `IoError` inputs are counted as `io-error` parse
/// failures (graceful degradation — the cascade never aborts on a single
/// unreadable file).
pub fn stage1_validate_inputs<'a, I, N>(items: I) -> (Vec<RunResult>, FilterReport)
where
    I: IntoIterator<Item = (Option<N>, RawInputRef<'a>)>,
    N: Into<String>,
{
    let (valid, report, _) = stage1_validate_inputs_indexed(items);
    (valid, report)
}

/// [`stage1_validate_inputs`] that also returns, for each valid run, the
/// zero-based index of the input it came from — the partitioned stage graph
/// needs the mapping to place a partition's survivors back into global
/// corpus order when merging.
pub fn stage1_validate_inputs_indexed<'a, I, N>(
    items: I,
) -> (Vec<RunResult>, FilterReport, Vec<u32>)
where
    I: IntoIterator<Item = (Option<N>, RawInputRef<'a>)>,
    N: Into<String>,
{
    let mut report = FilterReport::default();
    let mut valid = Vec::new();
    let mut item_index = Vec::new();

    for (origin, input) in items {
        let index = report.raw;
        report.raw += 1;
        let text = match input {
            RawInputRef::Text(t) => t,
            RawInputRef::IoError(detail) => {
                report.not_reports += 1;
                report.parse_failures.push(ParseFailureRecord {
                    index,
                    origin: origin.map(Into::into),
                    failure: ParseFailure::io_error(detail),
                });
                continue;
            }
        };
        // Zero-copy hot path: categorical fields land as 4-byte interned
        // `Sym` tokens instead of per-field `String`s. The owned parser is
        // retained for tools; `tests/interned_equivalence.rs` in spec-format
        // pins the two paths field-by-field.
        let parsed = match parse_run_interned_diagnosed(text) {
            Ok(p) => p,
            Err(failure) => {
                report.not_reports += 1;
                report.parse_failures.push(ParseFailureRecord {
                    index,
                    origin: origin.map(Into::into),
                    failure,
                });
                continue;
            }
        };
        match validate_interned(&parsed) {
            Ok(run) => {
                valid.push(run);
                item_index.push(index as u32);
            }
            Err(issues) => {
                let first = issues
                    .first()
                    .copied()
                    .unwrap_or(ValidityIssue::Malformed);
                *report.stage1.entry(first).or_insert(0) += 1;
            }
        }
    }
    report.valid = valid.len();
    if obs::enabled() {
        obs::count("ingest.inputs", report.raw as u64);
        obs::count("ingest.valid", report.valid as u64);
        for (category, n) in report.parse_failure_counts() {
            obs::count(&format!("ingest.parse_failure.{category}"), n as u64);
        }
        // Interner health: how many distinct strings the corpus collapsed
        // to, and how many allocation bytes the token reuse avoided.
        let interner = spec_intern::stats();
        obs::set_gauge("ingest.interned_syms", interner.symbols as i64);
        obs::set_gauge("ingest.alloc_bytes_saved", interner.bytes_saved as i64);
    }
    (valid, report, item_index)
}

/// Stage 2 of the cascade: the §II comparability filters over the valid
/// runs. Returns the *indices* of comparable runs (so callers can share the
/// valid set instead of cloning it) and the per-category rejection counts —
/// the `Comparable` stage of the stage graph.
pub fn stage2_split(valid: &[RunResult]) -> (Vec<u32>, BTreeMap<ComparabilityIssue, usize>) {
    let mut indices = Vec::new();
    let mut stage2 = BTreeMap::new();
    for (i, run) in valid.iter().enumerate() {
        let issues = comparability_issues(run);
        match issues.first() {
            None => indices.push(i as u32),
            Some(&first) => {
                *stage2.entry(first).or_insert(0) += 1;
            }
        }
    }
    (indices, stage2)
}

/// Run the §II cascade over a slice of report texts in parallel.
///
/// Same result as [`load_from_texts`] — bit-for-bit, for any thread count:
/// the input is split into contiguous shards whose layout depends only on
/// the input length, each shard runs the full cascade independently, and
/// shard outputs are concatenated/merged in shard order.
pub fn load_from_texts_parallel<S>(texts: &[S]) -> AnalysisSet
where
    S: AsRef<str> + Sync,
{
    let ranges = tinypool::run_chunks(texts.len(), |_| {});
    let shards = tinypool::parallel_map(&ranges, |range| {
        let mut sp = obs::span("ingest-shard");
        if obs::enabled() {
            sp.record("start", range.start);
            sp.record("items", range.len());
            sp.observe_into("ingest.shard_us");
        }
        load_from_texts(texts[range.clone()].iter().map(AsRef::as_ref))
    });
    merge_shards(shards)
}

fn merge_shards(shards: Vec<AnalysisSet>) -> AnalysisSet {
    let mut report = FilterReport::default();
    let mut valid = Vec::new();
    let mut comparable = Vec::new();
    for shard in shards {
        report.merge(&shard.report);
        valid.extend(shard.valid);
        comparable.extend(shard.comparable);
    }
    AnalysisSet {
        valid,
        comparable,
        report,
    }
}

/// List the `*.txt` report files under `dir`, sorted. Failure to read the
/// directory *itself* is a hard, typed error — with no file list there is
/// nothing to degrade to.
pub fn list_report_files(vfs: &dyn Vfs, dir: &Path) -> spec_diag::Result<Vec<PathBuf>> {
    let entries = vfs.read_dir(dir).map_err(|e| {
        spec_diag::TrendsError::io("ingest", &e).with_origin(dir.display().to_string())
    })?;
    Ok(entries
        .into_iter()
        .filter(|p| p.extension().is_some_and(|ext| ext == "txt"))
        .collect())
}

/// Read one report file, degrading any failure — EIO after retries, a
/// vanished file, a short read, invalid UTF-8 — into a
/// [`RawInput::IoError`] record instead of propagating it.
pub fn read_input(vfs: &dyn Vfs, path: &Path) -> (Option<String>, RawInput) {
    let origin = path.file_name().map(|n| n.to_string_lossy().into_owned());
    let input = match vfs.read_to_shared(path) {
        Ok(text) => RawInput::Shared(text),
        Err(e) => RawInput::IoError(format!("could not read file: {e}")),
    };
    (origin, input)
}

/// Read a batch of report files into slab-packed shared buffers: one
/// [`spec_vfs::SlabArena`] per call packs the texts of all readable files
/// into a few large allocations, and each input borrows its slice as a
/// [`RawInput::Shared`]. Unreadable files degrade to
/// [`RawInput::IoError`] exactly like [`read_input`]. Returns one
/// `(origin, input)` pair per path, in path order.
pub fn read_inputs_shared(vfs: &dyn Vfs, paths: &[PathBuf]) -> Vec<(Option<String>, RawInput)> {
    let mut arena = spec_vfs::SlabArena::new();
    // First pass reads (filling the arena), second pass zips the sealed
    // texts back to their origins; errors hold their slot so the zip
    // stays aligned.
    let slots: Vec<(Option<String>, Option<String>)> = paths
        .iter()
        .map(|path| {
            let origin = path.file_name().map(|n| n.to_string_lossy().into_owned());
            match vfs.read_to_string(path) {
                Ok(text) => {
                    arena.push_owned(text);
                    (origin, None)
                }
                Err(e) => (origin, Some(format!("could not read file: {e}"))),
            }
        })
        .collect();
    let mut shared = arena.finish().into_iter();
    slots
        .into_iter()
        .map(|(origin, err)| match err {
            Some(detail) => (origin, RawInput::IoError(detail)),
            None => match shared.next() {
                Some(text) => (origin, RawInput::Shared(text)),
                // Unreachable: the arena yields one text per pushed file.
                None => (origin, RawInput::IoError("slab arena underflow".into())),
            },
        })
        .collect()
}

/// Run the cascade over owned `(origin, input)` pairs.
pub fn load_from_inputs<I>(items: I) -> AnalysisSet
where
    I: IntoIterator<Item = (Option<String>, RawInput)>,
{
    let owned: Vec<(Option<String>, RawInput)> = items.into_iter().collect();
    let (valid, mut report) = stage1_validate_inputs(
        owned
            .iter()
            .map(|(origin, input)| (origin.as_deref(), input.as_ref())),
    );
    let (indices, stage2) = stage2_split(&valid);
    let comparable: Vec<RunResult> = indices
        .iter()
        .map(|&i| valid[i as usize].clone())
        .collect();
    report.stage2 = stage2;
    report.comparable = comparable.len();
    AnalysisSet {
        valid,
        comparable,
        report,
    }
}

/// Load every `*.txt` file in a directory and run the cascade.
///
/// Files are processed in sorted-path order, but each shard of files is
/// read *and* cascaded on a pool worker, so one shard's file I/O overlaps
/// another's parsing. Results are merged in shard order and match a
/// sequential read-then-[`load_from_texts`] exactly.
///
/// Robustness: an unreadable directory is a typed [`spec_diag::TrendsError`];
/// an unreadable *file* is not fatal — it is recorded as an `io-error`
/// parse failure (see [`read_input`]) and the cascade continues.
pub fn load_from_dir_vfs(vfs: &dyn Vfs, dir: &Path) -> spec_diag::Result<AnalysisSet> {
    let entries = list_report_files(vfs, dir)?;
    let ranges = tinypool::run_chunks(entries.len(), |_| {});
    let shards = tinypool::parallel_map(&ranges, |range| {
        let mut sp = obs::span("ingest-shard");
        if obs::enabled() {
            sp.record("start", range.start);
            sp.record("items", range.len());
            sp.observe_into("ingest.shard_us");
        }
        let items = read_inputs_shared(vfs, &entries[range.clone()]);
        load_from_inputs(items)
    });
    Ok(merge_shards(shards))
}

/// [`load_from_dir_vfs`] on the default (real, retrying) filesystem.
pub fn load_from_dir(dir: &Path) -> spec_diag::Result<AnalysisSet> {
    load_from_dir_vfs(&*spec_vfs::default_vfs(), dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_format::write_run;
    use spec_model::{linear_test_run, RunStatus};

    #[test]
    fn clean_texts_pass_through() {
        let texts: Vec<String> = (0..5)
            .map(|i| write_run(&linear_test_run(i, 1e6, 60.0, 300.0)))
            .collect();
        let set = load_from_texts(&texts);
        assert_eq!(set.report.raw, 5);
        assert_eq!(set.valid.len(), 5);
        assert_eq!(set.comparable.len(), 5);
        assert_eq!(set.report.stage1_total(), 0);
        assert_eq!(set.report.stage2_total(), 0);
    }

    #[test]
    fn non_report_counted() {
        let set = load_from_texts(["garbage data"]);
        assert_eq!(set.report.not_reports, 1);
        assert_eq!(set.valid.len(), 0);
    }

    #[test]
    fn parse_failures_retained_with_reasons() {
        let texts = vec![
            write_run(&linear_test_run(0, 1e6, 60.0, 300.0)),
            "garbage data".to_string(),
            "   \n".to_string(),
        ];
        let set = load_from_texts(&texts);
        assert_eq!(set.report.not_reports, 2);
        assert_eq!(set.report.parse_failures.len(), 2);
        assert_eq!(set.report.parse_failures[0].index, 1);
        assert_eq!(set.report.parse_failures[0].failure.category, "missing-header");
        assert_eq!(set.report.parse_failures[1].index, 2);
        assert_eq!(set.report.parse_failures[1].failure.category, "empty");

        let md = set.report.to_markdown();
        assert!(md.contains("missing-header: 1"), "{md}");
        assert!(md.contains("empty: 1"), "{md}");
        let explain = set.report.explain();
        assert!(explain.contains("discarded inputs:"), "{explain}");
        assert!(explain.contains("input #1"), "{explain}");
        assert!(explain.contains("garbage data"), "{explain}");
    }

    #[test]
    fn merge_offsets_parse_failure_indices() {
        let a = load_from_texts(["junk a", &write_run(&linear_test_run(0, 1e6, 60.0, 300.0))]).report;
        let b = load_from_texts([&write_run(&linear_test_run(1, 1e6, 60.0, 300.0)), "junk b"]).report;
        let c = load_from_texts(["junk c"]).report;

        // Left-fold and right-fold must agree (associativity).
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // Indices are corpus-global: junk a at 0, junk b at 3, junk c at 4.
        let indices: Vec<usize> = left.parse_failures.iter().map(|r| r.index).collect();
        assert_eq!(indices, vec![0, 3, 4]);
    }

    #[test]
    fn dir_parse_failures_carry_file_origins() {
        let dir = std::env::temp_dir().join("spec_pipeline_origin_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("a.txt"),
            write_run(&linear_test_run(0, 1e6, 60.0, 300.0)),
        )
        .unwrap();
        std::fs::write(dir.join("b.txt"), "not a report").unwrap();
        let set = load_from_dir(&dir).unwrap();
        assert_eq!(set.report.not_reports, 1);
        assert_eq!(
            set.report.parse_failures[0].origin.as_deref(),
            Some("b.txt")
        );
        assert!(set.report.explain().contains("b.txt"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn io_error_inputs_degrade_into_the_accounting() {
        let items = vec![
            (
                None,
                RawInput::Text(write_run(&linear_test_run(0, 1e6, 60.0, 300.0))),
            ),
            (
                Some("gone.txt".to_string()),
                RawInput::IoError("could not read file: No such file or directory".to_string()),
            ),
        ];
        let set = load_from_inputs(items);
        assert_eq!(set.report.raw, 2);
        assert_eq!(set.report.not_reports, 1);
        assert_eq!(set.valid.len(), 1);
        let record = &set.report.parse_failures[0];
        assert_eq!(record.failure.category, "io-error");
        assert_eq!(record.origin.as_deref(), Some("gone.txt"));
        assert_eq!(set.report.parse_failure_counts()["io-error"], 1);
        let explain = set.report.explain();
        assert!(explain.contains("io-error"), "{explain}");
        assert!(explain.contains("gone.txt"), "{explain}");
        assert!(explain.contains("No such file or directory"), "{explain}");
    }

    #[test]
    fn unreadable_file_is_recorded_not_fatal() {
        use spec_vfs::{FaultKind, FaultVfs, OpKind, RealVfs};
        use std::sync::Arc;

        let dir = std::env::temp_dir().join("spec_pipeline_ioerr_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for (i, name) in ["a.txt", "b.txt", "c.txt"].iter().enumerate() {
            let run = linear_test_run(i as u32, 1e6, 60.0, 300.0);
            std::fs::write(dir.join(name), write_run(&run)).unwrap();
        }
        // EIO on the second file read; one worker makes the read order the
        // sorted file order, so the casualty is deterministically b.txt.
        let vfs =
            FaultVfs::new(Arc::new(RealVfs)).with_fault(OpKind::Read, 1, FaultKind::Eio);
        let pool = tinypool::Pool::new(1);
        let set = pool.install(|| load_from_dir_vfs(&vfs, &dir)).unwrap();
        assert_eq!(set.report.raw, 3);
        assert_eq!(set.report.not_reports, 1);
        assert_eq!(set.comparable.len(), 2, "two files still analyzed");
        let record = &set.report.parse_failures[0];
        assert_eq!(record.failure.category, "io-error");
        assert_eq!(record.origin.as_deref(), Some("b.txt"));
        assert_eq!(record.index, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn vanished_file_is_recorded_not_fatal() {
        use spec_vfs::{FaultKind, FaultVfs, OpKind, RealVfs};
        use std::sync::Arc;

        let dir = std::env::temp_dir().join("spec_pipeline_vanish_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("only.txt"),
            write_run(&linear_test_run(0, 1e6, 60.0, 300.0)),
        )
        .unwrap();
        // The file vanishes between the directory listing and the read —
        // the classic TOCTOU race a long-running ingest must survive.
        let vfs =
            FaultVfs::new(Arc::new(RealVfs)).with_fault(OpKind::Read, 0, FaultKind::Vanished);
        let pool = tinypool::Pool::new(1);
        let set = pool.install(|| load_from_dir_vfs(&vfs, &dir)).unwrap();
        assert_eq!(set.report.raw, 1);
        assert_eq!(set.report.not_reports, 1);
        assert_eq!(set.report.parse_failures[0].failure.category, "io-error");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unreadable_directory_is_a_typed_error() {
        let missing = std::env::temp_dir().join("spec_pipeline_no_such_dir");
        let _ = std::fs::remove_dir_all(&missing);
        let err = load_from_dir(&missing).unwrap_err();
        assert_eq!(err.stage, "ingest");
        assert!(matches!(err.kind, spec_diag::ErrorKind::Io { .. }));
    }

    #[test]
    fn stage1_attribution() {
        let mut run = linear_test_run(1, 1e6, 60.0, 300.0);
        run.status = RunStatus::NotAccepted("x".into());
        let set = load_from_texts([write_run(&run)]);
        assert_eq!(set.report.stage1[&ValidityIssue::NotAccepted], 1);
        assert_eq!(set.valid.len(), 0);
    }

    #[test]
    fn stage2_attribution_order() {
        // A multi-node non-x86 run is attributed to the vendor rule first,
        // like the paper's sequential filters.
        let mut run = linear_test_run(2, 1e6, 60.0, 300.0);
        run.system.cpu.name = "SPARC T3-1".into();
        run.system.nodes = 4;
        let set = load_from_texts([write_run(&run)]);
        assert_eq!(set.valid.len(), 1);
        assert_eq!(set.comparable.len(), 0);
        assert_eq!(set.report.stage2[&ComparabilityIssue::NonX86Vendor], 1);
        assert!(!set
            .report
            .stage2
            .contains_key(&ComparabilityIssue::ExcludedTopology));
    }

    #[test]
    fn markdown_rendering() {
        let mut run = linear_test_run(3, 1e6, 60.0, 300.0);
        run.system.chips = 4;
        let set = load_from_texts([write_run(&run)]);
        let md = set.report.to_markdown();
        assert!(md.contains("raw submissions: 1"));
        assert!(md.contains("more than one node or more than two sockets: 1"));
        assert!(md.contains("comparable dataset: 0"));
    }

    #[test]
    fn parallel_matches_sequential_for_any_thread_count() {
        // A mixed bag: clean runs, a non-report, stage-1 and stage-2
        // rejects — every counter in the report gets exercised.
        let mut texts: Vec<String> = (0..300)
            .map(|i| write_run(&linear_test_run(i, 1e6, 60.0, 300.0)))
            .collect();
        texts[7] = "not a report".into();
        let mut rejected = linear_test_run(400, 1e6, 60.0, 300.0);
        rejected.status = RunStatus::NotAccepted("x".into());
        texts[13] = write_run(&rejected);
        let mut sparc = linear_test_run(401, 1e6, 60.0, 300.0);
        sparc.system.cpu.name = "SPARC T3-1".into();
        texts[200] = write_run(&sparc);

        let sequential = load_from_texts(&texts);
        for threads in [1, 2, 8] {
            let pool = tinypool::Pool::new(threads);
            let parallel = pool.install(|| load_from_texts_parallel(&texts));
            assert_eq!(parallel.report, sequential.report, "{threads} threads");
            assert_eq!(parallel.valid.len(), sequential.valid.len());
            assert_eq!(parallel.comparable.len(), sequential.comparable.len());
            for (a, b) in parallel.valid.iter().zip(&sequential.valid) {
                assert_eq!(a.id, b.id);
            }
        }
    }

    #[test]
    fn merge_accumulates_all_counters() {
        let mut run = linear_test_run(3, 1e6, 60.0, 300.0);
        run.system.chips = 4;
        let a = load_from_texts([write_run(&run)]).report;
        let b = load_from_texts(["junk"]).report;
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.raw, 2);
        assert_eq!(merged.not_reports, 1);
        assert_eq!(merged.valid, 1);
        assert_eq!(merged.stage2_total(), 1);
        assert_eq!(merged.comparable, 0);
    }

    #[test]
    fn dir_loading_roundtrip() {
        let dir = std::env::temp_dir().join("spec_pipeline_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for i in 0..3u32 {
            let run = linear_test_run(i, 1e6, 60.0, 300.0);
            std::fs::write(dir.join(format!("r{i}.txt")), write_run(&run)).unwrap();
        }
        std::fs::write(dir.join("notes.md"), "ignore me").unwrap();
        let set = load_from_dir(&dir).unwrap();
        assert_eq!(set.report.raw, 3);
        assert_eq!(set.comparable.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
