//! The complete study: every figure and table computed from a dataset, the
//! paper-vs-measured comparison ledger, and markdown/SVG emission.

use std::path::{Path, PathBuf};

use spec_ssj::Settings;

use crate::correlation::{explore, IdleCorrelationReport};
use crate::proportionality::{ep_trend, EpTrend};
use crate::figures::{fig1, fig2, fig3, fig4, fig5, fig6};
use crate::pipeline::AnalysisSet;
use crate::table1::{self, Table1};

/// One paper-vs-measured check.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Experiment identifier (e.g. `"FIG5.idle_2006"`).
    pub id: String,
    /// Human-readable description.
    pub description: String,
    /// The paper's published value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Acceptable relative deviation (0.0 = must be exact).
    pub tolerance_rel: f64,
}

impl Comparison {
    /// Whether the measured value reproduces the paper within tolerance.
    pub fn ok(&self) -> bool {
        if !self.measured.is_finite() {
            return false;
        }
        if self.tolerance_rel == 0.0 {
            return self.measured == self.paper;
        }
        if self.paper == 0.0 {
            return self.measured.abs() <= self.tolerance_rel;
        }
        ((self.measured - self.paper) / self.paper).abs() <= self.tolerance_rel
    }

    fn row(&self) -> String {
        format!(
            "| {} | {} | {:.4} | {:.4} | {:+.1}% | {} |\n",
            self.id,
            self.description,
            self.paper,
            self.measured,
            100.0 * (self.measured - self.paper) / if self.paper == 0.0 { 1.0 } else { self.paper },
            if self.ok() { "ok" } else { "DEVIATES" }
        )
    }
}

/// Everything the paper reports, computed from one dataset.
#[derive(Clone, Debug)]
pub struct Study {
    /// The filtered dataset the figures are computed from.
    pub set: AnalysisSet,
    /// Figure 1.
    pub fig1: fig1::Fig1Features,
    /// Figure 2.
    pub fig2: fig2::Fig2Power,
    /// Figure 3.
    pub fig3: fig3::Fig3Efficiency,
    /// Figure 4.
    pub fig4: fig4::Fig4Proportionality,
    /// Figure 5.
    pub fig5: fig5::Fig5Idle,
    /// Figure 6.
    pub fig6: fig6::Fig6Extrapolated,
    /// Table I.
    pub table1: Table1,
    /// §IV correlation exploration.
    pub correlation: IdleCorrelationReport,
    /// Energy-proportionality trend (extension; Hsu/Poole metrics).
    pub proportionality: EpTrend,
}

/// Compute the full study from a loaded dataset.
pub fn run_study(set: AnalysisSet, table1_settings: &Settings, seed: u64) -> Study {
    let fig1 = fig1::compute(&set.valid);
    let fig2 = fig2::compute(&set.comparable);
    let fig3 = fig3::compute(&set.comparable);
    let fig4 = fig4::compute(&set.comparable);
    let fig5 = fig5::compute(&set.comparable);
    let fig6 = fig6::compute(&set.comparable);
    let table1 = table1::compute(table1_settings, seed);
    let correlation = explore(&set.comparable, 2021);
    let proportionality = ep_trend(&set.comparable);
    Study {
        set,
        fig1,
        fig2,
        fig3,
        fig4,
        fig5,
        fig6,
        table1,
        correlation,
        proportionality,
    }
}

impl Study {
    /// The paper-vs-measured ledger covering every quantitative claim.
    pub fn comparisons(&self) -> Vec<Comparison> {
        let mut c = Vec::new();
        let mut push = |id: &str, desc: &str, paper: f64, measured: f64, tol: f64| {
            c.push(Comparison {
                id: id.to_string(),
                description: desc.to_string(),
                paper,
                measured,
                tolerance_rel: tol,
            });
        };

        // §II dataset cascade (exact by construction of the substitute data).
        let report = &self.set.report;
        push("TXT-A.raw", "raw submissions", 1017.0, report.raw as f64, 0.0);
        push("TXT-A.valid", "valid dataset", 960.0, report.valid as f64, 0.0);
        push(
            "TXT-A.comparable",
            "comparable dataset",
            676.0,
            report.comparable as f64,
            0.0,
        );
        use spec_format::{ComparabilityIssue, ValidityIssue};
        let s1 = |issue: ValidityIssue| report.stage1.get(&issue).copied().unwrap_or(0) as f64;
        push("TXT-A.not_accepted", "not accepted by SPEC", 40.0, s1(ValidityIssue::NotAccepted), 0.0);
        push("TXT-A.ambiguous_dates", "ambiguous dates", 3.0, s1(ValidityIssue::AmbiguousDate), 0.0);
        push("TXT-A.implausible_dates", "implausible dates", 4.0, s1(ValidityIssue::ImplausibleDate), 0.0);
        push("TXT-A.ambiguous_cpu", "ambiguous CPU names", 3.0, s1(ValidityIssue::AmbiguousCpuName), 0.0);
        push("TXT-A.missing_nodes", "missing node count", 1.0, s1(ValidityIssue::MissingNodeCount), 0.0);
        push("TXT-A.inconsistent", "inconsistent core/thread counts", 5.0, s1(ValidityIssue::InconsistentCoreThread), 0.0);
        push("TXT-A.implausible_counts", "implausible core/thread counts", 1.0, s1(ValidityIssue::ImplausibleCoreThread), 0.0);
        let s2 = |issue: ComparabilityIssue| report.stage2.get(&issue).copied().unwrap_or(0) as f64;
        push("TXT-A.non_x86", "non Intel/AMD CPUs", 9.0, s2(ComparabilityIssue::NonX86Vendor), 0.0);
        push("TXT-A.non_server", "non server-class CPUs", 6.0, s2(ComparabilityIssue::NotServerClass), 0.0);
        push("TXT-A.topology", "multi-node or >2 sockets", 269.0, s2(ComparabilityIssue::ExcludedTopology), 0.0);

        // Figure 1 shares and rates.
        push("FIG1.mean_per_year", "mean runs/year 2005-2023", 44.2, self.fig1.mean_per_year_2005_2023, 0.10);
        push("FIG1.dip", "mean runs/year 2013-2017", 15.2, self.fig1.mean_per_year_2013_2017, 0.05);
        push("FIG1.linux_pre", "Linux share before 2018", 0.022, self.fig1.linux_share_pre2018, 0.60);
        push("FIG1.linux_post", "Linux share from 2018", 0.363, self.fig1.linux_share_post2018, 0.12);
        push("FIG1.amd_pre", "AMD share before 2018", 0.130, self.fig1.amd_share_pre2018, 0.20);
        push("FIG1.amd_post", "AMD share from 2018", 0.313, self.fig1.amd_share_post2018, 0.12);
        push("FIG1.windows_to_2017", "Windows share up to 2017", 0.97, self.fig1.windows_share_to_2017, 0.03);

        // Figure 2 / §III power growth.
        let g = &self.fig2.per_socket_growth;
        push("FIG2.mean_pre2010", "mean W/socket at 100% (runs <=2010)", 119.0, g.mean_pre2010_w, 0.10);
        push("FIG2.mean_post2022", "mean W/socket at 100% (runs >=2022)", 303.3, g.mean_post2022_w, 0.12);
        push("FIG2.ratio_100", "full-load power growth ratio", 2.5, g.ratio, 0.12);
        for lg in &self.fig2.level_growth {
            match lg.percent {
                20 => push("TXT-B.ratio_20", "power growth at 20% load", 1.8, lg.ratio, 0.12),
                70 => push("TXT-B.ratio_70", "power growth at 70% load", 2.2, lg.ratio, 0.12),
                _ => {}
            }
        }

        // Figure 3 census.
        push("FIG3.amd_top100", "AMD among 100 most efficient runs", 98.0, self.fig3.amd_in_top100 as f64, 0.12);

        // Figure 5 idle trajectory.
        if let Some((_, f)) = self.fig5.earliest {
            push("FIG5.idle_2006", "mean idle fraction, earliest year", 0.701, f, 0.08);
        }
        if let Some((y, f)) = self.fig5.minimum {
            push("FIG5.idle_min", "minimum yearly mean idle fraction", 0.157, f, 0.35);
            // The minimum sits in a flat 2017-2020 valley (yearly means within
            // half a point of each other); accept the paper's 2017 ±3 years.
            push("FIG5.idle_min_year", "year of minimum idle fraction", 2017.0, y as f64, 0.0015);
        }
        if let Some((_, f)) = self.fig5.latest {
            push("FIG5.idle_2024", "mean idle fraction, latest year", 0.257, f, 0.10);
        }
        // §IV: "Intel's runs follow an upward trend, whereas AMD has a
        // slightly falling trend" (yearly-mean slopes since 2017).
        for (vendor, slope) in &self.fig5.recent_slope {
            match vendor {
                spec_model::CpuVendor::Intel => {
                    push("FIG5.intel_slope", "Intel idle-fraction slope since 2017 (rising)", 0.008, *slope, 1.0);
                }
                spec_model::CpuVendor::Amd => {
                    push("FIG5.amd_slope", "AMD idle-fraction slope since 2017 (slightly falling)", -0.004, *slope, 2.0);
                }
                spec_model::CpuVendor::Other => {}
            }
        }

        // Figure 6: upward trend (paper gives no number; require positive
        // slope by comparing against a small positive reference).
        if let Some(fit) = self.fig6.trend {
            push("FIG6.trend_positive", "extrapolated-idle quotient slope (>0)", 0.03, fit.slope, 1.0);
        }

        // §IV confounders.
        for s in &self.correlation.vendor_stats {
            match s.vendor {
                spec_model::CpuVendor::Amd => {
                    push("TXT-C.amd_cores", "mean AMD cores/chip since 2021", 85.8, s.mean_cores, 0.10);
                    push("TXT-C.amd_ghz", "mean AMD nominal GHz since 2021", 2.3, s.mean_ghz, 0.08);
                    push("TXT-C.amd_ghz_sd", "std AMD nominal GHz since 2021", 0.3, s.std_ghz, 0.40);
                }
                spec_model::CpuVendor::Intel => {
                    push("TXT-C.intel_cores", "mean Intel cores/chip since 2021", 39.5, s.mean_cores, 0.15);
                    push("TXT-C.intel_ghz", "mean Intel nominal GHz since 2021", 2.3, s.mean_ghz, 0.08);
                    push("TXT-C.intel_ghz_sd", "std Intel nominal GHz since 2021", 0.5, s.std_ghz, 0.40);
                }
                spec_model::CpuVendor::Other => {}
            }
        }

        // Table I.
        for e in &self.table1.entries {
            let key = match e.benchmark {
                b if b.contains("ssj") => "TAB1.ssj",
                b if b.contains("FP") => "TAB1.fp",
                _ => "TAB1.int",
            };
            push(&format!("{key}.intel"), &format!("{} Intel", e.benchmark), e.paper_intel, e.intel, 0.15);
            push(&format!("{key}.amd"), &format!("{} AMD", e.benchmark), e.paper_amd, e.amd, 0.15);
            push(&format!("{key}.factor"), &format!("{} AMD/Intel factor", e.benchmark), e.paper_factor, e.factor, 0.15);
        }

        c
    }

    /// Render the comparison ledger plus per-section notes as markdown (the
    /// content of `EXPERIMENTS.md`).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Paper vs. measured\n\n");
        out.push_str(&format!(
            "Dataset: {} raw → {} valid → {} comparable runs.\n\n",
            self.set.report.raw, self.set.report.valid, self.set.report.comparable
        ));
        out.push_str("| id | description | paper | measured | deviation | status |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        let comparisons = self.comparisons();
        for cmp in &comparisons {
            out.push_str(&cmp.row());
        }
        let ok = comparisons.iter().filter(|c| c.ok()).count();
        out.push_str(&format!(
            "\n{} of {} checks within tolerance.\n",
            ok,
            comparisons.len()
        ));
        out.push_str("\n## Filter cascade\n\n```\n");
        out.push_str(&self.set.report.to_markdown());
        out.push_str("```\n\n## Table I\n\n");
        out.push_str(&self.table1.to_markdown());
        out.push_str("\n## Correlation exploration (section IV)\n\n");
        out.push_str(&self.correlation.to_markdown());
        out.push_str("\n## Energy-proportionality trend (extension)\n\n");
        out.push_str(&self.proportionality.to_markdown());
        out.push_str("\n## Yearly summary (comparable runs)\n\n");
        out.push_str(&crate::export::yearly_summary_markdown(self));
        out
    }

    /// Render all figure SVGs in memory as `(file name, SVG text)` pairs,
    /// in the order [`Self::write_figures`] writes them.
    pub fn figure_files(&self) -> Vec<(String, String)> {
        let mut files = Vec::new();
        let mut save = |name: &str, svg: String| files.push((name.to_string(), svg));
        save("fig1_shares.svg", self.fig1.share_chart().to_svg(860, 520));
        save("fig1_counts.svg", self.fig1.counts_chart().to_svg(860, 340));
        save("fig2_power.svg", self.fig2.chart().to_svg(860, 520));
        save("fig3_efficiency.svg", self.fig3.chart().to_svg(860, 520));
        save(
            "fig3_efficiency_log.svg",
            self.fig3.chart_log().to_svg(860, 520),
        );
        for load in crate::figures::fig4::LOADS {
            save(
                &format!("fig4_rel_eff_{load}.svg"),
                self.fig4.chart(load).to_svg(860, 520),
            );
        }
        // The paper shows Figure 4 as one panel grid.
        let fig4_panels: Vec<tinyplot::Chart> = crate::figures::fig4::LOADS
            .iter()
            .map(|&load| self.fig4.chart(load))
            .collect();
        save(
            "fig4_grid.svg",
            tinyplot::render_grid(&fig4_panels, 2, 640, 430),
        );
        save("fig5_idle.svg", self.fig5.chart().to_svg(860, 520));
        save("fig6_extrapolated.svg", self.fig6.chart().to_svg(860, 520));
        files
    }

    /// Write all figure SVGs into a directory; returns the paths.
    pub fn write_figures(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        crate::stage::write_files(dir, &self.figure_files())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::load_from_texts;
    use spec_format::write_run;
    use spec_model::linear_test_run;

    fn tiny_study() -> Study {
        let texts: Vec<String> = (0..6)
            .map(|i| write_run(&linear_test_run(i, 1e6, 60.0, 300.0)))
            .collect();
        run_study(load_from_texts(&texts), &Settings::fast(), 7)
    }

    #[test]
    fn comparisons_cover_every_experiment_family() {
        let ids: Vec<String> = tiny_study()
            .comparisons()
            .into_iter()
            .map(|c| c.id)
            .collect();
        for prefix in ["TXT-A", "FIG1", "FIG2", "FIG3", "FIG5", "TAB1", "TXT-B", "TXT-C"] {
            assert!(
                ids.iter().any(|id| id.starts_with(prefix)),
                "missing {prefix} in {ids:?}"
            );
        }
    }

    #[test]
    fn comparison_tolerance_logic() {
        let exact = Comparison {
            id: "x".into(),
            description: "d".into(),
            paper: 960.0,
            measured: 960.0,
            tolerance_rel: 0.0,
        };
        assert!(exact.ok());
        let off = Comparison {
            measured: 959.0,
            ..exact.clone()
        };
        assert!(!off.ok());
        let within = Comparison {
            paper: 100.0,
            measured: 108.0,
            tolerance_rel: 0.10,
            ..exact.clone()
        };
        assert!(within.ok());
        let nan = Comparison {
            measured: f64::NAN,
            tolerance_rel: 1.0,
            ..exact
        };
        assert!(!nan.ok());
    }

    #[test]
    fn markdown_contains_ledger() {
        let md = tiny_study().to_markdown();
        assert!(md.contains("Paper vs. measured"));
        assert!(md.contains("Table I"));
        assert!(md.contains("Filter cascade"));
    }

    #[test]
    fn figures_written() {
        let dir = std::env::temp_dir().join("spec_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let paths = tiny_study().write_figures(&dir).unwrap();
        assert_eq!(paths.len(), 12);
        for p in &paths {
            let content = std::fs::read_to_string(p).unwrap();
            assert!(content.starts_with("<svg"), "{p:?}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
