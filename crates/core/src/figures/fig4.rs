//! Figure 4: distributions of relative efficiency at 60–90 % load, binned
//! by year and CPU vendor (box-and-whisker per bin).

use spec_model::{CpuVendor, RunResult};
use tinyplot::{BoxSpec, Chart, SeriesKind};
use tinystats::BoxStats;

use super::common::{extract_rows, vendor_color, RunRow, VENDORS};

/// The load levels the figure covers.
pub const LOADS: [u8; 4] = [60, 70, 80, 90];

/// One bin of the figure.
#[derive(Clone, Debug)]
pub struct Fig4Cell {
    /// Hardware-availability year.
    pub year: i32,
    /// CPU vendor.
    pub vendor: CpuVendor,
    /// Load level (60/70/80/90).
    pub load: u8,
    /// Distribution of `eff(load)/eff(100 %)` in the bin.
    pub stats: BoxStats,
}

/// Figure 4 data.
#[derive(Clone, Debug)]
pub struct Fig4Proportionality {
    /// All non-empty bins, ordered by (load, vendor, year).
    pub cells: Vec<Fig4Cell>,
}

/// Compute Figure 4 over the comparable dataset.
pub fn compute(comparable: &[RunResult]) -> Fig4Proportionality {
    compute_rows(&extract_rows(comparable))
}

/// Compute Figure 4 from extracted rows — the partition-merge reduce step.
pub fn compute_rows(comparable: &[RunRow]) -> Fig4Proportionality {
    let mut cells = Vec::new();
    let years: Vec<i32> = {
        let mut ys: Vec<i32> = comparable.iter().map(|r| r.hw_year).collect();
        ys.sort_unstable();
        ys.dedup();
        ys
    };
    for load in LOADS {
        for vendor in VENDORS {
            for &year in &years {
                let values: Vec<f64> = comparable
                    .iter()
                    .filter(|r| r.hw_year == year && r.vendor == vendor)
                    .filter_map(|r| r.rel(load))
                    .filter(|v| v.is_finite())
                    .collect();
                if let Some(stats) = BoxStats::from_slice(&values) {
                    cells.push(Fig4Cell {
                        year,
                        vendor,
                        load,
                        stats,
                    });
                }
            }
        }
    }
    Fig4Proportionality { cells }
}

impl Fig4Proportionality {
    /// Bins for one load level and vendor, ascending by year.
    pub fn series(&self, load: u8, vendor: CpuVendor) -> Vec<&Fig4Cell> {
        self.cells
            .iter()
            .filter(|c| c.load == load && c.vendor == vendor)
            .collect()
    }

    /// Mean of the yearly medians over a year window (trend summaries used
    /// in the §III discussion).
    pub fn mean_median(&self, load: u8, vendor: CpuVendor, lo: i32, hi: i32) -> f64 {
        let medians: Vec<f64> = self
            .series(load, vendor)
            .into_iter()
            .filter(|c| (lo..=hi).contains(&c.year))
            .map(|c| c.stats.median)
            .collect();
        tinystats::mean(&medians).unwrap_or(f64::NAN)
    }

    /// Render one load level as a box chart (the paper shows a 4×panel
    /// grid; we emit one chart per level).
    pub fn chart(&self, load: u8) -> Chart {
        let mut chart = Chart::new(
            format!("Figure 4: relative efficiency at {load}% load"),
            "hardware availability year",
            "efficiency relative to 100% load",
        );
        chart.hline(1.0);
        for vendor in VENDORS {
            let boxes: Vec<BoxSpec> = self
                .series(load, vendor)
                .into_iter()
                .map(|c| BoxSpec {
                    // Offset the two vendors so their boxes sit side by side.
                    x: c.year as f64
                        + if vendor == CpuVendor::Intel {
                            0.3
                        } else {
                            0.7
                        },
                    whisker_lo: c.stats.whisker_lo,
                    q1: c.stats.q1,
                    median: c.stats.median,
                    q3: c.stats.q3,
                    whisker_hi: c.stats.whisker_hi,
                    outliers: c.stats.outliers.clone(),
                })
                .collect();
            chart.add_colored(
                vendor.label(),
                SeriesKind::Boxes(boxes),
                Vec::new(),
                vendor_color(vendor),
            );
        }
        chart
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::linear_test_run;

    fn runs() -> Vec<RunResult> {
        (0..8)
            .map(|i| {
                let mut r = linear_test_run(i, 1e6, 60.0, 300.0);
                if i >= 4 {
                    r.system.cpu.name = "AMD EPYC 7543".into();
                }
                r
            })
            .collect()
    }

    #[test]
    fn bins_cover_levels_and_vendors() {
        let fig = compute(&runs());
        assert_eq!(fig.cells.len(), LOADS.len() * 2);
        for load in LOADS {
            for vendor in VENDORS {
                assert_eq!(fig.series(load, vendor).len(), 1);
            }
        }
    }

    #[test]
    fn linear_power_gives_sub_one_relative_efficiency() {
        let fig = compute(&runs());
        for cell in &fig.cells {
            assert!(
                cell.stats.median < 1.0,
                "linear power curve with idle floor is not energy proportional"
            );
            assert!(cell.stats.median > 0.5);
        }
    }

    #[test]
    fn higher_load_closer_to_one() {
        let fig = compute(&runs());
        let m60 = fig.mean_median(60, CpuVendor::Intel, 2000, 2030);
        let m90 = fig.mean_median(90, CpuVendor::Intel, 2000, 2030);
        assert!(m90 > m60, "90% load is closer to full-load efficiency");
    }

    #[test]
    fn mean_median_empty_window_nan() {
        let fig = compute(&runs());
        assert!(fig.mean_median(60, CpuVendor::Intel, 1990, 1995).is_nan());
    }

    #[test]
    fn chart_renders_boxes() {
        let fig = compute(&runs());
        let svg = fig.chart(70).to_svg(800, 500);
        assert!(svg.contains("Figure 4"));
        assert!(svg.contains("stroke-dasharray"), "reference line at 1.0");
    }

    #[test]
    fn empty_input() {
        assert!(compute(&[]).cells.is_empty());
    }
}
