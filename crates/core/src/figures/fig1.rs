//! Figure 1: share of features on all valid (unfiltered) runs, plus the
//! yearly submission counts and the §II share statistics quoted in the text.

use std::collections::BTreeMap;

use spec_model::RunResult;
use tinyplot::{Chart, SeriesKind};

use super::common::{
    extract_rows, RunRow, FEATURE_AMD, FEATURE_LINUX, FEATURE_WINDOWS,
};

pub use super::common::FEATURES;

/// Figure 1 data.
#[derive(Clone, Debug)]
pub struct Fig1Features {
    /// Years with at least one run, ascending.
    pub years: Vec<i32>,
    /// Valid runs per year (the bar series of the figure).
    pub counts: Vec<usize>,
    /// Per-feature share per year, aligned with `years` (0–1; `NaN` never —
    /// empty years are absent from `years`).
    pub shares: BTreeMap<&'static str, Vec<f64>>,
    /// Mean submissions per year 2005–2023 (§II: 44.2).
    pub mean_per_year_2005_2023: f64,
    /// Mean submissions per year 2013–2017 (§II: 15.2).
    pub mean_per_year_2013_2017: f64,
    /// Linux share before 2018 (§II: 2.2 %).
    pub linux_share_pre2018: f64,
    /// Linux share from 2018 (§II: 36.3 %).
    pub linux_share_post2018: f64,
    /// AMD share before 2018 (§II: 13.0 %).
    pub amd_share_pre2018: f64,
    /// AMD share from 2018 (§II: 31.3 %).
    pub amd_share_post2018: f64,
    /// Maximum Windows share over years up to 2017 (§I: >97 % Windows).
    pub windows_share_to_2017: f64,
}

fn share_of<F: Fn(&&RunRow) -> bool>(rows: &[&RunRow], pred: F) -> f64 {
    if rows.is_empty() {
        return f64::NAN;
    }
    rows.iter().filter(|r| pred(r)).count() as f64 / rows.len() as f64
}

/// Compute Figure 1 over the valid (stage-1) dataset.
pub fn compute(valid: &[RunResult]) -> Fig1Features {
    compute_rows(&extract_rows(valid))
}

/// Compute Figure 1 from extracted rows — the partition-merge reduce step.
pub fn compute_rows(valid: &[RunRow]) -> Fig1Features {
    let mut by_year: BTreeMap<i32, Vec<&RunRow>> = BTreeMap::new();
    for row in valid {
        by_year.entry(row.hw_year).or_default().push(row);
    }
    let years: Vec<i32> = by_year.keys().copied().collect();
    let counts: Vec<usize> = by_year.values().map(Vec::len).collect();

    let mut shares: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    for (bit, feature) in FEATURES.iter().enumerate() {
        let series: Vec<f64> = by_year
            .values()
            .map(|rows| share_of(rows, |r| r.has_feature(bit)))
            .collect();
        shares.insert(feature, series);
    }

    let rows_in = |lo: i32, hi: i32| -> Vec<&RunRow> {
        valid
            .iter()
            .filter(|r| (lo..=hi).contains(&r.hw_year))
            .collect()
    };
    let span_mean = |lo: i32, hi: i32| -> f64 {
        let total: usize = by_year
            .iter()
            .filter(|(y, _)| (lo..=hi).contains(*y))
            .map(|(_, v)| v.len())
            .sum();
        total as f64 / (hi - lo + 1) as f64
    };

    let pre = rows_in(i32::MIN, 2017);
    let post = rows_in(2018, i32::MAX);
    Fig1Features {
        years,
        counts,
        mean_per_year_2005_2023: span_mean(2005, 2023),
        mean_per_year_2013_2017: span_mean(2013, 2017),
        linux_share_pre2018: share_of(&pre, |r| r.has_feature(FEATURE_LINUX)),
        linux_share_post2018: share_of(&post, |r| r.has_feature(FEATURE_LINUX)),
        amd_share_pre2018: share_of(&pre, |r| r.has_feature(FEATURE_AMD)),
        amd_share_post2018: share_of(&post, |r| r.has_feature(FEATURE_AMD)),
        windows_share_to_2017: share_of(&pre, |r| r.has_feature(FEATURE_WINDOWS)),
        shares,
    }
}

impl Fig1Features {
    /// The share-lines chart (Figure 1 body).
    pub fn share_chart(&self) -> Chart {
        let mut chart = Chart::new(
            "Figure 1: share of features on all valid runs",
            "hardware availability year",
            "share of runs",
        );
        chart.y_domain(0.0, 1.0);
        for feature in FEATURES {
            let series = &self.shares[feature];
            let pts: Vec<(f64, f64)> = self
                .years
                .iter()
                .zip(series)
                .filter(|(_, v)| v.is_finite())
                .map(|(&y, &v)| (y as f64 + 0.5, v))
                .collect();
            chart.add(feature, SeriesKind::Line, pts);
        }
        chart
    }

    /// The submissions-per-year bar chart (Figure 1 top strip).
    pub fn counts_chart(&self) -> Chart {
        let mut chart = Chart::new(
            "Valid submissions per hardware-availability year",
            "year",
            "runs",
        );
        chart.y_from_zero();
        let pts: Vec<(f64, f64)> = self
            .years
            .iter()
            .zip(&self.counts)
            .map(|(&y, &c)| (y as f64, c as f64))
            .collect();
        chart.add("runs", SeriesKind::Bars, pts);
        chart
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::linear_test_run;

    fn mixed_runs() -> Vec<RunResult> {
        let mut runs = Vec::new();
        for i in 0..10u32 {
            let mut r = linear_test_run(i, 1e6, 60.0, 300.0);
            if i % 2 == 0 {
                r.system.cpu.name = "AMD EPYC 7742".into();
            }
            if i % 5 == 0 {
                r.system.os = spec_model::OsInfo::new("SUSE Linux Enterprise Server 15");
            }
            if i == 9 {
                r.system.nodes = 4;
            }
            runs.push(r);
        }
        runs
    }

    #[test]
    fn shares_sum_to_one_for_vendor_partition() {
        let runs = mixed_runs();
        let fig = compute(&runs);
        for (i, _) in fig.years.iter().enumerate() {
            let amd = fig.shares["AMD"][i];
            let intel = fig.shares["Intel"][i];
            assert!((amd + intel - 1.0).abs() < 1e-9, "vendor shares partition");
        }
    }

    #[test]
    fn linux_share_detected() {
        let fig = compute(&mixed_runs());
        // 2 of 10 runs use Linux; all are dated 2020 (post-2018).
        assert!((fig.linux_share_post2018 - 0.2).abs() < 1e-9);
        assert!(fig.linux_share_pre2018.is_nan());
    }

    #[test]
    fn multinode_share() {
        let fig = compute(&mixed_runs());
        assert!((fig.shares["multi-node"][0] - 0.1).abs() < 1e-9);
        assert!((fig.shares["2 sockets"][0] - 0.9).abs() < 1e-9);
    }

    #[test]
    fn counts_per_year() {
        let fig = compute(&mixed_runs());
        assert_eq!(fig.years, vec![2020]);
        assert_eq!(fig.counts, vec![10]);
    }

    #[test]
    fn charts_render() {
        let fig = compute(&mixed_runs());
        let svg = fig.share_chart().to_svg(700, 480);
        assert!(svg.contains("Figure 1"));
        let bars = fig.counts_chart().to_svg(700, 300);
        assert!(bars.contains("<rect"));
    }

    #[test]
    fn empty_input_safe() {
        let fig = compute(&[]);
        assert!(fig.years.is_empty());
        assert!(fig.amd_share_pre2018.is_nan());
    }
}
