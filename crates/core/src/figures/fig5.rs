//! Figure 5: active-idle power trend — the *idle fraction* (idle power over
//! full-load power), with the §IV trajectory: 70.1 % (2006) → minimum 15.7 %
//! (2017) → 25.7 % (2024).

use spec_model::{CpuVendor, RunResult};
use tinyplot::{Chart, SeriesKind};

use super::common::{
    extract_rows, vendor_color, vendor_scatter, vendor_yearly_mean, year_line, yearly_mean, RunRow,
    VENDORS,
};

/// Figure 5 data.
#[derive(Clone, Debug)]
pub struct Fig5Idle {
    /// Scatter `(fractional year, idle fraction)` per vendor.
    pub scatter: Vec<(CpuVendor, Vec<(f64, f64)>)>,
    /// Yearly mean idle fraction per vendor.
    pub yearly_means: Vec<(CpuVendor, Vec<(i32, f64)>)>,
    /// Yearly mean idle fraction over all comparable runs.
    pub overall_yearly_mean: Vec<(i32, f64)>,
    /// Mean idle fraction of the earliest year with data (§IV: 70.1 % in 2006).
    pub earliest: Option<(i32, f64)>,
    /// The minimum yearly mean (§IV: 15.7 % in 2017).
    pub minimum: Option<(i32, f64)>,
    /// Mean idle fraction of the latest year with data (§IV: 25.7 % in 2024).
    pub latest: Option<(i32, f64)>,
    /// Linear-trend slope of vendor yearly means since 2017 (§IV: Intel
    /// rising, AMD slightly falling).
    pub recent_slope: Vec<(CpuVendor, f64)>,
}

fn idle_fraction(row: &RunRow) -> Option<f64> {
    row.idle_fraction.filter(|f| f.is_finite())
}

/// Compute Figure 5 over the comparable dataset.
pub fn compute(comparable: &[RunResult]) -> Fig5Idle {
    compute_rows(&extract_rows(comparable))
}

/// Compute Figure 5 from extracted rows — the partition-merge reduce step.
pub fn compute_rows(comparable: &[RunRow]) -> Fig5Idle {
    let scatter = VENDORS
        .iter()
        .map(|&v| (v, vendor_scatter(comparable, v, idle_fraction)))
        .collect();
    let yearly_means: Vec<(CpuVendor, Vec<(i32, f64)>)> = VENDORS
        .iter()
        .map(|&v| (v, vendor_yearly_mean(comparable, v, idle_fraction)))
        .collect();
    let overall = yearly_mean(comparable, idle_fraction);

    let earliest = overall.first().copied();
    let latest = overall.last().copied();
    let minimum = overall
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite means"));

    let recent_slope = yearly_means
        .iter()
        .map(|(vendor, means)| {
            let recent: Vec<(f64, f64)> = means
                .iter()
                .filter(|(y, _)| *y >= 2017)
                .map(|&(y, m)| (y as f64, m))
                .collect();
            let xs: Vec<f64> = recent.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = recent.iter().map(|p| p.1).collect();
            let slope = tinystats::fit(&xs, &ys).map(|f| f.slope).unwrap_or(f64::NAN);
            (*vendor, slope)
        })
        .collect();

    Fig5Idle {
        scatter,
        yearly_means,
        overall_yearly_mean: overall,
        earliest,
        minimum,
        latest,
        recent_slope,
    }
}

impl Fig5Idle {
    /// Render the figure.
    pub fn chart(&self) -> Chart {
        let mut chart = Chart::new(
            "Figure 5: idle power consumption trend",
            "hardware availability year",
            "active idle power / full load power",
        );
        chart.y_from_zero();
        for (vendor, pts) in &self.scatter {
            chart.add_colored(
                vendor.label(),
                SeriesKind::Scatter,
                pts.clone(),
                vendor_color(*vendor),
            );
        }
        for (vendor, means) in &self.yearly_means {
            chart.add_colored(
                format!("{} yearly mean", vendor.label()),
                SeriesKind::Line,
                year_line(means),
                vendor_color(*vendor),
            );
        }
        chart.add_colored(
            "all yearly mean",
            SeriesKind::Line,
            year_line(&self.overall_yearly_mean),
            "#444444",
        );
        chart
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{linear_test_run, YearMonth};

    /// Idle fractions 0.7 (2006) → 0.15 (2017) → 0.26 (2024).
    fn trajectory_runs() -> Vec<RunResult> {
        let spec = [
            (2006, 0.70),
            (2006, 0.72),
            (2017, 0.14),
            (2017, 0.16),
            (2024, 0.25),
            (2024, 0.27),
        ];
        spec.iter()
            .enumerate()
            .map(|(i, &(year, frac))| {
                let mut r = linear_test_run(i as u32, 1e6, 300.0 * frac, 300.0);
                r.dates.hw_available = YearMonth::new(year, 6).unwrap();
                r
            })
            .collect()
    }

    #[test]
    fn trajectory_markers() {
        let fig = compute(&trajectory_runs());
        let (y0, f0) = fig.earliest.unwrap();
        assert_eq!(y0, 2006);
        assert!((f0 - 0.71).abs() < 1e-9);
        let (ymin, fmin) = fig.minimum.unwrap();
        assert_eq!(ymin, 2017);
        assert!((fmin - 0.15).abs() < 1e-9);
        let (ylast, flast) = fig.latest.unwrap();
        assert_eq!(ylast, 2024);
        assert!((flast - 0.26).abs() < 1e-9);
    }

    #[test]
    fn recent_slope_positive_for_regressing_vendor() {
        let fig = compute(&trajectory_runs());
        // All test runs are Intel; idle fraction rises 2017 → 2024.
        let (vendor, slope) = fig.recent_slope[0];
        assert_eq!(vendor, CpuVendor::Intel);
        assert!(slope > 0.0);
    }

    #[test]
    fn yearly_mean_series_sorted() {
        let fig = compute(&trajectory_runs());
        let years: Vec<i32> = fig.overall_yearly_mean.iter().map(|p| p.0).collect();
        assert_eq!(years, vec![2006, 2017, 2024]);
    }

    #[test]
    fn chart_renders() {
        let svg = compute(&trajectory_runs()).chart().to_svg(700, 480);
        assert!(svg.contains("Figure 5"));
        assert!(svg.contains("all yearly mean"));
    }

    #[test]
    fn empty_input() {
        let fig = compute(&[]);
        assert!(fig.earliest.is_none());
        assert!(fig.minimum.is_none());
    }
}
