//! Figure 3: overall energy-efficiency trend (overall ssj_ops/W), plus the
//! §III census of the 100 most efficient runs (98 use AMD).

use spec_model::{CpuVendor, RunResult};
use tinyplot::{Chart, SeriesKind};

use super::common::{
    extract_rows, vendor_color, vendor_scatter, vendor_yearly_mean, year_line, RunRow, VENDORS,
};

/// Figure 3 data.
#[derive(Clone, Debug)]
pub struct Fig3Efficiency {
    /// Scatter `(fractional year, overall ssj_ops/W)` per vendor.
    pub scatter: Vec<(CpuVendor, Vec<(f64, f64)>)>,
    /// Yearly mean efficiency per vendor.
    pub yearly_means: Vec<(CpuVendor, Vec<(i32, f64)>)>,
    /// How many of the 100 most efficient runs use AMD CPUs (paper: 98).
    pub amd_in_top100: usize,
    /// How many of the 100 most efficient runs use Intel CPUs.
    pub intel_in_top100: usize,
    /// Highest overall efficiency per vendor.
    pub best: Vec<(CpuVendor, f64)>,
}

fn overall(row: &RunRow) -> Option<f64> {
    row.overall.is_finite().then_some(row.overall)
}

/// Compute Figure 3 over the comparable dataset.
pub fn compute(comparable: &[RunResult]) -> Fig3Efficiency {
    compute_rows(&extract_rows(comparable))
}

/// Compute Figure 3 from extracted rows — the partition-merge reduce step.
pub fn compute_rows(comparable: &[RunRow]) -> Fig3Efficiency {
    let scatter = VENDORS
        .iter()
        .map(|&v| (v, vendor_scatter(comparable, v, overall)))
        .collect();
    let yearly_means = VENDORS
        .iter()
        .map(|&v| (v, vendor_yearly_mean(comparable, v, overall)))
        .collect();

    let mut ranked: Vec<(f64, CpuVendor)> = comparable
        .iter()
        .filter_map(|r| overall(r).map(|e| (e, r.vendor)))
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    let top100 = &ranked[..ranked.len().min(100)];
    let amd_in_top100 = top100.iter().filter(|(_, v)| *v == CpuVendor::Amd).count();
    let intel_in_top100 = top100
        .iter()
        .filter(|(_, v)| *v == CpuVendor::Intel)
        .count();

    let best = VENDORS
        .iter()
        .map(|&v| {
            (
                v,
                ranked
                    .iter()
                    .filter(|(_, rv)| *rv == v)
                    .map(|(e, _)| *e)
                    .fold(f64::NAN, f64::max),
            )
        })
        .collect();

    Fig3Efficiency {
        scatter,
        yearly_means,
        amd_in_top100,
        intel_in_top100,
        best,
    }
}

impl Fig3Efficiency {
    /// Render the figure with a logarithmic y axis — efficiency grows
    /// exponentially over 16 years, so the log view shows the trend as a
    /// line (and makes the AMD/Intel gap readable across eras).
    pub fn chart_log(&self) -> Chart {
        let mut chart = self.chart();
        chart.log_y();
        chart.title = "Figure 3: overall efficiency trend (log scale)".into();
        chart
    }

    /// Render the figure.
    pub fn chart(&self) -> Chart {
        let mut chart = Chart::new(
            "Figure 3: overall efficiency trend",
            "hardware availability year",
            "overall ssj_ops/W",
        );
        chart.y_from_zero();
        for (vendor, pts) in &self.scatter {
            chart.add_colored(
                vendor.label(),
                SeriesKind::Scatter,
                pts.clone(),
                vendor_color(*vendor),
            );
        }
        for (vendor, means) in &self.yearly_means {
            chart.add_colored(
                format!("{} yearly mean", vendor.label()),
                SeriesKind::Line,
                year_line(means),
                vendor_color(*vendor),
            );
        }
        chart
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::linear_test_run;

    fn runs_with_amd_lead() -> Vec<RunResult> {
        let mut runs = Vec::new();
        for i in 0..12u32 {
            // AMD runs get double the throughput at the same power.
            let max_ops = if i % 2 == 0 { 2e6 } else { 1e6 };
            let mut r = linear_test_run(i, max_ops, 60.0, 300.0);
            if i % 2 == 0 {
                r.system.cpu.name = "AMD EPYC 7763".into();
            }
            runs.push(r);
        }
        runs
    }

    #[test]
    fn census_counts_amd() {
        let fig = compute(&runs_with_amd_lead());
        // Only 12 runs, so "top 100" is all of them: 6 AMD, 6 Intel.
        assert_eq!(fig.amd_in_top100, 6);
        assert_eq!(fig.intel_in_top100, 6);
    }

    #[test]
    fn amd_best_exceeds_intel_best() {
        let fig = compute(&runs_with_amd_lead());
        let amd_best = fig.best.iter().find(|(v, _)| *v == CpuVendor::Amd).unwrap().1;
        let intel_best = fig
            .best
            .iter()
            .find(|(v, _)| *v == CpuVendor::Intel)
            .unwrap()
            .1;
        assert!(amd_best > intel_best * 1.5);
    }

    #[test]
    fn top_slice_ranked_desc() {
        let runs = runs_with_amd_lead();
        let fig = compute(&runs);
        // With the AMD lead, the top half of the ranking must be all AMD.
        let amd_scatter = &fig.scatter[1].1;
        assert_eq!(amd_scatter.len(), 6);
    }

    #[test]
    fn chart_renders() {
        let svg = compute(&runs_with_amd_lead()).chart().to_svg(700, 480);
        assert!(svg.contains("Figure 3"));
    }

    #[test]
    fn log_chart_renders() {
        let svg = compute(&runs_with_amd_lead()).chart_log().to_svg(700, 480);
        assert!(svg.contains("log scale"));
    }

    #[test]
    fn empty_input() {
        let fig = compute(&[]);
        assert_eq!(fig.amd_in_top100, 0);
        assert_eq!(fig.intel_in_top100, 0);
    }
}
