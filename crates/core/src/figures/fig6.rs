//! Figure 6: the *extrapolated idle quotient* — active-idle power linearly
//! extrapolated from the 10 %/20 % measurements, divided by the measured
//! active-idle power. Values above 1 indicate effective idle-specific power
//! optimisation; §IV reports an upward trend with a large recent spread.

use spec_model::{CpuVendor, RunResult};
use tinyplot::{Chart, SeriesKind};
use tinystats::{LinearFit, MannKendall, TheilSen};

use super::common::{
    extract_rows, vendor_color, vendor_scatter, vendor_yearly_mean, year_line, RunRow, VENDORS,
};

/// Figure 6 data.
#[derive(Clone, Debug)]
pub struct Fig6Extrapolated {
    /// Scatter `(fractional year, quotient)` per vendor.
    pub scatter: Vec<(CpuVendor, Vec<(f64, f64)>)>,
    /// Yearly mean quotient per vendor.
    pub yearly_means: Vec<(CpuVendor, Vec<(i32, f64)>)>,
    /// OLS trend over all points (quotient vs fractional year).
    pub trend: Option<LinearFit>,
    /// Outlier-robust Theil–Sen trend over the same points (the recent
    /// spread is heavy-tailed; this confirms the slope is not an artefact).
    pub robust_trend: Option<TheilSen>,
    /// Mann–Kendall significance test on the yearly mean quotients.
    pub mk_test: Option<MannKendall>,
    /// Sample standard deviation of the quotient per era, documenting the
    /// spread growth: (≤2012, 2013–2018, ≥2019).
    pub spread_by_era: [f64; 3],
}

fn quotient(row: &RunRow) -> Option<f64> {
    row.quotient.filter(|q| q.is_finite())
}

/// Compute Figure 6 over the comparable dataset.
pub fn compute(comparable: &[RunResult]) -> Fig6Extrapolated {
    compute_rows(&extract_rows(comparable))
}

/// Compute Figure 6 from extracted rows — the partition-merge reduce step.
pub fn compute_rows(comparable: &[RunRow]) -> Fig6Extrapolated {
    let scatter: Vec<(CpuVendor, Vec<(f64, f64)>)> = VENDORS
        .iter()
        .map(|&v| (v, vendor_scatter(comparable, v, quotient)))
        .collect();
    let yearly_means = VENDORS
        .iter()
        .map(|&v| (v, vendor_yearly_mean(comparable, v, quotient)))
        .collect();

    let all: Vec<(f64, f64)> = scatter.iter().flat_map(|(_, pts)| pts.clone()).collect();
    let xs: Vec<f64> = all.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = all.iter().map(|p| p.1).collect();
    let trend = tinystats::fit(&xs, &ys).ok();
    let robust_trend = tinystats::theil_sen(&xs, &ys);
    let yearly_all: Vec<f64> = {
        let pairs: Vec<(i32, f64)> = comparable
            .iter()
            .filter_map(|r| quotient(r).map(|q| (r.hw_year, q)))
            .collect();
        tinystats::mean_by_key(&pairs).into_iter().map(|p| p.1).collect()
    };
    let mk_test = tinystats::mann_kendall(&yearly_all);

    let era_std = |lo: i32, hi: i32| {
        let vals: Vec<f64> = comparable
            .iter()
            .filter(|r| (lo..=hi).contains(&r.hw_year))
            .filter_map(quotient)
            .collect();
        tinystats::std_dev(&vals).unwrap_or(f64::NAN)
    };
    let spread_by_era = [
        era_std(i32::MIN, 2012),
        era_std(2013, 2018),
        era_std(2019, i32::MAX),
    ];

    Fig6Extrapolated {
        scatter,
        yearly_means,
        trend,
        robust_trend,
        mk_test,
        spread_by_era,
    }
}

impl Fig6Extrapolated {
    /// Render the figure.
    pub fn chart(&self) -> Chart {
        let mut chart = Chart::new(
            "Figure 6: extrapolated vs measured active idle power",
            "hardware availability year",
            "extrapolated idle / measured idle",
        );
        chart.hline(1.0);
        for (vendor, pts) in &self.scatter {
            chart.add_colored(
                vendor.label(),
                SeriesKind::Scatter,
                pts.clone(),
                vendor_color(*vendor),
            );
        }
        for (vendor, means) in &self.yearly_means {
            chart.add_colored(
                format!("{} yearly mean", vendor.label()),
                SeriesKind::Line,
                year_line(means),
                vendor_color(*vendor),
            );
        }
        if let Some(fit) = self.trend {
            let xs: Vec<f64> = self
                .scatter
                .iter()
                .flat_map(|(_, pts)| pts.iter().map(|p| p.0))
                .collect();
            if let (Some(&lo), Some(&hi)) = (
                xs.iter()
                    .min_by(|a, b| a.partial_cmp(b).expect("finite")),
                xs.iter()
                    .max_by(|a, b| a.partial_cmp(b).expect("finite")),
            ) {
                chart.add_colored(
                    "OLS trend",
                    SeriesKind::Line,
                    vec![(lo, fit.predict(lo)), (hi, fit.predict(hi))],
                    "#444444",
                );
            }
        }
        chart
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{linear_test_run, LoadLevel, Watts, YearMonth};

    /// Runs whose measured idle shrinks over the years while the partial-load
    /// line stays the same → rising quotient.
    fn improving_idle_runs() -> Vec<RunResult> {
        [(2008, 60.0), (2013, 40.0), (2018, 25.0), (2023, 18.0)]
            .iter()
            .enumerate()
            .map(|(i, &(year, idle))| {
                let mut r = linear_test_run(i as u32, 1e6, 60.0, 300.0);
                r.dates.hw_available = YearMonth::new(year, 6).unwrap();
                let m = r
                    .levels
                    .iter_mut()
                    .find(|m| m.level == LoadLevel::ActiveIdle)
                    .unwrap();
                m.avg_power = Watts(idle);
                r
            })
            .collect()
    }

    #[test]
    fn quotient_rises_over_time() {
        let fig = compute(&improving_idle_runs());
        let trend = fig.trend.unwrap();
        assert!(trend.slope > 0.0, "quotient trend is upward");
        let robust = fig.robust_trend.unwrap();
        assert!(robust.slope > 0.0, "Theil-Sen agrees");
        assert!(fig.mk_test.unwrap().s > 0, "Mann-Kendall agrees");
        // First run: linear curve untouched → quotient 1; last: 60/18.
        let intel = &fig.scatter[0].1;
        assert!((intel[0].1 - 1.0).abs() < 1e-9);
        assert!((intel[3].1 - 60.0 / 18.0).abs() < 1e-9);
    }

    #[test]
    fn yearly_means_track_scatter() {
        let fig = compute(&improving_idle_runs());
        let means = &fig.yearly_means[0].1;
        assert_eq!(means.len(), 4);
        assert!(means.windows(2).all(|w| w[1].1 >= w[0].1));
    }

    #[test]
    fn spread_by_era_computed() {
        let fig = compute(&improving_idle_runs());
        // One run per era bucket edge: early eras may have <2 samples → NaN
        // allowed; at least the shape must be present.
        assert_eq!(fig.spread_by_era.len(), 3);
    }

    #[test]
    fn chart_renders_with_trend() {
        let svg = compute(&improving_idle_runs()).chart().to_svg(700, 480);
        assert!(svg.contains("Figure 6"));
        assert!(svg.contains("OLS trend"));
    }

    #[test]
    fn empty_input() {
        let fig = compute(&[]);
        assert!(fig.trend.is_none());
    }
}
