//! The six figure reproductions.
//!
//! Each submodule computes one figure's data from the filtered run sets and
//! can render it as a `tinyplot` chart: [`fig1`] feature shares, [`fig2`]
//! full-load power per socket, [`fig3`] overall efficiency, [`fig4`]
//! relative-efficiency distributions, [`fig5`] the idle fraction, [`fig6`]
//! the extrapolated idle quotient.

pub mod common;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
