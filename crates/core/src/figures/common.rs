//! Shared helpers for the figure computations, built around [`RunRow`] —
//! the per-run metric extract every figure aggregates over.
//!
//! The split matters for the partitioned stage graph: `extract_rows` is the
//! expensive per-run *map* step (each metric touches the load-level table),
//! cached once per (year, vendor) partition, while each figure's
//! `compute_rows` is the cheap *reduce* over the concatenated rows. Because
//! a row stores every metric **raw** (exactly what the `RunResult` method
//! returns, finiteness filters applied only inside the aggregates, in the
//! same places the run-based code applied them), `figN::compute_rows(
//! &extract_rows(runs))` is bit-identical to computing from the runs
//! directly — the property the partition merge relies on.

use spec_model::{CpuVendor, LoadLevel, OsFamily, RunResult};
use tinystats::mean_by_key;

/// The tracked Figure 1 feature shares, in bit order of [`RunRow::features`].
pub const FEATURES: [&str; 8] = [
    "AMD",
    "Intel",
    "Windows",
    "Linux",
    "multi-node",
    ">2 sockets",
    "1 socket",
    "2 sockets",
];

/// Bit indices into [`RunRow::features`] for the shares the §II text quotes.
pub const FEATURE_AMD: usize = 0;
/// Intel share bit.
pub const FEATURE_INTEL: usize = 1;
/// Windows share bit.
pub const FEATURE_WINDOWS: usize = 2;
/// Linux share bit.
pub const FEATURE_LINUX: usize = 3;

fn feature_holds(run: &RunResult, feature: &str) -> bool {
    match feature {
        "AMD" => run.system.cpu.vendor() == CpuVendor::Amd,
        "Intel" => run.system.cpu.vendor() == CpuVendor::Intel,
        "Windows" => run.system.os.family() == OsFamily::Windows,
        "Linux" => run.system.os.family() == OsFamily::Linux,
        "multi-node" => run.system.nodes > 1,
        ">2 sockets" => run.system.chips > 2,
        "1 socket" => run.system.nodes == 1 && run.system.chips == 1,
        "2 sockets" => run.system.nodes == 1 && run.system.chips == 2,
        _ => false,
    }
}

/// One run's metric extract: everything Figures 1–6 read from a
/// [`RunResult`], with metric values stored **raw** (un-filtered) so the
/// figure aggregates apply their own finiteness rules unchanged.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunRow {
    /// Hardware-availability year.
    pub hw_year: i32,
    /// Fractional hardware-availability year (scatter x).
    pub frac_year: f64,
    /// CPU vendor.
    pub vendor: CpuVendor,
    /// Figure 1 feature bits (bit `i` ⇔ `FEATURES[i]` holds).
    pub features: u8,
    /// Full-load power per socket, W.
    pub per_socket: Option<f64>,
    /// Whole-system power at 100 % load, W.
    pub p100: Option<f64>,
    /// Whole-system power at 70 % load, W.
    pub p70: Option<f64>,
    /// Whole-system power at 20 % load, W.
    pub p20: Option<f64>,
    /// Overall efficiency (ssj_ops/W), raw — may be non-finite.
    pub overall: f64,
    /// Relative efficiency at 60 % load.
    pub rel60: Option<f64>,
    /// Relative efficiency at 70 % load.
    pub rel70: Option<f64>,
    /// Relative efficiency at 80 % load.
    pub rel80: Option<f64>,
    /// Relative efficiency at 90 % load.
    pub rel90: Option<f64>,
    /// Idle fraction (idle power / full-load power), raw.
    pub idle_fraction: Option<f64>,
    /// Extrapolated idle quotient, raw.
    pub quotient: Option<f64>,
}

impl RunRow {
    /// Whether feature bit `i` (see [`FEATURES`]) holds for this run.
    pub fn has_feature(&self, i: usize) -> bool {
        self.features & (1u8 << i) != 0
    }

    /// Relative efficiency at one of Figure 4's load levels.
    pub fn rel(&self, load: u8) -> Option<f64> {
        match load {
            60 => self.rel60,
            70 => self.rel70,
            80 => self.rel80,
            90 => self.rel90,
            _ => None,
        }
    }
}

/// Extract one run's figure metrics.
pub fn extract_row(run: &RunResult) -> RunRow {
    let mut features = 0u8;
    for (i, feature) in FEATURES.iter().enumerate() {
        if feature_holds(run, feature) {
            features |= 1 << i;
        }
    }
    RunRow {
        hw_year: run.hw_year(),
        frac_year: run.dates.hw_available.fractional_year(),
        vendor: run.system.cpu.vendor(),
        features,
        per_socket: run.per_socket_full_load_power().map(|w| w.value()),
        p100: run.power_at(LoadLevel::Percent(100)).map(|w| w.value()),
        p70: run.power_at(LoadLevel::Percent(70)).map(|w| w.value()),
        p20: run.power_at(LoadLevel::Percent(20)).map(|w| w.value()),
        overall: run.overall_efficiency().value(),
        rel60: run.relative_efficiency(60),
        rel70: run.relative_efficiency(70),
        rel80: run.relative_efficiency(80),
        rel90: run.relative_efficiency(90),
        idle_fraction: run.idle_fraction(),
        quotient: run.extrapolated_idle_quotient(),
    }
}

/// Extract rows for a whole dataset, preserving order.
pub fn extract_rows(runs: &[RunResult]) -> Vec<RunRow> {
    runs.iter().map(extract_row).collect()
}

/// Paper-consistent colours: Intel blue, AMD vermillion.
pub fn vendor_color(vendor: CpuVendor) -> &'static str {
    match vendor {
        CpuVendor::Intel => tinyplot::PALETTE[0],
        CpuVendor::Amd => tinyplot::PALETTE[1],
        CpuVendor::Other => tinyplot::PALETTE[6],
    }
}

/// The two vendors the comparable dataset contains.
pub const VENDORS: [CpuVendor; 2] = [CpuVendor::Intel, CpuVendor::Amd];

/// Scatter points `(fractional hardware year, metric)` for one vendor.
pub fn vendor_scatter<F>(rows: &[RunRow], vendor: CpuVendor, metric: F) -> Vec<(f64, f64)>
where
    F: Fn(&RunRow) -> Option<f64>,
{
    rows.iter()
        .filter(|r| r.vendor == vendor)
        .filter_map(|r| metric(r).map(|v| (r.frac_year, v)))
        .filter(|(_, v)| v.is_finite())
        .collect()
}

/// Yearly means `(year, mean metric)` for one vendor (year centre on x).
pub fn vendor_yearly_mean<F>(rows: &[RunRow], vendor: CpuVendor, metric: F) -> Vec<(i32, f64)>
where
    F: Fn(&RunRow) -> Option<f64>,
{
    let pairs: Vec<(i32, f64)> = rows
        .iter()
        .filter(|r| r.vendor == vendor)
        .filter_map(|r| metric(r).map(|v| (r.hw_year, v)))
        .collect();
    mean_by_key(&pairs)
}

/// Yearly means over all rows regardless of vendor.
pub fn yearly_mean<F>(rows: &[RunRow], metric: F) -> Vec<(i32, f64)>
where
    F: Fn(&RunRow) -> Option<f64>,
{
    let pairs: Vec<(i32, f64)> = rows
        .iter()
        .filter_map(|r| metric(r).map(|v| (r.hw_year, v)))
        .collect();
    mean_by_key(&pairs)
}

/// Mean of a metric over rows within an inclusive hardware-year window.
pub fn era_mean<F>(rows: &[RunRow], lo: i32, hi: i32, metric: F) -> f64
where
    F: Fn(&RunRow) -> Option<f64>,
{
    let xs: Vec<f64> = rows
        .iter()
        .filter(|r| (lo..=hi).contains(&r.hw_year))
        .filter_map(&metric)
        .filter(|v| v.is_finite())
        .collect();
    tinystats::mean(&xs).unwrap_or(f64::NAN)
}

/// Year-centred line points from `(year, value)` pairs.
pub fn year_line(points: &[(i32, f64)]) -> Vec<(f64, f64)> {
    points.iter().map(|&(y, v)| (y as f64 + 0.5, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::linear_test_run;

    #[test]
    fn scatter_filters_vendor() {
        let mut a = linear_test_run(1, 1e6, 60.0, 300.0);
        a.system.cpu.name = "AMD EPYC 7742".into();
        let b = linear_test_run(2, 2e6, 60.0, 300.0);
        let rows = extract_rows(&[a, b]);
        let amd = vendor_scatter(&rows, CpuVendor::Amd, |r| Some(r.overall));
        assert_eq!(amd.len(), 1);
        assert!((amd[0].1 - rows[0].overall).abs() < 1e-12);
    }

    #[test]
    fn yearly_mean_aggregates() {
        let runs: Vec<_> = (0..4).map(|i| linear_test_run(i, 1e6, 60.0, 300.0)).collect();
        let rows = extract_rows(&runs);
        let means = yearly_mean(&rows, |r| r.idle_fraction);
        assert_eq!(means.len(), 1);
        assert_eq!(means[0].0, 2020);
        assert!((means[0].1 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn era_mean_windows() {
        let runs: Vec<_> = (0..4).map(|i| linear_test_run(i, 1e6, 60.0, 300.0)).collect();
        let rows = extract_rows(&runs);
        assert!((era_mean(&rows, 2019, 2021, |r| r.idle_fraction) - 0.2).abs() < 1e-9);
        assert!(era_mean(&rows, 1990, 1999, |r| r.idle_fraction).is_nan());
    }

    #[test]
    fn year_line_centers() {
        assert_eq!(year_line(&[(2020, 1.0)]), vec![(2020.5, 1.0)]);
    }

    #[test]
    fn extract_stores_raw_metrics() {
        let run = linear_test_run(0, 1e6, 60.0, 300.0);
        let row = extract_row(&run);
        assert_eq!(row.hw_year, run.hw_year());
        assert_eq!(row.vendor, CpuVendor::Intel);
        assert!(row.has_feature(FEATURE_INTEL));
        assert!(!row.has_feature(FEATURE_AMD));
        assert_eq!(row.overall, run.overall_efficiency().value());
        assert_eq!(row.idle_fraction, run.idle_fraction());
        assert_eq!(row.rel(70), run.relative_efficiency(70));
        assert_eq!(row.rel(55), None, "unknown load level");
    }
}
