//! Shared helpers for the figure computations.

use spec_model::{CpuVendor, RunResult};
use tinystats::mean_by_key;

/// Paper-consistent colours: Intel blue, AMD vermillion.
pub fn vendor_color(vendor: CpuVendor) -> &'static str {
    match vendor {
        CpuVendor::Intel => tinyplot::PALETTE[0],
        CpuVendor::Amd => tinyplot::PALETTE[1],
        CpuVendor::Other => tinyplot::PALETTE[6],
    }
}

/// The two vendors the comparable dataset contains.
pub const VENDORS: [CpuVendor; 2] = [CpuVendor::Intel, CpuVendor::Amd];

/// Scatter points `(fractional hardware year, metric)` for one vendor.
pub fn vendor_scatter<F>(runs: &[RunResult], vendor: CpuVendor, metric: F) -> Vec<(f64, f64)>
where
    F: Fn(&RunResult) -> Option<f64>,
{
    runs.iter()
        .filter(|r| r.system.cpu.vendor() == vendor)
        .filter_map(|r| metric(r).map(|v| (r.dates.hw_available.fractional_year(), v)))
        .filter(|(_, v)| v.is_finite())
        .collect()
}

/// Yearly means `(year, mean metric)` for one vendor (year centre on x).
pub fn vendor_yearly_mean<F>(
    runs: &[RunResult],
    vendor: CpuVendor,
    metric: F,
) -> Vec<(i32, f64)>
where
    F: Fn(&RunResult) -> Option<f64>,
{
    let pairs: Vec<(i32, f64)> = runs
        .iter()
        .filter(|r| r.system.cpu.vendor() == vendor)
        .filter_map(|r| metric(r).map(|v| (r.hw_year(), v)))
        .collect();
    mean_by_key(&pairs)
}

/// Yearly means over all runs regardless of vendor.
pub fn yearly_mean<F>(runs: &[RunResult], metric: F) -> Vec<(i32, f64)>
where
    F: Fn(&RunResult) -> Option<f64>,
{
    let pairs: Vec<(i32, f64)> = runs
        .iter()
        .filter_map(|r| metric(r).map(|v| (r.hw_year(), v)))
        .collect();
    mean_by_key(&pairs)
}

/// Mean of a metric over runs within an inclusive hardware-year window.
pub fn era_mean<F>(runs: &[RunResult], lo: i32, hi: i32, metric: F) -> f64
where
    F: Fn(&RunResult) -> Option<f64>,
{
    let xs: Vec<f64> = runs
        .iter()
        .filter(|r| (lo..=hi).contains(&r.hw_year()))
        .filter_map(&metric)
        .filter(|v| v.is_finite())
        .collect();
    tinystats::mean(&xs).unwrap_or(f64::NAN)
}

/// Year-centred line points from `(year, value)` pairs.
pub fn year_line(points: &[(i32, f64)]) -> Vec<(f64, f64)> {
    points.iter().map(|&(y, v)| (y as f64 + 0.5, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::linear_test_run;

    #[test]
    fn scatter_filters_vendor() {
        let mut a = linear_test_run(1, 1e6, 60.0, 300.0);
        a.system.cpu.name = "AMD EPYC 7742".into();
        let b = linear_test_run(2, 1e6, 60.0, 300.0);
        let runs = vec![a, b];
        let amd = vendor_scatter(&runs, CpuVendor::Amd, |r| Some(r.id as f64));
        assert_eq!(amd.len(), 1);
        assert_eq!(amd[0].1, 1.0);
    }

    #[test]
    fn yearly_mean_aggregates() {
        let runs: Vec<_> = (0..4).map(|i| linear_test_run(i, 1e6, 60.0, 300.0)).collect();
        let means = yearly_mean(&runs, |r| r.idle_fraction());
        assert_eq!(means.len(), 1);
        assert_eq!(means[0].0, 2020);
        assert!((means[0].1 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn era_mean_windows() {
        let runs: Vec<_> = (0..4).map(|i| linear_test_run(i, 1e6, 60.0, 300.0)).collect();
        assert!((era_mean(&runs, 2019, 2021, |r| r.idle_fraction()) - 0.2).abs() < 1e-9);
        assert!(era_mean(&runs, 1990, 1999, |r| r.idle_fraction()).is_nan());
    }

    #[test]
    fn year_line_centers() {
        assert_eq!(year_line(&[(2020, 1.0)]), vec![(2020.5, 1.0)]);
    }
}
