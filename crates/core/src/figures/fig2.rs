//! Figure 2: per-socket power consumption at full load over time, plus the
//! §III era statistics (119.0 W → 303.3 W, ≈2.5×; ≈1.8× at 20 %, ≈2.2× at
//! 70 %).

use spec_model::{CpuVendor, RunResult};
use tinyplot::{Chart, SeriesKind};

use super::common::{
    era_mean, extract_rows, vendor_color, vendor_scatter, vendor_yearly_mean, year_line, RunRow,
    VENDORS,
};

/// Power growth between the ≤2010 and ≥2022 eras at one load level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelGrowth {
    /// The load level (100, 70, 20, …).
    pub percent: u8,
    /// Mean power over runs with hardware available up to 2010.
    pub mean_pre2010_w: f64,
    /// Mean power over runs with hardware available from 2022.
    pub mean_post2022_w: f64,
    /// `mean_post2022 / mean_pre2010`.
    pub ratio: f64,
}

/// Figure 2 data.
#[derive(Clone, Debug)]
pub struct Fig2Power {
    /// Scatter `(fractional year, W/socket)` per vendor.
    pub scatter: Vec<(CpuVendor, Vec<(f64, f64)>)>,
    /// Yearly mean W/socket per vendor.
    pub yearly_means: Vec<(CpuVendor, Vec<(i32, f64)>)>,
    /// Per-socket full-load growth (§III: 119.0 → 303.3 W).
    pub per_socket_growth: LevelGrowth,
    /// Whole-system power growth at selected load levels (§III: ≈1.8× at
    /// 20 %, ≈2.2× at 70 %, plus 100 % for reference).
    pub level_growth: Vec<LevelGrowth>,
}

fn per_socket(row: &RunRow) -> Option<f64> {
    row.per_socket
}

/// Compute Figure 2 over the comparable dataset.
pub fn compute(comparable: &[RunResult]) -> Fig2Power {
    compute_rows(&extract_rows(comparable))
}

/// Compute Figure 2 from extracted rows — the partition-merge reduce step.
pub fn compute_rows(comparable: &[RunRow]) -> Fig2Power {
    let scatter = VENDORS
        .iter()
        .map(|&v| (v, vendor_scatter(comparable, v, per_socket)))
        .collect();
    let yearly_means = VENDORS
        .iter()
        .map(|&v| (v, vendor_yearly_mean(comparable, v, per_socket)))
        .collect();

    let growth_at = |metric: &dyn Fn(&RunRow) -> Option<f64>, percent: u8| {
        let pre = era_mean(comparable, i32::MIN, 2010, metric);
        let post = era_mean(comparable, 2022, i32::MAX, metric);
        LevelGrowth {
            percent,
            mean_pre2010_w: pre,
            mean_post2022_w: post,
            ratio: post / pre,
        }
    };

    type LevelMetric = fn(&RunRow) -> Option<f64>;
    let per_socket_growth = growth_at(&per_socket, 100);
    let levels: [(u8, LevelMetric); 3] = [(100, |r| r.p100), (70, |r| r.p70), (20, |r| r.p20)];
    let level_growth = levels
        .into_iter()
        .map(|(pct, metric)| growth_at(&metric, pct))
        .collect();

    Fig2Power {
        scatter,
        yearly_means,
        per_socket_growth,
        level_growth,
    }
}

impl Fig2Power {
    /// Render the figure.
    pub fn chart(&self) -> Chart {
        let mut chart = Chart::new(
            "Figure 2: power consumption (per socket) at full load",
            "hardware availability year",
            "W per socket",
        );
        chart.y_from_zero();
        for (vendor, pts) in &self.scatter {
            chart.add_colored(
                vendor.label(),
                SeriesKind::Scatter,
                pts.clone(),
                vendor_color(*vendor),
            );
        }
        for (vendor, means) in &self.yearly_means {
            chart.add_colored(
                format!("{} yearly mean", vendor.label()),
                SeriesKind::Line,
                year_line(means),
                vendor_color(*vendor),
            );
        }
        chart
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{linear_test_run, YearMonth};

    fn eras() -> Vec<RunResult> {
        let mut runs = Vec::new();
        for i in 0..6u32 {
            // Three old low-power runs, three recent high-power runs.
            let (year, full) = if i < 3 { (2008, 240.0) } else { (2023, 700.0) };
            let mut r = linear_test_run(i, 1e6, 0.25 * full, full);
            r.dates.hw_available = YearMonth::new(year, 6).unwrap();
            if i == 5 {
                r.system.cpu.name = "AMD EPYC 9654".into();
            }
            runs.push(r);
        }
        runs
    }

    #[test]
    fn per_socket_growth_ratio() {
        let fig = compute(&eras());
        let g = fig.per_socket_growth;
        assert!((g.mean_pre2010_w - 120.0).abs() < 1e-9);
        assert!((g.mean_post2022_w - 350.0).abs() < 1e-9);
        assert!((g.ratio - 350.0 / 120.0).abs() < 1e-9);
    }

    #[test]
    fn level_growth_includes_partial_loads() {
        let fig = compute(&eras());
        let pcts: Vec<u8> = fig.level_growth.iter().map(|g| g.percent).collect();
        assert_eq!(pcts, vec![100, 70, 20]);
        for g in &fig.level_growth {
            assert!(g.ratio > 1.0, "{}% grew", g.percent);
        }
    }

    #[test]
    fn vendor_split() {
        let fig = compute(&eras());
        let intel = &fig.scatter[0];
        let amd = &fig.scatter[1];
        assert_eq!(intel.0, CpuVendor::Intel);
        assert_eq!(intel.1.len(), 5);
        assert_eq!(amd.1.len(), 1);
    }

    #[test]
    fn chart_renders() {
        let svg = compute(&eras()).chart().to_svg(700, 480);
        assert!(svg.contains("Figure 2"));
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn empty_input_nan_growth() {
        let fig = compute(&[]);
        assert!(fig.per_socket_growth.ratio.is_nan());
    }
}
