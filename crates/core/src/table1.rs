//! Table I: the two dual-processor Lenovo systems compared across
//! SPECpower_ssj2008 and the SPEC CPU 2017 rate suites.
//!
//! The SSJ numbers come from simulating the two machines with the
//! generation-nominal behavioural models; the CPU 2017 numbers from the
//! `spec-cpu2017` analytic rate model. *Factor* is the AMD/Intel ratio as in
//! the paper: ssj 2.09×, intrate 2.03×, fprate 1.53×.

use spec_cpu2017::{epyc_9754_duo, rate_score, xeon_8490h_duo, Suite};
use spec_model::{Cpu, JvmInfo, Megahertz, OsInfo, SystemConfig, Watts, YearMonth};
use spec_ssj::{simulate_run, Settings};
use spec_synth::lineup::{Generation, Sku, AMD_GENERATIONS, INTEL_GENERATIONS};
use spec_synth::params::nominal_sut_model;

/// One benchmark row of Table I for one system.
#[derive(Clone, Debug, PartialEq)]
pub struct Table1Entry {
    /// Benchmark label as in the paper.
    pub benchmark: &'static str,
    /// Intel (SR650 V3) score.
    pub intel: f64,
    /// AMD (SR645 V3) score.
    pub amd: f64,
    /// AMD / Intel factor.
    pub factor: f64,
    /// The paper's published factor for this row.
    pub paper_factor: f64,
    /// The paper's published Intel score.
    pub paper_intel: f64,
    /// The paper's published AMD score.
    pub paper_amd: f64,
}

/// The reproduced Table I.
#[derive(Clone, Debug, PartialEq)]
pub struct Table1 {
    /// Intel system description.
    pub intel_system: SystemConfig,
    /// AMD system description.
    pub amd_system: SystemConfig,
    /// One entry per benchmark (ssj, fprate, intrate).
    pub entries: Vec<Table1Entry>,
}

fn find_sku(gens: &'static [Generation], key: &str, sku_name: &str) -> (&'static Generation, &'static Sku) {
    let generation = gens
        .iter()
        .find(|g| g.key == key)
        .unwrap_or_else(|| panic!("generation {key} in lineup"));
    let sku = generation
        .skus
        .iter()
        .find(|s| s.name == sku_name)
        .unwrap_or_else(|| panic!("SKU {sku_name} in {key}"));
    (generation, sku)
}

/// The Lenovo ThinkSystem SR650 V3 exactly as in Table I.
pub fn sr650_v3() -> SystemConfig {
    let (generation, sku) = find_sku(&INTEL_GENERATIONS, "intel-sapphire", "Intel Xeon Platinum 8490H");
    lenovo_system(
        generation,
        sku,
        "ThinkSystem SR650 V3",
        256,
        "Windows Server 2019 Datacenter",
        YearMonth::new(2023, 2).expect("static"),
    )
}

/// The Lenovo ThinkSystem SR645 V3 exactly as in Table I.
pub fn sr645_v3() -> SystemConfig {
    let (generation, sku) = find_sku(&AMD_GENERATIONS, "amd-bergamo", "AMD EPYC 9754");
    lenovo_system(
        generation,
        sku,
        "ThinkSystem SR645 V3",
        384,
        "Windows Server 2022 Datacenter",
        YearMonth::new(2023, 8).expect("static"),
    )
}

fn lenovo_system(
    generation: &Generation,
    sku: &Sku,
    model: &str,
    memory_gb: u32,
    os: &str,
    _avail: YearMonth,
) -> SystemConfig {
    SystemConfig {
        manufacturer: "Lenovo Global Technology".into(),
        model: model.into(),
        form_factor: "1U rack".into(),
        nodes: 1,
        chips: 2,
        cpu: Cpu {
            name: sku.name.into(),
            microarchitecture: generation.microarch.into(),
            nominal: Megahertz::from_ghz(sku.nominal_ghz),
            max_boost: Megahertz::from_ghz(sku.boost_ghz),
            cores_per_chip: sku.cores,
            threads_per_core: generation.threads_per_core,
            tdp: Watts(sku.tdp_w),
            vector_bits: generation.vector_bits,
        },
        memory_gb,
        dimm_count: 12,
        psu_rating: Watts(1100.0),
        psu_count: 2,
        os: OsInfo::new(os),
        jvm: JvmInfo {
            vendor: "Oracle".into(),
            version: "Java HotSpot 64-Bit Server VM 17.0.2".into(),
        },
        jvm_instances: 4,
    }
}

/// The benchmark names of Table I's three rows, in row order. Kept as a
/// named constant so cached artifacts can re-intern the `&'static str`
/// fields on decode.
pub const BENCHMARK_NAMES: [&str; 3] = [
    "SPECpower_ssj2008 (overall ssj_ops/W)",
    "SPEC CPU 2017 FP Rate (base)",
    "SPEC CPU 2017 Int Rate (base)",
];

/// Reproduce Table I. `settings`/`seed` control the two SSJ simulations.
pub fn compute(settings: &Settings, seed: u64) -> Table1 {
    let (intel_gen, intel_sku) =
        find_sku(&INTEL_GENERATIONS, "intel-sapphire", "Intel Xeon Platinum 8490H");
    let (amd_gen, amd_sku) = find_sku(&AMD_GENERATIONS, "amd-bergamo", "AMD EPYC 9754");

    let intel_system = sr650_v3();
    let amd_system = sr645_v3();

    let intel_model = nominal_sut_model(intel_gen, intel_sku, 2023);
    let amd_model = nominal_sut_model(amd_gen, amd_sku, 2023);

    let intel_ssj = simulate_run(&intel_system, &intel_model, settings, seed).overall_ops_per_watt();
    let amd_ssj =
        simulate_run(&amd_system, &amd_model, settings, seed ^ 0x5555).overall_ops_per_watt();

    let intel_machine = xeon_8490h_duo();
    let amd_machine = epyc_9754_duo();
    let intel_fp = rate_score(&intel_machine, Suite::FpRate);
    let amd_fp = rate_score(&amd_machine, Suite::FpRate);
    let intel_int = rate_score(&intel_machine, Suite::IntRate);
    let amd_int = rate_score(&amd_machine, Suite::IntRate);

    let entries = vec![
        Table1Entry {
            benchmark: BENCHMARK_NAMES[0],
            intel: intel_ssj,
            amd: amd_ssj,
            factor: amd_ssj / intel_ssj,
            paper_factor: 2.09,
            paper_intel: 15_112.0,
            paper_amd: 31_634.0,
        },
        Table1Entry {
            benchmark: BENCHMARK_NAMES[1],
            intel: intel_fp,
            amd: amd_fp,
            factor: amd_fp / intel_fp,
            paper_factor: 1.53,
            paper_intel: 926.0,
            paper_amd: 1420.0,
        },
        Table1Entry {
            benchmark: BENCHMARK_NAMES[2],
            intel: intel_int,
            amd: amd_int,
            factor: amd_int / intel_int,
            paper_factor: 2.03,
            paper_intel: 902.0,
            paper_amd: 1830.0,
        },
    ];

    Table1 {
        intel_system,
        amd_system,
        entries,
    }
}

impl Table1 {
    /// Markdown rendering of the table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| Benchmark | Intel SR650 V3 | AMD SR645 V3 | Factor | Paper factor |\n");
        out.push_str("|---|---|---|---|---|\n");
        for e in &self.entries {
            out.push_str(&format!(
                "| {} | {:.0} (paper {:.0}) | {:.0} (paper {:.0}) | {:.2} | {:.2} |\n",
                e.benchmark, e.intel, e.paper_intel, e.amd, e.paper_amd, e.factor, e.paper_factor
            ));
        }
        out
    }

    /// The SSJ factor (paper: 2.09).
    pub fn ssj_factor(&self) -> f64 {
        self.entries[0].factor
    }

    /// The fprate factor (paper: 1.53).
    pub fn fp_factor(&self) -> f64 {
        self.entries[1].factor
    }

    /// The intrate factor (paper: 2.03).
    pub fn int_factor(&self) -> f64 {
        self.entries[2].factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table1 {
        compute(&Settings::fast(), 42)
    }

    #[test]
    fn systems_match_paper_description() {
        let t = table();
        assert_eq!(t.intel_system.total_cores(), 120);
        assert_eq!(t.amd_system.total_cores(), 256);
        assert_eq!(t.intel_system.cpu.tdp, Watts(350.0));
        assert_eq!(t.amd_system.cpu.tdp, Watts(360.0));
        assert!(t.intel_system.os.name.contains("2019"));
        assert!(t.amd_system.os.name.contains("2022"));
    }

    #[test]
    fn factors_ordered_like_paper() {
        let t = table();
        // The paper's Section V argument: int gap ≈ ssj gap > fp gap.
        assert!(t.int_factor() > t.fp_factor());
        assert!(t.ssj_factor() > t.fp_factor());
    }

    #[test]
    fn ssj_factor_near_paper() {
        let t = table();
        let f = t.ssj_factor();
        assert!(
            (f - 2.09).abs() < 0.5,
            "ssj factor {f:.2} should be near the paper's 2.09"
        );
    }

    #[test]
    fn cpu2017_factors_near_paper() {
        let t = table();
        assert!((t.int_factor() - 2.03).abs() < 0.25, "{}", t.int_factor());
        assert!((t.fp_factor() - 1.53).abs() < 0.22, "{}", t.fp_factor());
    }

    #[test]
    fn markdown_contains_all_rows() {
        let md = table().to_markdown();
        assert!(md.contains("SPECpower_ssj2008"));
        assert!(md.contains("FP Rate"));
        assert!(md.contains("Int Rate"));
    }
}
