//! Property tests for the serve daemon's HTTP request parser.
//!
//! The parser sits directly on hostile network input, so the bar is the
//! same one `spec-format` holds for report files: arbitrary byte soup
//! must never panic, well-formed requests must round-trip exactly, and
//! oversized input must classify as a 431 — never an unbounded scan.

use proptest::prelude::*;
use spec_analysis::serve::net::{parse_head, scan_head, HeadScan, Limits};

fn limits() -> Limits {
    Limits::default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_byte_soup_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        // Both layers must be total: the terminator scan and the parse.
        let lim = limits();
        match scan_head(&bytes, lim.max_header_bytes) {
            HeadScan::Complete(len) => {
                // Whatever parse_head decides, it must decide calmly.
                let _ = parse_head(&bytes[..len], &lim);
            }
            HeadScan::TooLarge | HeadScan::Incomplete => {}
        }
        // And parse_head itself must be total on un-scanned soup too.
        let _ = parse_head(&bytes, &lim);
    }

    #[test]
    fn valid_requests_round_trip(
        segments in prop::collection::vec("[a-z0-9_.-]{1,12}", 0..4),
        year in 1990i32..2100,
        with_query in any::<bool>(),
        close in any::<bool>(),
        http10 in any::<bool>(),
    ) {
        let path = format!("/{}", segments.join("/"));
        let query = if with_query { format!("year={year}") } else { String::new() };
        let target = if with_query { format!("{path}?{query}") } else { path.clone() };
        let version = if http10 { "HTTP/1.0" } else { "HTTP/1.1" };
        let mut raw = format!("GET {target} {version}\r\nHost: props\r\n");
        if close {
            raw.push_str("Connection: close\r\n");
        }
        raw.push_str("\r\n");

        let head = parse_head(raw.as_bytes(), &limits()).expect("well-formed request parses");
        prop_assert_eq!(&head.method, "GET");
        prop_assert_eq!(&head.path, &path);
        prop_assert_eq!(&head.query, &query);
        prop_assert_eq!(head.http11, !http10);
        prop_assert_eq!(head.close, close);
        // Keep-alive: HTTP/1.1 default-on unless closed; 1.0 default-off.
        prop_assert_eq!(head.allows_keep_alive(), !http10 && !close);
    }

    #[test]
    fn oversized_heads_classify_as_431(
        fill in prop::collection::vec("[A-Za-z0-9]{60,70}", 2..8),
        extra in 1usize..4096,
    ) {
        let lim = limits();
        // A terminator-free stream longer than the cap: TooLarge, which
        // the connection layer answers with 431.
        let mut soup: Vec<u8> = fill.join(" ").into_bytes();
        while soup.len() <= lim.max_header_bytes + extra {
            let again = soup.clone();
            soup.extend_from_slice(&again);
        }
        prop_assert!(!soup.windows(4).any(|w| w == b"\r\n\r\n"));
        prop_assert!(matches!(
            scan_head(&soup, lim.max_header_bytes),
            HeadScan::TooLarge
        ));
        // Even with a terminator past the cap, the classification holds
        // (the scan is bounded by the cap, not the flood).
        soup.extend_from_slice(b"\r\n\r\n");
        prop_assert!(matches!(
            scan_head(&soup, lim.max_header_bytes),
            HeadScan::TooLarge
        ));
    }

    #[test]
    fn method_and_body_classification_is_typed(
        verb in "[A-Z]{2,8}",
        query in "[a-z=&]{1100,1400}",
        body_len in 1u32..9999,
    ) {
        let lim = limits();
        // Known-but-unsupported methods → 405; unknown tokens → 501.
        let req = format!("{verb} / HTTP/1.1\r\n\r\n");
        let known = ["HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH", "TRACE", "CONNECT"];
        match parse_head(req.as_bytes(), &lim) {
            // The verb regex can produce GET itself — then it parses.
            Ok(head) => prop_assert_eq!(&head.method, "GET"),
            Err(reject) if known.contains(&verb.as_str()) => {
                prop_assert_eq!(reject.status, 405);
            }
            Err(reject) => prop_assert_eq!(reject.status, 501),
        }
        // A GET announcing a body → 400, whatever the length.
        let req = format!("GET / HTTP/1.1\r\nContent-Length: {body_len}\r\n\r\n");
        prop_assert_eq!(parse_head(req.as_bytes(), &lim).expect_err("body rejects").status, 400);
        // Query strings past the cap → 414.
        let req = format!("GET /data/1?{query} HTTP/1.1\r\n\r\n");
        prop_assert_eq!(parse_head(req.as_bytes(), &lim).expect_err("long query rejects").status, 414);
        // Unsupported versions → 505.
        let req = b"GET / HTTP/2.0\r\n\r\n";
        prop_assert_eq!(parse_head(req, &lim).expect_err("bad version rejects").status, 505);
    }
}
