//! Zero-copy shared-buffer ingest: slab packing, boundary invariants, and
//! byte-identical results versus the owned-`String` path.
//!
//! Directory ingest now reads report files into `SlabArena`-packed
//! [`spec_vfs::SharedText`] buffers (`RawInput::Shared`) instead of
//! per-file `String`s. Nothing downstream may be able to tell: the
//! cascade results, codec bytes, content hashes, and partition keys must
//! match the owned representation exactly — including for files that
//! straddle or exactly hit a slab boundary, CRLF files, and unreadable
//! files interleaved with shared ones.

use std::path::PathBuf;

use spec_analysis::stage::part_key_of_input;
use spec_analysis::{
    load_from_dir_vfs, load_from_inputs, load_from_texts, read_inputs_shared, RawInput,
};
use spec_format::write_run;
use spec_model::linear_test_run;
use spec_vfs::{RealVfs, SlabArena};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spec_shared_ingest_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn corpus_texts(n: u32) -> Vec<String> {
    (0..n)
        .map(|i| write_run(&linear_test_run(i, 1e6 + f64::from(i), 60.0, 300.0)))
        .collect()
}

#[test]
fn dir_ingest_packs_files_into_shared_slabs() {
    let dir = tmp_dir("packs");
    let texts = corpus_texts(12);
    for (i, text) in texts.iter().enumerate() {
        std::fs::write(dir.join(format!("r{i:03}.txt")), text).unwrap();
    }
    let vfs = RealVfs;
    let files = spec_analysis::list_report_files(&vfs, &dir).unwrap();
    let items = read_inputs_shared(&vfs, &files);
    assert_eq!(items.len(), 12);

    // Every input is Shared, contents match, and the small files share
    // far fewer slabs than there are files.
    let mut slab_ids = Vec::new();
    for (i, (origin, input)) in items.iter().enumerate() {
        assert_eq!(origin.as_deref(), Some(format!("r{i:03}.txt").as_str()));
        match input {
            RawInput::Shared(t) => {
                assert_eq!(t.as_str(), texts[i]);
                slab_ids.push(t.slab_id());
            }
            other => panic!("expected Shared, got {other:?}"),
        }
    }
    slab_ids.sort_unstable();
    slab_ids.dedup();
    assert!(
        slab_ids.len() < 12,
        "12 small reports should pack into fewer slabs, got {}",
        slab_ids.len()
    );

    // The full directory cascade equals the in-memory owned-text cascade.
    let via_dir = load_from_dir_vfs(&vfs, &dir).unwrap();
    let via_texts = load_from_texts(&texts);
    assert_eq!(via_dir.valid, via_texts.valid);
    assert_eq!(via_dir.comparable, via_texts.comparable);
    assert_eq!(via_dir.report.valid, via_texts.report.valid);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shared_and_owned_inputs_are_interchangeable() {
    let text = write_run(&linear_test_run(9, 1e6, 60.0, 300.0));
    let owned = RawInput::Text(text.clone());
    let mut arena = SlabArena::with_slab_bytes(64);
    arena.push("padding so the report does not start at offset 0");
    arena.push(&text);
    let shared = RawInput::Shared(arena.finish().remove(1));

    // Equality, borrowed view, and partition key all agree.
    assert_eq!(owned, shared);
    assert_eq!(owned.as_ref(), shared.as_ref());
    assert_eq!(part_key_of_input(&owned), part_key_of_input(&shared));

    // The cascade can consume either representation identically.
    let a = load_from_inputs([(Some("a.txt".to_string()), owned)]);
    let b = load_from_inputs([(Some("a.txt".to_string()), shared)]);
    assert_eq!(a.valid, b.valid);
    assert_eq!(a.report, b.report);
}

#[test]
fn file_exactly_at_slab_boundary_parses_whole() {
    // A report padded to exactly DEFAULT_SLAB_BYTES takes the
    // dedicated-slab path; smaller neighbours pack around it. Every text
    // must come back contiguous and parse identically to its owned twin.
    let dir = tmp_dir("boundary");
    let base = write_run(&linear_test_run(1, 1e6, 60.0, 300.0));
    let pad = spec_vfs::DEFAULT_SLAB_BYTES - base.len();
    // Pad with full-width comment lines the parser ignores.
    let filler_line = "padding line with no colon or pipe\n";
    let mut padded = base.clone();
    while padded.len() + filler_line.len() <= spec_vfs::DEFAULT_SLAB_BYTES {
        padded.push_str(filler_line);
    }
    while padded.len() < spec_vfs::DEFAULT_SLAB_BYTES {
        padded.push('z');
    }
    assert_eq!(padded.len(), spec_vfs::DEFAULT_SLAB_BYTES, "pad={pad}");

    std::fs::write(dir.join("a_small.txt"), &base).unwrap();
    std::fs::write(dir.join("b_boundary.txt"), &padded).unwrap();
    std::fs::write(dir.join("c_small.txt"), &base).unwrap();

    let vfs = RealVfs;
    let files = spec_analysis::list_report_files(&vfs, &dir).unwrap();
    let items = read_inputs_shared(&vfs, &files);
    let texts: Vec<&str> = items
        .iter()
        .map(|(_, input)| match input {
            RawInput::Shared(t) => t.as_str(),
            other => panic!("expected Shared, got {other:?}"),
        })
        .collect();
    assert_eq!(texts, vec![base.as_str(), padded.as_str(), base.as_str()]);

    let set = load_from_dir_vfs(&vfs, &dir).unwrap();
    assert_eq!(set.report.raw, 3);
    assert_eq!(set.valid.len(), 3, "boundary-sized report must stay valid");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crlf_directory_matches_lf_directory() {
    // The same corpus with \r\n endings must produce an identical
    // analysis set (fields never keep a trailing \r).
    let lf_dir = tmp_dir("lf");
    let crlf_dir = tmp_dir("crlf");
    let texts = corpus_texts(6);
    for (i, text) in texts.iter().enumerate() {
        std::fs::write(lf_dir.join(format!("r{i}.txt")), text).unwrap();
        std::fs::write(crlf_dir.join(format!("r{i}.txt")), text.replace('\n', "\r\n")).unwrap();
    }
    let vfs = RealVfs;
    let lf = load_from_dir_vfs(&vfs, &lf_dir).unwrap();
    let crlf = load_from_dir_vfs(&vfs, &crlf_dir).unwrap();
    assert_eq!(lf.valid, crlf.valid);
    assert_eq!(lf.comparable, crlf.comparable);
    assert_eq!(lf.report.valid, crlf.report.valid);
    assert_eq!(lf.report.comparable, crlf.report.comparable);
    for run in &crlf.valid {
        assert!(!format!("{run:?}").contains("\\r"), "field kept a \\r");
    }
    let _ = std::fs::remove_dir_all(&lf_dir);
    let _ = std::fs::remove_dir_all(&crlf_dir);
}

#[test]
fn unreadable_files_interleave_with_shared_reads() {
    // A directory with a non-UTF-8 file: the bad file degrades to
    // IoError while its neighbours still arrive as Shared slices, with
    // origins aligned.
    let dir = tmp_dir("ioerr");
    let text = write_run(&linear_test_run(3, 1e6, 60.0, 300.0));
    std::fs::write(dir.join("a.txt"), &text).unwrap();
    std::fs::write(dir.join("bad.txt"), [0xFFu8, 0xFE, 0x00, 0x41]).unwrap();
    std::fs::write(dir.join("z.txt"), &text).unwrap();

    let vfs = RealVfs;
    let files = spec_analysis::list_report_files(&vfs, &dir).unwrap();
    let items = read_inputs_shared(&vfs, &files);
    assert_eq!(items.len(), 3);
    assert!(matches!(items[0].1, RawInput::Shared(_)));
    assert!(matches!(items[1].1, RawInput::IoError(_)));
    assert!(matches!(items[2].1, RawInput::Shared(_)));
    assert_eq!(items[1].0.as_deref(), Some("bad.txt"));

    let set = load_from_dir_vfs(&vfs, &dir).unwrap();
    assert_eq!(set.report.raw, 3);
    assert_eq!(set.valid.len(), 2);
    assert_eq!(set.report.not_reports, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
