//! Property tests for the partitioned stage graph's incrementality
//! contract: after warming the cache on a random corpus, adding,
//! modifying or removing ONE report re-executes only the affected
//! (year, vendor) partition's stages — asserted on the driver's
//! per-(stage, partition) invocation counters — while the merged
//! figures and data CSVs stay byte-identical to a cold full recompute.
//! Each scenario runs at 1, 2 and 8 worker threads; the order-preserving
//! partition fan-out makes every assertion thread-count independent.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use proptest::strategy::FnStrategy;
use spec_analysis::stage::{part_key_of_text, ArtifactCache, PartKey, PartitionedDriver};
use spec_analysis::CorpusSource;
use spec_format::write_run;
use spec_model::{linear_test_run, YearMonth};
use spec_ssj::Settings;

/// Render one synthetic report. Years stay in a narrow band and vendors
/// alternate so random corpora collide into a handful of partitions —
/// the interesting regime for invalidation precision.
fn run_text(i: u32, year: i32, amd: bool, full_load_w: f64) -> String {
    let mut run = linear_test_run(i, 1e6 + f64::from(i) * 1e3, 60.0, full_load_w);
    run.dates.hw_available = YearMonth::new(year, 6).expect("valid month");
    if amd {
        run.system.cpu.name = format!("AMD EPYC {}", 7001 + i);
    }
    write_run(&run)
}

type Spec = (i32, bool, f64);
type Corpus = Vec<(Option<String>, String)>;

/// 4..10 random report specs: year ∈ 2010..2014, either vendor, a varied
/// full-load power so modified reports change content.
fn specs_strategy() -> impl Strategy<Value = Vec<Spec>> {
    FnStrategy(|rng: &mut TestRng| {
        let n = 4 + (rng.next_u64() % 6) as usize;
        (0..n)
            .map(|_| {
                (
                    2010 + (rng.next_u64() % 4) as i32,
                    rng.next_u64() & 1 == 1,
                    250.0 + rng.unit_f64() * 150.0,
                )
            })
            .collect()
    })
}

fn corpus_items(specs: &[Spec]) -> Corpus {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(year, amd, w))| {
            (
                Some(format!("r{i:03}.txt")),
                run_text(i as u32, year, amd, w),
            )
        })
        .collect()
}

/// Apply one edit (0 = add, 1 = modify, 2 = remove) and return the edited
/// corpus plus every partition the edit may touch.
fn apply_edit(corpus: &Corpus, edit: u8, index: usize, new_spec: Spec) -> (Corpus, Vec<PartKey>) {
    let mut next = corpus.clone();
    let (year, amd, w) = new_spec;
    let new_text = run_text(900, year, amd, w);
    match edit {
        0 => {
            let affected = vec![part_key_of_text(&new_text)];
            next.push((Some("zz_new.txt".to_string()), new_text));
            (next, affected)
        }
        1 => {
            let idx = index % corpus.len();
            let old_key = part_key_of_text(&corpus[idx].1);
            let affected = vec![old_key, part_key_of_text(&new_text)];
            next[idx].1 = new_text;
            (next, affected)
        }
        _ => {
            let idx = index % corpus.len();
            let affected = vec![part_key_of_text(&corpus[idx].1)];
            next.remove(idx);
            (next, affected)
        }
    }
}

static CASE: AtomicUsize = AtomicUsize::new(0);

fn fresh_cache() -> (std::path::PathBuf, ArtifactCache) {
    let dir = std::env::temp_dir().join(format!(
        "spec_partinc_{}_{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ArtifactCache::open(dir.clone()).expect("cache opens");
    (dir, cache)
}

fn driver(corpus: &Corpus, cache: Option<ArtifactCache>) -> PartitionedDriver {
    let mut driver =
        PartitionedDriver::new(CorpusSource::Memory(corpus.clone()), Settings::fast(), 7);
    if let Some(cache) = cache {
        driver = driver.with_cache(cache);
    }
    driver
}

/// The full cold → edit → warm → recompute scenario at the ambient
/// thread count.
fn check_incremental(corpus: &Corpus, edited: &Corpus, affected: &[PartKey]) {
    let (dir, cache) = fresh_cache();

    // Cold run warms every partition of the original corpus.
    let mut cold = driver(corpus, Some(cache.clone()));
    cold.figure_files().expect("cold figures");
    cold.data_files().expect("cold data");

    // Warm run over the edited corpus: only the affected partitions'
    // stages may execute.
    let mut warm = driver(edited, Some(cache));
    let warm_figures = warm.figure_files().expect("warm figures");
    let warm_data = warm.data_files().expect("warm data");
    for ((kind, key), stats) in warm.stats() {
        if stats.executed > 0 {
            prop_assert!(
                affected.contains(key),
                "stage {} of unaffected partition {} re-executed ({} times)",
                kind.name(),
                key.label(),
                stats.executed
            );
        }
    }
    prop_assert!(
        warm.partitions_executed() <= affected.len(),
        "{} partitions executed, at most {} affected",
        warm.partitions_executed(),
        affected.len()
    );
    prop_assert_eq!(warm.merge_runs(), 1, "merge is the always-run reduce");

    // The incrementally-updated outputs are byte-identical to a cold
    // full recompute of the edited corpus.
    let mut fresh = driver(edited, None);
    prop_assert_eq!(&warm_figures, &fresh.figure_files().expect("fresh figures"));
    prop_assert_eq!(&warm_data, &fresh.data_files().expect("fresh data"));

    let _ = std::fs::remove_dir_all(&dir);
}

fn new_spec_strategy() -> impl Strategy<Value = Spec> {
    FnStrategy(|rng: &mut TestRng| {
        (
            2010 + (rng.next_u64() % 4) as i32,
            rng.next_u64() & 1 == 1,
            250.0 + rng.unit_f64() * 150.0,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn one_edit_reexecutes_only_its_partition_at_any_thread_count(
        specs in specs_strategy(),
        edit in 0u8..3,
        index in 0usize..64,
        new_spec in new_spec_strategy(),
    ) {
        let corpus = corpus_items(&specs);
        let (edited, affected) = apply_edit(&corpus, edit, index, new_spec);
        for threads in [1usize, 2, 8] {
            let pool = tinypool::Pool::new(threads);
            pool.install(|| check_incremental(&corpus, &edited, &affected));
        }
    }
}
