//! Integration tests for the `spec-trends serve` daemon: watched corpus
//! directories trigger partition-scoped refreshes, and chaos on the read
//! path (corpus + cache through `FaultVfs`) never produces a torn
//! response — requests always see a complete snapshot, stale if the
//! refresh failed.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use spec_analysis::serve::{ServeConfig, Server};
use spec_analysis::stage::ArtifactCache;
use spec_analysis::CorpusSource;
use spec_format::write_run;
use spec_model::{linear_test_run, YearMonth};
use spec_ssj::Settings;
use spec_vfs::{FaultVfs, RealVfs};

fn run_text(i: u32, year: i32, amd: bool) -> String {
    let mut run = linear_test_run(i, 1e6 + f64::from(i) * 1e3, 60.0, 300.0);
    run.dates.hw_available = YearMonth::new(year, 6).expect("valid month");
    if amd {
        run.system.cpu.name = format!("AMD EPYC {}", 7001 + i);
    }
    write_run(&run)
}

fn write_corpus(dir: &Path, n: u32) {
    std::fs::create_dir_all(dir).expect("corpus dir");
    for i in 0..n {
        let text = run_text(i, 2012 + (i as i32 % 4), i % 3 == 0);
        std::fs::write(dir.join(format!("r{i:03}.txt")), text).expect("write report");
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spec_serve_it_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One full GET; returns (status, headers, body bytes).
fn get_raw(addr: SocketAddr, target: &str) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes())
        .expect("request");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("response");
    let split = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = String::from_utf8_lossy(&buf[..split]).to_string();
    let body = buf[split + 4..].to_vec();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status");
    (status, head, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let (status, _, body) = get_raw(addr, target);
    (status, String::from_utf8_lossy(&body).to_string())
}

#[test]
fn watched_dir_refreshes_only_the_touched_partition() {
    let corpus = tmp("watch_corpus");
    let cache_dir = tmp("watch_cache");
    write_corpus(&corpus, 12);

    let mut config = ServeConfig::new(CorpusSource::Dir(corpus.clone()));
    config.addr = "127.0.0.1:0".to_string();
    config.settings = Settings::fast();
    config.threads = 2;
    config.cache = Some(ArtifactCache::open(cache_dir.clone()).expect("cache"));
    config.watch = Some(corpus.clone());
    config.poll_ms = 25;
    let server = Server::start(config).expect("server starts");
    let addr = server.addr();

    let (status, stats) = get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(stats.contains("generation 0"), "{stats}");
    assert!(stats.contains("raw 12"), "{stats}");
    let (_, data_before) = get(addr, "/data/2");

    // Drop one new 2013/Intel report into the watched directory.
    std::fs::write(corpus.join("zz_new.txt"), run_text(500, 2013, false)).expect("new report");

    // The watcher picks it up within a few poll intervals.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let (_, stats) = get(addr, "/stats");
        if stats.contains("raw 13") {
            break stats;
        }
        assert!(Instant::now() < deadline, "watcher never refreshed: {stats}");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(stats.contains("generation 1"), "{stats}");
    // Exactly the touched (year, vendor) partition re-executed; every
    // other partition was served warm from the cache.
    assert!(
        stats.contains("partitions_executed 1"),
        "one partition re-executes, got: {stats}"
    );
    // The data responses reflect the refreshed snapshot.
    let (_, data_after) = get(addr, "/data/2");
    assert_ne!(data_before, data_after, "new report shows up in /data/2");

    // Graceful shutdown via the endpoint.
    let (status, _) = get(addr, "/shutdown");
    assert_eq!(status, 200);
    server.wait();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&corpus);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn chaos_on_the_read_path_never_tears_a_response() {
    let corpus = tmp("chaos_corpus");
    let cache_dir = tmp("chaos_cache");
    write_corpus(&corpus, 10);

    // Fault both read paths: corpus loads and cache I/O.
    let fault: Arc<dyn spec_vfs::Vfs> = Arc::new(FaultVfs::seeded(Arc::new(RealVfs), 1337, 120));
    let mut config = ServeConfig::new(CorpusSource::Dir(corpus.clone()));
    config.addr = "127.0.0.1:0".to_string();
    config.settings = Settings::fast();
    config.threads = 2;
    config.vfs = Arc::clone(&fault);
    // Setup can hit injected transients too (the seeded plan advances per
    // operation); retry until the daemon is up — the property under test
    // is steady-state serving, where failures must degrade to stale
    // snapshots rather than torn responses.
    config.cache = Some(
        (0..100)
            .find_map(|_| ArtifactCache::open_with(cache_dir.clone(), Arc::clone(&fault)).ok())
            .expect("cache opens within the fault budget"),
    );
    let server = (0..100)
        .find_map(|_| Server::start(config.clone()).ok())
        .expect("server starts within the fault budget");
    let addr = server.addr();

    for round in 0..6 {
        // Refresh under chaos; failure keeps the old snapshot (that is
        // the contract), success swaps in a complete new one.
        let _ = server.refresh();
        for target in [
            "/figures/2",
            "/figures/4",
            "/data/3",
            "/data/6?vendor=amd",
            "/figures/5?year=2013",
            "/stats",
        ] {
            let (status, head, body) = get_raw(addr, target);
            assert_eq!(status, 200, "round {round} {target}");
            // Content-Length matches the delivered bytes: no truncation.
            let want: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("length header")
                .trim()
                .parse()
                .expect("numeric length");
            assert_eq!(body.len(), want, "round {round} {target} torn body");
            if target.starts_with("/figures/") {
                let svg = String::from_utf8_lossy(&body);
                assert!(svg.trim_end().ends_with("</svg>"), "round {round} {target}");
            }
        }
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&corpus);
    let _ = std::fs::remove_dir_all(&cache_dir);
}
