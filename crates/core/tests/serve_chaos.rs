//! Network chaos suite: seeded adversarial clients vs the serve daemon.
//!
//! The three-way invariant PR 3 pinned for the filesystem, now for the
//! network: under hostile traffic the daemon produces a **typed error**
//! (405/414/431/501/503/505 — never a panic), **byte-correct output**
//! (no torn or interleaved responses), and **exact accounting** —
//!
//! ```text
//! conns_offered  == conns_shed + conns_accepted + conns_queued
//! conns_accepted == conns_completed + conns_timed_out + conns_aborted
//!                   + conns_active
//! ```
//!
//! for every seed, at 1, 2, and 8 worker threads. `CHAOS_SEED=<n>` adds
//! an extra seed to the fixed set, same convention as `tests/chaos.rs`.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use spec_analysis::serve::{faultnet, net};
use spec_analysis::stage::CorpusSource;
use spec_analysis::{ServeConfig, Server};
use spec_format::write_run;
use spec_model::{linear_test_run, YearMonth};
use spec_ssj::Settings;

fn corpus_texts(n: u32) -> Vec<(Option<String>, String)> {
    (0..n)
        .map(|i| {
            let mut run = linear_test_run(i, 1e6, 60.0, 300.0);
            run.dates.hw_available = YearMonth::new(2010 + (i as i32 % 4), 6).unwrap();
            if i % 3 == 0 {
                run.system.cpu.name = format!("AMD EPYC {}", 9000 + i);
            }
            (Some(format!("run{i}.txt")), write_run(&run))
        })
        .collect()
}

/// A daemon with tight limits so the chaos fleet actually trips them:
/// small queue, sub-second deadlines, a few hundred ms of idle budget.
fn chaos_server(threads: usize) -> Server {
    let mut config = ServeConfig::new(CorpusSource::Memory(corpus_texts(12)));
    config.addr = "127.0.0.1:0".to_string();
    config.threads = threads;
    config.settings = Settings::fast();
    config.limits = net::Limits {
        max_inflight: threads.max(2),
        queue_depth: 3,
        request_deadline_ms: 250,
        idle_timeout_ms: 400,
        drain_timeout_ms: 2_000,
        ..net::Limits::default()
    };
    Server::start(config).expect("chaos server starts")
}

fn seeds() -> Vec<u64> {
    let mut seeds = vec![7, 1337, 424242];
    if let Ok(extra) = std::env::var("CHAOS_SEED") {
        if let Ok(seed) = extra.trim().parse() {
            seeds.push(seed);
        }
    }
    seeds
}

fn stat(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(key).and_then(|r| r.trim().parse().ok()))
        .unwrap_or_else(|| panic!("no {key} in:\n{stats}"))
}

/// Poll `/stats` (in-process) until no connection is active or queued.
fn settled_stats(server: &Server) -> String {
    for _ in 0..200 {
        let stats = server.stats_text();
        if stat(&stats, "conns_active ") == 0 && stat(&stats, "conns_queued ") == 0 {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("server never settled:\n{}", server.stats_text());
}

/// Launch two clients of every [`faultnet::ClientKind`] concurrently,
/// then check the client-side and server-side invariants.
fn run_fleet(threads: usize, seed: u64) {
    let server = chaos_server(threads);
    let addr = server.addr();
    let handles: Vec<_> = faultnet::KINDS
        .iter()
        .cycle()
        .take(faultnet::KINDS.len() * 2)
        .enumerate()
        .map(|(i, &kind)| {
            let client_seed = seed ^ ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            std::thread::spawn(move || (kind, faultnet::run_client(addr, kind, client_seed)))
        })
        .collect();
    let reports: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    // Client's-eye invariants: nothing the server sent was torn, and
    // every shed response announced a retry.
    for (kind, report) in &reports {
        assert_eq!(
            report.torn, 0,
            "torn response from {kind:?} at threads={threads} seed={seed}: {report:?}"
        );
        assert_eq!(
            report.bad_shed, 0,
            "503 without Retry-After from {kind:?} at threads={threads} seed={seed}: {report:?}"
        );
        assert!(!report.connect_failed, "{kind:?} could not connect");
    }
    // The control group got real answers even amid the hostile fleet.
    let valid_completed: usize = reports
        .iter()
        .filter(|(k, _)| *k == faultnet::ClientKind::Valid)
        .map(|(_, r)| r.completed)
        .sum();
    assert!(
        valid_completed > 0,
        "no valid client completed at threads={threads} seed={seed}"
    );

    // Server-side: exact lifecycle accounting, zero panics.
    let stats = settled_stats(&server);
    let offered = stat(&stats, "conns_offered ");
    let shed = stat(&stats, "conns_shed ");
    let accepted = stat(&stats, "conns_accepted ");
    let completed = stat(&stats, "conns_completed ");
    let timed_out = stat(&stats, "conns_timed_out ");
    let aborted = stat(&stats, "conns_aborted ");
    assert_eq!(
        offered,
        shed + accepted,
        "offered != shed + accepted at threads={threads} seed={seed}:\n{stats}"
    );
    assert_eq!(
        accepted,
        completed + timed_out + aborted,
        "accepted != completed + timed_out + aborted at threads={threads} seed={seed}:\n{stats}"
    );
    assert_eq!(stat(&stats, "worker_panics "), 0, "{stats}");
    // The slow-loris clients must show up as timeouts, not hangs.
    assert!(
        timed_out >= 1,
        "no timeout recorded despite slow-loris clients:\n{stats}"
    );
    server.shutdown();
}

#[test]
fn chaos_fleet_one_worker() {
    for seed in seeds() {
        run_fleet(1, seed);
    }
}

#[test]
fn chaos_fleet_two_workers() {
    for seed in seeds() {
        run_fleet(2, seed);
    }
}

#[test]
fn chaos_fleet_eight_workers() {
    for seed in seeds() {
        run_fleet(8, seed);
    }
}

/// Graceful drain: `/shutdown` answers 200, requests the client already
/// pipelined still complete (readiness now says 503), late connections
/// are not admitted, and the accounting stays balanced through the join.
#[test]
fn graceful_drain_finishes_pipelined_work_and_flips_readiness() {
    let server = chaos_server(2);
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream.set_nodelay(true).expect("nodelay");
    use std::io::Write as _;
    stream
        .write_all(
            b"GET /shutdown HTTP/1.1\r\nHost: drain\r\n\r\n\
              GET /readyz HTTP/1.1\r\nHost: drain\r\nConnection: close\r\n\r\n",
        )
        .expect("pipelined shutdown");

    let first = faultnet::read_response(&mut stream)
        .expect("read")
        .expect("shutdown response");
    assert_eq!(first.status, 200);
    assert!(first.complete);
    let second = faultnet::read_response(&mut stream)
        .expect("read")
        .expect("pipelined readyz response");
    assert_eq!(second.status, 503, "readiness flips during drain");
    assert!(second.retry_after);
    assert!(second.complete, "in-flight work finishes during drain");

    let stats = settled_stats(&server);
    assert_eq!(stat(&stats, "draining "), 1, "{stats}");
    assert!(
        stat(&stats, "drain_completed ") >= 2,
        "both drain-time responses counted:\n{stats}"
    );
    let offered = stat(&stats, "conns_offered ");
    let accepted = stat(&stats, "conns_accepted ");
    let shed = stat(&stats, "conns_shed ");
    assert_eq!(offered, shed + accepted, "{stats}");
    server.shutdown();
}

/// An injectable clock drives deadline shedding deterministically even
/// through the chaos-tier config: a stepping clock blows every recompute
/// budget, and the daemon answers 503 without memoizing the failure.
#[test]
fn stepping_clock_sheds_recomputes_across_worker_counts() {
    for threads in [1usize, 2] {
        let clock = Arc::new(net::TestClock::new());
        let mut config = ServeConfig::new(CorpusSource::Memory(corpus_texts(12)));
        config.addr = "127.0.0.1:0".to_string();
        config.threads = threads;
        config.settings = Settings::fast();
        config.limits.request_deadline_ms = 100;
        config.clock = Arc::clone(&clock) as Arc<dyn net::Clock>;
        let server = Server::start(config).expect("server starts");
        let addr = server.addr();

        clock.set_step(Duration::from_millis(300));
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        use std::io::Write as _;
        stream
            .write_all(b"GET /data/2?vendor=amd HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("request");
        let resp = faultnet::read_response(&mut stream)
            .expect("read")
            .expect("response");
        assert_eq!(resp.status, 503, "threads={threads}");
        assert!(resp.retry_after);

        // Freeze time: the same query now recomputes and succeeds —
        // proof the blown-deadline 503 was never memoized.
        clock.set_step(Duration::ZERO);
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        stream
            .write_all(b"GET /data/2?vendor=amd HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("request");
        let resp = faultnet::read_response(&mut stream)
            .expect("read")
            .expect("response");
        assert_eq!(resp.status, 200, "threads={threads}");

        let stats = settled_stats(&server);
        assert_eq!(stat(&stats, "timeout_deadline "), 1, "{stats}");
        server.shutdown();
    }
}
