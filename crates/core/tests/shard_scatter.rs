//! Scatter-gather equivalence: a fan-out front end over any shard fleet
//! must be byte-identical to one monolithic daemon.
//!
//! The suite generates random corpora (years 2010–2017, all three vendor
//! classes, jittered power curves), splits them across 1, 2 or 4 shard
//! daemons at 1, 2 or 8 worker threads — graph- and stream-built
//! snapshots alike — and compares every figure, CSV, filtered and
//! aggregated response byte-for-byte against a single-process server
//! hosting the same corpus. Shard assignment is a pure function of the
//! partition key, the gathered rows are re-sorted by global index before
//! the reduce, and the reduces themselves are the monolithic code paths —
//! so any divergence is a real merge bug, not float noise.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use proptest::prelude::*;
use proptest::strategy::FnStrategy;
use proptest::test_runner::TestRng;
use spec_analysis::serve::{ServeConfig, Server};
use spec_analysis::{CorpusSource, ShardSpec, SnapshotMode};
use spec_format::write_run;
use spec_model::{linear_test_run, YearMonth};
use spec_ssj::Settings;

fn run_text(i: u32, year: i32, vendor: u32) -> String {
    let mut run = linear_test_run(i, 1e6 + f64::from(i) * 7e3, 55.0 + f64::from(i % 9), 300.0);
    run.dates.hw_available = YearMonth::new(year, 1 + (i as u8 % 12)).expect("valid month");
    run.system.cpu.name = match vendor % 3 {
        0 => format!("Intel Xeon Platinum {}", 8000 + i % 500),
        1 => format!("AMD EPYC {}", 7001 + i % 500),
        _ => "SPARC T5".to_string(),
    };
    write_run(&run)
}

/// One generated scenario: a corpus plus a fleet shape.
#[derive(Clone, Debug)]
struct Scenario {
    texts: Vec<String>,
    shards: usize,
    threads: usize,
    stream: bool,
    extra_targets: Vec<String>,
}

const VENDOR_LISTS: &[&str] = &["intel", "amd", "other", "intel,amd", "amd,other"];

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    FnStrategy(|rng: &mut TestRng| {
        let n = 8 + (rng.next_u64() % 25) as u32;
        let texts = (0..n)
            .map(|i| {
                let year = 2010 + (rng.next_u64() % 8) as i32;
                run_text(i, year, rng.next_u64() as u32)
            })
            .collect();
        // Two random filtered targets per case, on top of the fixed list.
        // Years may miss the corpus entirely: an empty result set must
        // still be byte-identical across fleet shapes.
        let extra_targets = (0..2)
            .map(|_| {
                let lo = 2009 + (rng.next_u64() % 10) as i32;
                let hi = lo + (rng.next_u64() % 4) as i32;
                let vendor = VENDOR_LISTS[(rng.next_u64() % VENDOR_LISTS.len() as u64) as usize];
                let n = 2 + (rng.next_u64() % 5) as u8;
                match rng.next_u64() % 3 {
                    0 => format!("/data/{n}?year={lo}-{hi}"),
                    1 => format!("/figures/{n}?vendor={vendor}"),
                    _ => format!("/data/{n}?year={lo}-{hi}&vendor={vendor}"),
                }
            })
            .collect();
        Scenario {
            texts,
            shards: [1, 2, 4][(rng.next_u64() % 3) as usize],
            threads: [1, 2, 8][(rng.next_u64() % 3) as usize],
            stream: rng.next_u64() & 1 == 1,
            extra_targets,
        }
    })
}

fn memory_source(texts: &[String]) -> CorpusSource {
    CorpusSource::Memory(texts.iter().map(|t| (None, t.clone())).collect())
}

fn base_config(source: CorpusSource, threads: usize) -> ServeConfig {
    let mut config = ServeConfig::new(source);
    config.addr = "127.0.0.1:0".to_string();
    config.settings = Settings::fast();
    config.threads = threads;
    config
}

/// One full GET; returns (status, body bytes).
fn get_raw(addr: SocketAddr, target: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("request");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("response");
    let split = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let status: u16 = String::from_utf8_lossy(&buf[..split])
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status");
    (status, buf[split + 4..].to_vec())
}

/// Start `shards` shard daemons over `texts` plus a front end fanning out
/// to them. The shard servers must outlive the front end's queries.
fn start_fleet(scenario: &Scenario) -> (Vec<Server>, Server) {
    let mut shard_servers = Vec::new();
    let mut addrs = Vec::new();
    for index in 0..scenario.shards {
        let mut config = base_config(memory_source(&scenario.texts), scenario.threads);
        config.shard = Some(ShardSpec {
            index,
            count: scenario.shards,
        });
        if scenario.stream {
            config.mode = SnapshotMode::Stream;
        }
        let server = Server::start(config).expect("shard starts");
        addrs.push(server.addr().to_string());
        shard_servers.push(server);
    }
    let mut config = base_config(memory_source(&[]), scenario.threads);
    config.fan_out = addrs;
    let front = Server::start(config).expect("front end starts");
    (shard_servers, front)
}

/// Every target class the daemon serves: figures, CSVs, year ranges,
/// vendor lists, combined filters and yearly aggregates.
fn fixed_targets() -> Vec<String> {
    let mut targets: Vec<String> = (1u8..=6)
        .flat_map(|n| [format!("/figures/{n}"), format!("/data/{n}")])
        .collect();
    targets.extend(
        [
            "/data/2?year=2012-2014",
            "/figures/4?vendor=amd",
            "/data/6?year=2013&vendor=intel,amd",
            "/data/1?vendor=other",
            "/data/3?agg=year",
            "/data/5?year=2011-2015&vendor=intel&agg=year",
            // A year before any corpus: empty result sets must agree too.
            "/data/2?year=1995",
        ]
        .map(String::from),
    );
    targets
}

fn assert_fleet_matches_reference(scenario: &Scenario) {
    // The reference daemon always runs graph-built at 2 threads, so a pass
    // also pins stream-vs-graph and cross-thread-count identity.
    let reference =
        Server::start(base_config(memory_source(&scenario.texts), 2)).expect("reference starts");
    let (shard_servers, front) = start_fleet(scenario);

    let mut targets = fixed_targets();
    targets.extend(scenario.extra_targets.iter().cloned());
    for target in &targets {
        let (want_status, want) = get_raw(reference.addr(), target);
        let (got_status, got) = get_raw(front.addr(), target);
        assert_eq!(
            (want_status, &want),
            (got_status, &got),
            "{target} diverges: {} shard(s), {} thread(s), stream={} \
             ({} vs {} bytes)",
            scenario.shards,
            scenario.threads,
            scenario.stream,
            want.len(),
            got.len(),
        );
        // Warm the memo and re-read: cached responses are the same bytes.
        let (_, again) = get_raw(front.addr(), target);
        assert_eq!(got, again, "{target} memo returns different bytes");
    }

    front.shutdown();
    for server in shard_servers {
        server.shutdown();
    }
    reference.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fan_out_is_byte_identical_for_any_fleet_shape(scenario in scenario_strategy()) {
        assert_fleet_matches_reference(&scenario);
    }
}

#[test]
fn single_shard_fleet_equals_monolith() {
    // The degenerate fleet — one shard owning every partition — is the
    // cheapest full-path check and the first place a proxy-layer bug
    // shows up.
    let scenario = Scenario {
        texts: (0..16).map(|i| run_text(i, 2010 + (i as i32 % 6), i)).collect(),
        shards: 1,
        threads: 2,
        stream: false,
        extra_targets: Vec::new(),
    };
    assert_fleet_matches_reference(&scenario);
}

#[test]
fn four_stream_shards_at_eight_threads_equal_monolith() {
    // The most parallel shape in one deterministic regression: 4 shards,
    // stream-built snapshots, 8 worker threads each.
    let scenario = Scenario {
        texts: (0..24).map(|i| run_text(i, 2010 + (i as i32 % 8), i * 7)).collect(),
        shards: 4,
        threads: 8,
        stream: true,
        extra_targets: vec!["/data/6?year=2010-2017&vendor=intel,amd,other".to_string()],
    };
    assert_fleet_matches_reference(&scenario);
}
