//! The pre-parse partition-key scan must agree with the full parser.
//!
//! `part_key_of_text` derives the (hardware-availability year, CPU vendor)
//! partition key from a raw header scan without running the parser. Both
//! claim last-occurrence-wins for duplicated headers — this suite
//! generates reports with duplicate/conflicting `Hardware Availability:`
//! and `CPU Name:` lines (parseable, ambiguous, empty, and pipe-bearing
//! values, LF and CRLF) and asserts the scanned key always equals the key
//! recomputed from the parsed run's fields.
//!
//! Two historical divergences are pinned as deterministic regressions:
//! the scan used to keep a year from an *earlier* parseable value when
//! the last occurrence was unparseable (the parser resets to ambiguous),
//! and it used to read headers out of pipe-bearing lines the parser
//! classifies as level rows.

use proptest::prelude::*;
use proptest::strategy::FnStrategy;
use proptest::test_runner::TestRng;
use spec_analysis::stage::{part_key_of_text, PartKey};
use spec_format::{parse_run, write_run};
use spec_model::{linear_test_run, CpuVendor, YearMonth};

/// The partition key implied by the *parsed* run: the year the parser
/// ended up with for `Hardware Availability` (−1 when ambiguous or
/// missing) and the vendor classified from its final `CPU Name`.
fn key_of_parsed(text: &str) -> PartKey {
    let run = parse_run(text).expect("generated texts are reports");
    PartKey {
        year: run.hw_available.ok().map_or(-1, |d| d.year()),
        vendor: CpuVendor::classify(run.cpu_name.as_deref().unwrap_or("")),
    }
}

fn assert_key_agrees(text: &str) {
    assert_eq!(
        part_key_of_text(text),
        key_of_parsed(text),
        "partition key disagrees with the parsed run for:\n{text}"
    );
}

const HA_VALUES: &[&str] = &[
    "Jun-2014",
    "Mar-2019",
    "n/a",
    "TBD",
    "Jun-2014 or Jul-2014",
    "",
    "sometime soon",
    "Dec-2006",
];

const CPU_VALUES: &[&str] = &[
    "Intel Xeon Platinum 8480+",
    "AMD EPYC 9654",
    "unknown",
    "",
    "SPARC T5",
    // A pipe in the value turns the whole line into a level row for the
    // parser — the scan must skip it identically.
    "AMD EPYC | marketing footnote",
    "Intel Xeon: with a second colon",
];

/// A generated scenario: a canonical report plus injected conflicting
/// header lines, optionally CRLF-terminated, optionally missing its final
/// newline.
fn scenario_strategy() -> impl Strategy<Value = String> {
    FnStrategy(|rng: &mut TestRng| {
        let id = (rng.next_u64() % 10_000) as u32;
        let year = 2006 + (rng.next_u64() % 18) as i32;
        let mut run = linear_test_run(id, 1e6, 60.0, 300.0);
        run.dates.hw_available = YearMonth::new(year, 6).expect("valid month");
        if rng.next_u64() & 1 == 1 {
            run.system.cpu.name = format!("AMD EPYC {}", 7000 + id % 100);
        }
        let base = write_run(&run);
        let mut lines: Vec<String> = base.lines().map(str::to_string).collect();
        // Inject 0..6 conflicting header lines at random positions.
        let injections = (rng.next_u64() % 6) as usize;
        for _ in 0..injections {
            let line = match rng.next_u64() % 3 {
                0 => format!(
                    "Hardware Availability: {}",
                    HA_VALUES[(rng.next_u64() % HA_VALUES.len() as u64) as usize]
                ),
                1 => format!(
                    "CPU Name: {}",
                    CPU_VALUES[(rng.next_u64() % CPU_VALUES.len() as u64) as usize]
                ),
                _ => format!(
                    "  Hardware Availability  :  {}  ",
                    HA_VALUES[(rng.next_u64() % HA_VALUES.len() as u64) as usize]
                ),
            };
            let at = (rng.next_u64() % (lines.len() as u64 + 1)) as usize;
            lines.insert(at, line);
        }
        let ending = if rng.next_u64() & 1 == 1 { "\r\n" } else { "\n" };
        let mut text = lines.join(ending);
        if rng.next_u64() & 1 == 1 {
            text.push_str(ending);
        }
        text
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn partition_key_always_agrees_with_parser(text in scenario_strategy()) {
        assert_key_agrees(&text);
    }
}

#[test]
fn last_unparseable_availability_resets_year() {
    // Regression: the scan kept the year of an earlier parseable value
    // when the last occurrence was ambiguous; the parser overwrites the
    // field, so the key must fall back to the unknown year.
    let text = "SPECpower_ssj2008 Report\n\
                Hardware Availability: Jun-2014\n\
                CPU Name: Intel Xeon X\n\
                Hardware Availability: n/a\n";
    assert_key_agrees(text);
    assert_eq!(part_key_of_text(text).year, -1);
}

#[test]
fn pipe_bearing_header_lines_are_level_rows_for_both() {
    // Regression: the scan used to read "CPU Name: AMD | x" as a CPU
    // header; the parser classifies any pipe-bearing line as a level row.
    let text = "SPECpower_ssj2008 Report\n\
                CPU Name: Intel Xeon X\n\
                CPU Name: AMD EPYC | marketing footnote\n";
    assert_key_agrees(text);
    assert_eq!(part_key_of_text(text).vendor, CpuVendor::Intel);
}

#[test]
fn duplicate_parseable_headers_last_wins() {
    let text = "SPECpower_ssj2008 Report\n\
                Hardware Availability: Jun-2014\n\
                Hardware Availability: Mar-2019\n\
                CPU Name: Intel Xeon X\n\
                CPU Name: AMD EPYC 7763\n";
    assert_key_agrees(text);
    let key = part_key_of_text(text);
    assert_eq!(key.year, 2019);
    assert_eq!(key.vendor, CpuVendor::Amd);
}

#[test]
fn crlf_key_matches_lf_key() {
    let run = linear_test_run(7, 1e6, 60.0, 300.0);
    let lf = write_run(&run);
    let crlf = lf.replace('\n', "\r\n");
    assert_eq!(part_key_of_text(&lf), part_key_of_text(&crlf));
    assert_key_agrees(&crlf);
}
