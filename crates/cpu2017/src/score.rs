//! The rate-score model.
//!
//! SPECrate runs `copies` independent instances of each benchmark and
//! reports a geometric mean of per-benchmark throughput ratios against the
//! reference machine. The model composes three factors per benchmark:
//!
//! * **scalar throughput** — core-equivalents × frequency × per-clock
//!   throughput (SMT copies yield a fraction of a full core);
//! * **vector factor** — the benchmark's vector-sensitive share speeds up
//!   with SIMD width relative to a 128-bit baseline (the paper's Section-V
//!   argument: Intel's 2× AVX width narrows AMD's FP gap);
//! * **memory factor** — a soft minimum between demanded and available
//!   bandwidth (high-core-count parts saturate their memory system first).

use crate::machine::Machine;
use crate::suite::{BenchmarkSpec, Suite};

/// Exponent mapping SIMD width ratios to speed-ups (sublinear: wider
/// vectors are progressively harder to feed).
const VECTOR_EXP: f64 = 0.62;

/// Sharpness of the soft-min bandwidth saturation (higher = closer to a
/// hard `min`).
const MEM_SOFTMIN_P: f64 = 4.0;

/// Global scale calibrated so the Table I Intel system scores ≈ 902 intrate
/// and ≈ 926 fprate.
const SCALE_INT: f64 = 2.11;
/// See [`SCALE_INT`].
const SCALE_FP: f64 = 1.354;

/// Vector speed-up factor of one benchmark on the given SIMD width.
pub fn vector_factor(spec: &BenchmarkSpec, vector_bits: u32) -> f64 {
    let width_ratio = (vector_bits.max(64) as f64 / 128.0).max(0.25);
    (1.0 - spec.vector_sensitivity) + spec.vector_sensitivity * width_ratio.powf(VECTOR_EXP)
}

/// Memory-bandwidth derating for one benchmark on one machine (0–1].
pub fn memory_factor(spec: &BenchmarkSpec, machine: &Machine) -> f64 {
    let demand = machine.core_equivalents() * machine.freq_ghz * spec.mem_gbs_per_copy_ghz;
    if demand <= 0.0 || machine.mem_bw_gbs <= 0.0 {
        return 1.0;
    }
    let ratio = demand / machine.mem_bw_gbs;
    (1.0 + ratio.powf(MEM_SOFTMIN_P)).powf(-1.0 / MEM_SOFTMIN_P)
}

/// Throughput of one benchmark (arbitrary units proportional to SPEC's
/// per-benchmark ratio).
pub fn benchmark_throughput(spec: &BenchmarkSpec, machine: &Machine, suite: Suite) -> f64 {
    let ipc = match suite {
        Suite::IntRate => machine.ipc_int,
        Suite::FpRate => machine.ipc_fp,
    };
    machine.core_equivalents()
        * machine.freq_ghz
        * ipc
        * vector_factor(spec, machine.vector_bits)
        * memory_factor(spec, machine)
}

/// The suite score: scaled geometric mean over the suite's benchmarks.
pub fn rate_score(machine: &Machine, suite: Suite) -> f64 {
    let benches = suite.benchmarks();
    let log_sum: f64 = benches
        .iter()
        .map(|b| benchmark_throughput(b, machine, suite).max(f64::MIN_POSITIVE).ln())
        .sum();
    let geomean = (log_sum / benches.len() as f64).exp();
    match suite {
        Suite::IntRate => SCALE_INT * geomean,
        Suite::FpRate => SCALE_FP * geomean,
    }
}

/// Per-benchmark breakdown for reports: `(name, throughput, vec factor,
/// mem factor)`.
pub fn score_breakdown(machine: &Machine, suite: Suite) -> Vec<(&'static str, f64, f64, f64)> {
    suite
        .benchmarks()
        .iter()
        .map(|b| {
            (
                b.name,
                benchmark_throughput(b, machine, suite),
                vector_factor(b, machine.vector_bits),
                memory_factor(b, machine),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{epyc_9754_duo, xeon_8490h_duo};
    use crate::suite::INTRATE;

    #[test]
    fn vector_factor_bounds() {
        let spec = BenchmarkSpec {
            name: "t",
            vector_sensitivity: 0.8,
            mem_gbs_per_copy_ghz: 0.0,
        };
        let narrow = vector_factor(&spec, 128);
        let wide = vector_factor(&spec, 512);
        assert!((narrow - 1.0).abs() < 1e-12, "128-bit is the baseline");
        assert!(wide > narrow);
        let insensitive = BenchmarkSpec {
            name: "t2",
            vector_sensitivity: 0.0,
            mem_gbs_per_copy_ghz: 0.0,
        };
        assert_eq!(vector_factor(&insensitive, 512), 1.0);
    }

    #[test]
    fn memory_factor_soft_min() {
        let machine = xeon_8490h_duo();
        let light = BenchmarkSpec {
            name: "light",
            vector_sensitivity: 0.0,
            mem_gbs_per_copy_ghz: 0.01,
        };
        let heavy = BenchmarkSpec {
            name: "heavy",
            vector_sensitivity: 0.0,
            mem_gbs_per_copy_ghz: 5.0,
        };
        assert!(memory_factor(&light, &machine) > 0.99);
        assert!(memory_factor(&heavy, &machine) < 0.5);
    }

    #[test]
    fn more_cores_help_int_more_than_fp() {
        let intel = xeon_8490h_duo();
        let amd = epyc_9754_duo();
        let int_factor =
            rate_score(&amd, Suite::IntRate) / rate_score(&intel, Suite::IntRate);
        let fp_factor = rate_score(&amd, Suite::FpRate) / rate_score(&intel, Suite::FpRate);
        assert!(
            int_factor > fp_factor,
            "Section V: int gap ({int_factor:.2}) exceeds fp gap ({fp_factor:.2})"
        );
    }

    #[test]
    fn table1_absolute_scores() {
        // Paper Table I: Intel 902 int / 926 fp; AMD 1830 int / 1420 fp.
        let intel = xeon_8490h_duo();
        let amd = epyc_9754_duo();
        let intel_int = rate_score(&intel, Suite::IntRate);
        let intel_fp = rate_score(&intel, Suite::FpRate);
        let amd_int = rate_score(&amd, Suite::IntRate);
        let amd_fp = rate_score(&amd, Suite::FpRate);
        eprintln!(
            "intel int={intel_int:.0} fp={intel_fp:.0}; amd int={amd_int:.0} fp={amd_fp:.0}"
        );
        assert!((intel_int / 902.0 - 1.0).abs() < 0.10, "{intel_int}");
        assert!((intel_fp / 926.0 - 1.0).abs() < 0.10, "{intel_fp}");
        assert!((amd_int / 1830.0 - 1.0).abs() < 0.12, "{amd_int}");
        assert!((amd_fp / 1420.0 - 1.0).abs() < 0.12, "{amd_fp}");
    }

    #[test]
    fn table1_factors() {
        let intel = xeon_8490h_duo();
        let amd = epyc_9754_duo();
        let int_factor =
            rate_score(&amd, Suite::IntRate) / rate_score(&intel, Suite::IntRate);
        let fp_factor = rate_score(&amd, Suite::FpRate) / rate_score(&intel, Suite::FpRate);
        assert!(
            (int_factor - 2.03).abs() < 0.25,
            "int factor {int_factor:.2} vs paper 2.03"
        );
        assert!(
            (fp_factor - 1.53).abs() < 0.22,
            "fp factor {fp_factor:.2} vs paper 1.53"
        );
    }

    #[test]
    fn breakdown_covers_suite() {
        let machine = xeon_8490h_duo();
        let breakdown = score_breakdown(&machine, Suite::IntRate);
        assert_eq!(breakdown.len(), INTRATE.len());
        for (_, t, v, m) in breakdown {
            assert!(t > 0.0);
            assert!(v >= 1.0);
            assert!((0.0..=1.0).contains(&m));
        }
    }

    #[test]
    fn frequency_scales_score() {
        let mut m = xeon_8490h_duo();
        let base = rate_score(&m, Suite::IntRate);
        m.freq_ghz *= 1.1;
        let faster = rate_score(&m, Suite::IntRate);
        assert!(faster > base * 1.05, "close to linear in frequency");
        assert!(faster < base * 1.11, "bandwidth keeps it sublinear");
    }
}
