//! The SPEC CPU 2017 rate suites as workload descriptions.
//!
//! Each benchmark is characterised by the two properties that drive the
//! paper's Section-V argument: how much of its work is SIMD-vectorisable
//! (`vector_sensitivity`) and how much memory bandwidth one copy demands
//! (`mem_gbs_per_copy_ghz`). Integer benchmarks vectorise poorly and stress
//! bandwidth moderately; FP benchmarks vectorise heavily and several are
//! bandwidth-bound — which is exactly why AMD's core-count advantage shows
//! up 2× in intrate but much less in fprate against Intel's wider AVX units.

/// Static description of one CPU 2017 benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchmarkSpec {
    /// SPEC's benchmark identifier, e.g. `"505.mcf_r"`.
    pub name: &'static str,
    /// Fraction of runtime that scales with SIMD register width (0–1).
    pub vector_sensitivity: f64,
    /// Memory bandwidth demanded by one copy per GHz of core clock (GB/s).
    pub mem_gbs_per_copy_ghz: f64,
}

/// The 10 integer rate benchmarks.
pub const INTRATE: [BenchmarkSpec; 10] = [
    BenchmarkSpec {
        name: "500.perlbench_r",
        vector_sensitivity: 0.02,
        mem_gbs_per_copy_ghz: 0.25,
    },
    BenchmarkSpec {
        name: "502.gcc_r",
        vector_sensitivity: 0.03,
        mem_gbs_per_copy_ghz: 0.45,
    },
    BenchmarkSpec {
        name: "505.mcf_r",
        vector_sensitivity: 0.02,
        mem_gbs_per_copy_ghz: 1.10,
    },
    BenchmarkSpec {
        name: "520.omnetpp_r",
        vector_sensitivity: 0.01,
        mem_gbs_per_copy_ghz: 0.80,
    },
    BenchmarkSpec {
        name: "523.xalancbmk_r",
        vector_sensitivity: 0.05,
        mem_gbs_per_copy_ghz: 0.55,
    },
    BenchmarkSpec {
        name: "525.x264_r",
        vector_sensitivity: 0.45,
        mem_gbs_per_copy_ghz: 0.30,
    },
    BenchmarkSpec {
        name: "531.deepsjeng_r",
        vector_sensitivity: 0.02,
        mem_gbs_per_copy_ghz: 0.20,
    },
    BenchmarkSpec {
        name: "541.leela_r",
        vector_sensitivity: 0.01,
        mem_gbs_per_copy_ghz: 0.10,
    },
    BenchmarkSpec {
        name: "548.exchange2_r",
        vector_sensitivity: 0.02,
        mem_gbs_per_copy_ghz: 0.05,
    },
    BenchmarkSpec {
        name: "557.xz_r",
        vector_sensitivity: 0.04,
        mem_gbs_per_copy_ghz: 0.60,
    },
];

/// The 13 floating-point rate benchmarks.
pub const FPRATE: [BenchmarkSpec; 13] = [
    BenchmarkSpec {
        name: "503.bwaves_r",
        vector_sensitivity: 0.85,
        mem_gbs_per_copy_ghz: 1.50,
    },
    BenchmarkSpec {
        name: "507.cactuBSSN_r",
        vector_sensitivity: 0.60,
        mem_gbs_per_copy_ghz: 0.90,
    },
    BenchmarkSpec {
        name: "508.namd_r",
        vector_sensitivity: 0.70,
        mem_gbs_per_copy_ghz: 0.15,
    },
    BenchmarkSpec {
        name: "510.parest_r",
        vector_sensitivity: 0.55,
        mem_gbs_per_copy_ghz: 0.50,
    },
    BenchmarkSpec {
        name: "511.povray_r",
        vector_sensitivity: 0.30,
        mem_gbs_per_copy_ghz: 0.05,
    },
    BenchmarkSpec {
        name: "519.lbm_r",
        vector_sensitivity: 0.80,
        mem_gbs_per_copy_ghz: 1.80,
    },
    BenchmarkSpec {
        name: "521.wrf_r",
        vector_sensitivity: 0.55,
        mem_gbs_per_copy_ghz: 0.70,
    },
    BenchmarkSpec {
        name: "526.blender_r",
        vector_sensitivity: 0.35,
        mem_gbs_per_copy_ghz: 0.25,
    },
    BenchmarkSpec {
        name: "527.cam4_r",
        vector_sensitivity: 0.50,
        mem_gbs_per_copy_ghz: 0.60,
    },
    BenchmarkSpec {
        name: "538.imagick_r",
        vector_sensitivity: 0.60,
        mem_gbs_per_copy_ghz: 0.10,
    },
    BenchmarkSpec {
        name: "544.nab_r",
        vector_sensitivity: 0.55,
        mem_gbs_per_copy_ghz: 0.20,
    },
    BenchmarkSpec {
        name: "549.fotonik3d_r",
        vector_sensitivity: 0.75,
        mem_gbs_per_copy_ghz: 1.40,
    },
    BenchmarkSpec {
        name: "554.roms_r",
        vector_sensitivity: 0.70,
        mem_gbs_per_copy_ghz: 1.20,
    },
];

/// Which suite a score refers to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Suite {
    /// SPECrate 2017 Integer.
    IntRate,
    /// SPECrate 2017 Floating Point.
    FpRate,
}

impl Suite {
    /// The benchmarks of this suite.
    pub fn benchmarks(self) -> &'static [BenchmarkSpec] {
        match self {
            Suite::IntRate => &INTRATE,
            Suite::FpRate => &FPRATE,
        }
    }

    /// Display name as printed in reports.
    pub fn label(self) -> &'static str {
        match self {
            Suite::IntRate => "SPEC CPU 2017 Integer Rate (base)",
            Suite::FpRate => "SPEC CPU 2017 Floating Point Rate (base)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_spec() {
        assert_eq!(Suite::IntRate.benchmarks().len(), 10);
        assert_eq!(Suite::FpRate.benchmarks().len(), 13);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = INTRATE
            .iter()
            .chain(FPRATE.iter())
            .map(|b| b.name)
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 23);
    }

    #[test]
    fn fp_more_vectorisable_than_int() {
        let mean = |suite: &[BenchmarkSpec]| {
            suite.iter().map(|b| b.vector_sensitivity).sum::<f64>() / suite.len() as f64
        };
        assert!(mean(&FPRATE) > 3.0 * mean(&INTRATE));
    }

    #[test]
    fn sensitivities_in_unit_interval() {
        for b in INTRATE.iter().chain(FPRATE.iter()) {
            assert!((0.0..=1.0).contains(&b.vector_sensitivity), "{}", b.name);
            assert!(b.mem_gbs_per_copy_ghz >= 0.0, "{}", b.name);
        }
    }
}
