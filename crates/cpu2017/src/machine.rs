//! Machine descriptions for the rate model.

use spec_model::SystemConfig;

/// The execution resources the rate model cares about.
#[derive(Clone, Debug, PartialEq)]
pub struct Machine {
    /// Human-readable identifier.
    pub name: String,
    /// Number of benchmark copies run (SPEC practice: one per hardware
    /// thread).
    pub copies: u32,
    /// Sustained all-core frequency under the rate workload, GHz.
    pub freq_ghz: f64,
    /// Scalar integer throughput per core per GHz, relative to the model's
    /// reference core (dimensionless IPC-like factor; SMT yield folded in).
    pub ipc_int: f64,
    /// Scalar floating-point throughput per core per GHz.
    pub ipc_fp: f64,
    /// Native SIMD width in bits (effective: double-pumped units count at
    /// their effective width).
    pub vector_bits: u32,
    /// Aggregate memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Physical cores (copies beyond this share pipelines via SMT).
    pub cores: u32,
    /// Throughput yield of an SMT sibling copy (0–1).
    pub smt_yield: f64,
}

impl Machine {
    /// Effective "full-throughput core equivalents" given SMT copies.
    pub fn core_equivalents(&self) -> f64 {
        let cores = self.cores.max(1) as f64;
        let copies = self.copies.max(1) as f64;
        if copies <= cores {
            copies
        } else {
            cores + (copies - cores).min(cores) * self.smt_yield
        }
    }

    /// Construct a machine from a system config plus the per-architecture
    /// throughput factors the config does not carry.
    pub fn from_system(
        system: &SystemConfig,
        name: impl Into<String>,
        sustained_freq_ghz: f64,
        ipc_int: f64,
        ipc_fp: f64,
        mem_bw_gbs: f64,
    ) -> Machine {
        Machine {
            name: name.into(),
            copies: system.total_threads(),
            freq_ghz: sustained_freq_ghz,
            ipc_int,
            ipc_fp,
            vector_bits: system.cpu.vector_bits,
            mem_bw_gbs,
            cores: system.total_cores(),
            smt_yield: 0.28,
        }
    }
}

/// The Lenovo ThinkSystem SR650 V3 of Table I: 2× Intel Xeon Platinum 8490H
/// (Sapphire Rapids, 60 cores each, AVX-512, 8-channel DDR5-4800 per socket).
pub fn xeon_8490h_duo() -> Machine {
    Machine {
        name: "Lenovo SR650 V3 (2x Xeon Platinum 8490H)".into(),
        copies: 240,
        freq_ghz: 2.6, // all-core turbo sustained under rate load
        ipc_int: 1.00, // reference core
        ipc_fp: 1.00,
        vector_bits: 512,
        mem_bw_gbs: 2.0 * 8.0 * 38.4, // 2 sockets × 8ch × DDR5-4800
        cores: 120,
        smt_yield: 0.28,
    }
}

/// The Lenovo ThinkSystem SR645 V3 of Table I: 2× AMD EPYC 9754 (Bergamo,
/// 128 Zen4c cores each, 256-bit effective SIMD datapaths, 12-channel
/// DDR5-4800 per socket).
pub fn epyc_9754_duo() -> Machine {
    Machine {
        name: "Lenovo SR645 V3 (2x AMD EPYC 9754)".into(),
        copies: 512,
        freq_ghz: 2.55, // Bergamo all-core sustained
        ipc_int: 1.03,  // Zen4c scalar throughput per clock vs reference
        ipc_fp: 1.08, // Zen 4 sustains 2x256-bit FMA per cycle; strong per-clock FP
        vector_bits: 256, // double-pumped AVX-512 → effective 256-bit
        mem_bw_gbs: 2.0 * 12.0 * 38.4, // 2 sockets × 12ch × DDR5-4800
        cores: 256,
        smt_yield: 0.28,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_equivalents_saturate() {
        let m = xeon_8490h_duo();
        // 240 copies on 120 SMT-2 cores: 120 + 120·0.28.
        assert!((m.core_equivalents() - (120.0 + 120.0 * 0.28)).abs() < 1e-9);
    }

    #[test]
    fn core_equivalents_without_smt_pressure() {
        let mut m = xeon_8490h_duo();
        m.copies = 60;
        assert_eq!(m.core_equivalents(), 60.0);
    }

    #[test]
    fn table1_machines_shape() {
        let intel = xeon_8490h_duo();
        let amd = epyc_9754_duo();
        assert_eq!(intel.cores, 120);
        assert_eq!(amd.cores, 256);
        assert!(intel.vector_bits > amd.vector_bits, "the paper's AVX-width point");
        assert!(amd.mem_bw_gbs > intel.mem_bw_gbs, "12 vs 8 channels");
    }

    #[test]
    fn from_system_copies_and_vectors() {
        let run = spec_model::linear_test_run(0, 1e6, 60.0, 300.0);
        let m = Machine::from_system(&run.system, "test", 3.0, 1.0, 1.0, 400.0);
        assert_eq!(m.copies, run.system.total_threads());
        assert_eq!(m.cores, run.system.total_cores());
        assert_eq!(m.vector_bits, run.system.cpu.vector_bits);
    }
}
