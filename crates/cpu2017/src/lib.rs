//! # spec-cpu2017
//!
//! An analytic throughput model of the SPEC CPU 2017 *rate* suites, built to
//! reproduce Table I and the Section-V generalisation argument of the paper:
//! the integer-rate gap between the two Lenovo Table-I systems tracks the
//! SPEC Power gap (~2×), while Intel's 2×-wider AVX units halve AMD's
//! advantage on the floating-point suite.
//!
//! * [`suite`] — the 10 intrate / 13 fprate benchmarks characterised by
//!   vector sensitivity and bandwidth demand;
//! * [`machine`] — execution resources ([`Machine`]) plus the two Table-I
//!   systems ([`xeon_8490h_duo`], [`epyc_9754_duo`]);
//! * [`score`] — the geometric-mean rate score ([`rate_score`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod machine;
pub mod score;
pub mod suite;

pub use machine::{epyc_9754_duo, xeon_8490h_duo, Machine};
pub use score::{benchmark_throughput, memory_factor, rate_score, score_breakdown, vector_factor};
pub use suite::{BenchmarkSpec, Suite, FPRATE, INTRATE};
