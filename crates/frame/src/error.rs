//! Error type for dataframe operations.

use std::fmt;

/// Errors raised by [`crate::Frame`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Referenced a column name that does not exist.
    NoSuchColumn(String),
    /// A column of this name already exists.
    DuplicateColumn(String),
    /// Column lengths disagree with the frame's row count.
    LengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Its length.
        got: usize,
        /// The frame's row count.
        expected: usize,
    },
    /// Requested an operation on a column of the wrong type.
    TypeMismatch {
        /// Name of the offending column.
        column: String,
        /// What the operation needed.
        expected: &'static str,
        /// What the column actually is.
        got: &'static str,
    },
    /// A boolean mask's length disagrees with the row count.
    MaskLength {
        /// Mask length.
        got: usize,
        /// The frame's row count.
        expected: usize,
    },
    /// CSV parsing failed.
    Csv(String),
    /// A spilled segment failed to encode or decode.
    Codec(String),
    /// Spill I/O failed (store, load or a corrupt-and-quarantined file).
    Spill(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::NoSuchColumn(name) => write!(f, "no such column: {name:?}"),
            FrameError::DuplicateColumn(name) => write!(f, "duplicate column: {name:?}"),
            FrameError::LengthMismatch {
                column,
                got,
                expected,
            } => write!(
                f,
                "column {column:?} has {got} rows, frame has {expected}"
            ),
            FrameError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(f, "column {column:?} is {got}, expected {expected}"),
            FrameError::MaskLength { got, expected } => {
                write!(f, "mask has {got} entries, frame has {expected} rows")
            }
            FrameError::Csv(msg) => write!(f, "csv error: {msg}"),
            FrameError::Codec(msg) => write!(f, "segment codec error: {msg}"),
            FrameError::Spill(msg) => write!(f, "spill error: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for spec_diag::TrendsError {
    fn from(err: FrameError) -> spec_diag::TrendsError {
        spec_diag::TrendsError::new(
            "frame",
            spec_diag::ErrorKind::Data {
                detail: err.to_string(),
            },
        )
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, FrameError>;
