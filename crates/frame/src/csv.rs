//! CSV serialisation for [`Frame`], plus a small typed reader used by the
//! round-trip tests and the CLI's export path.

use crate::column::{Column, DType, Value};
use crate::error::{FrameError, Result};
use crate::frame::Frame;

/// Quote a CSV field when needed (RFC 4180 style).
fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Split one CSV record, honouring quotes.
fn split_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Append the header line for `names`. Shared with the segmented store so
/// streaming CSV output is byte-identical to [`Frame::to_csv`].
pub(crate) fn append_header_line(names: &[String], out: &mut String) {
    out.push_str(
        &names
            .iter()
            .map(|n| escape(n))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
}

/// Append every data row of `frame` (no header). Shared with the
/// segmented store.
pub(crate) fn append_data_rows(frame: &Frame, out: &mut String) {
    for i in 0..frame.n_rows() {
        let row = frame.row(i).expect("in range");
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Str(s) => escape(s),
                Value::Sym(s) => escape(s.resolve()),
                other => other.to_string(),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
}

impl Frame {
    /// Render the frame as CSV (header + rows, `\n` line endings).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        append_header_line(self.names(), &mut out);
        append_data_rows(self, &mut out);
        out
    }

    /// Parse CSV produced by [`Frame::to_csv`], with an explicit schema
    /// (order must match the header).
    pub fn from_csv(text: &str, schema: &[(&str, DType)]) -> Result<Frame> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| FrameError::Csv("empty input".into()))?;
        let names = split_record(header);
        if names.len() != schema.len() {
            return Err(FrameError::Csv(format!(
                "header has {} fields, schema has {}",
                names.len(),
                schema.len()
            )));
        }
        for (name, (expected, _)) in names.iter().zip(schema) {
            if name != expected {
                return Err(FrameError::Csv(format!(
                    "header field {name:?} does not match schema {expected:?}"
                )));
            }
        }
        let mut cols: Vec<Column> = schema
            .iter()
            .map(|(_, dt)| match dt {
                DType::F64 => Column::F64(Vec::new()),
                DType::I64 => Column::I64(Vec::new()),
                DType::Str => Column::Str(Vec::new()),
                DType::Bool => Column::Bool(Vec::new()),
                DType::Sym => Column::Sym(Vec::new()),
            })
            .collect();
        for (lineno, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let fields = split_record(line);
            if fields.len() != schema.len() {
                return Err(FrameError::Csv(format!(
                    "line {}: {} fields, expected {}",
                    lineno + 2,
                    fields.len(),
                    schema.len()
                )));
            }
            for (field, col) in fields.iter().zip(cols.iter_mut()) {
                match col {
                    Column::F64(v) => v.push(if field.is_empty() {
                        f64::NAN
                    } else {
                        field.parse().map_err(|_| {
                            FrameError::Csv(format!("line {}: bad float {field:?}", lineno + 2))
                        })?
                    }),
                    Column::I64(v) => v.push(field.parse().map_err(|_| {
                        FrameError::Csv(format!("line {}: bad int {field:?}", lineno + 2))
                    })?),
                    Column::Str(v) => v.push(field.clone()),
                    Column::Sym(v) => v.push(spec_intern::intern(field)),
                    Column::Bool(v) => v.push(match field.as_str() {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(FrameError::Csv(format!(
                                "line {}: bad bool {other:?}",
                                lineno + 2
                            )))
                        }
                    }),
                }
            }
        }
        Frame::from_columns(
            schema
                .iter()
                .map(|(n, _)| n.to_string())
                .zip(cols)
                .collect::<Vec<(String, Column)>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::from_columns([
            ("year", Column::from(vec![2007i64, 2023])),
            ("os", Column::from(vec!["Windows Server", "SUSE, Linux"])),
            ("watts", Column::from(vec![119.5, f64::NAN])),
            ("ok", Column::from(vec![true, false])),
        ])
        .unwrap()
    }

    #[test]
    fn writes_header_and_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "year,os,watts,ok");
        assert_eq!(lines[1], "2007,Windows Server,119.5,true");
        // Comma inside the field gets quoted; NaN becomes empty.
        assert_eq!(lines[2], "2023,\"SUSE, Linux\",,false");
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let csv = f.to_csv();
        let schema = [
            ("year", DType::I64),
            ("os", DType::Str),
            ("watts", DType::F64),
            ("ok", DType::Bool),
        ];
        let g = Frame::from_csv(&csv, &schema).unwrap();
        assert_eq!(g.i64s("year").unwrap(), f.i64s("year").unwrap());
        assert_eq!(g.strs("os").unwrap(), f.strs("os").unwrap());
        assert_eq!(g.bools("ok").unwrap(), f.bools("ok").unwrap());
        assert_eq!(g.f64s("watts").unwrap()[0], 119.5);
        assert!(g.f64s("watts").unwrap()[1].is_nan());
    }

    #[test]
    fn sym_roundtrip_renders_resolved_strings() {
        let syms: Vec<spec_intern::Sym> = ["Dell Inc.", "SUSE, Linux"]
            .iter()
            .map(|s| spec_intern::intern(s))
            .collect();
        let f = Frame::from_columns([("vendor", Column::Sym(syms))]).unwrap();
        let csv = f.to_csv();
        // Sym cells serialise exactly like Str cells (quoting included).
        assert_eq!(csv, "vendor\nDell Inc.\n\"SUSE, Linux\"\n");
        let g = Frame::from_csv(&csv, &[("vendor", DType::Sym)]).unwrap();
        let names: Vec<&str> = g.syms("vendor").unwrap().iter().map(|s| s.resolve()).collect();
        assert_eq!(names, vec!["Dell Inc.", "SUSE, Linux"]);
    }

    #[test]
    fn quote_escaping() {
        let f = Frame::from_columns([("s", Column::from(vec!["say \"hi\""]))]).unwrap();
        let csv = f.to_csv();
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        let g = Frame::from_csv(&csv, &[("s", DType::Str)]).unwrap();
        assert_eq!(g.strs("s").unwrap()[0], "say \"hi\"");
    }

    #[test]
    fn schema_mismatch_errors() {
        let csv = sample().to_csv();
        assert!(Frame::from_csv(&csv, &[("year", DType::I64)]).is_err());
        let wrong_name = [
            ("jahr", DType::I64),
            ("os", DType::Str),
            ("watts", DType::F64),
            ("ok", DType::Bool),
        ];
        assert!(Frame::from_csv(&csv, &wrong_name).is_err());
    }

    #[test]
    fn bad_values_error_with_line_number() {
        let text = "x\nnot_a_number\n";
        let err = Frame::from_csv(text, &[("x", DType::F64)]).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn empty_input_errors() {
        assert!(Frame::from_csv("", &[]).is_err());
    }
}
