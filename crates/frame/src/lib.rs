//! # tinyframe
//!
//! A minimal columnar dataframe for the SPEC Power trend analysis.
//!
//! The paper's original artifact is a pandas pipeline; the Rust dataframe
//! ecosystem is unavailable offline (and the repro notes call polars awkward
//! for this workload), so this crate implements exactly the operations the
//! analysis needs:
//!
//! * typed columns ([`Column`]: f64 / i64 / str / bool, `NaN` = missing),
//! * frames ([`Frame`]) with selection, boolean-mask filtering, stable
//!   sorting and vertical stacking,
//! * group-by with parallel aggregation ([`Frame::group_by`], [`Agg`]) built
//!   on the persistent `tinypool` work-stealing pool ([`parallel_map`]),
//! * left joins, value counts and `describe()` summaries
//!   ([`Frame::left_join`], [`Frame::value_counts`], [`Frame::describe`]),
//! * CSV round-tripping ([`Frame::to_csv`], [`Frame::from_csv`]).
//!
//! ```
//! use tinyframe::{Agg, Column, Frame};
//!
//! let frame = Frame::from_columns([
//!     ("year", Column::from(vec![2007i64, 2007, 2023])),
//!     ("watts", Column::from(vec![119.0, 121.0, 303.0])),
//! ]).unwrap();
//! let by_year = frame.group_by(&["year"]).unwrap()
//!     .agg(&[("watts", Agg::Mean)]).unwrap();
//! assert_eq!(by_year.n_rows(), 2);
//! assert_eq!(by_year.f64s("watts_mean").unwrap()[0], 120.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod column;
pub mod csv;
pub mod error;
pub mod frame;
pub mod groupby;
pub mod join;
pub mod par;
pub mod segcodec;
pub mod segment;
pub mod spill;

pub use column::{Column, DType, KeyValue, Value};
pub use error::{FrameError, Result};
pub use frame::Frame;
pub use groupby::{Agg, GroupBy};
pub use par::{parallel_chunks, parallel_map};
pub use segment::{SegFrame, DEFAULT_SEGMENT_ROWS};
pub use spill::{MemSegmentStore, SegmentStore, VfsSegmentStore};
