//! Binary serialisation of a single [`Frame`] segment.
//!
//! Spilled segments leave the process boundary, so — exactly like the
//! stage-graph artifact codec — `Sym` cells are encoded through a
//! per-segment dictionary of *resolved strings*, never as raw 4-byte
//! interner tokens (tokens are only meaningful within one process run).
//! Every read during decode is bounds-checked; a malformed payload
//! surfaces as [`FrameError::Codec`] instead of a panic.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! u32  n_cols
//! per column: u32 name_len, name bytes (UTF-8), u8 dtype tag
//! u64  n_rows
//! per column payload:
//!   F64  rows × 8 bytes (f64::to_le_bytes of the bit pattern)
//!   I64  rows × 8 bytes
//!   Bool rows × 1 byte (0/1)
//!   Str  per row: u32 len, bytes
//!   Sym  u32 dict_len, dict entries (u32 len + bytes), rows × u32 index
//! ```

use crate::column::{Column, DType};
use crate::error::{FrameError, Result};
use crate::frame::Frame;

const FNV_OFFSET: u128 = 0x6c62272e07bb0142_62b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000_000000000000013b;

/// One-shot FNV-1a 128 digest, mirroring the artifact cache's checksum so
/// spill files and cache entries share one integrity idiom.
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut state = FNV_OFFSET;
    for &b in bytes {
        state ^= b as u128;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

fn dtype_tag(dt: DType) -> u8 {
    match dt {
        DType::F64 => 0,
        DType::I64 => 1,
        DType::Str => 2,
        DType::Bool => 3,
        DType::Sym => 4,
    }
}

fn tag_dtype(tag: u8) -> Result<DType> {
    Ok(match tag {
        0 => DType::F64,
        1 => DType::I64,
        2 => DType::Str,
        3 => DType::Bool,
        4 => DType::Sym,
        other => return Err(FrameError::Codec(format!("unknown dtype tag {other}"))),
    })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Encode a frame segment to bytes.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, frame.n_cols() as u32);
    for (name, col) in frame.names().iter().zip(frame.columns_iter()) {
        put_bytes(&mut out, name.as_bytes());
        out.push(dtype_tag(col.dtype()));
    }
    out.extend_from_slice(&(frame.n_rows() as u64).to_le_bytes());
    for col in frame.columns_iter() {
        match col {
            Column::F64(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Column::I64(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Column::Str(v) => {
                for s in v {
                    put_bytes(&mut out, s.as_bytes());
                }
            }
            Column::Bool(v) => {
                for &b in v {
                    out.push(b as u8);
                }
            }
            Column::Sym(v) => {
                // Per-segment dictionary in first-use order of the
                // *resolved* strings.
                let mut dict: Vec<spec_intern::Sym> = Vec::new();
                let mut ids: Vec<u32> = Vec::with_capacity(v.len());
                for &sym in v {
                    let id = match dict.iter().position(|&d| d == sym) {
                        Some(i) => i as u32,
                        None => {
                            dict.push(sym);
                            (dict.len() - 1) as u32
                        }
                    };
                    ids.push(id);
                }
                put_u32(&mut out, dict.len() as u32);
                for sym in &dict {
                    put_bytes(&mut out, sym.resolve().as_bytes());
                }
                for id in ids {
                    put_u32(&mut out, id);
                }
            }
        }
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                FrameError::Codec(format!(
                    "truncated segment: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FrameError::Codec("segment string is not UTF-8".into()))
    }
}

/// Decode a frame segment produced by [`encode_frame`].
pub fn decode_frame(bytes: &[u8]) -> Result<Frame> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let n_cols = r.u32()? as usize;
    // A segment holds at most a few dozen feature columns; a huge count is
    // a corrupt header, not a real frame.
    if n_cols > 4096 {
        return Err(FrameError::Codec(format!("implausible column count {n_cols}")));
    }
    let mut header: Vec<(String, DType)> = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let name = r.str()?;
        let dtype = tag_dtype(r.u8()?)?;
        header.push((name, dtype));
    }
    let n_rows = r.u64()? as usize;
    let mut frame = Frame::new();
    for (name, dtype) in header {
        let col = match dtype {
            DType::F64 => {
                let mut v = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    let b = r.take(8)?;
                    let mut a = [0u8; 8];
                    a.copy_from_slice(b);
                    v.push(f64::from_le_bytes(a));
                }
                Column::F64(v)
            }
            DType::I64 => {
                let mut v = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    v.push(r.u64()? as i64);
                }
                Column::I64(v)
            }
            DType::Str => {
                let mut v = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    v.push(r.str()?);
                }
                Column::Str(v)
            }
            DType::Bool => {
                let mut v = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    v.push(match r.u8()? {
                        0 => false,
                        1 => true,
                        other => {
                            return Err(FrameError::Codec(format!("bad bool byte {other}")))
                        }
                    });
                }
                Column::Bool(v)
            }
            DType::Sym => {
                let dict_len = r.u32()? as usize;
                let mut dict = Vec::with_capacity(dict_len.min(n_rows.max(16)));
                for _ in 0..dict_len {
                    dict.push(spec_intern::intern(&r.str()?));
                }
                let mut v = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    let id = r.u32()? as usize;
                    let sym = *dict.get(id).ok_or_else(|| {
                        FrameError::Codec(format!(
                            "sym index {id} out of range (dict has {dict_len})"
                        ))
                    })?;
                    v.push(sym);
                }
                Column::Sym(v)
            }
        };
        frame
            .add_column(name, col)
            .map_err(|e| FrameError::Codec(format!("decoded segment invalid: {e}")))?;
    }
    if r.pos != bytes.len() {
        return Err(FrameError::Codec(format!(
            "{} trailing bytes after segment payload",
            bytes.len() - r.pos
        )));
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        let syms: Vec<spec_intern::Sym> = ["AMD", "Intel", "AMD"]
            .iter()
            .map(|s| spec_intern::intern(s))
            .collect();
        Frame::from_columns([
            ("year", Column::from(vec![2007i64, 2008, -3])),
            ("watts", Column::from(vec![1.5, f64::NAN, f64::INFINITY])),
            ("os", Column::from(vec!["a", "", "with,comma"])),
            ("ok", Column::from(vec![true, false, true])),
            ("vendor", Column::Sym(syms)),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_bits() {
        let f = sample();
        let bytes = encode_frame(&f);
        let g = decode_frame(&bytes).unwrap();
        assert_eq!(g.names(), f.names());
        assert_eq!(g.i64s("year").unwrap(), f.i64s("year").unwrap());
        // Bit-level float equality (NaN payloads included).
        let fa: Vec<u64> = f.f64s("watts").unwrap().iter().map(|x| x.to_bits()).collect();
        let ga: Vec<u64> = g.f64s("watts").unwrap().iter().map(|x| x.to_bits()).collect();
        assert_eq!(fa, ga);
        assert_eq!(g.strs("os").unwrap(), f.strs("os").unwrap());
        assert_eq!(g.bools("ok").unwrap(), f.bools("ok").unwrap());
        assert_eq!(g.syms("vendor").unwrap(), f.syms("vendor").unwrap());
    }

    #[test]
    fn empty_frame_roundtrips() {
        let f = Frame::new();
        assert_eq!(decode_frame(&encode_frame(&f)).unwrap().n_cols(), 0);
    }

    #[test]
    fn truncation_is_an_error_everywhere() {
        let bytes = encode_frame(&sample());
        for cut in 0..bytes.len() {
            assert!(
                matches!(decode_frame(&bytes[..cut]), Err(FrameError::Codec(_))),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode_frame(&sample());
        bytes.push(0);
        assert!(matches!(decode_frame(&bytes), Err(FrameError::Codec(_))));
    }

    #[test]
    fn bad_sym_index_rejected() {
        let f = Frame::from_columns([(
            "v",
            Column::Sym(vec![spec_intern::intern("only")]),
        )])
        .unwrap();
        let mut bytes = encode_frame(&f);
        // The final u32 is the row's dictionary index; corrupt it.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(FrameError::Codec(_))));
    }

    #[test]
    fn fnv128_distinguishes_payloads() {
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
        assert_ne!(fnv128(b""), fnv128(b"\0"));
        assert_eq!(fnv128(b"spec"), fnv128(b"spec"));
    }
}
