//! Joins between frames.
//!
//! The analysis occasionally enriches per-run rows with per-year aggregates
//! (e.g. attaching the yearly mean to each run to compute deviations); a
//! hash left-join on discrete key columns covers that.

use std::collections::HashMap;

use crate::column::{Column, KeyValue};
use crate::error::{FrameError, Result};
use crate::frame::Frame;

impl Frame {
    /// Left join: every row of `self` is kept; matching rows of `right`
    /// (by equality on the named key columns, which must exist in both
    /// frames with discrete types) contribute their non-key columns. When
    /// a key has no match, numeric columns get `NaN`; string columns get
    /// `""`; boolean columns get `false`. When `right` contains several
    /// rows for one key, the first wins.
    ///
    /// Non-key columns of `right` whose names collide with columns of
    /// `self` are suffixed `_right`.
    pub fn left_join(&self, right: &Frame, keys: &[&str]) -> Result<Frame> {
        // Index the right frame by key.
        let mut right_key_cols = Vec::with_capacity(keys.len());
        for &k in keys {
            let col = right.column(k)?;
            if col.as_f64().is_some() {
                return Err(FrameError::TypeMismatch {
                    column: k.to_string(),
                    expected: "discrete (i64/str/bool)",
                    got: "f64",
                });
            }
            right_key_cols.push(col);
        }
        let mut index: HashMap<Vec<KeyValue>, usize> = HashMap::new();
        for row in 0..right.n_rows() {
            let key: Vec<KeyValue> = right_key_cols
                .iter()
                .map(|c| c.key(row).expect("discrete column"))
                .collect();
            index.entry(key).or_insert(row);
        }

        let mut left_key_cols = Vec::with_capacity(keys.len());
        for &k in keys {
            let col = self.column(k)?;
            if col.as_f64().is_some() {
                return Err(FrameError::TypeMismatch {
                    column: k.to_string(),
                    expected: "discrete (i64/str/bool)",
                    got: "f64",
                });
            }
            left_key_cols.push(col);
        }

        // Row mapping: for each left row, the matched right row (or None).
        let matches: Vec<Option<usize>> = (0..self.n_rows())
            .map(|row| {
                let key: Vec<KeyValue> = left_key_cols
                    .iter()
                    .map(|c| c.key(row).expect("discrete column"))
                    .collect();
                index.get(&key).copied()
            })
            .collect();

        let mut out = self.clone();
        for (name, col) in right.names().iter().zip(right.columns_iter()) {
            if keys.contains(&name.as_str()) {
                continue;
            }
            let out_name = if out.names().iter().any(|n| n == name) {
                format!("{name}_right")
            } else {
                name.clone()
            };
            let joined = match col {
                Column::F64(v) => Column::F64(
                    matches
                        .iter()
                        .map(|m| m.map_or(f64::NAN, |i| v[i]))
                        .collect(),
                ),
                Column::I64(v) => Column::I64(
                    matches.iter().map(|m| m.map_or(0, |i| v[i])).collect(),
                ),
                Column::Str(v) => Column::Str(
                    matches
                        .iter()
                        .map(|m| m.map_or_else(String::new, |i| v[i].clone()))
                        .collect(),
                ),
                Column::Bool(v) => Column::Bool(
                    matches.iter().map(|m| m.is_some() && v[m.unwrap()]).collect(),
                ),
                Column::Sym(v) => Column::Sym(
                    // Unmatched rows get the interned empty string, mirroring
                    // the Str column's `String::new()` fill.
                    matches
                        .iter()
                        .map(|m| m.map_or_else(|| spec_intern::intern(""), |i| v[i]))
                        .collect(),
                ),
            };
            out.add_column(out_name, joined)?;
        }
        Ok(out)
    }

    /// Distinct values of a discrete column, in first-appearance order, with
    /// their counts.
    pub fn value_counts(&self, name: &str) -> Result<Vec<(KeyValue, usize)>> {
        let col = self.column(name)?;
        if col.as_f64().is_some() {
            return Err(FrameError::TypeMismatch {
                column: name.to_string(),
                expected: "discrete (i64/str/bool)",
                got: "f64",
            });
        }
        let mut order: Vec<KeyValue> = Vec::new();
        let mut counts: HashMap<KeyValue, usize> = HashMap::new();
        for row in 0..self.n_rows() {
            let key = col.key(row).expect("discrete column");
            if !counts.contains_key(&key) {
                order.push(key.clone());
            }
            *counts.entry(key).or_insert(0) += 1;
        }
        Ok(order
            .into_iter()
            .map(|k| {
                let c = counts[&k];
                (k, c)
            })
            .collect())
    }

    /// Per-numeric-column summary statistics as a new frame with one row
    /// per column: count/mean/std/min/median/max.
    pub fn describe(&self) -> Frame {
        let mut names = Vec::new();
        let mut count = Vec::new();
        let mut mean = Vec::new();
        let mut std = Vec::new();
        let mut min = Vec::new();
        let mut median = Vec::new();
        let mut max = Vec::new();
        for (name, col) in self.names().iter().zip(self.columns_iter()) {
            let Some(values) = col.to_f64_vec() else {
                continue;
            };
            let summary: tinystats::Summary = values.iter().collect();
            names.push(name.clone());
            count.push(summary.count() as f64);
            mean.push(summary.mean().unwrap_or(f64::NAN));
            std.push(summary.std_dev().unwrap_or(f64::NAN));
            min.push(summary.min().unwrap_or(f64::NAN));
            median.push(tinystats::median(&values).unwrap_or(f64::NAN));
            max.push(summary.max().unwrap_or(f64::NAN));
        }
        Frame::from_columns([
            ("column", Column::Str(names)),
            ("count", Column::F64(count)),
            ("mean", Column::F64(mean)),
            ("std", Column::F64(std)),
            ("min", Column::F64(min)),
            ("median", Column::F64(median)),
            ("max", Column::F64(max)),
        ])
        .expect("fresh frame")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs() -> Frame {
        Frame::from_columns([
            ("year", Column::from(vec![2007i64, 2007, 2023, 1999])),
            ("watts", Column::from(vec![120.0, 130.0, 700.0, 50.0])),
        ])
        .unwrap()
    }

    fn yearly() -> Frame {
        Frame::from_columns([
            ("year", Column::from(vec![2007i64, 2023])),
            ("mean_watts", Column::from(vec![125.0, 700.0])),
            ("era", Column::from(vec!["early", "late"])),
        ])
        .unwrap()
    }

    #[test]
    fn left_join_attaches_matches() {
        let joined = runs().left_join(&yearly(), &["year"]).unwrap();
        assert_eq!(joined.n_rows(), 4);
        let means = joined.f64s("mean_watts").unwrap();
        assert_eq!(means[0], 125.0);
        assert_eq!(means[1], 125.0);
        assert_eq!(means[2], 700.0);
        assert!(means[3].is_nan(), "unmatched key gets NaN");
        let eras = joined.strs("era").unwrap();
        assert_eq!(eras[0], "early");
        assert_eq!(eras[3], "", "unmatched key gets empty string");
    }

    #[test]
    fn join_name_collision_suffixed() {
        let right = Frame::from_columns([
            ("year", Column::from(vec![2007i64])),
            ("watts", Column::from(vec![999.0])),
        ])
        .unwrap();
        let joined = runs().left_join(&right, &["year"]).unwrap();
        assert!(joined.column("watts_right").is_ok());
        assert_eq!(joined.f64s("watts").unwrap()[0], 120.0, "left side intact");
        assert_eq!(joined.f64s("watts_right").unwrap()[0], 999.0);
    }

    #[test]
    fn join_rejects_float_keys() {
        let result = runs().left_join(&runs(), &["watts"]);
        assert!(matches!(result, Err(FrameError::TypeMismatch { .. })));
        // Keys absent from one side are reported as missing columns.
        let missing = runs().left_join(&yearly(), &["watts"]);
        assert!(matches!(missing, Err(FrameError::NoSuchColumn(_))));
    }

    #[test]
    fn join_first_match_wins_on_duplicates() {
        let right = Frame::from_columns([
            ("year", Column::from(vec![2007i64, 2007])),
            ("v", Column::from(vec![1.0, 2.0])),
        ])
        .unwrap();
        let joined = runs().left_join(&right, &["year"]).unwrap();
        assert_eq!(joined.f64s("v").unwrap()[0], 1.0);
    }

    #[test]
    fn value_counts_in_first_appearance_order() {
        let f = Frame::from_columns([(
            "vendor",
            Column::from(vec!["Intel", "AMD", "Intel", "Intel"]),
        )])
        .unwrap();
        let counts = f.value_counts("vendor").unwrap();
        assert_eq!(counts.len(), 2);
        assert_eq!(counts[0], (KeyValue::Str("Intel".into()), 3));
        assert_eq!(counts[1], (KeyValue::Str("AMD".into()), 1));
        assert!(f.value_counts("missing").is_err());
    }

    #[test]
    fn describe_covers_numeric_columns_only() {
        let f = Frame::from_columns([
            ("year", Column::from(vec![2007i64, 2023])),
            ("watts", Column::from(vec![120.0, 700.0])),
            ("vendor", Column::from(vec!["Intel", "AMD"])),
        ])
        .unwrap();
        let d = f.describe();
        assert_eq!(d.n_rows(), 2, "year and watts only");
        let cols = d.strs("column").unwrap();
        assert_eq!(cols, &["year".to_string(), "watts".to_string()]);
        let means = d.f64s("mean").unwrap();
        assert_eq!(means[0], 2015.0);
        assert_eq!(means[1], 410.0);
        assert_eq!(d.f64s("min").unwrap()[1], 120.0);
        assert_eq!(d.f64s("max").unwrap()[1], 700.0);
    }
}
