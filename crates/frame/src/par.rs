//! Data-parallel helpers, delegating to the persistent [`tinypool`] pool.
//!
//! Earlier revisions spawned a fresh set of scoped threads plus an mpsc
//! channel on every call (and round-tripped results through a
//! `Vec<Option<U>>`), so group-by aggregation paid thread-spawn latency per
//! invocation. The work now runs on the process-wide work-stealing pool in
//! `tinypool`; this module keeps the original public surface
//! ([`parallel_map`], [`parallel_chunks`]) as thin re-exports so existing
//! callers compile unchanged.

use std::ops::Range;

/// Order-preserving parallel map over a slice.
///
/// Semantically identical to `items.iter().map(f).collect()`; work is
/// distributed chunk-by-chunk on the shared pool so uneven per-item cost
/// (e.g. groups of very different size) still balances. Inputs shorter than
/// `tinypool::PARALLEL_THRESHOLD` run inline.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    tinypool::parallel_map(items, f)
}

/// Parallel for-each over index ranges: calls `f(range)` for disjoint
/// chunks covering `0..n`, returning the ranges used. The chunk layout
/// depends only on `n`, never on the thread count.
pub fn parallel_chunks<F>(n: usize, f: F) -> Vec<Range<usize>>
where
    F: Fn(Range<usize>) + Sync,
{
    tinypool::run_chunks(n, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn small_input_sequential_path() {
        let items: Vec<u32> = (0..10).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..10).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn large_input_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = parallel_map(&items, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different cost still produce correct results.
        let items: Vec<u64> = (0..500).collect();
        let out = parallel_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 97) * 1000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn parallel_chunks_cover_everything() {
        let touched = AtomicU64::new(0);
        let ranges = parallel_chunks(1000, |range| {
            touched.fetch_add(range.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(touched.load(Ordering::Relaxed), 1000);
        // Ranges are disjoint and ordered.
        let mut expected_start = 0;
        for r in &ranges {
            assert_eq!(r.start, expected_start);
            expected_start = r.end;
        }
        assert_eq!(expected_start, 1000);
    }

    #[test]
    fn parallel_chunks_empty() {
        assert!(parallel_chunks(0, |_| {}).is_empty());
    }

    #[test]
    fn chunk_layout_is_thread_count_independent() {
        // The same n must produce the same ranges under any installed pool.
        let baseline = parallel_chunks(5000, |_| {});
        for threads in [1, 2, 8] {
            let pool = tinypool::Pool::new(threads);
            let ranges = pool.install(|| parallel_chunks(5000, |_| {}));
            assert_eq!(ranges, baseline);
        }
    }
}
