//! Data-parallel helpers built on crossbeam scoped threads.
//!
//! The HPC guides recommend rayon-style parallel iteration; rayon itself is
//! not on the approved dependency list, so this module provides the small
//! subset the workspace needs: an order-preserving parallel map with
//! chunk-granularity work splitting. Falls back to sequential execution for
//! small inputs where thread spawn overhead would dominate.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Inputs below this size are processed sequentially.
const PARALLEL_THRESHOLD: usize = 64;

/// Number of worker threads to use.
fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(16)
}

/// Order-preserving parallel map over a slice.
///
/// Semantically identical to `items.iter().map(f).collect()`; work is
/// distributed dynamically chunk-by-chunk so uneven per-item cost (e.g.
/// groups of very different size) still balances.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    if n < PARALLEL_THRESHOLD || worker_count() == 1 {
        return items.iter().map(f).collect();
    }

    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = (n / (worker_count() * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let f = &f;

    // Hand each worker disjoint &mut chunks through a channel of raw slots:
    // we avoid unsafe by letting workers produce (index, value) pairs over a
    // channel instead of writing into the shared Vec.
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Vec<U>)>();
    crossbeam::scope(|scope| {
        for _ in 0..worker_count() {
            let tx = tx.clone();
            let cursor = &cursor;
            scope.spawn(move |_| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let mapped: Vec<U> = items[start..end].iter().map(f).collect();
                // The receiver outlives all senders within the scope.
                let _ = tx.send((start, mapped));
            });
        }
        drop(tx);
        for (start, mapped) in rx.iter() {
            for (offset, value) in mapped.into_iter().enumerate() {
                out[start + offset] = Some(value);
            }
        }
    })
    .expect("worker panicked");

    out.into_iter()
        .map(|slot| slot.expect("every index produced"))
        .collect()
}

/// Parallel for-each over index ranges: calls `f(start, end)` for disjoint
/// chunks covering `0..n`. Used for bulk generation work where the callee
/// writes to its own output.
pub fn parallel_chunks<F>(n: usize, f: F) -> Vec<std::ops::Range<usize>>
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count();
    let chunk = n.div_ceil(workers).max(1);
    let ranges: Vec<std::ops::Range<usize>> = (0..n)
        .step_by(chunk)
        .map(|s| s..(s + chunk).min(n))
        .collect();
    let f = &f;
    crossbeam::scope(|scope| {
        for range in &ranges {
            let range = range.clone();
            scope.spawn(move |_| f(range));
        }
    })
    .expect("worker panicked");
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn small_input_sequential_path() {
        let items: Vec<u32> = (0..10).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..10).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn large_input_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = parallel_map(&items, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different cost still produce correct results.
        let items: Vec<u64> = (0..500).collect();
        let out = parallel_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 97) * 1000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn parallel_chunks_cover_everything() {
        let touched = AtomicU64::new(0);
        let ranges = parallel_chunks(1000, |range| {
            touched.fetch_add(range.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(touched.load(Ordering::Relaxed), 1000);
        // Ranges are disjoint and ordered.
        let mut expected_start = 0;
        for r in &ranges {
            assert_eq!(r.start, expected_start);
            expected_start = r.end;
        }
        assert_eq!(expected_start, 1000);
    }

    #[test]
    fn parallel_chunks_empty() {
        assert!(parallel_chunks(0, |_| {}).is_empty());
    }
}
