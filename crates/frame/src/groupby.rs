//! Group-by and aggregation.
//!
//! The figures are all "group runs by (year, vendor) and aggregate"
//! operations. Groups are formed over discrete key columns (int/str/bool);
//! aggregations run in parallel across groups on the shared `tinypool`
//! work-stealing pool when the work is large enough to pay for it.

use std::collections::HashMap;

use crate::column::{Column, KeyValue};
use crate::error::{FrameError, Result};
use crate::frame::Frame;
use crate::par::parallel_map;

/// An aggregation operator over a float (or int-promoted) column.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Agg {
    /// Number of rows in the group (ignores the column's values).
    Count,
    /// Sum of finite values.
    Sum,
    /// Mean of finite values.
    Mean,
    /// Sample standard deviation of finite values.
    Std,
    /// Minimum of finite values.
    Min,
    /// Maximum of finite values.
    Max,
    /// Median of finite values.
    Median,
    /// Type-7 quantile of finite values.
    Quantile(f64),
}

impl Agg {
    /// Column-name suffix for the output frame.
    pub fn suffix(self) -> String {
        match self {
            Agg::Count => "count".into(),
            Agg::Sum => "sum".into(),
            Agg::Mean => "mean".into(),
            Agg::Std => "std".into(),
            Agg::Min => "min".into(),
            Agg::Max => "max".into(),
            Agg::Median => "median".into(),
            Agg::Quantile(q) => format!("q{:02}", (q * 100.0).round() as u32),
        }
    }

    /// Apply to a group's values.
    pub fn apply(self, values: &[f64]) -> f64 {
        let finite: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        match self {
            Agg::Count => values.len() as f64,
            Agg::Sum => finite.iter().sum(),
            Agg::Mean => tinystats::mean(&finite).unwrap_or(f64::NAN),
            Agg::Std => tinystats::std_dev(&finite).unwrap_or(f64::NAN),
            Agg::Min => finite.iter().copied().fold(f64::NAN, f64::min),
            Agg::Max => finite.iter().copied().fold(f64::NAN, f64::max),
            Agg::Median => tinystats::median(&finite).unwrap_or(f64::NAN),
            Agg::Quantile(q) => tinystats::quantile(&finite, q).unwrap_or(f64::NAN),
        }
    }
}

/// The result of [`Frame::group_by`]: group keys plus member row indices,
/// ordered by key.
pub struct GroupBy<'a> {
    frame: &'a Frame,
    key_names: Vec<String>,
    groups: Vec<(Vec<KeyValue>, Vec<usize>)>,
}

impl Frame {
    /// Group rows by one or more discrete columns (i64/str/bool/sym).
    ///
    /// Sym keys hash and compare their 4-byte interned tokens while
    /// grouping; only the final key-order sort resolves the strings.
    ///
    /// Float key columns are rejected with a type error.
    pub fn group_by(&self, keys: &[&str]) -> Result<GroupBy<'_>> {
        let mut key_cols: Vec<&Column> = Vec::with_capacity(keys.len());
        for &k in keys {
            let col = self.column(k)?;
            if col.as_f64().is_some() {
                return Err(FrameError::TypeMismatch {
                    column: k.to_string(),
                    expected: "discrete (i64/str/bool)",
                    got: "f64",
                });
            }
            key_cols.push(col);
        }
        let mut map: HashMap<Vec<KeyValue>, Vec<usize>> = HashMap::new();
        for row in 0..self.n_rows() {
            let key: Vec<KeyValue> = key_cols
                .iter()
                .map(|c| c.key(row).expect("discrete column in range"))
                .collect();
            map.entry(key).or_default().push(row);
        }
        let mut groups: Vec<(Vec<KeyValue>, Vec<usize>)> = map.into_iter().collect();
        groups.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(GroupBy {
            frame: self,
            key_names: keys.iter().map(|s| s.to_string()).collect(),
            groups,
        })
    }
}

impl<'a> GroupBy<'a> {
    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Iterate `(key, row-indices)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[KeyValue], &[usize])> {
        self.groups.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Aggregate: for each `(column, op)` pair produce an output column named
    /// `column_op`. Key columns come first in the result. Groups are
    /// processed in parallel when there are many of them.
    pub fn agg(&self, specs: &[(&str, Agg)]) -> Result<Frame> {
        // Pre-extract the numeric data for each aggregated column once.
        let mut numeric: Vec<Vec<f64>> = Vec::with_capacity(specs.len());
        for (name, _) in specs {
            numeric.push(self.frame.numeric(name)?);
        }
        let numeric = &numeric;
        let specs_owned: Vec<(String, Agg)> = specs
            .iter()
            .map(|(n, a)| (n.to_string(), *a))
            .collect();

        // One task per group: compute every aggregate for that group.
        let results: Vec<Vec<f64>> = parallel_map(&self.groups, |(_, rows)| {
            specs_owned
                .iter()
                .enumerate()
                .map(|(i, (_, agg))| {
                    let values: Vec<f64> = rows.iter().map(|&r| numeric[i][r]).collect();
                    agg.apply(&values)
                })
                .collect()
        });

        let mut out = Frame::new();
        // Key columns.
        for (ki, key_name) in self.key_names.iter().enumerate() {
            let cells: Vec<KeyValue> = self.groups.iter().map(|(k, _)| k[ki].clone()).collect();
            let col = rebuild_key_column(&cells);
            out.add_column(key_name.clone(), col)?;
        }
        // Aggregate columns.
        for (si, (name, agg)) in specs_owned.iter().enumerate() {
            let data: Vec<f64> = results.iter().map(|r| r[si]).collect();
            out.add_column(format!("{name}_{}", agg.suffix()), Column::F64(data))?;
        }
        Ok(out)
    }

    /// Apply an arbitrary reducer to each group's sub-frame, returning
    /// `(key, value)` pairs in key order.
    pub fn map_groups<T, F>(&self, f: F) -> Vec<(Vec<KeyValue>, T)>
    where
        F: Fn(&Frame) -> T + Sync,
        T: Send,
    {
        let frame = self.frame;
        let out: Vec<T> = parallel_map(&self.groups, |(_, rows)| f(&frame.take(rows)));
        self.groups
            .iter()
            .map(|(k, _)| k.clone())
            .zip(out)
            .collect()
    }
}

/// Reassemble a homogeneous key column from group-key cells; shared with
/// the segmented store's streaming aggregation so both paths emit
/// identical key columns.
pub(crate) fn rebuild_key_column(cells: &[KeyValue]) -> Column {
    match cells.first() {
        Some(KeyValue::I64(_)) => Column::I64(
            cells
                .iter()
                .map(|k| match k {
                    KeyValue::I64(x) => *x,
                    _ => unreachable!("homogeneous key column"),
                })
                .collect(),
        ),
        Some(KeyValue::Str(_)) => Column::Str(
            cells
                .iter()
                .map(|k| match k {
                    KeyValue::Str(s) => s.clone(),
                    _ => unreachable!("homogeneous key column"),
                })
                .collect(),
        ),
        Some(KeyValue::Bool(_)) => Column::Bool(
            cells
                .iter()
                .map(|k| match k {
                    KeyValue::Bool(b) => *b,
                    _ => unreachable!("homogeneous key column"),
                })
                .collect(),
        ),
        Some(KeyValue::Sym(_)) => Column::Sym(
            cells
                .iter()
                .map(|k| match k {
                    KeyValue::Sym(s) => *s,
                    _ => unreachable!("homogeneous key column"),
                })
                .collect(),
        ),
        None => Column::I64(Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::from_columns([
            (
                "year",
                Column::from(vec![2007i64, 2007, 2008, 2008, 2008]),
            ),
            (
                "vendor",
                Column::from(vec!["Intel", "AMD", "Intel", "Intel", "AMD"]),
            ),
            (
                "watts",
                Column::from(vec![100.0, 110.0, 200.0, 220.0, f64::NAN]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn group_count_and_order() {
        let f = sample();
        let g = f.group_by(&["year"]).unwrap();
        assert_eq!(g.len(), 2);
        let keys: Vec<String> = g.iter().map(|(k, _)| k[0].to_string()).collect();
        assert_eq!(keys, vec!["2007", "2008"]);
    }

    #[test]
    fn multi_key_groups() {
        let f = sample();
        let g = f.group_by(&["year", "vendor"]).unwrap();
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn float_key_rejected() {
        let f = sample();
        assert!(matches!(
            f.group_by(&["watts"]),
            Err(FrameError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn aggregate_means() {
        let f = sample();
        let out = f
            .group_by(&["year"])
            .unwrap()
            .agg(&[("watts", Agg::Mean), ("watts", Agg::Count)])
            .unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.i64s("year").unwrap(), &[2007, 2008]);
        let means = out.f64s("watts_mean").unwrap();
        assert!((means[0] - 105.0).abs() < 1e-12);
        // NaN is excluded from the mean but counted as a row.
        assert!((means[1] - 210.0).abs() < 1e-12);
        assert_eq!(out.f64s("watts_count").unwrap(), &[2.0, 3.0]);
    }

    #[test]
    fn aggregate_min_max_median_std() {
        let f = sample();
        let out = f
            .group_by(&["year"])
            .unwrap()
            .agg(&[
                ("watts", Agg::Min),
                ("watts", Agg::Max),
                ("watts", Agg::Median),
                ("watts", Agg::Std),
                ("watts", Agg::Sum),
            ])
            .unwrap();
        assert_eq!(out.f64s("watts_min").unwrap()[1], 200.0);
        assert_eq!(out.f64s("watts_max").unwrap()[1], 220.0);
        assert_eq!(out.f64s("watts_median").unwrap()[1], 210.0);
        assert!((out.f64s("watts_std").unwrap()[0] - (50.0f64).sqrt()).abs() < 1e-9);
        assert_eq!(out.f64s("watts_sum").unwrap()[0], 210.0);
    }

    #[test]
    fn quantile_agg_naming() {
        let f = sample();
        let out = f
            .group_by(&["year"])
            .unwrap()
            .agg(&[("watts", Agg::Quantile(0.25))])
            .unwrap();
        assert!(out.column("watts_q25").is_ok());
    }

    #[test]
    fn string_keys_preserved() {
        let f = sample();
        let out = f
            .group_by(&["vendor"])
            .unwrap()
            .agg(&[("watts", Agg::Count)])
            .unwrap();
        let vendors = out.strs("vendor").unwrap();
        assert_eq!(vendors, &["AMD".to_string(), "Intel".to_string()]);
    }

    #[test]
    fn int_column_aggregates_via_promotion() {
        let f = sample();
        let out = f
            .group_by(&["vendor"])
            .unwrap()
            .agg(&[("year", Agg::Mean)])
            .unwrap();
        assert!(out.f64s("year_mean").unwrap()[0] > 2006.0);
    }

    #[test]
    fn map_groups_custom_reducer() {
        let f = sample();
        let g = f.group_by(&["year"]).unwrap();
        let sizes = g.map_groups(|sub| sub.n_rows());
        assert_eq!(sizes[0].1, 2);
        assert_eq!(sizes[1].1, 3);
    }

    #[test]
    fn sym_keys_group_like_strings() {
        let syms: Vec<spec_intern::Sym> = ["Intel", "AMD", "Intel", "Intel", "AMD"]
            .iter()
            .map(|s| spec_intern::intern(s))
            .collect();
        let f = Frame::from_columns([
            ("vendor", Column::Sym(syms)),
            (
                "watts",
                Column::from(vec![100.0, 110.0, 200.0, 220.0, f64::NAN]),
            ),
        ])
        .unwrap();
        let out = f
            .group_by(&["vendor"])
            .unwrap()
            .agg(&[("watts", Agg::Count)])
            .unwrap();
        // Key order is by resolved string, matching the Str-column behavior.
        let vendors = out.syms("vendor").unwrap();
        let names: Vec<&str> = vendors.iter().map(|s| s.resolve()).collect();
        assert_eq!(names, vec!["AMD", "Intel"]);
        assert_eq!(out.f64s("watts_count").unwrap(), &[2.0, 3.0]);
    }

    #[test]
    fn empty_frame_groups() {
        let f = Frame::from_columns([("k", Column::from(Vec::<i64>::new()))]).unwrap();
        let g = f.group_by(&["k"]).unwrap();
        assert!(g.is_empty());
        let out = g.agg(&[("k", Agg::Count)]).unwrap();
        assert_eq!(out.n_rows(), 0);
    }

    #[test]
    fn all_nan_group_mean_is_nan() {
        let f = Frame::from_columns([
            ("k", Column::from(vec![1i64, 1])),
            ("v", Column::from(vec![f64::NAN, f64::NAN])),
        ])
        .unwrap();
        let out = f.group_by(&["k"]).unwrap().agg(&[("v", Agg::Mean)]).unwrap();
        assert!(out.f64s("v_mean").unwrap()[0].is_nan());
    }
}
