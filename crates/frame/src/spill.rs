//! Out-of-core segment storage.
//!
//! Cold segments of a [`crate::SegFrame`] are written through `spec-vfs`
//! with the same integrity envelope as the artifact cache: a magic +
//! version header, the payload length, and an FNV-1a-128 checksum of the
//! payload, published tmp-then-rename (spill files are transient scratch,
//! so the durability fsyncs of `atomic_write` are skipped — the checksum
//! alone guards integrity). A segment that fails
//! verification on read-back is moved to a `quarantine/` subdirectory
//! with a `.reason` sidecar (mirroring the PR-3 cache machinery) and the
//! load reports `InvalidData` — the caller decides whether that is fatal.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use spec_vfs::Vfs;

use crate::segcodec::fnv128;

/// Magic prefix of a spill file (`SPill SeGment v1`).
const MAGIC: &[u8; 8] = b"SPSEG1\0\0";
/// Header: magic + u64 payload length + u128 FNV-1a checksum.
const HEADER_LEN: usize = 8 + 8 + 16;
/// Quarantine subdirectory under the spill root, matching the cache's.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Where evicted segments live. Object-safe so tests can substitute an
/// in-memory store.
pub trait SegmentStore: Send + Sync + std::fmt::Debug {
    /// Persist a segment payload under `id` (overwrites).
    fn store(&self, id: u64, payload: &[u8]) -> io::Result<()>;

    /// Load and verify the payload stored under `id`.
    fn load(&self, id: u64) -> io::Result<Vec<u8>>;

    /// Best-effort removal of the segment stored under `id`.
    fn remove(&self, id: u64);
}

/// Spill store over a [`Vfs`] backend: one checksummed file per segment.
#[derive(Debug)]
pub struct VfsSegmentStore {
    vfs: Arc<dyn Vfs>,
    root: PathBuf,
}

impl VfsSegmentStore {
    /// Open (creating) a spill directory.
    pub fn new(vfs: Arc<dyn Vfs>, root: impl Into<PathBuf>) -> io::Result<VfsSegmentStore> {
        let root = root.into();
        vfs.create_dir_all(&root)?;
        Ok(VfsSegmentStore { vfs, root })
    }

    /// Open a spill directory on the process-default backend.
    pub fn open_default(root: impl Into<PathBuf>) -> io::Result<VfsSegmentStore> {
        VfsSegmentStore::new(spec_vfs::default_vfs(), root)
    }

    /// The directory segments are written into.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn seg_path(&self, id: u64) -> PathBuf {
        self.root.join(format!("seg-{id:08x}.bin"))
    }

    /// Move a corrupt file into `quarantine/` with a `.reason` sidecar.
    /// Best-effort: quarantine failures never mask the original error.
    fn quarantine(&self, path: &Path, reason: &str) {
        let Some(name) = path.file_name() else { return };
        let qdir = self.root.join(QUARANTINE_DIR);
        if self.vfs.create_dir_all(&qdir).is_err() {
            let _ = self.vfs.remove_file(path);
            return;
        }
        let dest = qdir.join(name);
        if self.vfs.rename(path, &dest).is_err() {
            let _ = self.vfs.remove_file(path);
            return;
        }
        let mut sidecar = dest.into_os_string();
        sidecar.push(".reason");
        let _ = self
            .vfs
            .write(Path::new(&sidecar), reason.as_bytes());
    }
}

impl SegmentStore for VfsSegmentStore {
    fn store(&self, id: u64, payload: &[u8]) -> io::Result<()> {
        let mut file = Vec::with_capacity(HEADER_LEN + payload.len());
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&fnv128(payload).to_le_bytes());
        file.extend_from_slice(payload);
        // Spill segments are process-transient scratch: if we crash they are
        // useless, so `atomic_write`'s fsync + read-back verification would
        // only add latency. Tmp-then-rename keeps readers from ever seeing a
        // torn file; the FNV-1a-128 checksum in the header (verified on
        // `load`, with quarantine on mismatch) covers integrity.
        let path = self.seg_path(id);
        let mut tmp = path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        self.vfs.write(&tmp, &file)?;
        self.vfs.rename(&tmp, &path).inspect_err(|_| {
            let _ = self.vfs.remove_file(&tmp);
        })
    }

    fn load(&self, id: u64) -> io::Result<Vec<u8>> {
        let path = self.seg_path(id);
        let bytes = self.vfs.read_verified(&path)?;
        let corrupt = |reason: String| -> io::Error {
            self.quarantine(&path, &reason);
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("spilled segment {}: {reason}", path.display()),
            )
        };
        if bytes.len() < HEADER_LEN {
            return Err(corrupt(format!(
                "file is {} bytes, shorter than the {HEADER_LEN}-byte header",
                bytes.len()
            )));
        }
        if &bytes[..8] != MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let mut len8 = [0u8; 8];
        len8.copy_from_slice(&bytes[8..16]);
        let payload_len = u64::from_le_bytes(len8) as usize;
        let mut sum16 = [0u8; 16];
        sum16.copy_from_slice(&bytes[16..HEADER_LEN]);
        let expected = u128::from_le_bytes(sum16);
        let payload = &bytes[HEADER_LEN..];
        if payload.len() != payload_len {
            return Err(corrupt(format!(
                "payload is {} bytes, header claims {payload_len}",
                payload.len()
            )));
        }
        if fnv128(payload) != expected {
            return Err(corrupt("checksum mismatch".into()));
        }
        Ok(payload.to_vec())
    }

    fn remove(&self, id: u64) {
        let _ = self.vfs.remove_file(&self.seg_path(id));
    }
}

/// In-memory store for tests: a mutex-guarded map, no disk involved.
#[derive(Debug, Default)]
pub struct MemSegmentStore {
    map: std::sync::Mutex<std::collections::HashMap<u64, Vec<u8>>>,
}

impl MemSegmentStore {
    /// Fresh empty store.
    pub fn new() -> MemSegmentStore {
        MemSegmentStore::default()
    }

    /// Number of segments currently stored.
    pub fn len(&self) -> usize {
        self.map.lock().expect("store lock").len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SegmentStore for MemSegmentStore {
    fn store(&self, id: u64, payload: &[u8]) -> io::Result<()> {
        self.map
            .lock()
            .expect("store lock")
            .insert(id, payload.to_vec());
        Ok(())
    }

    fn load(&self, id: u64) -> io::Result<Vec<u8>> {
        self.map
            .lock()
            .expect("store lock")
            .get(&id)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("segment {id}")))
    }

    fn remove(&self, id: u64) {
        self.map.lock().expect("store lock").remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_vfs::RealVfs;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tinyframe_spill_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn store(name: &str) -> (VfsSegmentStore, PathBuf) {
        let dir = tmp_dir(name);
        let s = VfsSegmentStore::new(Arc::new(RealVfs), &dir).unwrap();
        (s, dir)
    }

    #[test]
    fn store_load_roundtrip() {
        let (s, dir) = store("roundtrip");
        s.store(7, b"payload bytes").unwrap();
        assert_eq!(s.load(7).unwrap(), b"payload bytes");
        s.remove(7);
        assert!(s.load(7).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_quarantines_with_reason() {
        let (s, dir) = store("corrupt");
        s.store(1, b"important").unwrap();
        // Flip a payload byte on disk.
        let path = s.seg_path(1);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let err = s.load(1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(!path.exists(), "corrupt file must leave the store");
        let q = dir.join(QUARANTINE_DIR).join("seg-00000001.bin");
        assert!(q.exists(), "quarantined copy kept for forensics");
        let reason =
            std::fs::read_to_string(q.with_file_name("seg-00000001.bin.reason")).unwrap();
        assert!(reason.contains("checksum"), "{reason}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_quarantines() {
        let (s, dir) = store("truncated");
        s.store(2, b"0123456789").unwrap();
        let path = s.seg_path(2);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..HEADER_LEN - 3]).unwrap();
        let err = s.load(2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(dir.join(QUARANTINE_DIR).join("seg-00000002.bin").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_segment_is_not_found() {
        let (s, dir) = store("missing");
        assert_eq!(s.load(42).unwrap_err().kind(), io::ErrorKind::NotFound);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_store_roundtrip() {
        let m = MemSegmentStore::new();
        assert!(m.is_empty());
        m.store(1, b"x").unwrap();
        assert_eq!(m.load(1).unwrap(), b"x");
        assert_eq!(m.len(), 1);
        m.remove(1);
        assert!(m.load(1).is_err());
    }
}
