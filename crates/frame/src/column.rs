//! Typed columns.
//!
//! Five physical types cover the analysis: `f64` (measurements; `NaN` is the
//! missing value), `i64` (counts, years), `str` (names, labels), `bool`
//! (flags) and `sym` (dictionary-encoded categoricals: 4-byte interned
//! [`Sym`] tokens for the vendor/OS-style columns whose values repeat, so
//! group-bys compare tokens instead of hashing strings). Columns are plain
//! `Vec`s — the dataset is hundreds to thousands of rows, so simplicity
//! beats compression.

use std::fmt;

use spec_intern::Sym;

/// The data type of a column.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DType {
    /// 64-bit float; `NaN` encodes missing.
    F64,
    /// 64-bit signed integer.
    I64,
    /// Owned UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Interned categorical string (4-byte token).
    Sym,
}

impl DType {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DType::F64 => "f64",
            DType::I64 => "i64",
            DType::Str => "str",
            DType::Bool => "bool",
            DType::Sym => "sym",
        }
    }
}

/// A dynamically typed cell value, used at API boundaries (group keys,
/// display, CSV).
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// Float cell.
    F64(f64),
    /// Integer cell.
    I64(i64),
    /// String cell.
    Str(String),
    /// Boolean cell.
    Bool(bool),
    /// Interned categorical cell.
    Sym(Sym),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::F64(x) => {
                if x.is_nan() {
                    f.write_str("")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::I64(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Sym(s) => f.write_str(s.resolve()),
        }
    }
}

/// A group-by key cell: like [`Value`] but hashable/ordered, so floats are
/// excluded (group keys must be discrete).
///
/// `Sym` keys hash and compare for equality on the 4-byte token (sound:
/// the interner is injective), but *order* by the resolved string — so a
/// dictionary-encoded column groups fast yet sorts exactly like the owned
/// `Str` column it replaced.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum KeyValue {
    /// Integer key.
    I64(i64),
    /// String key.
    Str(String),
    /// Boolean key.
    Bool(bool),
    /// Interned categorical key.
    Sym(Sym),
}

impl KeyValue {
    /// Variant rank for cross-type comparisons (declaration order, matching
    /// the previously derived `Ord`).
    fn rank(&self) -> u8 {
        match self {
            KeyValue::I64(_) => 0,
            KeyValue::Str(_) => 1,
            KeyValue::Bool(_) => 2,
            KeyValue::Sym(_) => 3,
        }
    }
}

impl Ord for KeyValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self, other) {
            (KeyValue::I64(a), KeyValue::I64(b)) => a.cmp(b),
            (KeyValue::Str(a), KeyValue::Str(b)) => a.cmp(b),
            (KeyValue::Bool(a), KeyValue::Bool(b)) => a.cmp(b),
            // Token order is allocation order, not string order: resolve.
            (KeyValue::Sym(a), KeyValue::Sym(b)) => a.resolve().cmp(b.resolve()),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl PartialOrd for KeyValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for KeyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyValue::I64(x) => write!(f, "{x}"),
            KeyValue::Str(s) => f.write_str(s),
            KeyValue::Bool(b) => write!(f, "{b}"),
            KeyValue::Sym(s) => f.write_str(s.resolve()),
        }
    }
}

/// A typed column of values.
#[derive(Clone, PartialEq, Debug)]
pub enum Column {
    /// Float data.
    F64(Vec<f64>),
    /// Integer data.
    I64(Vec<i64>),
    /// String data.
    Str(Vec<String>),
    /// Boolean data.
    Bool(Vec<bool>),
    /// Dictionary-encoded categorical data (interned tokens).
    Sym(Vec<Sym>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::F64(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Sym(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn dtype(&self) -> DType {
        match self {
            Column::F64(_) => DType::F64,
            Column::I64(_) => DType::I64,
            Column::Str(_) => DType::Str,
            Column::Bool(_) => DType::Bool,
            Column::Sym(_) => DType::Sym,
        }
    }

    /// Dynamic cell access; `None` when out of range.
    pub fn get(&self, i: usize) -> Option<Value> {
        match self {
            Column::F64(v) => v.get(i).map(|&x| Value::F64(x)),
            Column::I64(v) => v.get(i).map(|&x| Value::I64(x)),
            Column::Str(v) => v.get(i).map(|s| Value::Str(s.clone())),
            Column::Bool(v) => v.get(i).map(|&x| Value::Bool(x)),
            Column::Sym(v) => v.get(i).map(|&s| Value::Sym(s)),
        }
    }

    /// Group-key cell access; floats are rejected (`None`).
    pub fn key(&self, i: usize) -> Option<KeyValue> {
        match self {
            Column::F64(_) => None,
            Column::I64(v) => v.get(i).map(|&x| KeyValue::I64(x)),
            Column::Str(v) => v.get(i).map(|s| KeyValue::Str(s.clone())),
            Column::Bool(v) => v.get(i).map(|&x| KeyValue::Bool(x)),
            Column::Sym(v) => v.get(i).map(|&s| KeyValue::Sym(s)),
        }
    }

    /// Rows selected by `mask` (`mask.len()` must equal `self.len()`).
    pub fn filter(&self, mask: &[bool]) -> Column {
        debug_assert_eq!(mask.len(), self.len());
        fn pick<T: Clone>(v: &[T], mask: &[bool]) -> Vec<T> {
            v.iter()
                .zip(mask)
                .filter(|(_, &keep)| keep)
                .map(|(x, _)| x.clone())
                .collect()
        }
        match self {
            Column::F64(v) => Column::F64(pick(v, mask)),
            Column::I64(v) => Column::I64(pick(v, mask)),
            Column::Str(v) => Column::Str(pick(v, mask)),
            Column::Bool(v) => Column::Bool(pick(v, mask)),
            Column::Sym(v) => Column::Sym(pick(v, mask)),
        }
    }

    /// Rows in the order given by `indices` (each index must be in range).
    pub fn take(&self, indices: &[usize]) -> Column {
        fn pick<T: Clone>(v: &[T], idx: &[usize]) -> Vec<T> {
            idx.iter().map(|&i| v[i].clone()).collect()
        }
        match self {
            Column::F64(v) => Column::F64(pick(v, indices)),
            Column::I64(v) => Column::I64(pick(v, indices)),
            Column::Str(v) => Column::Str(pick(v, indices)),
            Column::Bool(v) => Column::Bool(pick(v, indices)),
            Column::Sym(v) => Column::Sym(pick(v, indices)),
        }
    }

    /// View as `&[f64]`, if that is the physical type.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Column::F64(v) => Some(v),
            _ => None,
        }
    }

    /// View as `&[i64]`, if that is the physical type.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            Column::I64(v) => Some(v),
            _ => None,
        }
    }

    /// View as `&[String]`, if that is the physical type.
    pub fn as_str(&self) -> Option<&[String]> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// View as `&[bool]`, if that is the physical type.
    pub fn as_bool(&self) -> Option<&[bool]> {
        match self {
            Column::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// View as `&[Sym]`, if that is the physical type.
    pub fn as_sym(&self) -> Option<&[Sym]> {
        match self {
            Column::Sym(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view: `f64` as-is, `i64` lossily converted; `None` otherwise.
    pub fn to_f64_vec(&self) -> Option<Vec<f64>> {
        match self {
            Column::F64(v) => Some(v.clone()),
            Column::I64(v) => Some(v.iter().map(|&x| x as f64).collect()),
            _ => None,
        }
    }

    /// Contiguous row range `[start, end)` as a new column.
    pub fn slice(&self, start: usize, end: usize) -> Column {
        match self {
            Column::F64(v) => Column::F64(v[start..end].to_vec()),
            Column::I64(v) => Column::I64(v[start..end].to_vec()),
            Column::Str(v) => Column::Str(v[start..end].to_vec()),
            Column::Bool(v) => Column::Bool(v[start..end].to_vec()),
            Column::Sym(v) => Column::Sym(v[start..end].to_vec()),
        }
    }

    /// Approximate heap bytes this column's data occupies — the segmented
    /// store's resident-set accounting. String cells charge their length
    /// plus the `String` header; everything else is element size × rows.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Column::F64(v) => v.len() * 8,
            Column::I64(v) => v.len() * 8,
            Column::Bool(v) => v.len(),
            Column::Sym(v) => v.len() * std::mem::size_of::<Sym>(),
            Column::Str(v) => v
                .iter()
                .map(|s| s.len() + std::mem::size_of::<String>())
                .sum(),
        }
    }

    /// Comparison of two cells within the same column, NaN last.
    pub fn cmp_rows(&self, a: usize, b: usize) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match self {
            Column::F64(v) => match (v[a].is_nan(), v[b].is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => v[a].partial_cmp(&v[b]).expect("non-NaN"),
            },
            Column::I64(v) => v[a].cmp(&v[b]),
            Column::Str(v) => v[a].cmp(&v[b]),
            Column::Bool(v) => v[a].cmp(&v[b]),
            // Sort order follows the resolved strings, exactly like `Str`.
            Column::Sym(v) => v[a].resolve().cmp(v[b].resolve()),
        }
    }
}

impl From<Vec<f64>> for Column {
    fn from(v: Vec<f64>) -> Self {
        Column::F64(v)
    }
}

impl From<Vec<i64>> for Column {
    fn from(v: Vec<i64>) -> Self {
        Column::I64(v)
    }
}

impl From<Vec<String>> for Column {
    fn from(v: Vec<String>) -> Self {
        Column::Str(v)
    }
}

impl From<Vec<&str>> for Column {
    fn from(v: Vec<&str>) -> Self {
        Column::Str(v.into_iter().map(str::to_owned).collect())
    }
}

impl From<Vec<bool>> for Column {
    fn from(v: Vec<bool>) -> Self {
        Column::Bool(v)
    }
}

impl From<Vec<Sym>> for Column {
    fn from(v: Vec<Sym>) -> Self {
        Column::Sym(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_and_len() {
        let c: Column = vec![1.0, 2.0].into();
        assert_eq!(c.dtype(), DType::F64);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(DType::Str.name(), "str");
    }

    #[test]
    fn dynamic_access() {
        let c: Column = vec!["a", "b"].into();
        assert_eq!(c.get(0), Some(Value::Str("a".into())));
        assert_eq!(c.get(5), None);
        assert_eq!(c.key(1), Some(KeyValue::Str("b".into())));
    }

    #[test]
    fn float_columns_have_no_key() {
        let c: Column = vec![1.0].into();
        assert_eq!(c.key(0), None);
    }

    #[test]
    fn filter_and_take() {
        let c: Column = vec![10i64, 20, 30, 40].into();
        assert_eq!(
            c.filter(&[true, false, true, false]),
            Column::I64(vec![10, 30])
        );
        assert_eq!(c.take(&[3, 0, 0]), Column::I64(vec![40, 10, 10]));
    }

    #[test]
    fn typed_views() {
        let c: Column = vec![true, false].into();
        assert_eq!(c.as_bool(), Some(&[true, false][..]));
        assert_eq!(c.as_f64(), None);
    }

    #[test]
    fn numeric_promotion() {
        let c: Column = vec![1i64, 2, 3].into();
        assert_eq!(c.to_f64_vec(), Some(vec![1.0, 2.0, 3.0]));
        let s: Column = vec!["x"].into();
        assert_eq!(s.to_f64_vec(), None);
    }

    #[test]
    fn nan_sorts_last() {
        use std::cmp::Ordering;
        let c: Column = vec![1.0, f64::NAN, 0.5].into();
        assert_eq!(c.cmp_rows(0, 2), Ordering::Greater);
        assert_eq!(c.cmp_rows(0, 1), Ordering::Less);
        assert_eq!(c.cmp_rows(1, 1), Ordering::Equal);
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::F64(1.5).to_string(), "1.5");
        assert_eq!(Value::F64(f64::NAN).to_string(), "");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(KeyValue::I64(7).to_string(), "7");
    }

    #[test]
    fn sym_columns_behave_like_str() {
        let a = spec_intern::intern("AMD");
        let b = spec_intern::intern("Intel");
        let c: Column = vec![a, b, a].into();
        assert_eq!(c.dtype(), DType::Sym);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(1), Some(Value::Sym(b)));
        assert_eq!(c.get(1).map(|v| v.to_string()), Some("Intel".to_string()));
        assert_eq!(c.key(0), Some(KeyValue::Sym(a)));
        assert_eq!(c.as_sym(), Some(&[a, b, a][..]));
        assert_eq!(c.to_f64_vec(), None);
        assert_eq!(
            c.filter(&[true, false, true]),
            Column::Sym(vec![a, a])
        );
        assert_eq!(c.take(&[1, 1]), Column::Sym(vec![b, b]));
    }

    #[test]
    fn sym_keys_order_by_resolved_string() {
        use std::cmp::Ordering;
        // Intern in reverse-alphabetical order so token order disagrees
        // with string order.
        let z = spec_intern::intern("zeta-vendor");
        let a = spec_intern::intern("alpha-vendor");
        assert_eq!(KeyValue::Sym(a).cmp(&KeyValue::Sym(z)), Ordering::Less);
        assert_eq!(KeyValue::Sym(z).cmp(&KeyValue::Sym(a)), Ordering::Greater);
        assert_eq!(KeyValue::Sym(a).cmp(&KeyValue::Sym(a)), Ordering::Equal);
        let col: Column = vec![z, a].into();
        assert_eq!(col.cmp_rows(1, 0), Ordering::Less);
        // Cross-variant comparisons keep the declared rank order.
        assert!(KeyValue::I64(1) < KeyValue::Str("x".into()));
        assert!(KeyValue::Bool(true) < KeyValue::Sym(a));
    }
}
