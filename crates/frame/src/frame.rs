//! The `Frame`: an ordered collection of equally long named columns.

use std::fmt;

use crate::column::{Column, DType, Value};
use crate::error::{FrameError, Result};

/// A small columnar dataframe.
///
/// Rows are implicit (all columns share one length); columns are ordered and
/// uniquely named. Operations return new frames — at dataset scale (≈1000
/// runs × a few dozen features) copying is cheaper than the complexity of
/// views.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Frame {
    names: Vec<String>,
    columns: Vec<Column>,
}

impl Frame {
    /// An empty frame with no columns and no rows.
    pub fn new() -> Frame {
        Frame::default()
    }

    /// Build from `(name, column)` pairs.
    pub fn from_columns<I, S>(cols: I) -> Result<Frame>
    where
        I: IntoIterator<Item = (S, Column)>,
        S: Into<String>,
    {
        let mut frame = Frame::new();
        for (name, col) in cols {
            frame.add_column(name, col)?;
        }
        Ok(frame)
    }

    /// Number of rows (0 for a column-less frame).
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Iterate the columns in order (paired with [`Frame::names`]).
    pub fn columns_iter(&self) -> impl Iterator<Item = &Column> {
        self.columns.iter()
    }

    /// Append a column; must match the current row count (unless this is the
    /// first column) and its name must be fresh.
    pub fn add_column(&mut self, name: impl Into<String>, col: Column) -> Result<()> {
        let name = name.into();
        if self.names.contains(&name) {
            return Err(FrameError::DuplicateColumn(name));
        }
        if !self.columns.is_empty() && col.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch {
                column: name,
                got: col.len(),
                expected: self.n_rows(),
            });
        }
        self.names.push(name);
        self.columns.push(col);
        Ok(())
    }

    /// Builder-style [`Frame::add_column`].
    pub fn with_column(mut self, name: impl Into<String>, col: Column) -> Result<Frame> {
        self.add_column(name, col)?;
        Ok(self)
    }

    /// Replace an existing column (same length required).
    pub fn set_column(&mut self, name: &str, col: Column) -> Result<()> {
        let idx = self.index_of(name)?;
        if col.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch {
                column: name.to_string(),
                got: col.len(),
                expected: self.n_rows(),
            });
        }
        self.columns[idx] = col;
        Ok(())
    }

    fn index_of(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| FrameError::NoSuchColumn(name.to_string()))
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.index_of(name)?])
    }

    /// Borrow a float column's data.
    pub fn f64s(&self, name: &str) -> Result<&[f64]> {
        let col = self.column(name)?;
        col.as_f64().ok_or_else(|| FrameError::TypeMismatch {
            column: name.to_string(),
            expected: "f64",
            got: col.dtype().name(),
        })
    }

    /// Borrow an integer column's data.
    pub fn i64s(&self, name: &str) -> Result<&[i64]> {
        let col = self.column(name)?;
        col.as_i64().ok_or_else(|| FrameError::TypeMismatch {
            column: name.to_string(),
            expected: "i64",
            got: col.dtype().name(),
        })
    }

    /// Borrow a string column's data.
    pub fn strs(&self, name: &str) -> Result<&[String]> {
        let col = self.column(name)?;
        col.as_str().ok_or_else(|| FrameError::TypeMismatch {
            column: name.to_string(),
            expected: "str",
            got: col.dtype().name(),
        })
    }

    /// Borrow an interned-symbol column's data.
    pub fn syms(&self, name: &str) -> Result<&[spec_intern::Sym]> {
        let col = self.column(name)?;
        col.as_sym().ok_or_else(|| FrameError::TypeMismatch {
            column: name.to_string(),
            expected: "sym",
            got: col.dtype().name(),
        })
    }

    /// Borrow a boolean column's data.
    pub fn bools(&self, name: &str) -> Result<&[bool]> {
        let col = self.column(name)?;
        col.as_bool().ok_or_else(|| FrameError::TypeMismatch {
            column: name.to_string(),
            expected: "bool",
            got: col.dtype().name(),
        })
    }

    /// Numeric (f64-promoted) view of a float or integer column.
    pub fn numeric(&self, name: &str) -> Result<Vec<f64>> {
        let col = self.column(name)?;
        col.to_f64_vec().ok_or_else(|| FrameError::TypeMismatch {
            column: name.to_string(),
            expected: "f64 or i64",
            got: col.dtype().name(),
        })
    }

    /// New frame with only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<Frame> {
        let mut out = Frame::new();
        for &name in names {
            out.add_column(name, self.column(name)?.clone())?;
        }
        Ok(out)
    }

    /// New frame with the rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Frame> {
        if mask.len() != self.n_rows() {
            return Err(FrameError::MaskLength {
                got: mask.len(),
                expected: self.n_rows(),
            });
        }
        Ok(Frame {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.filter(mask)).collect(),
        })
    }

    /// Build a boolean mask from a predicate over a float column.
    pub fn mask_f64(&self, name: &str, pred: impl Fn(f64) -> bool) -> Result<Vec<bool>> {
        Ok(self.f64s(name)?.iter().map(|&x| pred(x)).collect())
    }

    /// Build a boolean mask from a predicate over an integer column.
    pub fn mask_i64(&self, name: &str, pred: impl Fn(i64) -> bool) -> Result<Vec<bool>> {
        Ok(self.i64s(name)?.iter().map(|&x| pred(x)).collect())
    }

    /// Build a boolean mask from a predicate over a string column.
    pub fn mask_str(&self, name: &str, pred: impl Fn(&str) -> bool) -> Result<Vec<bool>> {
        Ok(self.strs(name)?.iter().map(|s| pred(s)).collect())
    }

    /// New frame with rows reordered by `indices`.
    pub fn take(&self, indices: &[usize]) -> Frame {
        Frame {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
        }
    }

    /// New frame sorted (stably) by one column; `ascending = false` reverses.
    /// NaNs sort last either way.
    pub fn sort_by(&self, name: &str, ascending: bool) -> Result<Frame> {
        let idx = self.index_of(name)?;
        let col = &self.columns[idx];
        let mut order: Vec<usize> = (0..self.n_rows()).collect();
        order.sort_by(|&a, &b| {
            let ord = col.cmp_rows(a, b);
            if ascending {
                ord
            } else {
                ord.reverse()
            }
        });
        Ok(self.take(&order))
    }

    /// Contiguous row range `[start, end)` as a new frame (cheaper than
    /// [`Frame::take`] with a range: no per-row index chasing).
    pub fn slice(&self, start: usize, end: usize) -> Frame {
        Frame {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.slice(start, end)).collect(),
        }
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> Frame {
        let indices: Vec<usize> = (0..self.n_rows().min(n)).collect();
        self.take(&indices)
    }

    /// Append all rows of another frame with identical schema.
    pub fn vstack(&mut self, other: &Frame) -> Result<()> {
        if self.names != other.names {
            return Err(FrameError::Csv(format!(
                "schema mismatch: {:?} vs {:?}",
                self.names, other.names
            )));
        }
        for (mine, theirs) in self.columns.iter_mut().zip(&other.columns) {
            match (mine, theirs) {
                (Column::F64(a), Column::F64(b)) => a.extend_from_slice(b),
                (Column::I64(a), Column::I64(b)) => a.extend_from_slice(b),
                (Column::Str(a), Column::Str(b)) => a.extend_from_slice(b),
                (Column::Bool(a), Column::Bool(b)) => a.extend_from_slice(b),
                (Column::Sym(a), Column::Sym(b)) => a.extend_from_slice(b),
                (mine, theirs) => {
                    return Err(FrameError::TypeMismatch {
                        column: "vstack".into(),
                        expected: mine.dtype().name(),
                        got: theirs.dtype().name(),
                    })
                }
            }
        }
        Ok(())
    }

    /// One row as dynamic values (column order).
    pub fn row(&self, i: usize) -> Option<Vec<Value>> {
        if i >= self.n_rows() {
            return None;
        }
        Some(
            self.columns
                .iter()
                .map(|c| c.get(i).expect("checked range"))
                .collect(),
        )
    }

    /// Schema as `(name, dtype)` pairs.
    pub fn schema(&self) -> Vec<(&str, DType)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.columns.iter().map(Column::dtype))
            .collect()
    }
}

impl fmt::Display for Frame {
    /// Render a compact table (up to 12 rows) for debugging/examples.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX_ROWS: usize = 12;
        writeln!(f, "Frame [{} rows x {} cols]", self.n_rows(), self.n_cols())?;
        if self.n_cols() == 0 {
            return Ok(());
        }
        writeln!(f, "{}", self.names.join(" | "))?;
        for i in 0..self.n_rows().min(MAX_ROWS) {
            let row = self.row(i).expect("in range");
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        if self.n_rows() > MAX_ROWS {
            writeln!(f, "… {} more rows", self.n_rows() - MAX_ROWS)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::from_columns([
            ("year", Column::from(vec![2007i64, 2008, 2008, 2023])),
            ("vendor", Column::from(vec!["Intel", "Intel", "AMD", "AMD"])),
            ("watts", Column::from(vec![120.0, 150.0, 140.0, 700.0])),
            ("accepted", Column::from(vec![true, true, false, true])),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let f = sample();
        assert_eq!(f.n_rows(), 4);
        assert_eq!(f.n_cols(), 4);
        assert_eq!(f.names()[2], "watts");
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut f = sample();
        let err = f.add_column("year", Column::from(vec![1i64, 2, 3, 4]));
        assert_eq!(err.unwrap_err(), FrameError::DuplicateColumn("year".into()));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut f = sample();
        let err = f.add_column("short", Column::from(vec![1.0]));
        assert!(matches!(err, Err(FrameError::LengthMismatch { .. })));
    }

    #[test]
    fn typed_access_and_mismatch() {
        let f = sample();
        assert_eq!(f.i64s("year").unwrap()[0], 2007);
        assert_eq!(f.strs("vendor").unwrap()[2], "AMD");
        assert!(matches!(
            f.f64s("vendor"),
            Err(FrameError::TypeMismatch { .. })
        ));
        assert!(matches!(f.f64s("nope"), Err(FrameError::NoSuchColumn(_))));
    }

    #[test]
    fn numeric_promotes_ints() {
        let f = sample();
        assert_eq!(f.numeric("year").unwrap()[3], 2023.0);
        assert!(f.numeric("vendor").is_err());
    }

    #[test]
    fn filter_by_mask() {
        let f = sample();
        let mask = f.mask_str("vendor", |v| v == "AMD").unwrap();
        let amd = f.filter(&mask).unwrap();
        assert_eq!(amd.n_rows(), 2);
        assert_eq!(amd.f64s("watts").unwrap(), &[140.0, 700.0]);
    }

    #[test]
    fn filter_wrong_mask_len() {
        let f = sample();
        assert!(matches!(
            f.filter(&[true]),
            Err(FrameError::MaskLength { .. })
        ));
    }

    #[test]
    fn select_projects_and_orders() {
        let f = sample();
        let g = f.select(&["watts", "year"]).unwrap();
        assert_eq!(g.names(), &["watts".to_string(), "year".to_string()]);
        assert_eq!(g.n_rows(), 4);
    }

    #[test]
    fn sort_ascending_descending() {
        let f = sample();
        let asc = f.sort_by("watts", true).unwrap();
        assert_eq!(asc.f64s("watts").unwrap(), &[120.0, 140.0, 150.0, 700.0]);
        let desc = f.sort_by("watts", false).unwrap();
        assert_eq!(desc.f64s("watts").unwrap(), &[700.0, 150.0, 140.0, 120.0]);
        // Sorting carries the other columns along.
        assert_eq!(desc.strs("vendor").unwrap()[0], "AMD");
    }

    #[test]
    fn sort_nan_last_in_both_directions() {
        let f = Frame::from_columns([("x", Column::from(vec![2.0, f64::NAN, 1.0]))]).unwrap();
        let asc = f.sort_by("x", true).unwrap();
        assert!(asc.f64s("x").unwrap()[2].is_nan());
        let desc = f.sort_by("x", false).unwrap();
        assert!(desc.f64s("x").unwrap()[0].is_nan()); // reverse puts NaN first
    }

    #[test]
    fn head_truncates() {
        let f = sample();
        assert_eq!(f.head(2).n_rows(), 2);
        assert_eq!(f.head(99).n_rows(), 4);
    }

    #[test]
    fn vstack_appends() {
        let mut a = sample();
        let b = sample();
        a.vstack(&b).unwrap();
        assert_eq!(a.n_rows(), 8);
    }

    #[test]
    fn vstack_schema_mismatch() {
        let mut a = sample();
        let b = a.select(&["year"]).unwrap();
        assert!(a.vstack(&b).is_err());
    }

    #[test]
    fn row_access() {
        let f = sample();
        let row = f.row(0).unwrap();
        assert_eq!(row[0], Value::I64(2007));
        assert_eq!(row[1], Value::Str("Intel".into()));
        assert!(f.row(100).is_none());
    }

    #[test]
    fn display_contains_header() {
        let text = sample().to_string();
        assert!(text.contains("4 rows"));
        assert!(text.contains("vendor"));
    }

    #[test]
    fn schema_reported() {
        let f = sample();
        let schema = f.schema();
        assert_eq!(schema[0], ("year", DType::I64));
        assert_eq!(schema[3], ("accepted", DType::Bool));
    }

    #[test]
    fn set_column_replaces() {
        let mut f = sample();
        f.set_column("watts", Column::from(vec![1.0, 2.0, 3.0, 4.0]))
            .unwrap();
        assert_eq!(f.f64s("watts").unwrap()[0], 1.0);
        assert!(f.set_column("watts", Column::from(vec![1.0])).is_err());
    }
}
