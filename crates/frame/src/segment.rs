//! The segmented column store.
//!
//! A [`SegFrame`] holds the same logical table as a [`Frame`], but split
//! into a list of row segments (target [`DEFAULT_SEGMENT_ROWS`] rows each;
//! ragged segments are allowed — every operation is boundary-independent).
//! Segments are *sealed* (immutable) once pushed, which buys three things:
//!
//! * parallel ingest shards fill private arenas and the merge is a
//!   segment-list splice ([`SegFrame::splice`]) instead of a `vstack` copy;
//! * cold segments can be evicted to a [`SegmentStore`] and transparently
//!   reloaded — an LRU policy bounds resident bytes, so corpus size no
//!   longer bounds RSS;
//! * aggregation streams over one segment at a time
//!   ([`SegFrame::group_agg`]) without ever materialising the full table.
//!
//! **Byte-identity contract:** every streaming operation visits rows in
//! exactly the global row order of the equivalent monolithic frame and
//! applies the same floating-point operations in the same order, so
//! `group_agg`/`to_csv`/`left_join` output is bit-identical to
//! `Frame::group_by().agg()`/`Frame::to_csv`/`Frame::left_join` (the
//! figure goldens pin this). In particular, per-group aggregation state is
//! carried *sequentially* across segments — partial per-segment summaries
//! are never merged, because Welford merges are associative only up to
//! floating-point rounding.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use tinystats::Summary;

use crate::column::{Column, DType, KeyValue};
use crate::csv::{append_data_rows, append_header_line};
use crate::error::{FrameError, Result};
use crate::frame::Frame;
use crate::groupby::{rebuild_key_column, Agg};
use crate::segcodec::{decode_frame, encode_frame};
use crate::spill::SegmentStore;

/// Target rows per sealed segment (64Ki).
pub const DEFAULT_SEGMENT_ROWS: usize = 64 * 1024;

// Process-wide occupancy gauges (across every live SegFrame), published to
// spec-obs when metrics are enabled. `spill_bytes` is cumulative: total
// encoded bytes ever written to a store.
static SEGMENTS_RESIDENT: AtomicI64 = AtomicI64::new(0);
static SEGMENTS_SPILLED: AtomicI64 = AtomicI64::new(0);
static SPILL_BYTES: AtomicI64 = AtomicI64::new(0);

fn publish_gauges() {
    if spec_obs::enabled() {
        spec_obs::set_gauge(
            "frame.segments_resident",
            SEGMENTS_RESIDENT.load(Ordering::Relaxed),
        );
        spec_obs::set_gauge(
            "frame.segments_spilled",
            SEGMENTS_SPILLED.load(Ordering::Relaxed),
        );
        spec_obs::set_gauge("frame.spill_bytes", SPILL_BYTES.load(Ordering::Relaxed));
    }
}

fn gauge_shift(resident: i64, spilled: i64) {
    SEGMENTS_RESIDENT.fetch_add(resident, Ordering::Relaxed);
    SEGMENTS_SPILLED.fetch_add(spilled, Ordering::Relaxed);
    publish_gauges();
}

/// Approximate heap bytes a frame's data occupies while resident.
fn frame_heap_bytes(frame: &Frame) -> usize {
    frame.columns_iter().map(Column::heap_bytes).sum()
}

/// One sealed segment: resident (`frame` present) or evicted to the store
/// under `spill_id`.
#[derive(Debug)]
struct Slot {
    rows: usize,
    bytes: usize,
    last_touch: u64,
    spill_id: Option<u64>,
    frame: Option<Frame>,
}

#[derive(Debug)]
struct Spill {
    store: Arc<dyn SegmentStore>,
    max_resident_bytes: usize,
    next_id: u64,
}

/// A table stored as a list of immutable row segments plus an open tail
/// that [`SegFrame::append_frame`] fills and seals at `segment_rows`.
#[derive(Debug)]
pub struct SegFrame {
    names: Vec<String>,
    dtypes: Vec<DType>,
    segment_rows: usize,
    slots: Vec<Slot>,
    tail: Option<Frame>,
    clock: u64,
    spill: Option<Spill>,
    spill_bytes_written: u64,
}

impl SegFrame {
    /// Empty store; the schema is adopted from the first appended frame.
    pub fn new(segment_rows: usize) -> SegFrame {
        SegFrame {
            names: Vec::new(),
            dtypes: Vec::new(),
            segment_rows: segment_rows.max(1),
            slots: Vec::new(),
            tail: None,
            clock: 0,
            spill: None,
            spill_bytes_written: 0,
        }
    }

    /// Empty store with the default segment size.
    pub fn with_default_rows() -> SegFrame {
        SegFrame::new(DEFAULT_SEGMENT_ROWS)
    }

    /// Split a monolithic frame into segments.
    pub fn from_frame(frame: Frame, segment_rows: usize) -> SegFrame {
        let mut seg = SegFrame::new(segment_rows);
        seg.append_frame(frame).expect("fresh store accepts its first schema");
        seg
    }

    /// Total rows across all segments and the tail.
    pub fn n_rows(&self) -> usize {
        self.slots.iter().map(|s| s.rows).sum::<usize>()
            + self.tail.as_ref().map_or(0, Frame::n_rows)
    }

    /// Sealed segments (the open tail is not counted).
    pub fn n_segments(&self) -> usize {
        self.slots.len()
    }

    /// Sealed segments currently resident in memory.
    pub fn segments_resident(&self) -> usize {
        self.slots.iter().filter(|s| s.frame.is_some()).count()
    }

    /// Sealed segments currently evicted to the store.
    pub fn segments_spilled(&self) -> usize {
        self.slots.iter().filter(|s| s.frame.is_none()).count()
    }

    /// Approximate heap bytes of resident sealed segments.
    pub fn resident_bytes(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.frame.is_some())
            .map(|s| s.bytes)
            .sum()
    }

    /// Approximate heap bytes of the open (unsealed) tail segment. Not
    /// part of [`Self::resident_bytes`] — the tail is never a spill
    /// victim — but callers reporting total memory occupancy should add
    /// it: a store whose appends all fit one tail would otherwise read 0.
    pub fn tail_bytes(&self) -> usize {
        self.tail.as_ref().map(frame_heap_bytes).unwrap_or(0)
    }

    /// Cumulative encoded bytes this store has written to its spill store.
    pub fn spill_bytes_written(&self) -> u64 {
        self.spill_bytes_written
    }

    /// Column names in order (empty before the first append).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Schema as `(name, dtype)` pairs.
    pub fn schema(&self) -> Vec<(&str, DType)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.dtypes.iter().copied())
            .collect()
    }

    /// Rows per sealed segment this store targets.
    pub fn segment_rows(&self) -> usize {
        self.segment_rows
    }

    fn adopt_or_check_schema(&mut self, frame: &Frame) -> Result<()> {
        if self.names.is_empty() && self.slots.is_empty() && self.tail.is_none() {
            self.names = frame.names().to_vec();
            self.dtypes = frame.columns_iter().map(Column::dtype).collect();
            return Ok(());
        }
        let dtypes: Vec<DType> = frame.columns_iter().map(Column::dtype).collect();
        if frame.names() != self.names.as_slice() || dtypes != self.dtypes {
            return Err(FrameError::Csv(format!(
                "segment schema mismatch: {:?} vs {:?}",
                frame.names(),
                self.names
            )));
        }
        Ok(())
    }

    fn empty_frame(&self) -> Frame {
        let mut f = Frame::new();
        for (name, dt) in self.names.iter().zip(&self.dtypes) {
            let col = match dt {
                DType::F64 => Column::F64(Vec::new()),
                DType::I64 => Column::I64(Vec::new()),
                DType::Str => Column::Str(Vec::new()),
                DType::Bool => Column::Bool(Vec::new()),
                DType::Sym => Column::Sym(Vec::new()),
            };
            f.add_column(name.clone(), col).expect("fresh frame");
        }
        f
    }

    /// Append rows, filling the open tail and sealing full segments.
    pub fn append_frame(&mut self, chunk: Frame) -> Result<()> {
        if chunk.n_cols() == 0 {
            return Ok(());
        }
        self.adopt_or_check_schema(&chunk)?;
        // Fast path: a chunk that fits an empty tail moves in without a
        // row copy.
        if self.tail.is_none() && chunk.n_rows() <= self.segment_rows {
            let full = chunk.n_rows() == self.segment_rows;
            self.tail = Some(chunk);
            if full {
                self.seal_tail()?;
            }
            return Ok(());
        }
        let total = chunk.n_rows();
        let mut offset = 0;
        while offset < total {
            if self.tail.is_none() {
                self.tail = Some(self.empty_frame());
            }
            let room = {
                let tail = self.tail.as_mut().expect("just ensured");
                let room = self.segment_rows - tail.n_rows();
                let take = room.min(total - offset);
                tail.vstack(&chunk.slice(offset, offset + take))?;
                offset += take;
                room - take
            };
            if room == 0 {
                self.seal_tail()?;
            }
        }
        Ok(())
    }

    fn seal_tail(&mut self) -> Result<()> {
        if let Some(tail) = self.tail.take() {
            if tail.n_rows() > 0 {
                self.push_sealed_inner(tail)?;
            }
        }
        Ok(())
    }

    /// Push a frame as its own sealed (possibly ragged) segment. This is
    /// the shard-arena merge path: no row copy, the frame is adopted
    /// wholesale.
    pub fn push_sealed(&mut self, frame: Frame) -> Result<()> {
        if frame.n_cols() == 0 || frame.n_rows() == 0 {
            return Ok(());
        }
        self.adopt_or_check_schema(&frame)?;
        // Keep global row order: everything in the tail precedes the new
        // segment, so the tail must seal first.
        self.seal_tail()?;
        self.push_sealed_inner(frame)
    }

    fn push_sealed_inner(&mut self, frame: Frame) -> Result<()> {
        self.clock += 1;
        self.slots.push(Slot {
            rows: frame.n_rows(),
            bytes: frame_heap_bytes(&frame),
            last_touch: self.clock,
            spill_id: None,
            frame: Some(frame),
        });
        gauge_shift(1, 0);
        self.enforce_budget(None)
    }

    /// Splice another store's segment list onto this one (the `vstack`
    /// replacement). `other` must not have spill enabled — splicing happens
    /// during the in-memory merge phase, before a store is attached.
    pub fn splice(&mut self, mut other: SegFrame) -> Result<()> {
        if other.spill.is_some() {
            return Err(FrameError::Spill(
                "cannot splice a store that already spilled segments".into(),
            ));
        }
        if other.n_rows() == 0 {
            return Ok(());
        }
        other.seal_tail()?;
        let first = other.slots.first().and_then(|s| s.frame.as_ref());
        if let Some(frame) = first {
            self.adopt_or_check_schema(frame)?;
        }
        self.seal_tail()?;
        // Move the slots over; drain them from `other` so its Drop does
        // not double-count the occupancy gauges.
        for mut slot in other.slots.drain(..) {
            self.clock += 1;
            slot.last_touch = self.clock;
            self.slots.push(slot);
        }
        self.enforce_budget(None)
    }

    /// Attach a spill store and bound resident sealed-segment bytes.
    /// Existing segments beyond the budget are evicted immediately.
    pub fn enable_spill(
        &mut self,
        store: Arc<dyn SegmentStore>,
        max_resident_bytes: usize,
    ) -> Result<()> {
        self.spill = Some(Spill {
            store,
            max_resident_bytes,
            next_id: 0,
        });
        self.enforce_budget(None)
    }

    /// True when a spill store is attached.
    pub fn spill_enabled(&self) -> bool {
        self.spill.is_some()
    }

    fn evict(&mut self, i: usize) -> Result<()> {
        let Some(frame) = self.slots[i].frame.take() else {
            return Ok(());
        };
        if self.slots[i].spill_id.is_none() {
            // Sealed segments are immutable, so each is encoded and stored
            // at most once; later evictions just drop the resident copy.
            let spill = self.spill.as_mut().expect("evict requires spill");
            let id = spill.next_id;
            spill.next_id += 1;
            let payload = encode_frame(&frame);
            if let Err(e) = spill.store.store(id, &payload) {
                // Failed spill: keep the segment resident and surface the
                // error; the store stays consistent.
                self.slots[i].frame = Some(frame);
                return Err(FrameError::Spill(format!("storing segment: {e}")));
            }
            self.slots[i].spill_id = Some(id);
            self.spill_bytes_written += payload.len() as u64;
            SPILL_BYTES.fetch_add(payload.len() as i64, Ordering::Relaxed);
        }
        gauge_shift(-1, 1);
        Ok(())
    }

    fn enforce_budget(&mut self, keep: Option<usize>) -> Result<()> {
        let Some(spill) = &self.spill else {
            return Ok(());
        };
        let budget = spill.max_resident_bytes;
        while self.resident_bytes() > budget {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter(|(i, s)| s.frame.is_some() && Some(*i) != keep)
                .min_by_key(|(_, s)| s.last_touch)
                .map(|(i, _)| i);
            let Some(i) = victim else { break };
            self.evict(i)?;
        }
        Ok(())
    }

    fn load_slot(&mut self, i: usize) -> Result<()> {
        self.clock += 1;
        self.slots[i].last_touch = self.clock;
        if self.slots[i].frame.is_some() {
            return Ok(());
        }
        let id = self.slots[i]
            .spill_id
            .expect("evicted segment has a spill id");
        let store = Arc::clone(&self.spill.as_ref().expect("spill enabled").store);
        let payload = store
            .load(id)
            .map_err(|e| FrameError::Spill(format!("loading segment: {e}")))?;
        let frame = decode_frame(&payload)?;
        if frame.n_rows() != self.slots[i].rows {
            return Err(FrameError::Spill(format!(
                "segment {id} decoded to {} rows, expected {}",
                frame.n_rows(),
                self.slots[i].rows
            )));
        }
        self.slots[i].frame = Some(frame);
        gauge_shift(1, -1);
        self.enforce_budget(Some(i))
    }

    /// Visit every segment (sealed, then the open tail) in global row
    /// order, loading and evicting as the resident budget demands.
    pub fn for_each_segment<F>(&mut self, mut f: F) -> Result<()>
    where
        F: FnMut(&Frame) -> Result<()>,
    {
        for i in 0..self.slots.len() {
            self.load_slot(i)?;
            let frame = self.slots[i].frame.as_ref().expect("just loaded");
            f(frame)?;
        }
        if let Some(tail) = &self.tail {
            if tail.n_rows() > 0 {
                f(tail)?;
            }
        }
        Ok(())
    }

    /// Materialise the full monolithic frame (loads every segment; meant
    /// for small results and tests, not the 1M-row path).
    pub fn to_frame(&mut self) -> Result<Frame> {
        let mut out = self.empty_frame();
        self.for_each_segment(|seg| {
            out.vstack(seg)?;
            Ok(())
        })?;
        Ok(out)
    }

    /// Numeric (f64-promoted) column, concatenated across segments.
    pub fn numeric(&mut self, name: &str) -> Result<Vec<f64>> {
        self.check_numeric(name)?;
        let mut out = Vec::with_capacity(self.n_rows());
        self.for_each_segment(|seg| {
            out.extend(seg.numeric(name)?);
            Ok(())
        })?;
        Ok(out)
    }

    fn col_index(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| FrameError::NoSuchColumn(name.to_string()))
    }

    fn check_numeric(&self, name: &str) -> Result<()> {
        let dt = self.dtypes[self.col_index(name)?];
        if matches!(dt, DType::F64 | DType::I64) {
            Ok(())
        } else {
            Err(FrameError::TypeMismatch {
                column: name.to_string(),
                expected: "f64 or i64",
                got: dt.name(),
            })
        }
    }

    fn check_key(&self, name: &str) -> Result<()> {
        let dt = self.dtypes[self.col_index(name)?];
        if dt == DType::F64 {
            Err(FrameError::TypeMismatch {
                column: name.to_string(),
                expected: "discrete (i64/str/bool)",
                got: "f64",
            })
        } else {
            Ok(())
        }
    }

    /// Streaming group-by + aggregation, bit-identical to
    /// `Frame::group_by(keys)?.agg(specs)` on the materialised table.
    ///
    /// Per-(group, spec) state is one [`Summary`] (fed in global row
    /// order — the same push sequence the monolithic path performs) plus,
    /// for order-statistic aggregates, the collected finite values.
    pub fn group_agg(&mut self, keys: &[&str], specs: &[(&str, Agg)]) -> Result<Frame> {
        for &k in keys {
            self.check_key(k)?;
        }
        for (name, _) in specs {
            self.check_numeric(name)?;
        }

        struct SpecState {
            summary: Summary,
            /// Sum of finite values, folded from `-0.0` exactly like the
            /// monolithic `finite.iter().sum::<f64>()` — `Summary`'s own
            /// accumulator starts at `+0.0`, which differs in the signed
            /// zero of empty and all-negative-zero groups.
            sum: f64,
            /// Finite values in row order, kept only for Median/Quantile.
            values: Option<Vec<f64>>,
        }
        struct GroupState {
            rows: u64,
            specs: Vec<SpecState>,
        }
        let needs_values: Vec<bool> = specs
            .iter()
            .map(|(_, agg)| matches!(agg, Agg::Median | Agg::Quantile(_)))
            .collect();

        let mut states: HashMap<Vec<KeyValue>, GroupState> = HashMap::new();
        let needs = &needs_values;
        self.for_each_segment(|seg| {
            let mut key_cols = Vec::with_capacity(keys.len());
            for &k in keys {
                key_cols.push(seg.column(k)?);
            }
            let mut numeric: Vec<Vec<f64>> = Vec::with_capacity(specs.len());
            for (name, _) in specs {
                numeric.push(seg.numeric(name)?);
            }
            // `row` cursors several parallel structures (key columns via
            // `key(row)`, one numeric vec per spec), not a single slice.
            #[allow(clippy::needless_range_loop)]
            for row in 0..seg.n_rows() {
                let key: Vec<KeyValue> = key_cols
                    .iter()
                    .map(|c| c.key(row).expect("discrete column in range"))
                    .collect();
                let state = states.entry(key).or_insert_with(|| GroupState {
                    rows: 0,
                    specs: needs
                        .iter()
                        .map(|&nv| SpecState {
                            summary: Summary::new(),
                            sum: -0.0,
                            values: nv.then(Vec::new),
                        })
                        .collect(),
                });
                state.rows += 1;
                for (si, spec) in state.specs.iter_mut().enumerate() {
                    let x = numeric[si][row];
                    spec.summary.push(x);
                    if x.is_finite() {
                        spec.sum += x;
                        if let Some(values) = &mut spec.values {
                            values.push(x);
                        }
                    }
                }
            }
            Ok(())
        })?;

        let mut groups: Vec<(Vec<KeyValue>, GroupState)> = states.into_iter().collect();
        groups.sort_by(|a, b| a.0.cmp(&b.0));

        let mut out = Frame::new();
        for (ki, &key_name) in keys.iter().enumerate() {
            let cells: Vec<KeyValue> = groups.iter().map(|(k, _)| k[ki].clone()).collect();
            out.add_column(key_name.to_string(), rebuild_key_column(&cells))?;
        }
        for (si, (name, agg)) in specs.iter().enumerate() {
            let data: Vec<f64> = groups
                .iter()
                .map(|(_, g)| {
                    let spec = &g.specs[si];
                    match agg {
                        Agg::Count => g.rows as f64,
                        Agg::Sum => spec.sum,
                        Agg::Mean => spec.summary.mean().unwrap_or(f64::NAN),
                        Agg::Std => spec.summary.std_dev().unwrap_or(f64::NAN),
                        Agg::Min => spec.summary.min().unwrap_or(f64::NAN),
                        Agg::Max => spec.summary.max().unwrap_or(f64::NAN),
                        Agg::Median => {
                            tinystats::median(spec.values.as_deref().expect("values kept"))
                                .unwrap_or(f64::NAN)
                        }
                        Agg::Quantile(q) => tinystats::quantile(
                            spec.values.as_deref().expect("values kept"),
                            *q,
                        )
                        .unwrap_or(f64::NAN),
                    }
                })
                .collect();
            out.add_column(format!("{name}_{}", agg.suffix()), Column::F64(data))?;
        }
        Ok(out)
    }

    /// Streaming CSV, byte-identical to `Frame::to_csv` on the
    /// materialised table.
    pub fn to_csv(&mut self) -> Result<String> {
        let mut out = String::new();
        append_header_line(&self.names, &mut out);
        self.for_each_segment(|seg| {
            append_data_rows(seg, &mut out);
            Ok(())
        })?;
        Ok(out)
    }

    /// Per-segment left join against a small in-memory right frame; the
    /// concatenation equals `Frame::left_join` on the materialised table
    /// (the match index depends only on `right`, and fills are per-row).
    pub fn left_join(&mut self, right: &Frame, keys: &[&str]) -> Result<SegFrame> {
        let mut out = SegFrame::new(self.segment_rows);
        // Adopt the joined schema up front so a row-less store still
        // renders the right header (for_each_segment skips empty tails).
        out.append_frame(self.empty_frame().left_join(right, keys)?)?;
        self.for_each_segment(|seg| {
            out.push_sealed(seg.left_join(right, keys)?)?;
            Ok(())
        })?;
        Ok(out)
    }
}

impl Drop for SegFrame {
    fn drop(&mut self) {
        let resident = self.segments_resident() as i64;
        let spilled = self.segments_spilled() as i64;
        if resident != 0 || spilled != 0 {
            gauge_shift(-resident, -spilled);
        }
        if let Some(spill) = &self.spill {
            for slot in &self.slots {
                if let Some(id) = slot.spill_id {
                    spill.store.remove(id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill::MemSegmentStore;

    fn sample(n: usize) -> Frame {
        let years: Vec<i64> = (0..n).map(|i| 2007 + (i % 5) as i64).collect();
        let vendors: Vec<spec_intern::Sym> = (0..n)
            .map(|i| spec_intern::intern(["Intel", "AMD", "Dell Inc."][i % 3]))
            .collect();
        let watts: Vec<f64> = (0..n)
            .map(|i| {
                if i % 7 == 0 {
                    f64::NAN
                } else {
                    100.0 + (i as f64) * 1.37
                }
            })
            .collect();
        let ok: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        Frame::from_columns([
            ("year", Column::I64(years)),
            ("vendor", Column::Sym(vendors)),
            ("watts", Column::F64(watts)),
            ("ok", Column::Bool(ok)),
        ])
        .unwrap()
    }

    #[test]
    fn append_seals_full_segments() {
        let mut seg = SegFrame::new(10);
        seg.append_frame(sample(25)).unwrap();
        assert_eq!(seg.n_rows(), 25);
        assert_eq!(seg.n_segments(), 2, "two sealed, 5 rows in the tail");
        seg.append_frame(sample(5)).unwrap();
        assert_eq!(seg.n_segments(), 3, "tail filled to exactly 10 seals");
        assert_eq!(seg.n_rows(), 30);
    }

    /// Frame equality with NaN-tolerant float comparison (the derived
    /// `PartialEq` treats NaN ≠ NaN).
    fn assert_same_table(got: &Frame, want: &Frame) {
        assert_eq!(got.to_csv(), want.to_csv());
        for (name, dt) in want.schema() {
            if dt == DType::F64 {
                let g: Vec<u64> = got.f64s(name).unwrap().iter().map(|x| x.to_bits()).collect();
                let w: Vec<u64> = want.f64s(name).unwrap().iter().map(|x| x.to_bits()).collect();
                assert_eq!(g, w, "column {name}");
            }
        }
    }

    #[test]
    fn to_frame_matches_monolithic() {
        let mono = sample(37);
        let mut seg = SegFrame::from_frame(mono.clone(), 8);
        assert_same_table(&seg.to_frame().unwrap(), &mono);
    }

    #[test]
    fn splice_preserves_row_order() {
        let all = sample(30);
        let mut a = SegFrame::from_frame(all.slice(0, 13), 8);
        let b = SegFrame::from_frame(all.slice(13, 30), 8);
        a.splice(b).unwrap();
        assert_same_table(&a.to_frame().unwrap(), &all);
    }

    #[test]
    fn group_agg_bit_identical_to_monolithic() {
        let mono = sample(101);
        let specs = [
            ("watts", Agg::Count),
            ("watts", Agg::Mean),
            ("watts", Agg::Std),
            ("watts", Agg::Min),
            ("watts", Agg::Max),
            ("watts", Agg::Median),
            ("watts", Agg::Sum),
            ("watts", Agg::Quantile(0.25)),
        ];
        let expected = mono
            .group_by(&["year", "vendor"])
            .unwrap()
            .agg(&specs)
            .unwrap();
        for seg_rows in [1, 7, 64, 1024] {
            let mut seg = SegFrame::from_frame(mono.clone(), seg_rows);
            let got = seg.group_agg(&["year", "vendor"], &specs).unwrap();
            assert_eq!(got.to_csv(), expected.to_csv(), "seg_rows={seg_rows}");
        }
    }

    #[test]
    fn csv_bit_identical_to_monolithic() {
        let mono = sample(41);
        let mut seg = SegFrame::from_frame(mono.clone(), 9);
        assert_eq!(seg.to_csv().unwrap(), mono.to_csv());
    }

    #[test]
    fn join_bit_identical_to_monolithic() {
        let mono = sample(33);
        let right = Frame::from_columns([
            ("year", Column::I64(vec![2007, 2009, 2011])),
            ("era", Column::from(vec!["early", "mid", "late"])),
            ("watts", Column::F64(vec![1.0, 2.0, 3.0])),
        ])
        .unwrap();
        let expected = mono.left_join(&right, &["year"]).unwrap();
        let mut seg = SegFrame::from_frame(mono, 7);
        let mut joined = seg.left_join(&right, &["year"]).unwrap();
        assert_eq!(joined.to_csv().unwrap(), expected.to_csv());
    }

    #[test]
    fn spill_bounds_resident_bytes_and_reloads_identically() {
        let mono = sample(200);
        let mut seg = SegFrame::from_frame(mono.clone(), 16);
        let full_bytes = seg.resident_bytes();
        let store = Arc::new(MemSegmentStore::new());
        let budget = full_bytes / 4;
        seg.enable_spill(Arc::clone(&store) as Arc<dyn SegmentStore>, budget)
            .unwrap();
        assert!(
            seg.resident_bytes() <= budget,
            "{} > {budget}",
            seg.resident_bytes()
        );
        assert!(seg.segments_spilled() > 0);
        assert!(!store.is_empty());
        assert!(seg.spill_bytes_written() > 0);
        // Walks still see every row, and the budget holds throughout.
        assert_same_table(&seg.to_frame().unwrap(), &mono);
        let specs = [("watts", Agg::Mean), ("watts", Agg::Median)];
        let expected = mono.group_by(&["year"]).unwrap().agg(&specs).unwrap();
        let got = seg.group_agg(&["year"], &specs).unwrap();
        assert_eq!(got.to_csv(), expected.to_csv());
        assert!(seg.resident_bytes() <= budget);
    }

    #[test]
    fn drop_removes_spilled_segments_from_store() {
        let store = Arc::new(MemSegmentStore::new());
        {
            let mut seg = SegFrame::from_frame(sample(100), 10);
            seg.enable_spill(Arc::clone(&store) as Arc<dyn SegmentStore>, 0)
                .unwrap();
            assert!(!store.is_empty());
        }
        assert!(store.is_empty(), "drop cleans the store");
    }

    #[test]
    fn splice_rejects_spilled_source() {
        let mut a = SegFrame::from_frame(sample(20), 8);
        let mut b = SegFrame::from_frame(sample(20), 8);
        b.enable_spill(Arc::new(MemSegmentStore::new()), 0).unwrap();
        assert!(matches!(a.splice(b), Err(FrameError::Spill(_))));
    }

    #[test]
    fn schema_mismatch_rejected() {
        let mut seg = SegFrame::from_frame(sample(5), 8);
        let other = Frame::from_columns([("x", Column::F64(vec![1.0]))]).unwrap();
        assert!(seg.append_frame(other.clone()).is_err());
        assert!(seg.push_sealed(other).is_err());
    }

    #[test]
    fn numeric_concatenates_and_checks_types() {
        let mono = sample(23);
        let mut seg = SegFrame::from_frame(mono.clone(), 6);
        let got: Vec<u64> = seg
            .numeric("watts")
            .unwrap()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let want: Vec<u64> = mono
            .numeric("watts")
            .unwrap()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(got, want);
        assert!(seg.numeric("year").is_ok(), "i64 promotes");
        assert!(matches!(
            seg.numeric("vendor"),
            Err(FrameError::TypeMismatch { .. })
        ));
        assert!(matches!(
            seg.numeric("nope"),
            Err(FrameError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn group_agg_rejects_float_keys_like_monolithic() {
        let mut seg = SegFrame::from_frame(sample(10), 4);
        assert!(matches!(
            seg.group_agg(&["watts"], &[("watts", Agg::Count)]),
            Err(FrameError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn empty_store_aggregates_to_empty_frame() {
        let mut seg = SegFrame::from_frame(sample(0), 4);
        let out = seg.group_agg(&["year"], &[("watts", Agg::Mean)]).unwrap();
        assert_eq!(out.n_rows(), 0);
        assert!(out.column("watts_mean").is_ok());
    }
}
