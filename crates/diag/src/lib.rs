//! # spec-diag
//!
//! The workspace-wide diagnostics type. Every fallible pipeline path —
//! parsing a report file, validating it, a dataframe operation, an artifact
//! cache lookup, a CLI I/O failure — produces a [`TrendsError`] that says
//! *which stage* failed, *which input* it was working on, and a
//! *categorized cause* rather than a bare string. The §II filter cascade
//! used to discard exactly this information (`Err(_) => not_reports`); the
//! `spec-trends explain` view surfaces it.
//!
//! Std-only by design: this crate sits below `spec-format`, `tinyframe`,
//! `spec-analysis` and the CLI in the dependency DAG, so it cannot depend
//! on anything but `std`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::fmt;

/// A position inside a source text, for parser diagnostics.
///
/// Lines are 1-based (editor convention); `column` is a 1-based byte offset
/// within the line when known.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based byte column within the line, when known.
    pub column: Option<u32>,
}

impl Span {
    /// A span covering the given 1-based line.
    pub const fn line(line: u32) -> Span {
        Span { line, column: None }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.column {
            Some(col) => write!(f, "{}:{}", self.line, col),
            None => write!(f, "{}", self.line),
        }
    }
}

/// Categorized cause of a [`TrendsError`].
#[derive(Clone, Debug, PartialEq)]
pub enum ErrorKind {
    /// A report text could not be parsed at all (stage-0 of the cascade).
    Parse {
        /// Stable machine-readable category, e.g. `"missing-header"`.
        category: &'static str,
        /// Human-readable detail (offending snippet, expectations).
        detail: String,
        /// Where in the input the problem was detected, when known.
        span: Option<Span>,
    },
    /// A parsed report failed the §II stage-1 validity checks.
    Validity {
        /// The labels of every validity category the run fell into.
        issues: Vec<String>,
    },
    /// A valid run failed the §II stage-2 comparability filters.
    Comparability {
        /// The labels of every comparability category the run fell into.
        issues: Vec<String>,
    },
    /// An operating-system I/O failure (file read/write, directory walk).
    Io {
        /// The failing `std::io::Error` rendered to text.
        detail: String,
    },
    /// A dataframe/column operation failed (wraps `tinyframe`'s error).
    Data {
        /// The failing operation rendered to text.
        detail: String,
    },
    /// The artifact cache refused or failed to decode an entry.
    Cache {
        /// What went wrong (corrupt header, codec mismatch, version skew).
        detail: String,
    },
    /// Invalid configuration or command-line usage.
    Config {
        /// What the caller got wrong.
        detail: String,
    },
}

impl ErrorKind {
    /// Stable machine-readable category name of this kind.
    pub fn category(&self) -> &'static str {
        match self {
            ErrorKind::Parse { category, .. } => category,
            ErrorKind::Validity { .. } => "validity",
            ErrorKind::Comparability { .. } => "comparability",
            ErrorKind::Io { .. } => "io",
            ErrorKind::Data { .. } => "data",
            ErrorKind::Cache { .. } => "cache",
            ErrorKind::Config { .. } => "config",
        }
    }
}

/// The workspace-wide pipeline error: which stage failed, on which input,
/// and why (categorized).
#[derive(Clone, Debug, PartialEq)]
pub struct TrendsError {
    /// The pipeline stage that produced the error (`"ingest"`,
    /// `"validate"`, `"export"`, …).
    pub stage: &'static str,
    /// The file or input identifier the stage was processing, when known.
    pub origin: Option<String>,
    /// Categorized cause.
    pub kind: ErrorKind,
}

impl TrendsError {
    /// Build an error for `stage` with the given kind and no origin.
    pub fn new(stage: &'static str, kind: ErrorKind) -> TrendsError {
        TrendsError {
            stage,
            origin: None,
            kind,
        }
    }

    /// Attach the originating file/input identifier.
    #[must_use]
    pub fn with_origin(mut self, origin: impl Into<String>) -> TrendsError {
        self.origin = Some(origin.into());
        self
    }

    /// Shorthand for an I/O failure in `stage`.
    pub fn io(stage: &'static str, err: &std::io::Error) -> TrendsError {
        TrendsError::new(
            stage,
            ErrorKind::Io {
                detail: err.to_string(),
            },
        )
    }

    /// Shorthand for a cache failure in `stage`.
    pub fn cache(stage: &'static str, detail: impl Into<String>) -> TrendsError {
        TrendsError::new(
            stage,
            ErrorKind::Cache {
                detail: detail.into(),
            },
        )
    }

    /// Shorthand for a configuration/usage error in `stage`.
    pub fn config(stage: &'static str, detail: impl Into<String>) -> TrendsError {
        TrendsError::new(
            stage,
            ErrorKind::Config {
                detail: detail.into(),
            },
        )
    }

    /// The process exit code this error maps to at the CLI boundary:
    /// usage/configuration errors exit 2 (like `getopt`), everything else 1.
    pub fn exit_code(&self) -> u8 {
        match self.kind {
            ErrorKind::Config { .. } => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for TrendsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.stage)?;
        if let Some(origin) = &self.origin {
            write!(f, ": {origin}")?;
        }
        match &self.kind {
            ErrorKind::Parse {
                category,
                detail,
                span,
            } => {
                if let Some(span) = span {
                    write!(f, ":{span}")?;
                }
                write!(f, ": parse error ({category}): {detail}")
            }
            ErrorKind::Validity { issues } => {
                write!(f, ": failed validity checks: {}", issues.join("; "))
            }
            ErrorKind::Comparability { issues } => {
                write!(f, ": failed comparability filters: {}", issues.join("; "))
            }
            ErrorKind::Io { detail } => write!(f, ": io error: {detail}"),
            ErrorKind::Data { detail } => write!(f, ": data error: {detail}"),
            ErrorKind::Cache { detail } => write!(f, ": cache error: {detail}"),
            ErrorKind::Config { detail } => write!(f, ": {detail}"),
        }
    }
}

impl std::error::Error for TrendsError {}

/// Convenient result alias used by pipeline stages.
pub type Result<T> = std::result::Result<T, TrendsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_origin_span() {
        let err = TrendsError::new(
            "ingest",
            ErrorKind::Parse {
                category: "missing-header",
                detail: "first line is \"hello\"".into(),
                span: Some(Span::line(1)),
            },
        )
        .with_origin("r0042.txt");
        let text = err.to_string();
        assert!(text.contains("ingest"), "{text}");
        assert!(text.contains("r0042.txt"), "{text}");
        assert!(text.contains(":1:"), "{text}");
        assert!(text.contains("missing-header"), "{text}");
    }

    #[test]
    fn exit_codes() {
        assert_eq!(TrendsError::config("cli", "bad flag").exit_code(), 2);
        assert_eq!(TrendsError::cache("validate", "corrupt").exit_code(), 1);
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert_eq!(TrendsError::io("ingest", &io).exit_code(), 1);
    }

    #[test]
    fn kind_categories_are_stable() {
        assert_eq!(
            TrendsError::new(
                "x",
                ErrorKind::Validity {
                    issues: vec!["a".into()]
                }
            )
            .kind
            .category(),
            "validity"
        );
        assert_eq!(TrendsError::cache("x", "y").kind.category(), "cache");
    }

    #[test]
    fn span_display() {
        assert_eq!(Span::line(7).to_string(), "7");
        assert_eq!(
            Span {
                line: 7,
                column: Some(3)
            }
            .to_string(),
            "7:3"
        );
    }
}
