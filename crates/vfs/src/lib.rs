//! # spec-vfs
//!
//! The workspace's virtual-filesystem layer. Every disk touch in the
//! pipeline — ingest reads, artifact-cache entries, exported figures —
//! goes through the object-safe [`Vfs`] trait, so the same code path runs
//! against three backends:
//!
//! * [`RealVfs`] — plain `std::fs`;
//! * [`FaultVfs`] — a wrapper that injects *scheduled, deterministic*
//!   faults (EIO on the k-th read, short reads, torn writes, ENOSPC,
//!   vanished files, transient-then-success errors) and records an
//!   operation trace, for chaos testing;
//! * [`RetryVfs`] — a wrapper that retries transient errors with
//!   exponential backoff over an injectable [`Clock`] (no wall-clock time
//!   in tests).
//!
//! Two provided methods carry the robustness contract:
//!
//! * [`Vfs::read_verified`] compares the bytes read against the file's
//!   metadata length, so silently truncated (short) reads surface as
//!   `UnexpectedEof` instead of corrupt data;
//! * [`Vfs::atomic_write_with`] is the crash-durable write path: temp file
//!   → fsync → read-back verification → rename → parent-directory fsync.
//!   A torn write is detected *before* the rename, so a half-written file
//!   can never land under the final name.
//!
//! Std-only by design, like `spec-diag`: this crate sits below the
//! pipeline crates in the dependency DAG.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod fault;
mod real;
mod retry;
mod shared;

pub use fault::{Fault, FaultKind, FaultVfs, OpKind, TraceEntry};
pub use real::RealVfs;
pub use retry::{is_transient, Clock, RealClock, RetryPolicy, RetryVfs, TestClock};
pub use shared::{SharedText, SlabArena, DEFAULT_SLAB_BYTES};

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

fn other_err(detail: String) -> io::Error {
    io::Error::other(detail)
}

/// The virtual-filesystem interface. Object-safe; `Send + Sync` so a
/// single backend can be shared across the worker pool.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Read a file's entire contents.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// The file's size in bytes, from metadata (not from reading it).
    fn metadata_len(&self, path: &Path) -> io::Result<u64>;

    /// List a directory's entries, sorted by path.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;

    /// Create (or truncate) a file with the given contents. *Not* durable
    /// or atomic on its own — see [`Vfs::atomic_write_with`].
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// fsync a file's contents and metadata to stable storage.
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Atomically replace `to` with `from` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Delete a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Create a directory and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// fsync a directory, making renames/creations within it durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    // ---------------------------------------------- provided methods ----

    /// Read a file and verify the byte count against metadata, so a short
    /// (truncated) read is an `UnexpectedEof` error instead of silent data
    /// loss. All pipeline reads go through this.
    fn read_verified(&self, path: &Path) -> io::Result<Vec<u8>> {
        let expected = self.metadata_len(path)?;
        let bytes = self.read(path)?;
        if bytes.len() as u64 != expected {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "short read: got {} of {} bytes from {}",
                    bytes.len(),
                    expected,
                    path.display()
                ),
            ));
        }
        Ok(bytes)
    }

    /// [`Vfs::read_verified`] decoded as UTF-8 (`InvalidData` otherwise).
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let bytes = self.read_verified(path)?;
        String::from_utf8(bytes).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not valid UTF-8", path.display()),
            )
        })
    }

    /// [`Vfs::read_to_string`] wrapped into an [`Arc`]-backed immutable
    /// [`SharedText`], the zero-copy ingest input: downstream stages and
    /// shards clone the handle (two words + a refcount bump) and borrow
    /// `&str` slices instead of copying per-file `String`s around.
    fn read_to_shared(&self, path: &Path) -> io::Result<SharedText> {
        self.read_to_string(path).map(SharedText::new)
    }

    /// Durable atomic write with an explicit temp path: write `tmp`, fsync
    /// it, read it back to verify every byte landed (catching torn
    /// writes *before* publication), rename over `path`, then fsync the
    /// parent directory so the rename survives a crash. On any failure the
    /// temp file is best-effort removed and nothing replaces `path`.
    fn atomic_write_with(&self, tmp: &Path, path: &Path, data: &[u8]) -> io::Result<()> {
        let attempt = || -> io::Result<()> {
            self.write(tmp, data)?;
            self.sync_file(tmp)?;
            let back = self.read_verified(tmp)?;
            if back != data {
                return Err(other_err(format!(
                    "torn write detected: {} holds {} bytes, expected {}",
                    tmp.display(),
                    back.len(),
                    data.len()
                )));
            }
            self.rename(tmp, path)?;
            if let Some(parent) = path.parent() {
                // A bare relative filename has `Some("")` as its parent;
                // the directory to sync is then the current one.
                let parent = if parent.as_os_str().is_empty() {
                    Path::new(".")
                } else {
                    parent
                };
                self.sync_dir(parent)?;
            }
            Ok(())
        };
        attempt().inspect_err(|_| {
            let _ = self.remove_file(tmp);
        })
    }

    /// [`Vfs::atomic_write_with`] using `<path>.tmp` as the temp name.
    fn atomic_write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        self.atomic_write_with(Path::new(&tmp), path, data)
    }
}

/// The process-wide default backend: [`RealVfs`] wrapped in a [`RetryVfs`]
/// with the default exponential-backoff policy and the real clock. Used by
/// every production entry point that does not inject a backend explicitly.
pub fn default_vfs() -> Arc<dyn Vfs> {
    static DEFAULT: OnceLock<Arc<dyn Vfs>> = OnceLock::new();
    DEFAULT
        .get_or_init(|| {
            Arc::new(RetryVfs::new(
                Arc::new(RealVfs),
                RetryPolicy::default(),
                Arc::new(RealClock),
            ))
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spec_vfs_lib_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_roundtrip_and_no_tmp_left() {
        let dir = tmp_dir("atomic");
        let vfs = RealVfs;
        let target = dir.join("out.txt");
        vfs.atomic_write(&target, b"hello world").unwrap();
        assert_eq!(vfs.read_to_string(&target).unwrap(), "hello world");
        // The temp file must be gone after a successful publish.
        let leftovers: Vec<_> = vfs
            .read_dir(&dir)
            .unwrap()
            .into_iter()
            .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_accepts_bare_relative_filename() {
        // Regression: `Path::new("out.txt").parent()` is `Some("")`, and
        // syncing "" failed with ENOENT *after* the rename — the file
        // landed but the caller saw an error (hit by `--trace-out t.json`).
        let dir = tmp_dir("atomic_bare");
        let orig = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let result = RealVfs.atomic_write(Path::new("bare.txt"), b"payload");
        let read_back = RealVfs.read_to_string(Path::new("bare.txt"));
        std::env::set_current_dir(orig).unwrap();
        result.unwrap();
        assert_eq!(read_back.unwrap(), "payload");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_vfs_is_shared() {
        let a = default_vfs();
        let b = default_vfs();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
