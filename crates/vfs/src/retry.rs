//! Retry-with-exponential-backoff over an injectable clock.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::Vfs;

/// Is this error worth retrying? Transient conditions — interrupted
/// syscalls, would-block, timeouts — clear on their own; everything else
/// (EIO, ENOSPC, NotFound, permission) is permanent and must escalate.
pub fn is_transient(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Time source for backoff sleeps, injectable so tests never wait on the
/// wall clock.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Sleep for (or record) `d`.
    fn sleep(&self, d: Duration);
}

/// Production clock: `std::thread::sleep`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealClock;

impl Clock for RealClock {
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Test clock: records every requested sleep and returns immediately.
#[derive(Debug, Default)]
pub struct TestClock {
    slept: Mutex<Vec<Duration>>,
}

impl TestClock {
    /// A fresh recording clock.
    pub fn new() -> TestClock {
        TestClock::default()
    }

    /// Every sleep requested so far, in order.
    pub fn slept(&self) -> Vec<Duration> {
        match self.slept.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }
}

impl Clock for TestClock {
    fn sleep(&self, d: Duration) {
        match self.slept.lock() {
            Ok(mut g) => g.push(d),
            Err(p) => p.into_inner().push(d),
        }
    }
}

/// Exponential-backoff retry policy for transient I/O errors.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub attempts: u32,
    /// Delay before the first retry.
    pub base: Duration,
    /// Multiplier applied per retry.
    pub factor: u32,
    /// Upper bound on any single delay.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    /// 4 attempts with 5 ms → 20 ms → 80 ms backoff.
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(5),
            factor: 4,
            cap: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The backoff delay before retry number `retry` (0-based):
    /// `base * factor^retry`, capped.
    pub fn delay(&self, retry: u32) -> Duration {
        let mut d = self.base;
        for _ in 0..retry {
            d = d.saturating_mul(self.factor);
            if d >= self.cap {
                return self.cap;
            }
        }
        d.min(self.cap)
    }

    /// Run `op`, retrying transient failures with backoff on `clock`.
    /// Permanent errors and the final transient failure escalate as-is.
    pub fn run<T>(
        &self,
        clock: &dyn Clock,
        mut op: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        let attempts = self.attempts.max(1);
        let mut retry = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) && retry + 1 < attempts => {
                    clock.sleep(self.delay(retry));
                    retry += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// A [`Vfs`] wrapper that retries every primitive operation under a
/// [`RetryPolicy`]. Compound provided methods (`read_verified`,
/// `atomic_write_with`) compose retried primitives automatically.
#[derive(Debug)]
pub struct RetryVfs {
    inner: Arc<dyn Vfs>,
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
}

impl RetryVfs {
    /// Wrap `inner` with `policy` over `clock`.
    pub fn new(inner: Arc<dyn Vfs>, policy: RetryPolicy, clock: Arc<dyn Clock>) -> RetryVfs {
        RetryVfs {
            inner,
            policy,
            clock,
        }
    }

    /// Run one primitive under the retry policy. While tracing is enabled
    /// each op gets a `vfs:<op>` span recording how many attempts it took,
    /// and any op that needed a retry bumps the `vfs.retry.<op>` counter —
    /// that is what makes a chaos run explainable after the fact.
    fn run_op<T>(
        &self,
        span_name: &'static str,
        retry_counter: &'static str,
        mut op: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        if !spec_obs::enabled() {
            return self.policy.run(&*self.clock, op);
        }
        let mut sp = spec_obs::span(span_name);
        let mut attempts: u64 = 0;
        let result = self.policy.run(&*self.clock, || {
            attempts += 1;
            op()
        });
        sp.record("attempts", attempts);
        if result.is_err() {
            sp.record("outcome", "error");
        }
        if attempts > 1 {
            spec_obs::count(retry_counter, attempts - 1);
        }
        result
    }
}

impl Vfs for RetryVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.run_op("vfs:read", "vfs.retry.read", || self.inner.read(path))
    }

    fn metadata_len(&self, path: &Path) -> io::Result<u64> {
        self.run_op("vfs:metadata", "vfs.retry.metadata", || {
            self.inner.metadata_len(path)
        })
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.run_op("vfs:read-dir", "vfs.retry.read-dir", || {
            self.inner.read_dir(path)
        })
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.run_op("vfs:write", "vfs.retry.write", || self.inner.write(path, data))
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.run_op("vfs:sync-file", "vfs.retry.sync-file", || {
            self.inner.sync_file(path)
        })
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.run_op("vfs:rename", "vfs.retry.rename", || {
            self.inner.rename(from, to)
        })
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.run_op("vfs:remove", "vfs.retry.remove", || {
            self.inner.remove_file(path)
        })
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.run_op("vfs:create-dir", "vfs.retry.create-dir", || {
            self.inner.create_dir_all(path)
        })
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.run_op("vfs:sync-dir", "vfs.retry.sync-dir", || {
            self.inner.sync_dir(path)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultKind, FaultVfs, OpKind, RealVfs};

    #[test]
    fn delays_are_exponential_and_capped() {
        let p = RetryPolicy::default();
        assert_eq!(p.delay(0), Duration::from_millis(5));
        assert_eq!(p.delay(1), Duration::from_millis(20));
        assert_eq!(p.delay(2), Duration::from_millis(80));
        assert_eq!(p.delay(3), Duration::from_millis(320));
        assert_eq!(p.delay(4), Duration::from_millis(500), "capped");
        assert_eq!(p.delay(40), Duration::from_millis(500), "no overflow");
    }

    #[test]
    fn transient_errors_retry_and_record_backoff() {
        let dir = std::env::temp_dir().join("spec_vfs_retry_transient");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("f");
        std::fs::write(&p, b"data").unwrap();

        let fault = Arc::new(
            FaultVfs::new(Arc::new(RealVfs)).with_fault(OpKind::Read, 0, FaultKind::Transient(2)),
        );
        let clock = Arc::new(TestClock::new());
        let vfs = RetryVfs::new(fault.clone(), RetryPolicy::default(), clock.clone());

        assert_eq!(vfs.read(&p).unwrap(), b"data");
        assert_eq!(fault.op_count(OpKind::Read), 3, "two failures + success");
        assert_eq!(
            clock.slept(),
            vec![Duration::from_millis(5), Duration::from_millis(20)],
            "exponential backoff, injectable clock — no wall time"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let dir = std::env::temp_dir().join("spec_vfs_retry_permanent");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("f");
        std::fs::write(&p, b"data").unwrap();

        let fault = Arc::new(
            FaultVfs::new(Arc::new(RealVfs)).with_fault(OpKind::Read, 0, FaultKind::Eio),
        );
        let clock = Arc::new(TestClock::new());
        let vfs = RetryVfs::new(fault.clone(), RetryPolicy::default(), clock.clone());

        assert!(vfs.read(&p).is_err());
        assert_eq!(fault.op_count(OpKind::Read), 1, "no retry on EIO");
        assert!(clock.slept().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_beyond_budget_escalates() {
        let dir = std::env::temp_dir().join("spec_vfs_retry_budget");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("f");
        std::fs::write(&p, b"data").unwrap();

        let fault = Arc::new(
            FaultVfs::new(Arc::new(RealVfs)).with_fault(OpKind::Read, 0, FaultKind::Transient(10)),
        );
        let clock = Arc::new(TestClock::new());
        let vfs = RetryVfs::new(fault, RetryPolicy::default(), clock.clone());
        let err = vfs.read(&p).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(clock.slept().len(), 3, "attempts - 1 sleeps, then escalate");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn is_transient_classification() {
        assert!(is_transient(&io::Error::new(io::ErrorKind::Interrupted, "x")));
        assert!(is_transient(&io::Error::new(io::ErrorKind::WouldBlock, "x")));
        assert!(is_transient(&io::Error::new(io::ErrorKind::TimedOut, "x")));
        assert!(!is_transient(&io::Error::other("eio")));
        assert!(!is_transient(&io::Error::new(io::ErrorKind::NotFound, "x")));
        assert!(!is_transient(&io::Error::new(io::ErrorKind::StorageFull, "x")));
    }
}
