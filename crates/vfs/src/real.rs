//! The `std::fs` backend.

use std::io;
use std::path::{Path, PathBuf};

use crate::Vfs;

/// Plain `std::fs` operations — the production backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn metadata_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        Ok(entries)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing its fd makes renames
        // and creations inside it durable on POSIX filesystems.
        std::fs::File::open(path)?.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spec_vfs_real_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn read_write_rename_remove() {
        let dir = tmp_dir("ops");
        let vfs = RealVfs;
        let a = dir.join("a.txt");
        let b = dir.join("b.txt");
        vfs.write(&a, b"abc").unwrap();
        assert_eq!(vfs.metadata_len(&a).unwrap(), 3);
        assert_eq!(vfs.read_verified(&a).unwrap(), b"abc");
        vfs.sync_file(&a).unwrap();
        vfs.rename(&a, &b).unwrap();
        assert_eq!(vfs.read_to_string(&b).unwrap(), "abc");
        vfs.sync_dir(&dir).unwrap();
        vfs.remove_file(&b).unwrap();
        assert_eq!(
            vfs.read(&b).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_dir_is_sorted() {
        let dir = tmp_dir("sorted");
        let vfs = RealVfs;
        for name in ["c.txt", "a.txt", "b.txt"] {
            vfs.write(&dir.join(name), b"x").unwrap();
        }
        let names: Vec<String> = vfs
            .read_dir(&dir)
            .unwrap()
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["a.txt", "b.txt", "c.txt"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_utf8_read_to_string_is_invalid_data() {
        let dir = tmp_dir("utf8");
        let vfs = RealVfs;
        let p = dir.join("bin");
        vfs.write(&p, &[0xFF, 0xFE, 0x00]).unwrap();
        assert_eq!(
            vfs.read_to_string(&p).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
