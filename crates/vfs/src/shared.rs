//! Arc-backed immutable text buffers for zero-copy ingest.
//!
//! [`SharedText`] is a cheaply-clonable `(Arc<String>, range)` view: the
//! cascade's shards and the partitioned stage graph hand around borrowed
//! `&str` slices of one shared slab instead of cloning a per-file owned
//! `String` into every stage. [`SlabArena`] packs many small report files
//! into a few large slabs (better locality, ~one allocation per
//! [`DEFAULT_SLAB_BYTES`] of corpus instead of one per file) under one
//! invariant the parser relies on: **a text never spans a slab boundary**
//! — each pushed text is a single contiguous `&str`. A text larger than
//! the slab size gets a dedicated slab of its own rather than being
//! chunked.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Slab capacity used by [`SlabArena::new`]: large enough to pack ~100
/// typical SPEC report files per allocation, small enough that dropping
/// most of a corpus releases memory promptly.
pub const DEFAULT_SLAB_BYTES: usize = 256 * 1024;

/// An immutable UTF-8 text slice backed by a reference-counted slab.
///
/// Cloning is two pointer copies plus an `Arc` increment; the text bytes
/// are never copied. Equality/ordering/hashing follow the *content*, not
/// the backing slab, so a `SharedText` compares equal to itself after a
/// cache round-trip re-materializes it into a different slab.
#[derive(Clone)]
pub struct SharedText {
    slab: Arc<String>,
    start: usize,
    end: usize,
}

impl SharedText {
    /// Wrap an owned string as a single-text slab (no copy).
    pub fn new(text: String) -> SharedText {
        let end = text.len();
        SharedText {
            slab: Arc::new(text),
            start: 0,
            end,
        }
    }

    /// The text itself.
    pub fn as_str(&self) -> &str {
        &self.slab[self.start..self.end]
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the text is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// An identifier of the backing slab allocation: equal for two
    /// `SharedText`s iff they share storage. Used by tests to assert the
    /// arena actually packs (or isolates) texts as documented.
    pub fn slab_id(&self) -> usize {
        Arc::as_ptr(&self.slab) as usize
    }
}

impl fmt::Debug for SharedText {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SharedText").field(&self.as_str()).finish()
    }
}

impl fmt::Display for SharedText {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl AsRef<str> for SharedText {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl std::ops::Deref for SharedText {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq for SharedText {
    fn eq(&self, other: &SharedText) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for SharedText {}

impl PartialEq<str> for SharedText {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl Hash for SharedText {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl From<String> for SharedText {
    fn from(text: String) -> SharedText {
        SharedText::new(text)
    }
}

/// Packs many small texts into a few shared slabs.
///
/// Texts are appended to an open slab until the next one would overflow
/// the configured capacity; the slab is then sealed behind an `Arc` and a
/// fresh one opened. [`SlabArena::finish`] returns one [`SharedText`] per
/// pushed text, in push order.
///
/// Invariants:
///
/// * a text never spans two slabs — every returned `SharedText` is one
///   contiguous slice;
/// * a text at least as large as the slab capacity gets a dedicated slab
///   ([`SlabArena::push_owned`] adopts the `String` without copying);
/// * sealed slabs are immutable — `String` reallocation can only happen
///   to the open slab, which no `SharedText` points into yet.
#[derive(Debug, Default)]
pub struct SlabArena {
    slab_bytes: usize,
    open: String,
    open_spans: Vec<(usize, usize)>,
    done: Vec<SharedText>,
}

impl SlabArena {
    /// An arena with the default slab capacity.
    pub fn new() -> SlabArena {
        SlabArena::with_slab_bytes(DEFAULT_SLAB_BYTES)
    }

    /// An arena with an explicit slab capacity (clamped to ≥ 1).
    pub fn with_slab_bytes(slab_bytes: usize) -> SlabArena {
        SlabArena {
            slab_bytes: slab_bytes.max(1),
            open: String::new(),
            open_spans: Vec::new(),
            done: Vec::new(),
        }
    }

    /// Number of texts pushed so far.
    pub fn len(&self) -> usize {
        self.done.len() + self.open_spans.len()
    }

    /// Whether nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn seal(&mut self) {
        if self.open_spans.is_empty() {
            return;
        }
        let slab = Arc::new(std::mem::take(&mut self.open));
        for (start, end) in self.open_spans.drain(..) {
            self.done.push(SharedText {
                slab: Arc::clone(&slab),
                start,
                end,
            });
        }
    }

    /// Append one text, copying it into the open slab (sealing first if it
    /// would not fit).
    pub fn push(&mut self, text: &str) {
        if text.len() >= self.slab_bytes {
            // Oversized text: dedicated slab, never split across slabs.
            self.seal();
            self.done.push(SharedText::new(text.to_string()));
            return;
        }
        if self.open.len() + text.len() > self.slab_bytes {
            self.seal();
        }
        if self.open.capacity() == 0 {
            self.open.reserve(self.slab_bytes);
        }
        let start = self.open.len();
        self.open.push_str(text);
        self.open_spans.push((start, self.open.len()));
    }

    /// Append one owned text; oversized strings are adopted as a dedicated
    /// slab without copying the bytes.
    pub fn push_owned(&mut self, text: String) {
        if text.len() >= self.slab_bytes {
            self.seal();
            self.done.push(SharedText::new(text));
        } else {
            self.push(&text);
        }
    }

    /// Seal the open slab and return one [`SharedText`] per pushed text,
    /// in push order.
    pub fn finish(mut self) -> Vec<SharedText> {
        self.seal();
        self.done
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn shared_text_roundtrip_and_content_eq() {
        let a = SharedText::new("hello".to_string());
        let b = a.clone();
        let c = SharedText::new("hello".to_string());
        assert_eq!(a, b);
        assert_eq!(a, c, "content equality across slabs");
        assert_eq!(a.slab_id(), b.slab_id());
        assert_ne!(a.slab_id(), c.slab_id());
        assert_eq!(a.as_str(), "hello");
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert_eq!(format!("{a}"), "hello");
        assert_eq!(format!("{a:?}"), "SharedText(\"hello\")");
    }

    #[test]
    fn arena_packs_small_texts_into_one_slab() {
        let mut arena = SlabArena::with_slab_bytes(1024);
        for i in 0..10 {
            arena.push(&format!("text number {i}"));
        }
        assert_eq!(arena.len(), 10);
        let texts = arena.finish();
        assert_eq!(texts.len(), 10);
        for (i, t) in texts.iter().enumerate() {
            assert_eq!(t.as_str(), format!("text number {i}"));
        }
        let first = texts[0].slab_id();
        assert!(
            texts.iter().all(|t| t.slab_id() == first),
            "10 small texts share one slab"
        );
    }

    #[test]
    fn arena_seals_at_capacity_without_splitting() {
        // Capacity 10, texts of 4 bytes: two per slab, never split.
        let mut arena = SlabArena::with_slab_bytes(10);
        for i in 0..5 {
            arena.push(&format!("tx{i}a"));
        }
        let texts = arena.finish();
        assert_eq!(texts.len(), 5);
        assert_eq!(texts[0].slab_id(), texts[1].slab_id());
        assert_ne!(texts[1].slab_id(), texts[2].slab_id());
        for (i, t) in texts.iter().enumerate() {
            assert_eq!(t.as_str(), format!("tx{i}a"), "contiguous despite sealing");
        }
    }

    #[test]
    fn oversized_text_gets_dedicated_slab() {
        let mut arena = SlabArena::with_slab_bytes(8);
        arena.push("ab");
        let big = "x".repeat(100);
        arena.push_owned(big.clone());
        arena.push("cd");
        let texts = arena.finish();
        assert_eq!(texts.len(), 3);
        assert_eq!(texts[0].as_str(), "ab");
        assert_eq!(texts[1].as_str(), big);
        assert_eq!(texts[2].as_str(), "cd");
        assert_ne!(texts[0].slab_id(), texts[1].slab_id());
        assert_ne!(texts[1].slab_id(), texts[2].slab_id());
    }

    #[test]
    fn text_exactly_at_slab_capacity() {
        // len == slab_bytes takes the dedicated-slab path (never split).
        let mut arena = SlabArena::with_slab_bytes(8);
        arena.push("12345678");
        arena.push("tail");
        let texts = arena.finish();
        assert_eq!(texts[0].as_str(), "12345678");
        assert_eq!(texts[1].as_str(), "tail");
        assert_ne!(texts[0].slab_id(), texts[1].slab_id());
    }

    #[test]
    fn empty_arena_and_empty_texts() {
        assert!(SlabArena::new().finish().is_empty());
        let mut arena = SlabArena::with_slab_bytes(4);
        arena.push("");
        arena.push("abcd");
        arena.push("");
        let texts = arena.finish();
        assert_eq!(texts.len(), 3);
        assert!(texts[0].is_empty());
        assert_eq!(texts[1].as_str(), "abcd");
        assert!(texts[2].is_empty());
    }
}
