//! Deterministic fault injection.
//!
//! [`FaultVfs`] wraps any [`Vfs`] backend and injects faults according to
//! either an explicit schedule (`fail the k-th read with EIO`) or a
//! seed-driven random plan (xorshift over a per-op roll, so the same seed
//! over the same operation sequence injects the same faults). Every
//! operation — faulted or not — is appended to a trace the tests can
//! inspect.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::Vfs;

/// The class of filesystem operation, for scheduling and tracing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    /// [`Vfs::read`].
    Read,
    /// [`Vfs::metadata_len`].
    MetadataLen,
    /// [`Vfs::read_dir`].
    ReadDir,
    /// [`Vfs::write`].
    Write,
    /// [`Vfs::sync_file`].
    SyncFile,
    /// [`Vfs::rename`].
    Rename,
    /// [`Vfs::remove_file`].
    RemoveFile,
    /// [`Vfs::create_dir_all`].
    CreateDirAll,
    /// [`Vfs::sync_dir`].
    SyncDir,
}

impl OpKind {
    /// Stable label for traces and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::MetadataLen => "metadata-len",
            OpKind::ReadDir => "read-dir",
            OpKind::Write => "write",
            OpKind::SyncFile => "sync-file",
            OpKind::Rename => "rename",
            OpKind::RemoveFile => "remove-file",
            OpKind::CreateDirAll => "create-dir-all",
            OpKind::SyncDir => "sync-dir",
        }
    }
}

/// What to inject when a scheduled fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Permanent I/O error (`ErrorKind::Other`, like a device EIO).
    Eio,
    /// Out of disk space (`ErrorKind::StorageFull`); meaningful on writes.
    Enospc,
    /// The file vanished between listing and use (`ErrorKind::NotFound`).
    Vanished,
    /// A read silently returns only the first `n` bytes (no error). The
    /// caller's [`Vfs::read_verified`] length check is what must catch it.
    ShortRead(usize),
    /// A write silently persists only the first `n` bytes and reports
    /// success — the on-disk state after a crash or a lying fsync. The
    /// writer's read-back verification is what must catch it.
    TornWrite(usize),
    /// Fail the next `n` invocations with `ErrorKind::Interrupted`, then
    /// succeed — the retry policy's bread and butter.
    Transient(u32),
}

impl FaultKind {
    fn label(self) -> &'static str {
        match self {
            FaultKind::Eio => "eio",
            FaultKind::Enospc => "enospc",
            FaultKind::Vanished => "vanished",
            FaultKind::ShortRead(_) => "short-read",
            FaultKind::TornWrite(_) => "torn-write",
            FaultKind::Transient(_) => "transient",
        }
    }
}

/// One scheduled fault: inject `kind` on the `at`-th (0-based) operation
/// of class `op`. `Transient(n)` additionally covers the following `n - 1`
/// invocations of that class, so a retry loop sees the error until it
/// clears.
#[derive(Clone, Copy, Debug)]
pub struct Fault {
    /// Operation class the fault applies to.
    pub op: OpKind,
    /// 0-based index within that class.
    pub at: usize,
    /// What to inject.
    pub kind: FaultKind,
}

/// One recorded operation.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Operation class.
    pub op: OpKind,
    /// Path the operation targeted.
    pub path: PathBuf,
    /// Label of the injected fault, if one fired (`"eio"`, `"torn-write"`,
    /// …).
    pub injected: Option<&'static str>,
}

/// Seed-driven random fault plan: roughly `density_permille`/1000 of all
/// operations fault, with the kind drawn from the class-appropriate set.
#[derive(Clone, Copy, Debug)]
struct RandomPlan {
    state: u64,
    density_permille: u64,
}

impl RandomPlan {
    fn next(&mut self) -> u64 {
        // xorshift64* — deterministic, seedable, no external deps.
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn decide(&mut self, op: OpKind) -> Option<FaultKind> {
        let roll = self.next();
        if roll % 1000 >= self.density_permille {
            return None;
        }
        let pick = self.next();
        let n = (pick >> 32) as usize % 48;
        Some(match op {
            OpKind::Read => match pick % 4 {
                0 => FaultKind::Eio,
                1 => FaultKind::Vanished,
                2 => FaultKind::ShortRead(n),
                _ => FaultKind::Transient(1 + (pick >> 16) as u32 % 2),
            },
            OpKind::Write => match pick % 4 {
                0 => FaultKind::Eio,
                1 => FaultKind::Enospc,
                2 => FaultKind::TornWrite(n),
                _ => FaultKind::Transient(1 + (pick >> 16) as u32 % 2),
            },
            OpKind::MetadataLen | OpKind::ReadDir | OpKind::RemoveFile => match pick % 3 {
                0 => FaultKind::Eio,
                1 => FaultKind::Vanished,
                _ => FaultKind::Transient(1 + (pick >> 16) as u32 % 2),
            },
            OpKind::SyncFile | OpKind::SyncDir | OpKind::CreateDirAll | OpKind::Rename => {
                match pick % 3 {
                    0 => FaultKind::Eio,
                    1 => FaultKind::Enospc,
                    _ => FaultKind::Transient(1 + (pick >> 16) as u32 % 2),
                }
            }
        })
    }
}

#[derive(Debug, Default)]
struct State {
    counts: BTreeMap<OpKind, usize>,
    scheduled: Vec<Fault>,
    random: Option<RandomPlan>,
    trace: Vec<TraceEntry>,
}

/// A [`Vfs`] wrapper injecting deterministic faults and recording an
/// operation trace. Shareable across threads; the interior state is a
/// mutex so per-class counters and the trace stay consistent.
#[derive(Debug)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    state: Mutex<State>,
}

impl FaultVfs {
    /// Wrap `inner` with an empty schedule (no faults yet).
    pub fn new(inner: Arc<dyn Vfs>) -> FaultVfs {
        FaultVfs {
            inner,
            state: Mutex::new(State::default()),
        }
    }

    /// Wrap `inner` with a seed-driven random fault plan. The same seed
    /// over the same operation sequence injects the same faults;
    /// `density_permille` is the per-operation fault probability in
    /// 1/1000ths (0 = none, 1000 = every op).
    pub fn seeded(inner: Arc<dyn Vfs>, seed: u64, density_permille: u64) -> FaultVfs {
        let vfs = FaultVfs::new(inner);
        {
            let mut st = vfs.lock();
            st.random = Some(RandomPlan {
                // xorshift must not start at 0; splash the seed.
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
                density_permille: density_permille.min(1000),
            });
        }
        vfs
    }

    /// Schedule `kind` on the `at`-th (0-based) operation of class `op`.
    #[must_use]
    pub fn with_fault(self, op: OpKind, at: usize, kind: FaultKind) -> FaultVfs {
        self.lock().scheduled.push(Fault { op, at, kind });
        self
    }

    /// The recorded operation trace so far.
    pub fn trace(&self) -> Vec<TraceEntry> {
        self.lock().trace.clone()
    }

    /// How many operations of class `op` have been attempted.
    pub fn op_count(&self, op: OpKind) -> usize {
        self.lock().counts.get(&op).copied().unwrap_or(0)
    }

    /// How many operations had a fault injected.
    pub fn injected_count(&self) -> usize {
        self.lock()
            .trace
            .iter()
            .filter(|t| t.injected.is_some())
            .count()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Bump the class counter, consult schedule + random plan, record the
    /// trace entry, and return the fault to apply (if any).
    fn decide(&self, op: OpKind, path: &Path) -> Option<FaultKind> {
        let mut st = self.lock();
        let idx = *st.counts.entry(op).or_insert(0);
        *st.counts.entry(op).or_insert(0) += 1;
        let mut fired = st
            .scheduled
            .iter()
            .find(|f| {
                f.op == op
                    && match f.kind {
                        FaultKind::Transient(n) => idx >= f.at && idx < f.at + n as usize,
                        _ => idx == f.at,
                    }
            })
            .map(|f| match f.kind {
                // Inside the window each invocation fails exactly once.
                FaultKind::Transient(_) => FaultKind::Transient(1),
                kind => kind,
            });
        if fired.is_none() {
            if let Some(plan) = &mut st.random {
                fired = plan.decide(op);
            }
        }
        st.trace.push(TraceEntry {
            op,
            path: path.to_path_buf(),
            injected: fired.map(FaultKind::label),
        });
        if spec_obs::enabled() {
            if let Some(kind) = fired {
                spec_obs::count(&format!("vfs.fault.{}", kind.label()), 1);
            }
        }
        fired
    }

    fn err_for(kind: FaultKind, op: OpKind, path: &Path) -> io::Error {
        let detail = format!("injected {} on {} {}", kind.label(), op.label(), path.display());
        match kind {
            FaultKind::Eio => io::Error::other(detail),
            FaultKind::Enospc => io::Error::new(io::ErrorKind::StorageFull, detail),
            FaultKind::Vanished => io::Error::new(io::ErrorKind::NotFound, detail),
            FaultKind::Transient(_) => io::Error::new(io::ErrorKind::Interrupted, detail),
            // Short reads and torn writes do not error — handled inline.
            FaultKind::ShortRead(_) | FaultKind::TornWrite(_) => io::Error::other(detail),
        }
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.decide(OpKind::Read, path) {
            Some(FaultKind::ShortRead(n)) => {
                let mut bytes = self.inner.read(path)?;
                bytes.truncate(n.min(bytes.len()));
                Ok(bytes)
            }
            Some(kind) => Err(Self::err_for(kind, OpKind::Read, path)),
            None => self.inner.read(path),
        }
    }

    fn metadata_len(&self, path: &Path) -> io::Result<u64> {
        match self.decide(OpKind::MetadataLen, path) {
            Some(kind) => Err(Self::err_for(kind, OpKind::MetadataLen, path)),
            None => self.inner.metadata_len(path),
        }
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        match self.decide(OpKind::ReadDir, path) {
            Some(kind) => Err(Self::err_for(kind, OpKind::ReadDir, path)),
            None => self.inner.read_dir(path),
        }
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.decide(OpKind::Write, path) {
            Some(FaultKind::TornWrite(n)) => {
                // Persist a prefix and report success — the post-crash
                // state a checksum or read-back must catch.
                self.inner.write(path, &data[..n.min(data.len())])
            }
            Some(kind) => Err(Self::err_for(kind, OpKind::Write, path)),
            None => self.inner.write(path, data),
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        match self.decide(OpKind::SyncFile, path) {
            Some(kind) => Err(Self::err_for(kind, OpKind::SyncFile, path)),
            None => self.inner.sync_file(path),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.decide(OpKind::Rename, from) {
            Some(kind) => Err(Self::err_for(kind, OpKind::Rename, from)),
            None => self.inner.rename(from, to),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.decide(OpKind::RemoveFile, path) {
            Some(kind) => Err(Self::err_for(kind, OpKind::RemoveFile, path)),
            None => self.inner.remove_file(path),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.decide(OpKind::CreateDirAll, path) {
            Some(kind) => Err(Self::err_for(kind, OpKind::CreateDirAll, path)),
            None => self.inner.create_dir_all(path),
        }
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        match self.decide(OpKind::SyncDir, path) {
            Some(kind) => Err(Self::err_for(kind, OpKind::SyncDir, path)),
            None => self.inner.sync_dir(path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RealVfs;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spec_vfs_fault_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn scheduled_eio_hits_exactly_the_kth_read() {
        let dir = tmp_dir("kth");
        let p = dir.join("f");
        std::fs::write(&p, b"data").unwrap();
        let vfs = FaultVfs::new(Arc::new(RealVfs)).with_fault(OpKind::Read, 1, FaultKind::Eio);
        assert!(vfs.read(&p).is_ok(), "read #0 clean");
        let err = vfs.read(&p).unwrap_err();
        assert!(err.to_string().contains("injected eio"), "{err}");
        assert!(vfs.read(&p).is_ok(), "read #2 clean");
        assert_eq!(vfs.op_count(OpKind::Read), 3);
        assert_eq!(vfs.injected_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_read_is_silent_but_read_verified_catches_it() {
        let dir = tmp_dir("short");
        let p = dir.join("f");
        std::fs::write(&p, b"0123456789").unwrap();
        let vfs =
            FaultVfs::new(Arc::new(RealVfs)).with_fault(OpKind::Read, 0, FaultKind::ShortRead(4));
        // Bare read: silently truncated.
        assert_eq!(vfs.read(&p).unwrap(), b"0123");
        // Verified read with the same fault: UnexpectedEof.
        let vfs =
            FaultVfs::new(Arc::new(RealVfs)).with_fault(OpKind::Read, 0, FaultKind::ShortRead(4));
        let err = vfs.read_verified(&p).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_reports_success_but_truncates() {
        let dir = tmp_dir("torn");
        let p = dir.join("f");
        let vfs =
            FaultVfs::new(Arc::new(RealVfs)).with_fault(OpKind::Write, 0, FaultKind::TornWrite(3));
        vfs.write(&p, b"full payload").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"ful");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_refuses_to_publish_a_torn_temp() {
        let dir = tmp_dir("atomic_torn");
        let p = dir.join("out");
        let vfs =
            FaultVfs::new(Arc::new(RealVfs)).with_fault(OpKind::Write, 0, FaultKind::TornWrite(2));
        let err = vfs.atomic_write(&p, b"payload").unwrap_err();
        assert!(err.to_string().contains("torn write detected"), "{err}");
        assert!(!p.exists(), "torn data must never land under the final name");
        assert!(!dir.join("out.tmp").exists(), "temp cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_fails_n_then_succeeds() {
        let dir = tmp_dir("transient");
        let p = dir.join("f");
        std::fs::write(&p, b"data").unwrap();
        let vfs = FaultVfs::new(Arc::new(RealVfs))
            .with_fault(OpKind::Read, 0, FaultKind::Transient(2));
        assert_eq!(vfs.read(&p).unwrap_err().kind(), io::ErrorKind::Interrupted);
        assert_eq!(vfs.read(&p).unwrap_err().kind(), io::ErrorKind::Interrupted);
        assert_eq!(vfs.read(&p).unwrap(), b"data");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_and_vanished_kinds() {
        let dir = tmp_dir("kinds");
        let p = dir.join("f");
        std::fs::write(&p, b"data").unwrap();
        let vfs = FaultVfs::new(Arc::new(RealVfs))
            .with_fault(OpKind::Write, 0, FaultKind::Enospc)
            .with_fault(OpKind::Read, 0, FaultKind::Vanished);
        assert_eq!(
            vfs.write(&p, b"x").unwrap_err().kind(),
            io::ErrorKind::StorageFull
        );
        assert_eq!(vfs.read(&p).unwrap_err().kind(), io::ErrorKind::NotFound);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_plan_is_deterministic() {
        let dir = tmp_dir("seeded");
        let p = dir.join("f");
        std::fs::write(&p, b"data").unwrap();
        let run = |seed: u64| -> Vec<Option<&'static str>> {
            let vfs = FaultVfs::seeded(Arc::new(RealVfs), seed, 400);
            for _ in 0..32 {
                let _ = vfs.read(&p);
                let _ = vfs.write(&p, b"data");
            }
            vfs.trace().iter().map(|t| t.injected).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same injections");
        assert_ne!(run(7), run(8), "different seed, different plan");
        assert!(
            run(7).iter().any(|i| i.is_some()),
            "density 0.4 over 64 ops must fire at least once"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_density_never_fires() {
        let dir = tmp_dir("zero");
        let p = dir.join("f");
        std::fs::write(&p, b"data").unwrap();
        let vfs = FaultVfs::seeded(Arc::new(RealVfs), 3, 0);
        for _ in 0..64 {
            assert!(vfs.read(&p).is_ok());
        }
        assert_eq!(vfs.injected_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_records_paths_and_ops() {
        let dir = tmp_dir("trace");
        let p = dir.join("f");
        let vfs = FaultVfs::new(Arc::new(RealVfs));
        vfs.write(&p, b"x").unwrap();
        let _ = vfs.read(&p);
        let trace = vfs.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].op, OpKind::Write);
        assert_eq!(trace[1].op, OpKind::Read);
        assert!(trace[1].path.ends_with("f"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
