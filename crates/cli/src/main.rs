//! `spec-trends` — command-line front end for the SPEC Power trend study.
//!
//! ```text
//! spec-trends generate --out DIR [--seed N] [--scale K]
//!                                                write the synthetic report files
//!                                                (1017 × K; replicas differ only in
//!                                                their Result Number line)
//! spec-trends analyze [--data DIR] [--seed N]    run the full study, print the ledger
//! spec-trends explain [--data DIR]               print the filter cascade, with per-file
//!                                                parse-failure reasons
//! spec-trends figures --out DIR [--data DIR]     render all figure SVGs
//! spec-trends table1                             reproduce Table I
//! spec-trends report --out FILE [--data DIR]     write the full markdown report
//! spec-trends doctor --cache-dir DIR             fsck an artifact cache: verify
//!                                                every entry, quarantine corrupt
//!                                                ones, sweep orphaned temp files
//! spec-trends stats [--data DIR] [--cache-dir D] run the full pipeline with
//!                                                instrumentation on and print the
//!                                                per-stage execution/cache table
//!                                                plus every recorded metric
//! spec-trends ingest [--data DIR] [--scale K] [--max-resident-mb M]
//!                                                stream the corpus through the
//!                                                segmented column store; report
//!                                                throughput, peak RSS and the
//!                                                spill gauges. With
//!                                                --max-resident-mb, cold segments
//!                                                spill to disk so ×1000 (~1M
//!                                                reports) runs in bounded memory
//! spec-trends serve [--data DIR] [--addr A] [--cache-dir D] [--poll-ms N]
//!                   [--scale K] [--max-resident-mb M]
//!                   [--shard I/N | --fan-out A1,A2,...]
//!                   [--max-inflight N] [--queue-depth N]
//!                   [--request-deadline-ms N] [--idle-timeout-ms N]
//!                   [--max-header-bytes N] [--drain-timeout-ms N]
//!                                                start the HTTP query daemon:
//!                                                /figures/<n>, /data/<n> (with
//!                                                ?year=YYYY[-YYYY], ?vendor=v[,v...]
//!                                                and ?agg=year filters), /stats,
//!                                                /healthz, /readyz, /shutdown.
//!                                                Keep-alive connections with hard
//!                                                deadlines, a bounded admission
//!                                                queue (503 + Retry-After when
//!                                                full) and graceful drain. Watches
//!                                                --data for new reports; a change
//!                                                re-executes only the touched
//!                                                (year, vendor) partition's stages.
//!                                                With --scale/--max-resident-mb the
//!                                                snapshot streams into an out-of-core
//!                                                row store (×100 corpora in fixed
//!                                                RSS); --shard i/N serves one
//!                                                deterministic partition subset and
//!                                                --fan-out scatter-gathers a shard
//!                                                fleet behind one byte-identical
//!                                                front end
//! ```
//!
//! Without `--data`, commands operate on the built-in synthetic dataset
//! (deterministic in `--seed`).
//!
//! `--cache-dir DIR` attaches a content-addressed artifact cache: every
//! pipeline stage's output is persisted under a key derived from the code
//! version and its inputs, so `figures` after `analyze` re-parses nothing
//! and writes byte-identical output from the cached artifacts.
//!
//! `--threads N` pins the worker-pool size. Precedence: the flag overrides
//! the `SPEC_TRENDS_THREADS` environment variable, which overrides the
//! machine's available parallelism. Results are identical for any setting.
//!
//! Observability (see DESIGN.md §11): `--trace-out FILE` enables the
//! `spec-obs` tracer for the run and writes a Chrome trace-event JSON —
//! load it in `about://tracing` or Perfetto — with one span per executed
//! stage (plus VFS, pool-shard and simulator spans). Setting
//! `SPEC_TRENDS_TRACE=1` enables the same instrumentation without a flag
//! and prints the metrics table to stderr after the run. Instrumentation
//! is off by default and costs one atomic load per probe when disabled.

use std::path::PathBuf;
use std::process::ExitCode;

use spec_analysis::stream::{SpillConfig, StreamConfig, StreamIngest};
use spec_analysis::{
    ArtifactCache, CorpusSource, PipelineDriver, ServeConfig, Server, ShardSpec, SnapshotMode,
    StageId,
};
use spec_diag::TrendsError;
use spec_ssj::Settings;
use spec_synth::{
    for_each_scaled_batch, generate_dataset, generate_dataset_scaled, write_dataset_to_dir,
    SynthConfig,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: spec-trends <generate|analyze|explain|figures|table1|report|export|trends|doctor|stats|ingest|serve> \
         [--out PATH] [--data DIR] [--seed N] [--scale K] [--cache-dir DIR] [--threads N] [--trace-out FILE] \
         [--max-resident-mb M] [--addr HOST:PORT] [--poll-ms N] [--shard I/N] [--fan-out A1,A2,...] \
         [--max-inflight N] [--queue-depth N] \
         [--request-deadline-ms N] [--idle-timeout-ms N] [--max-header-bytes N] [--drain-timeout-ms N]\n\
         \n\
         --scale K     replicate the synthetic corpus K×: `generate` writes the\n\
         \x20             replicas, `ingest` streams them without materializing\n\
         \x20             the corpus (corpus-scaling runs at 10k/100k/1M reports\n\
         \x20             without K separate simulations).\n\
         --max-resident-mb M  (ingest) bound the resident segment set: cold\n\
         \x20             segments spill, checksummed, to a temp directory and\n\
         \x20             reload on demand, so peak memory stays near M plus one\n\
         \x20             batch regardless of corpus size.\n\
         --cache-dir DIR  content-addressed artifact cache; warm runs skip every\n\
         \x20               stage whose inputs are unchanged (figures after analyze\n\
         \x20               re-parses nothing and is byte-identical). Corrupt or\n\
         \x20               torn entries are quarantined and recomputed; `doctor`\n\
         \x20               audits a cache directory offline.\n\
         --threads N   worker threads for generation and the filter cascade.\n\
         \x20             Precedence: --threads > SPEC_TRENDS_THREADS env var >\n\
         \x20             available CPU parallelism. Output is identical for any\n\
         \x20             thread count.\n\
         --trace-out FILE  enable instrumentation and write a Chrome trace-event\n\
         \x20               JSON (about://tracing / Perfetto) for this run.\n\
         \x20               SPEC_TRENDS_TRACE=1 enables the same instrumentation\n\
         \x20               without a flag; `stats` prints the metrics table.\n\
         --addr HOST:PORT  (serve) bind address, default 127.0.0.1:7878.\n\
         --poll-ms N   (serve) corpus-watch poll interval, default 500.\n\
         --shard I/N   (serve) host only the partitions a deterministic hash\n\
         \x20             assigns to shard I of N (one-based). Shards answer\n\
         \x20             /shard/meta and /shard/rows for a front end.\n\
         --fan-out A1,A2,...  (serve) run a front-end daemon with no local\n\
         \x20             snapshot: filtered queries scatter to the listed shard\n\
         \x20             addresses over keep-alive HTTP/1.1 and the gathered\n\
         \x20             rows merge into byte-identical responses. A dead shard\n\
         \x20             degrades to 503 + Retry-After within the request\n\
         \x20             deadline. Mutually exclusive with --shard.\n\
         \x20             serve with --scale or --max-resident-mb streams the\n\
         \x20             corpus into an out-of-core row store (spilled segments\n\
         \x20             are checksummed) instead of materializing it.\n\
         --max-inflight N        (serve) connections served concurrently, default 32.\n\
         --queue-depth N         (serve) admission queue bound; a full queue sheds\n\
         \x20                      new connections with 503 + Retry-After. Default 64.\n\
         --request-deadline-ms N (serve) budget per request: head read, filtered\n\
         \x20                      recompute and response write each observe it\n\
         \x20                      (blown recompute → 503, not memoized). Default 2000.\n\
         --idle-timeout-ms N     (serve) keep-alive idle budget, default 5000.\n\
         --max-header-bytes N    (serve) request-head byte cap (431 past it),\n\
         \x20                      default 8192; minimum 256.\n\
         --drain-timeout-ms N    (serve) grace for in-flight requests after\n\
         \x20                      /shutdown, default 5000."
    );
    ExitCode::from(2)
}

struct Args {
    command: String,
    out: Option<PathBuf>,
    data: Option<PathBuf>,
    seed: u64,
    scale: u32,
    cache_dir: Option<PathBuf>,
    threads: Option<usize>,
    trace_out: Option<PathBuf>,
    max_resident_mb: Option<usize>,
    addr: Option<String>,
    poll_ms: Option<u64>,
    max_inflight: Option<usize>,
    queue_depth: Option<usize>,
    request_deadline_ms: Option<u64>,
    idle_timeout_ms: Option<u64>,
    max_header_bytes: Option<usize>,
    drain_timeout_ms: Option<u64>,
    shard: Option<String>,
    fan_out: Option<String>,
}

fn parse_args() -> Option<Args> {
    parse_arg_list(std::env::args().skip(1))
}

fn parse_arg_list<I: Iterator<Item = String>>(mut args: I) -> Option<Args> {
    let command = args.next()?;
    let mut out = None;
    let mut data = None;
    let mut seed = 3u64;
    let mut scale = 1u32;
    let mut cache_dir = None;
    let mut threads = None;
    let mut trace_out = None;
    let mut max_resident_mb = None;
    let mut addr = None;
    let mut poll_ms = None;
    let mut max_inflight = None;
    let mut queue_depth = None;
    let mut request_deadline_ms = None;
    let mut idle_timeout_ms = None;
    let mut max_header_bytes = None;
    let mut drain_timeout_ms = None;
    let mut shard = None;
    let mut fan_out = None;
    // Shared shape for the serve limit flags: a positive integer.
    fn positive<T: std::str::FromStr + PartialEq + From<u8>>(raw: Option<String>) -> Option<T> {
        let value: T = raw?.parse().ok()?;
        (value != T::from(0)).then_some(value)
    }
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = Some(PathBuf::from(args.next()?)),
            "--data" => data = Some(PathBuf::from(args.next()?)),
            "--seed" => seed = args.next()?.parse().ok()?,
            "--scale" => {
                scale = args.next()?.parse().ok()?;
                if scale == 0 {
                    return None;
                }
            }
            "--cache-dir" => cache_dir = Some(PathBuf::from(args.next()?)),
            "--trace-out" => trace_out = Some(PathBuf::from(args.next()?)),
            "--max-resident-mb" => {
                let mb: usize = args.next()?.parse().ok()?;
                if mb == 0 {
                    return None;
                }
                max_resident_mb = Some(mb);
            }
            "--threads" => {
                let n: usize = args.next()?.parse().ok()?;
                if n == 0 {
                    return None;
                }
                threads = Some(n);
            }
            "--addr" => addr = Some(args.next()?),
            "--poll-ms" => {
                let ms: u64 = args.next()?.parse().ok()?;
                if ms == 0 {
                    return None;
                }
                poll_ms = Some(ms);
            }
            "--max-inflight" => max_inflight = Some(positive::<usize>(args.next())?),
            "--queue-depth" => queue_depth = Some(positive::<usize>(args.next())?),
            "--request-deadline-ms" => {
                request_deadline_ms = Some(positive::<u64>(args.next())?);
            }
            "--idle-timeout-ms" => idle_timeout_ms = Some(positive::<u64>(args.next())?),
            "--max-header-bytes" => {
                let bytes: usize = args.next()?.parse().ok()?;
                // The head must at least fit a request line.
                if bytes < 256 {
                    return None;
                }
                max_header_bytes = Some(bytes);
            }
            "--drain-timeout-ms" => drain_timeout_ms = Some(positive::<u64>(args.next())?),
            "--shard" => shard = Some(args.next()?),
            "--fan-out" => fan_out = Some(args.next()?),
            _ => return None,
        }
    }
    Some(Args {
        command,
        out,
        data,
        seed,
        scale,
        cache_dir,
        threads,
        trace_out,
        max_resident_mb,
        addr,
        poll_ms,
        max_inflight,
        queue_depth,
        request_deadline_ms,
        idle_timeout_ms,
        max_header_bytes,
        drain_timeout_ms,
        shard,
        fan_out,
    })
}

/// Build the stage-graph driver for this invocation: corpus source from
/// `--data`/`--seed`, artifact cache from `--cache-dir`.
fn build_driver(args: &Args) -> spec_diag::Result<PipelineDriver> {
    let source = match &args.data {
        Some(dir) => {
            eprintln!("loading report files from {}", dir.display());
            CorpusSource::Dir(dir.clone())
        }
        None => {
            eprintln!("using synthetic dataset (seed {})", args.seed);
            CorpusSource::Synthetic(SynthConfig {
                seed: args.seed,
                ..SynthConfig::default()
            })
        }
    };
    let mut driver = PipelineDriver::new(source, Settings::default(), args.seed);
    if let Some(dir) = &args.cache_dir {
        driver = driver.with_cache(ArtifactCache::open(dir.clone())?);
    }
    Ok(driver)
}

fn report_cache_activity(driver: &PipelineDriver) {
    if let Some(cache) = driver.cache() {
        eprintln!(
            "cache: {} stage hit(s), {} stage execution(s)",
            driver.hits_total(),
            driver.executed_total()
        );
        let health = cache.health();
        if !health.is_clean() {
            eprintln!(
                "cache health: {} read error(s), {} write error(s), \
                 {} entr(ies) quarantined, {} orphan(s) swept — run \
                 `spec-trends doctor --cache-dir {}` for details",
                health.read_errors,
                health.write_errors,
                health.quarantined,
                health.orphans_swept,
                cache.root().display()
            );
        }
    }
}

/// Reports per streaming-ingest batch (matches the corpus-scaling bench).
const INGEST_BATCH_REPORTS: usize = 4096;

/// RAII guard for a per-process scratch directory under the system temp
/// dir. Removal happens in `Drop`, so the scratch is cleaned up on every
/// exit path — early return, `?`, and panic unwind alike; before this
/// guard, an ingest that panicked mid-stream leaked its spill directory.
struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// `<tmp>/spec-trends-<kind>-<pid>` — the pid suffix is what lets
    /// [`sweep_orphan_scratch`] distinguish live scratch from leaks.
    fn new(kind: &str) -> ScratchDir {
        ScratchDir {
            path: std::env::temp_dir().join(format!("spec-trends-{kind}-{}", std::process::id())),
        }
    }

    fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Remove `spec-trends-<kind>-<pid>` scratch directories in `dir` whose
/// owning process is gone (crashed or SIGKILLed before its guard ran).
/// Directories whose pid is still alive — or whose liveness cannot be
/// determined — are left alone. Returns the removed paths.
fn sweep_orphan_scratch(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut removed = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return removed;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("spec-trends-") else {
            continue;
        };
        // kind-pid, where kind itself never contains the trailing -<pid>.
        let Some((_, pid)) = rest.rsplit_once('-') else {
            continue;
        };
        let Ok(pid) = pid.parse::<u32>() else { continue };
        if pid == std::process::id() || !entry.path().is_dir() {
            continue;
        }
        // /proc is authoritative on Linux; where it doesn't exist we
        // cannot prove the process is dead, so we keep the directory.
        if !std::path::Path::new("/proc").is_dir() {
            continue;
        }
        if std::path::Path::new("/proc").join(pid.to_string()).exists() {
            continue;
        }
        if std::fs::remove_dir_all(entry.path()).is_ok() {
            removed.push(entry.path());
        }
    }
    removed
}

/// `spec-trends ingest`: stream the corpus through the segmented column
/// store and report throughput plus the out-of-core gauges. Without
/// `--data`, streams the synthetic corpus at `--scale` without ever
/// materializing it (×1000 ≈ 1M reports in bounded memory); with `--data`,
/// streams the directory's report files batch-by-batch. `--max-resident-mb`
/// bounds the resident segment set by spilling cold segments to a
/// temporary directory (removed on exit).
fn run_ingest(args: &Args) -> spec_diag::Result<()> {
    // Guard, not a bare path: the spill directory is removed on drop even
    // if the stream panics mid-batch.
    let scratch = ScratchDir::new("ingest");
    let config = StreamConfig {
        segment_rows: tinyframe::DEFAULT_SEGMENT_ROWS,
        spill: args.max_resident_mb.map(|mb| SpillConfig {
            dir: scratch.path().to_path_buf(),
            max_resident_bytes: mb * 1024 * 1024,
        }),
    };
    let data_err = |e: tinyframe::FrameError| {
        TrendsError::new(
            "ingest",
            spec_diag::ErrorKind::Data {
                detail: e.to_string(),
            },
        )
    };
    let mut ingest = StreamIngest::new(&config).map_err(|e| TrendsError::io("ingest", &e))?;
    let start = std::time::Instant::now();
    let result = match &args.data {
        Some(dir) => {
            eprintln!("streaming report files from {}", dir.display());
            let vfs = spec_vfs::default_vfs();
            let paths = spec_analysis::list_report_files(vfs.as_ref(), dir)?;
            paths.chunks(INGEST_BATCH_REPORTS).try_for_each(|chunk| {
                // Slab-packed shared buffers: one arena per batch, shards
                // borrow slices instead of holding per-file Strings.
                let items = spec_analysis::read_inputs_shared(vfs.as_ref(), chunk);
                ingest.push_input_batch(&items)
            })
        }
        None => {
            eprintln!(
                "streaming synthetic dataset (seed {}, scale ×{})",
                args.seed, args.scale
            );
            let base = generate_dataset(&SynthConfig {
                seed: args.seed,
                ..SynthConfig::default()
            });
            for_each_scaled_batch(&base, args.scale, INGEST_BATCH_REPORTS, |batch| {
                ingest.push_batch(batch)
            })
        }
    };
    result.map_err(data_err).map(|()| {
        let seconds = start.elapsed().as_secs_f64();
        let report = ingest.report();
        println!("{}", report.to_markdown());
        println!(
            "ingested {} report(s) in {} batch(es): {:.2} s, {:.0} reports/s",
            report.raw,
            ingest.batches(),
            seconds,
            report.raw as f64 / seconds.max(1e-9),
        );
        let (resident, spilled, resident_bytes, spill_bytes) = {
            let v = ingest.valid_features();
            let (vr, vs, vb, vw) = (
                v.segments_resident(),
                v.segments_spilled(),
                v.resident_bytes(),
                v.spill_bytes_written(),
            );
            let c = ingest.comparable_features();
            (
                vr + c.segments_resident(),
                vs + c.segments_spilled(),
                vb + c.resident_bytes(),
                vw + c.spill_bytes_written(),
            )
        };
        println!(
            "segments: {resident} resident ({:.1} MiB), {spilled} spilled ({:.1} MiB written)",
            resident_bytes as f64 / (1024.0 * 1024.0),
            spill_bytes as f64 / (1024.0 * 1024.0),
        );
        if let Some(kb) = spec_obs::peak_rss_kb() {
            println!("peak RSS: {:.1} MiB (VmHWM)", kb as f64 / 1024.0);
        }
    })
    // `scratch` drops here, removing the spill directory on success,
    // error and unwind alike.
}

fn run_command(args: &Args) -> spec_diag::Result<()> {
    match args.command.as_str() {
        "generate" => {
            let Some(out) = args.out.clone() else {
                return Err(TrendsError::config("generate", "generate requires --out DIR"));
            };
            let dataset = generate_dataset_scaled(
                &SynthConfig {
                    seed: args.seed,
                    ..SynthConfig::default()
                },
                args.scale,
            );
            let paths = write_dataset_to_dir(&dataset, &out)
                .map_err(|e| TrendsError::io("generate", &e))?;
            println!("wrote {} report files to {}", paths.len(), out.display());
            Ok(())
        }
        "analyze" => {
            let mut driver = build_driver(args)?;
            let study = driver.study()?;
            println!("{}", study.set.report.to_markdown());
            let comparisons = study.comparisons();
            let ok = comparisons.iter().filter(|c| c.ok()).count();
            for c in &comparisons {
                println!(
                    "{:28} paper {:>10.3}  measured {:>10.3}  [{}]",
                    c.id,
                    c.paper,
                    c.measured,
                    if c.ok() { "ok" } else { "DEVIATES" }
                );
            }
            println!("\n{ok}/{} checks within tolerance", comparisons.len());
            report_cache_activity(&driver);
            Ok(())
        }
        "explain" => {
            let mut driver = build_driver(args)?;
            let report = driver.filter_report()?;
            println!("{}", report.explain());
            report_cache_activity(&driver);
            Ok(())
        }
        "figures" => {
            let Some(out) = args.out.clone() else {
                return Err(TrendsError::config("figures", "figures requires --out DIR"));
            };
            let mut driver = build_driver(args)?;
            for p in driver.write_figures(&out)? {
                println!("wrote {}", p.display());
            }
            report_cache_activity(&driver);
            Ok(())
        }
        "table1" => {
            let table = spec_analysis::table1::compute(&Settings::default(), args.seed);
            println!("{}", table.to_markdown());
            Ok(())
        }
        "export" => {
            let Some(out) = args.out.clone() else {
                return Err(TrendsError::config("export", "export requires --out DIR"));
            };
            let mut driver = build_driver(args)?;
            for p in driver.write_data(&out)? {
                println!("wrote {}", p.display());
            }
            report_cache_activity(&driver);
            Ok(())
        }
        "trends" => {
            let mut driver = build_driver(args)?;
            let study = driver.study()?;
            use tinyplot::ascii_scatter;
            let idle: Vec<Vec<(f64, f64)>> = study
                .fig5
                .scatter
                .iter()
                .map(|(_, pts)| pts.clone())
                .collect();
            println!(
                "{}",
                ascii_scatter(
                    "idle fraction (idle power / full-load power) by hardware year",
                    &[("Intel", 'i', &idle[0]), ("AMD", 'a', &idle[1])],
                    72,
                    18,
                )
            );
            let eff: Vec<Vec<(f64, f64)>> = study
                .fig3
                .scatter
                .iter()
                .map(|(_, pts)| pts.clone())
                .collect();
            println!(
                "{}",
                ascii_scatter(
                    "overall efficiency (ssj_ops/W) by hardware year",
                    &[("Intel", 'i', &eff[0]), ("AMD", 'a', &eff[1])],
                    72,
                    18,
                )
            );
            report_cache_activity(&driver);
            Ok(())
        }
        "report" => {
            let Some(out) = args.out.clone() else {
                return Err(TrendsError::config("report", "report requires --out FILE"));
            };
            let mut driver = build_driver(args)?;
            let study = driver.study()?;
            // Atomic write: a crash mid-report never leaves a truncated
            // file under the requested name.
            spec_vfs::default_vfs()
                .atomic_write(&out, study.to_markdown().as_bytes())
                .map_err(|e| {
                    TrendsError::io("report", &e).with_origin(out.display().to_string())
                })?;
            println!("wrote {}", out.display());
            report_cache_activity(&driver);
            Ok(())
        }
        "ingest" => run_ingest(args),
        "serve" => run_serve(args),
        "doctor" => {
            let Some(dir) = args.cache_dir.clone() else {
                return Err(TrendsError::config("doctor", "doctor requires --cache-dir DIR"));
            };
            let report = ArtifactCache::fsck(&dir)?;
            println!("cache {}", dir.display());
            print!("{}", report.to_text());
            // Scratch dirs from crashed ingest/serve runs live in the
            // system temp dir, not the cache — sweep those too.
            let swept = sweep_orphan_scratch(&std::env::temp_dir());
            println!("scratch: {} orphaned dir(s) swept", swept.len());
            for path in swept {
                println!("  removed {}", path.display());
            }
            Ok(())
        }
        "stats" => {
            // Instrumentation is forced on for `stats` (main() did it
            // before any pipeline work); the run computes everything in
            // memory and reports where the time and cache traffic went.
            let mut driver = build_driver(args)?;
            driver.export_figures()?;
            driver.export_data()?;
            let stats = driver.stats();
            let mut rows: Vec<(String, String, String)> = StageId::all()
                .iter()
                .map(|id| {
                    let s = stats.get(id).copied().unwrap_or_default();
                    (id.name().to_string(), s.executed.to_string(), s.hits.to_string())
                })
                .collect();
            rows.push((
                "total".to_string(),
                driver.executed_total().to_string(),
                driver.hits_total().to_string(),
            ));
            print!("{}", render_stats_table(&rows));
            println!();
            print!("{}", spec_obs::snapshot().to_table());
            report_cache_activity(&driver);
            Ok(())
        }
        _ => Err(TrendsError::config("cli", format!("unknown command {:?}", args.command))),
    }
}

const COMMANDS: [&str; 12] = [
    "generate", "analyze", "explain", "figures", "table1", "report", "export", "trends", "doctor",
    "stats", "ingest", "serve",
];

/// Render the `stats` invocation table with widths computed from the
/// *rendered rows*, not the header: a counter past 7 digits used to
/// overflow its fixed `{:>8}` column and shear the row out of alignment.
fn render_stats_table(rows: &[(String, String, String)]) -> String {
    let headers = ("stage", "executed", "cache-hit");
    let name_w = rows
        .iter()
        .map(|r| r.0.len())
        .chain([headers.0.len()])
        .max()
        .unwrap_or(0);
    let exec_w = rows
        .iter()
        .map(|r| r.1.len())
        .chain([headers.1.len()])
        .max()
        .unwrap_or(0);
    let hits_w = rows
        .iter()
        .map(|r| r.2.len())
        .chain([headers.2.len()])
        .max()
        .unwrap_or(0);
    let mut out = format!(
        "{:<name_w$}  {:>exec_w$}  {:>hits_w$}\n",
        headers.0, headers.1, headers.2
    );
    for (name, executed, hits) in rows {
        out.push_str(&format!(
            "{name:<name_w$}  {executed:>exec_w$}  {hits:>hits_w$}\n"
        ));
    }
    out
}

/// `spec-trends serve`: bind the query daemon, watch `--data` for corpus
/// changes, block until `/shutdown` (or process signal) and join.
fn run_serve(args: &Args) -> spec_diag::Result<()> {
    let fan_out: Vec<String> = args
        .fan_out
        .as_deref()
        .map(|list| {
            list.split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(String::from)
                .collect()
        })
        .unwrap_or_default();
    if args.fan_out.is_some() && fan_out.is_empty() {
        return Err(TrendsError::config(
            "serve",
            "--fan-out needs at least one shard address",
        ));
    }
    let source = if fan_out.is_empty() {
        match &args.data {
            Some(dir) => CorpusSource::Dir(dir.clone()),
            None => CorpusSource::Synthetic(SynthConfig {
                seed: args.seed,
                ..SynthConfig::default()
            }),
        }
    } else {
        // A fan-out front end holds no local snapshot; the corpus lives
        // behind the shard daemons.
        CorpusSource::Memory(Vec::new())
    };
    let mut config = ServeConfig::new(source);
    config.fan_out = fan_out;
    if let Some(spec) = &args.shard {
        config.shard = Some(ShardSpec::parse(spec).map_err(|e| TrendsError::config("serve", e))?);
    }
    config.scale = args.scale;
    config.max_resident_mb = args.max_resident_mb;
    // --scale past ×1 or a resident bound both imply the corpus may not fit
    // in memory: build the snapshot by streaming into the out-of-core row
    // store instead of materializing the stage graph's merged row vectors.
    if args.max_resident_mb.is_some() || args.scale > 1 {
        config.mode = SnapshotMode::Stream;
    }
    if let Some(addr) = &args.addr {
        config.addr = addr.clone();
    }
    config.seed = args.seed;
    if let Some(dir) = &args.cache_dir {
        config.cache = Some(ArtifactCache::open(dir.clone())?);
    }
    if let Some(n) = args.threads {
        config.threads = n;
    }
    if let Some(ms) = args.poll_ms {
        config.poll_ms = ms;
    }
    if let Some(n) = args.max_inflight {
        config.limits.max_inflight = n;
    }
    if let Some(n) = args.queue_depth {
        config.limits.queue_depth = n;
    }
    if let Some(ms) = args.request_deadline_ms {
        config.limits.request_deadline_ms = ms;
    }
    if let Some(ms) = args.idle_timeout_ms {
        config.limits.idle_timeout_ms = ms;
    }
    if let Some(bytes) = args.max_header_bytes {
        config.limits.max_header_bytes = bytes;
    }
    if let Some(ms) = args.drain_timeout_ms {
        config.limits.drain_timeout_ms = ms;
    }
    // Watch the corpus directory when serving one; synthetic corpora
    // cannot change underneath us.
    config.watch = args.data.clone();
    // Spilled row segments live in a per-process scratch directory whose
    // guard outlives the server, so a drain on any exit path also removes
    // the spill files.
    let scratch = ScratchDir::new("serve");
    config.spill_dir = Some(scratch.path().to_path_buf());
    let server = Server::start(config)?;
    println!("listening on http://{}", server.addr());
    server.wait();
    eprintln!("shutdown requested, draining workers");
    server.shutdown();
    drop(scratch);
    Ok(())
}

/// Write the collected spans as Chrome trace-event JSON (atomically, like
/// every other deliverable). A failed write is an error: the trace was the
/// point of the run.
fn write_trace(path: &std::path::Path) -> spec_diag::Result<()> {
    let spans = spec_obs::take_spans();
    let json = spec_obs::chrome_trace_json(&spans);
    spec_vfs::default_vfs()
        .atomic_write(path, json.as_bytes())
        .map_err(|e| TrendsError::io("trace-out", &e).with_origin(path.display().to_string()))?;
    eprintln!("wrote {} span(s) to {}", spans.len(), path.display());
    if spec_obs::dropped_spans() > 0 {
        eprintln!(
            "note: {} span(s) dropped (ring buffer full)",
            spec_obs::dropped_spans()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    if !COMMANDS.contains(&args.command.as_str()) {
        return usage();
    }
    // Enable instrumentation before any pipeline work: `--trace-out` and
    // the `stats` command force it on; SPEC_TRENDS_TRACE=1 enables it for
    // any command.
    let env_traced = spec_obs::init_from_env();
    if args.trace_out.is_some() || args.command == "stats" || args.command == "serve" {
        // `serve` exposes the latency histograms on /stats, so the daemon
        // always runs instrumented.
        spec_obs::set_enabled(true);
    }
    if let Some(n) = args.threads {
        // Before any parallel work: the global pool is created lazily on
        // first use and its size cannot change afterwards.
        if tinypool::set_global_threads(n).is_err() {
            eprintln!("error: --threads must be set before the pool starts");
            return ExitCode::FAILURE;
        }
    }
    let result = run_command(&args).and_then(|()| {
        if let Some(path) = &args.trace_out {
            write_trace(path)?;
        }
        if env_traced && args.trace_out.is_none() && args.command != "stats" {
            // Env-toggled runs with nowhere to put a trace still report
            // where the time went.
            eprint!("{}", spec_obs::snapshot().to_table());
        }
        Ok(())
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(err.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(items: &[&str]) -> Option<Args> {
        parse_arg_list(items.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let args = parse(&["analyze"]).unwrap();
        assert_eq!(args.command, "analyze");
        assert_eq!(args.seed, 3);
        assert!(args.out.is_none());
        assert!(args.data.is_none());
        assert!(args.cache_dir.is_none());
    }

    #[test]
    fn all_flags() {
        let args = parse(&[
            "figures", "--out", "figs", "--data", "d", "--seed", "42", "--threads", "4",
            "--cache-dir", "c",
        ])
        .unwrap();
        assert_eq!(args.command, "figures");
        assert_eq!(args.out.as_deref(), Some(std::path::Path::new("figs")));
        assert_eq!(args.data.as_deref(), Some(std::path::Path::new("d")));
        assert_eq!(args.seed, 42);
        assert_eq!(args.threads, Some(4));
        assert_eq!(args.cache_dir.as_deref(), Some(std::path::Path::new("c")));
    }

    #[test]
    fn rejects_unknown_flags_and_bad_seed() {
        assert!(parse(&["analyze", "--bogus"]).is_none());
        assert!(parse(&["analyze", "--seed", "not-a-number"]).is_none());
        assert!(parse(&["analyze", "--seed"]).is_none());
        assert!(parse(&["analyze", "--cache-dir"]).is_none());
        assert!(parse(&[]).is_none());
    }

    #[test]
    fn scale_flag_validation() {
        assert_eq!(parse(&["generate"]).unwrap().scale, 1);
        assert_eq!(
            parse(&["generate", "--scale", "10"]).unwrap().scale,
            10
        );
        assert!(parse(&["generate", "--scale", "0"]).is_none());
        assert!(parse(&["generate", "--scale", "many"]).is_none());
        assert!(parse(&["generate", "--scale"]).is_none());
    }

    #[test]
    fn threads_flag_validation() {
        assert_eq!(parse(&["analyze"]).unwrap().threads, None);
        assert_eq!(
            parse(&["analyze", "--threads", "8"]).unwrap().threads,
            Some(8)
        );
        assert!(parse(&["analyze", "--threads", "0"]).is_none());
        assert!(parse(&["analyze", "--threads", "lots"]).is_none());
        assert!(parse(&["analyze", "--threads"]).is_none());
    }

    #[test]
    fn missing_required_out_is_a_config_error() {
        let args = parse(&["figures"]).unwrap();
        let err = run_command(&args).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--out"));
    }

    #[test]
    fn doctor_requires_cache_dir() {
        let args = parse(&["doctor"]).unwrap();
        let err = run_command(&args).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--cache-dir"));
    }

    #[test]
    fn doctor_is_a_known_command() {
        assert!(COMMANDS.contains(&"doctor"));
    }

    #[test]
    fn stats_is_a_known_command() {
        assert!(COMMANDS.contains(&"stats"));
    }

    #[test]
    fn ingest_is_a_known_command() {
        assert!(COMMANDS.contains(&"ingest"));
    }

    #[test]
    fn max_resident_mb_flag_validation() {
        assert_eq!(parse(&["ingest"]).unwrap().max_resident_mb, None);
        assert_eq!(
            parse(&["ingest", "--max-resident-mb", "128"])
                .unwrap()
                .max_resident_mb,
            Some(128)
        );
        assert!(parse(&["ingest", "--max-resident-mb", "0"]).is_none());
        assert!(parse(&["ingest", "--max-resident-mb", "big"]).is_none());
        assert!(parse(&["ingest", "--max-resident-mb"]).is_none());
    }

    #[test]
    fn ingest_streams_the_synthetic_corpus_with_spill() {
        // 1 MiB resident budget forces eviction through the real spill
        // store even at ×1; a failure anywhere in the cascade surfaces
        // as an error here.
        let args = parse(&["ingest", "--max-resident-mb", "1"]).unwrap();
        run_command(&args).unwrap();
    }

    #[test]
    fn serve_is_a_known_command() {
        assert!(COMMANDS.contains(&"serve"));
    }

    #[test]
    fn serve_flags_parse() {
        let args = parse(&["serve", "--addr", "127.0.0.1:0", "--poll-ms", "50"]).unwrap();
        assert_eq!(args.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(args.poll_ms, Some(50));
        assert!(parse(&["serve", "--poll-ms", "0"]).is_none());
        assert!(parse(&["serve", "--addr"]).is_none());
    }

    #[test]
    fn serve_limit_flags_parse() {
        let args = parse(&[
            "serve",
            "--max-inflight", "8",
            "--queue-depth", "16",
            "--request-deadline-ms", "750",
            "--idle-timeout-ms", "3000",
            "--max-header-bytes", "4096",
            "--drain-timeout-ms", "1500",
        ])
        .unwrap();
        assert_eq!(args.max_inflight, Some(8));
        assert_eq!(args.queue_depth, Some(16));
        assert_eq!(args.request_deadline_ms, Some(750));
        assert_eq!(args.idle_timeout_ms, Some(3000));
        assert_eq!(args.max_header_bytes, Some(4096));
        assert_eq!(args.drain_timeout_ms, Some(1500));
        // Unset flags leave the daemon defaults in place.
        let defaults = parse(&["serve"]).unwrap();
        assert_eq!(defaults.max_inflight, None);
        assert_eq!(defaults.queue_depth, None);
    }

    #[test]
    fn serve_shard_and_fan_out_flags_parse() {
        let args = parse(&["serve", "--shard", "1/2"]).unwrap();
        assert_eq!(args.shard.as_deref(), Some("1/2"));
        assert_eq!(args.fan_out, None);
        let args = parse(&["serve", "--fan-out", "127.0.0.1:7001,127.0.0.1:7002"]).unwrap();
        assert_eq!(args.fan_out.as_deref(), Some("127.0.0.1:7001,127.0.0.1:7002"));
        // The shard spec is validated when the server is configured, not
        // at flag-parse time; a missing value still fails here.
        assert!(parse(&["serve", "--shard"]).is_none());
        assert!(parse(&["serve", "--fan-out"]).is_none());
    }

    #[test]
    fn serve_rejects_bad_shard_spec_and_empty_fan_out() {
        let args = parse(&["serve", "--addr", "127.0.0.1:0", "--shard", "three/4"]).unwrap();
        let err = run_serve(&args).unwrap_err();
        assert!(err.to_string().contains("shard"), "{err}");
        let args = parse(&["serve", "--addr", "127.0.0.1:0", "--fan-out", " , "]).unwrap();
        let err = run_serve(&args).unwrap_err();
        assert!(err.to_string().contains("fan-out"), "{err}");
        // --shard and --fan-out on one daemon is a configuration error
        // (a shard owns rows, a front end owns none).
        let args = parse(&[
            "serve",
            "--addr", "127.0.0.1:0",
            "--shard", "1/2",
            "--fan-out", "127.0.0.1:7001",
        ])
        .unwrap();
        let err = run_serve(&args).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn serve_limit_flags_reject_degenerate_values() {
        assert!(parse(&["serve", "--max-inflight", "0"]).is_none());
        assert!(parse(&["serve", "--queue-depth", "0"]).is_none());
        assert!(parse(&["serve", "--request-deadline-ms", "0"]).is_none());
        assert!(parse(&["serve", "--idle-timeout-ms", "none"]).is_none());
        // Below the request-line floor.
        assert!(parse(&["serve", "--max-header-bytes", "255"]).is_none());
        assert!(parse(&["serve", "--drain-timeout-ms"]).is_none());
    }

    #[test]
    fn stats_table_widths_follow_the_widest_rendered_cell() {
        // Counters past 7 digits used to overflow the fixed-width column
        // and shear the table; widths now come from the rows themselves.
        let rows = vec![
            ("ingest".to_string(), "123456789012".to_string(), "0".to_string()),
            ("total".to_string(), "123456789012".to_string(), "7".to_string()),
        ];
        let table = render_stats_table(&rows);
        let widths: Vec<Vec<usize>> = table
            .lines()
            .map(|l| l.split_whitespace().map(str::len).collect())
            .collect();
        // Every line splits into exactly three columns...
        assert!(widths.iter().all(|w| w.len() == 3), "{table}");
        // ...and numeric columns are right-aligned: each line has the
        // same total width.
        let lens: Vec<usize> = table.lines().map(str::len).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{table}");
        // The CI smoke grep contract still holds: `total` is at line
        // start followed by spaces and the executed count.
        assert!(table.lines().last().unwrap().starts_with("total "));
    }

    #[test]
    fn scratch_guard_removes_dir_even_on_panic() {
        let path = {
            let scratch = ScratchDir::new("guard-test");
            std::fs::create_dir_all(scratch.path().join("spill")).unwrap();
            let path = scratch.path().to_path_buf();
            let result = std::panic::catch_unwind(|| panic!("mid-ingest failure"));
            assert!(result.is_err());
            assert!(path.exists(), "guard must not fire early");
            path
        };
        assert!(!path.exists(), "guard removes the scratch dir on drop");
    }

    #[test]
    fn sweep_removes_dead_pid_scratch_and_keeps_live() {
        let base = std::env::temp_dir().join(format!("spec_sweep_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        // A pid that cannot exist (beyond pid_max) → orphan.
        let dead = base.join("spec-trends-ingest-4291999999");
        // Our own pid → live, must survive.
        let live = base.join(format!("spec-trends-serve-{}", std::process::id()));
        // No pid suffix → not ours to touch.
        let other = base.join("spec-trends-notascratch");
        for d in [&dead, &live, &other] {
            std::fs::create_dir_all(d).unwrap();
        }
        let removed = sweep_orphan_scratch(&base);
        assert_eq!(removed, vec![dead.clone()]);
        assert!(!dead.exists());
        assert!(live.exists());
        assert!(other.exists());
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn trace_out_flag_parses() {
        let args = parse(&["analyze", "--trace-out", "t.json"]).unwrap();
        assert_eq!(
            args.trace_out.as_deref(),
            Some(std::path::Path::new("t.json"))
        );
        assert!(parse(&["analyze"]).unwrap().trace_out.is_none());
        assert!(parse(&["analyze", "--trace-out"]).is_none());
    }
}
