//! `spec-trends` — command-line front end for the SPEC Power trend study.
//!
//! ```text
//! spec-trends generate --out DIR [--seed N]      write the 1017 synthetic report files
//! spec-trends analyze [--data DIR] [--seed N]    run the full study, print the ledger
//! spec-trends figures --out DIR [--data DIR]     render all figure SVGs
//! spec-trends table1                             reproduce Table I
//! spec-trends report --out FILE [--data DIR]     write the full markdown report
//! ```
//!
//! Without `--data`, commands operate on the built-in synthetic dataset
//! (deterministic in `--seed`).
//!
//! `--threads N` pins the worker-pool size. Precedence: the flag overrides
//! the `SPEC_TRENDS_THREADS` environment variable, which overrides the
//! machine's available parallelism. Results are identical for any setting.

use std::path::PathBuf;
use std::process::ExitCode;

use spec_analysis::{load_from_dir, load_from_texts_parallel, run_study, AnalysisSet, Study};
use spec_ssj::Settings;
use spec_synth::{generate_dataset, write_dataset_to_dir, SynthConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: spec-trends <generate|analyze|figures|table1|report|export|trends> \
         [--out PATH] [--data DIR] [--seed N] [--threads N]\n\
         \n\
         --threads N   worker threads for generation and the filter cascade.\n\
         \x20             Precedence: --threads > SPEC_TRENDS_THREADS env var >\n\
         \x20             available CPU parallelism. Output is identical for any\n\
         \x20             thread count."
    );
    ExitCode::from(2)
}

struct Args {
    command: String,
    out: Option<PathBuf>,
    data: Option<PathBuf>,
    seed: u64,
    threads: Option<usize>,
}

fn parse_args() -> Option<Args> {
    parse_arg_list(std::env::args().skip(1))
}

fn parse_arg_list<I: Iterator<Item = String>>(mut args: I) -> Option<Args> {
    let command = args.next()?;
    let mut out = None;
    let mut data = None;
    let mut seed = 3u64;
    let mut threads = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = Some(PathBuf::from(args.next()?)),
            "--data" => data = Some(PathBuf::from(args.next()?)),
            "--seed" => seed = args.next()?.parse().ok()?,
            "--threads" => {
                let n: usize = args.next()?.parse().ok()?;
                if n == 0 {
                    return None;
                }
                threads = Some(n);
            }
            _ => return None,
        }
    }
    Some(Args {
        command,
        out,
        data,
        seed,
        threads,
    })
}

fn load_set(args: &Args) -> std::io::Result<AnalysisSet> {
    match &args.data {
        Some(dir) => {
            eprintln!("loading report files from {}", dir.display());
            load_from_dir(dir)
        }
        None => {
            eprintln!("generating synthetic dataset (seed {})", args.seed);
            let dataset = generate_dataset(&SynthConfig {
                seed: args.seed,
                ..SynthConfig::default()
            });
            Ok(load_from_texts_parallel(&dataset.texts().collect::<Vec<_>>()))
        }
    }
}

fn build_study(args: &Args) -> std::io::Result<Study> {
    let set = load_set(args)?;
    Ok(run_study(set, &Settings::default(), args.seed))
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    if let Some(n) = args.threads {
        // Before any parallel work: the global pool is created lazily on
        // first use and its size cannot change afterwards.
        if tinypool::set_global_threads(n).is_err() {
            eprintln!("error: --threads must be set before the pool starts");
            return ExitCode::FAILURE;
        }
    }
    let result = match args.command.as_str() {
        "generate" => {
            let Some(out) = args.out.clone() else {
                eprintln!("generate requires --out DIR");
                return usage();
            };
            let dataset = generate_dataset(&SynthConfig {
                seed: args.seed,
                ..SynthConfig::default()
            });
            write_dataset_to_dir(&dataset, &out).map(|paths| {
                println!("wrote {} report files to {}", paths.len(), out.display());
            })
        }
        "analyze" => build_study(&args).map(|study| {
            println!("{}", study.set.report.to_markdown());
            let comparisons = study.comparisons();
            let ok = comparisons.iter().filter(|c| c.ok()).count();
            for c in &comparisons {
                println!(
                    "{:28} paper {:>10.3}  measured {:>10.3}  [{}]",
                    c.id,
                    c.paper,
                    c.measured,
                    if c.ok() { "ok" } else { "DEVIATES" }
                );
            }
            println!("\n{ok}/{} checks within tolerance", comparisons.len());
        }),
        "figures" => {
            let Some(out) = args.out.clone() else {
                eprintln!("figures requires --out DIR");
                return usage();
            };
            build_study(&args).and_then(|study| {
                study.write_figures(&out).map(|paths| {
                    for p in paths {
                        println!("wrote {}", p.display());
                    }
                })
            })
        }
        "table1" => {
            let table = spec_analysis::table1::compute(&Settings::default(), args.seed);
            println!("{}", table.to_markdown());
            Ok(())
        }
        "export" => {
            let Some(out) = args.out.clone() else {
                eprintln!("export requires --out DIR");
                return usage();
            };
            build_study(&args).and_then(|study| {
                study.write_data(&out).map(|paths| {
                    for p in paths {
                        println!("wrote {}", p.display());
                    }
                })
            })
        }
        "trends" => build_study(&args).map(|study| {
            use tinyplot::ascii_scatter;
            let idle: Vec<Vec<(f64, f64)>> = study
                .fig5
                .scatter
                .iter()
                .map(|(_, pts)| pts.clone())
                .collect();
            println!(
                "{}",
                ascii_scatter(
                    "idle fraction (idle power / full-load power) by hardware year",
                    &[("Intel", 'i', &idle[0]), ("AMD", 'a', &idle[1])],
                    72,
                    18,
                )
            );
            let eff: Vec<Vec<(f64, f64)>> = study
                .fig3
                .scatter
                .iter()
                .map(|(_, pts)| pts.clone())
                .collect();
            println!(
                "{}",
                ascii_scatter(
                    "overall efficiency (ssj_ops/W) by hardware year",
                    &[("Intel", 'i', &eff[0]), ("AMD", 'a', &eff[1])],
                    72,
                    18,
                )
            );
        }),
        "report" => {
            let Some(out) = args.out.clone() else {
                eprintln!("report requires --out FILE");
                return usage();
            };
            build_study(&args).and_then(|study| {
                std::fs::write(&out, study.to_markdown()).map(|()| {
                    println!("wrote {}", out.display());
                })
            })
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(items: &[&str]) -> Option<Args> {
        parse_arg_list(items.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let args = parse(&["analyze"]).unwrap();
        assert_eq!(args.command, "analyze");
        assert_eq!(args.seed, 3);
        assert!(args.out.is_none());
        assert!(args.data.is_none());
    }

    #[test]
    fn all_flags() {
        let args = parse(&[
            "figures", "--out", "figs", "--data", "d", "--seed", "42", "--threads", "4",
        ])
        .unwrap();
        assert_eq!(args.command, "figures");
        assert_eq!(args.out.as_deref(), Some(std::path::Path::new("figs")));
        assert_eq!(args.data.as_deref(), Some(std::path::Path::new("d")));
        assert_eq!(args.seed, 42);
        assert_eq!(args.threads, Some(4));
    }

    #[test]
    fn rejects_unknown_flags_and_bad_seed() {
        assert!(parse(&["analyze", "--bogus"]).is_none());
        assert!(parse(&["analyze", "--seed", "not-a-number"]).is_none());
        assert!(parse(&["analyze", "--seed"]).is_none());
        assert!(parse(&[]).is_none());
    }

    #[test]
    fn threads_flag_validation() {
        assert_eq!(parse(&["analyze"]).unwrap().threads, None);
        assert_eq!(
            parse(&["analyze", "--threads", "8"]).unwrap().threads,
            Some(8)
        );
        assert!(parse(&["analyze", "--threads", "0"]).is_none());
        assert!(parse(&["analyze", "--threads", "lots"]).is_none());
        assert!(parse(&["analyze", "--threads"]).is_none());
    }
}
