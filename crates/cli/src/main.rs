//! `spec-trends` — command-line front end for the SPEC Power trend study.
//!
//! ```text
//! spec-trends generate --out DIR [--seed N]      write the 1017 synthetic report files
//! spec-trends analyze [--data DIR] [--seed N]    run the full study, print the ledger
//! spec-trends explain [--data DIR]               print the filter cascade, with per-file
//!                                                parse-failure reasons
//! spec-trends figures --out DIR [--data DIR]     render all figure SVGs
//! spec-trends table1                             reproduce Table I
//! spec-trends report --out FILE [--data DIR]     write the full markdown report
//! spec-trends doctor --cache-dir DIR             fsck an artifact cache: verify
//!                                                every entry, quarantine corrupt
//!                                                ones, sweep orphaned temp files
//! ```
//!
//! Without `--data`, commands operate on the built-in synthetic dataset
//! (deterministic in `--seed`).
//!
//! `--cache-dir DIR` attaches a content-addressed artifact cache: every
//! pipeline stage's output is persisted under a key derived from the code
//! version and its inputs, so `figures` after `analyze` re-parses nothing
//! and writes byte-identical output from the cached artifacts.
//!
//! `--threads N` pins the worker-pool size. Precedence: the flag overrides
//! the `SPEC_TRENDS_THREADS` environment variable, which overrides the
//! machine's available parallelism. Results are identical for any setting.

use std::path::PathBuf;
use std::process::ExitCode;

use spec_analysis::{ArtifactCache, CorpusSource, PipelineDriver};
use spec_diag::TrendsError;
use spec_ssj::Settings;
use spec_synth::{generate_dataset, write_dataset_to_dir, SynthConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: spec-trends <generate|analyze|explain|figures|table1|report|export|trends|doctor> \
         [--out PATH] [--data DIR] [--seed N] [--cache-dir DIR] [--threads N]\n\
         \n\
         --cache-dir DIR  content-addressed artifact cache; warm runs skip every\n\
         \x20               stage whose inputs are unchanged (figures after analyze\n\
         \x20               re-parses nothing and is byte-identical). Corrupt or\n\
         \x20               torn entries are quarantined and recomputed; `doctor`\n\
         \x20               audits a cache directory offline.\n\
         --threads N   worker threads for generation and the filter cascade.\n\
         \x20             Precedence: --threads > SPEC_TRENDS_THREADS env var >\n\
         \x20             available CPU parallelism. Output is identical for any\n\
         \x20             thread count."
    );
    ExitCode::from(2)
}

struct Args {
    command: String,
    out: Option<PathBuf>,
    data: Option<PathBuf>,
    seed: u64,
    cache_dir: Option<PathBuf>,
    threads: Option<usize>,
}

fn parse_args() -> Option<Args> {
    parse_arg_list(std::env::args().skip(1))
}

fn parse_arg_list<I: Iterator<Item = String>>(mut args: I) -> Option<Args> {
    let command = args.next()?;
    let mut out = None;
    let mut data = None;
    let mut seed = 3u64;
    let mut cache_dir = None;
    let mut threads = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = Some(PathBuf::from(args.next()?)),
            "--data" => data = Some(PathBuf::from(args.next()?)),
            "--seed" => seed = args.next()?.parse().ok()?,
            "--cache-dir" => cache_dir = Some(PathBuf::from(args.next()?)),
            "--threads" => {
                let n: usize = args.next()?.parse().ok()?;
                if n == 0 {
                    return None;
                }
                threads = Some(n);
            }
            _ => return None,
        }
    }
    Some(Args {
        command,
        out,
        data,
        seed,
        cache_dir,
        threads,
    })
}

/// Build the stage-graph driver for this invocation: corpus source from
/// `--data`/`--seed`, artifact cache from `--cache-dir`.
fn build_driver(args: &Args) -> spec_diag::Result<PipelineDriver> {
    let source = match &args.data {
        Some(dir) => {
            eprintln!("loading report files from {}", dir.display());
            CorpusSource::Dir(dir.clone())
        }
        None => {
            eprintln!("using synthetic dataset (seed {})", args.seed);
            CorpusSource::Synthetic(SynthConfig {
                seed: args.seed,
                ..SynthConfig::default()
            })
        }
    };
    let mut driver = PipelineDriver::new(source, Settings::default(), args.seed);
    if let Some(dir) = &args.cache_dir {
        driver = driver.with_cache(ArtifactCache::open(dir.clone())?);
    }
    Ok(driver)
}

fn report_cache_activity(driver: &PipelineDriver) {
    if let Some(cache) = driver.cache() {
        eprintln!(
            "cache: {} stage hit(s), {} stage execution(s)",
            driver.hits_total(),
            driver.executed_total()
        );
        let health = cache.health();
        if !health.is_clean() {
            eprintln!(
                "cache health: {} read error(s), {} write error(s), \
                 {} entr(ies) quarantined, {} orphan(s) swept — run \
                 `spec-trends doctor --cache-dir {}` for details",
                health.read_errors,
                health.write_errors,
                health.quarantined,
                health.orphans_swept,
                cache.root().display()
            );
        }
    }
}

fn run_command(args: &Args) -> spec_diag::Result<()> {
    match args.command.as_str() {
        "generate" => {
            let Some(out) = args.out.clone() else {
                return Err(TrendsError::config("generate", "generate requires --out DIR"));
            };
            let dataset = generate_dataset(&SynthConfig {
                seed: args.seed,
                ..SynthConfig::default()
            });
            let paths = write_dataset_to_dir(&dataset, &out)
                .map_err(|e| TrendsError::io("generate", &e))?;
            println!("wrote {} report files to {}", paths.len(), out.display());
            Ok(())
        }
        "analyze" => {
            let mut driver = build_driver(args)?;
            let study = driver.study()?;
            println!("{}", study.set.report.to_markdown());
            let comparisons = study.comparisons();
            let ok = comparisons.iter().filter(|c| c.ok()).count();
            for c in &comparisons {
                println!(
                    "{:28} paper {:>10.3}  measured {:>10.3}  [{}]",
                    c.id,
                    c.paper,
                    c.measured,
                    if c.ok() { "ok" } else { "DEVIATES" }
                );
            }
            println!("\n{ok}/{} checks within tolerance", comparisons.len());
            report_cache_activity(&driver);
            Ok(())
        }
        "explain" => {
            let mut driver = build_driver(args)?;
            let report = driver.filter_report()?;
            println!("{}", report.explain());
            report_cache_activity(&driver);
            Ok(())
        }
        "figures" => {
            let Some(out) = args.out.clone() else {
                return Err(TrendsError::config("figures", "figures requires --out DIR"));
            };
            let mut driver = build_driver(args)?;
            for p in driver.write_figures(&out)? {
                println!("wrote {}", p.display());
            }
            report_cache_activity(&driver);
            Ok(())
        }
        "table1" => {
            let table = spec_analysis::table1::compute(&Settings::default(), args.seed);
            println!("{}", table.to_markdown());
            Ok(())
        }
        "export" => {
            let Some(out) = args.out.clone() else {
                return Err(TrendsError::config("export", "export requires --out DIR"));
            };
            let mut driver = build_driver(args)?;
            for p in driver.write_data(&out)? {
                println!("wrote {}", p.display());
            }
            report_cache_activity(&driver);
            Ok(())
        }
        "trends" => {
            let mut driver = build_driver(args)?;
            let study = driver.study()?;
            use tinyplot::ascii_scatter;
            let idle: Vec<Vec<(f64, f64)>> = study
                .fig5
                .scatter
                .iter()
                .map(|(_, pts)| pts.clone())
                .collect();
            println!(
                "{}",
                ascii_scatter(
                    "idle fraction (idle power / full-load power) by hardware year",
                    &[("Intel", 'i', &idle[0]), ("AMD", 'a', &idle[1])],
                    72,
                    18,
                )
            );
            let eff: Vec<Vec<(f64, f64)>> = study
                .fig3
                .scatter
                .iter()
                .map(|(_, pts)| pts.clone())
                .collect();
            println!(
                "{}",
                ascii_scatter(
                    "overall efficiency (ssj_ops/W) by hardware year",
                    &[("Intel", 'i', &eff[0]), ("AMD", 'a', &eff[1])],
                    72,
                    18,
                )
            );
            report_cache_activity(&driver);
            Ok(())
        }
        "report" => {
            let Some(out) = args.out.clone() else {
                return Err(TrendsError::config("report", "report requires --out FILE"));
            };
            let mut driver = build_driver(args)?;
            let study = driver.study()?;
            // Atomic write: a crash mid-report never leaves a truncated
            // file under the requested name.
            spec_vfs::default_vfs()
                .atomic_write(&out, study.to_markdown().as_bytes())
                .map_err(|e| {
                    TrendsError::io("report", &e).with_origin(out.display().to_string())
                })?;
            println!("wrote {}", out.display());
            report_cache_activity(&driver);
            Ok(())
        }
        "doctor" => {
            let Some(dir) = args.cache_dir.clone() else {
                return Err(TrendsError::config("doctor", "doctor requires --cache-dir DIR"));
            };
            let report = ArtifactCache::fsck(&dir)?;
            println!("cache {}", dir.display());
            print!("{}", report.to_text());
            Ok(())
        }
        _ => Err(TrendsError::config("cli", format!("unknown command {:?}", args.command))),
    }
}

const COMMANDS: [&str; 9] = [
    "generate", "analyze", "explain", "figures", "table1", "report", "export", "trends", "doctor",
];

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    if !COMMANDS.contains(&args.command.as_str()) {
        return usage();
    }
    if let Some(n) = args.threads {
        // Before any parallel work: the global pool is created lazily on
        // first use and its size cannot change afterwards.
        if tinypool::set_global_threads(n).is_err() {
            eprintln!("error: --threads must be set before the pool starts");
            return ExitCode::FAILURE;
        }
    }
    match run_command(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(err.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(items: &[&str]) -> Option<Args> {
        parse_arg_list(items.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let args = parse(&["analyze"]).unwrap();
        assert_eq!(args.command, "analyze");
        assert_eq!(args.seed, 3);
        assert!(args.out.is_none());
        assert!(args.data.is_none());
        assert!(args.cache_dir.is_none());
    }

    #[test]
    fn all_flags() {
        let args = parse(&[
            "figures", "--out", "figs", "--data", "d", "--seed", "42", "--threads", "4",
            "--cache-dir", "c",
        ])
        .unwrap();
        assert_eq!(args.command, "figures");
        assert_eq!(args.out.as_deref(), Some(std::path::Path::new("figs")));
        assert_eq!(args.data.as_deref(), Some(std::path::Path::new("d")));
        assert_eq!(args.seed, 42);
        assert_eq!(args.threads, Some(4));
        assert_eq!(args.cache_dir.as_deref(), Some(std::path::Path::new("c")));
    }

    #[test]
    fn rejects_unknown_flags_and_bad_seed() {
        assert!(parse(&["analyze", "--bogus"]).is_none());
        assert!(parse(&["analyze", "--seed", "not-a-number"]).is_none());
        assert!(parse(&["analyze", "--seed"]).is_none());
        assert!(parse(&["analyze", "--cache-dir"]).is_none());
        assert!(parse(&[]).is_none());
    }

    #[test]
    fn threads_flag_validation() {
        assert_eq!(parse(&["analyze"]).unwrap().threads, None);
        assert_eq!(
            parse(&["analyze", "--threads", "8"]).unwrap().threads,
            Some(8)
        );
        assert!(parse(&["analyze", "--threads", "0"]).is_none());
        assert!(parse(&["analyze", "--threads", "lots"]).is_none());
        assert!(parse(&["analyze", "--threads"]).is_none());
    }

    #[test]
    fn missing_required_out_is_a_config_error() {
        let args = parse(&["figures"]).unwrap();
        let err = run_command(&args).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--out"));
    }

    #[test]
    fn doctor_requires_cache_dir() {
        let args = parse(&["doctor"]).unwrap();
        let err = run_command(&args).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--cache-dir"));
    }

    #[test]
    fn doctor_is_a_known_command() {
        assert!(COMMANDS.contains(&"doctor"));
    }
}
