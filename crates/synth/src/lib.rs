//! # spec-synth
//!
//! The calibrated market-and-submission model that substitutes for the 1017
//! result files on spec.org (see DESIGN.md §1).
//!
//! * [`lineup`] — Intel and AMD server CPU generations 2005–2024 with SKUs
//!   and per-generation behavioural parameters for the `spec-ssj` simulator;
//! * [`market`] — the deterministic per-year submission plan (valid counts,
//!   excluded topologies, non-x86/desktop outliers, stage-1 anomalies) plus
//!   OS/JVM/manufacturer sampling; the plan reproduces the paper's filter
//!   cascade exactly: 1017 → 960 → 676;
//! * [`params`] — SKU → concrete [`spec_model::SystemConfig`] +
//!   [`spec_ssj::SutModel`], including the package-power-cap turbo solve;
//! * [`anomalies`] — text-level corruption for each stage-1 filter category;
//! * [`dataset`] — parallel generation of all submissions as report files
//!   ([`generate_dataset`], [`write_dataset_to_dir`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod anomalies;
pub mod dataset;
pub mod lineup;
pub mod market;
pub mod params;

pub use dataset::{
    for_each_scaled_batch, generate_dataset, generate_dataset_scaled, write_dataset_to_dir,
    Category, GeneratedDataset, Submission, SynthConfig,
};
pub use lineup::{Generation, Sku};
pub use market::{submission_plan, AnomalyKind, YearPlan};
pub use params::{build_system, SampledSystem};
