//! Text-level corruption of otherwise valid reports.
//!
//! The paper's stage-1 filters exist because real submissions contain
//! bookkeeping defects. Each injector takes the canonical text of a valid
//! run and produces a file that fails validation for *exactly one* category,
//! so the filter cascade's per-category counts can be asserted precisely.

use spec_model::YearMonth;

use crate::market::AnomalyKind;

/// Apply the corruption for `kind` to a canonical report text.
///
/// `alt_cpu` supplies the second model name used by the ambiguous-CPU
/// injector.
pub fn inject(kind: AnomalyKind, text: &str, alt_cpu: &str) -> String {
    match kind {
        // Status-based kinds are handled at RunResult level by the caller;
        // the text already carries the Non-Compliant status. Nothing to do.
        AnomalyKind::NotAccepted => text.to_string(),
        AnomalyKind::AmbiguousDate => transform_line(text, "Hardware Availability:", |value| {
            let next = YearMonth::parse(value)
                .map(|d| d.add_months(1).to_string())
                .unwrap_or_else(|_| "Jul-2014".to_string());
            format!("{value} or {next}")
        }),
        // Implausible dates are valid-looking dates outside the window;
        // handled at RunResult level. Nothing to do at text level.
        AnomalyKind::ImplausibleDate => text.to_string(),
        AnomalyKind::AmbiguousCpuName => {
            transform_line(text, "CPU Name:", |value| format!("{value} / {alt_cpu}"))
        }
        AnomalyKind::MissingNodeCount => text
            .lines()
            .filter(|l| !l.starts_with("Nodes:"))
            .collect::<Vec<_>>()
            .join("\n"),
        AnomalyKind::InconsistentCoreThread => {
            transform_line(text, "Hardware Threads:", |value| {
                // "64 (2 / core)" → report eight threads too many.
                let (num, rest) = split_leading_number(value);
                format!("{} {}", num + 8, rest)
            })
        }
        AnomalyKind::ImplausibleCoreThread => {
            // Keep the bookkeeping internally consistent but physically
            // absurd: 999 cores per chip.
            let mut chips = 1u64;
            let mut tpc = 2u64;
            for line in text.lines() {
                if let Some(v) = line.strip_prefix("CPU(s) Enabled:") {
                    if let Some(c) = v.split(',').nth(1) {
                        chips = split_leading_number(c.trim()).0.max(1);
                    }
                }
                if let Some(v) = line.strip_prefix("Hardware Threads:") {
                    if let Some(paren) = v.split_once('(') {
                        tpc = split_leading_number(paren.1.trim()).0.clamp(1, 2);
                    }
                }
            }
            let total_cores = chips * 999;
            let total_threads = total_cores * tpc;
            let step1 = transform_line(text, "CPU(s) Enabled:", |_| {
                format!("{total_cores} cores, {chips} chips, 999 cores/chip")
            });
            transform_line(&step1, "Hardware Threads:", |_| {
                format!("{total_threads} ({tpc} / core)")
            })
        }
    }
}

/// Replace the value of the first line starting with `prefix`.
fn transform_line(text: &str, prefix: &str, f: impl FnOnce(&str) -> String) -> String {
    let mut f = Some(f);
    let lines: Vec<String> = text
        .lines()
        .map(|line| {
            if let Some(value) = line.strip_prefix(prefix) {
                if let Some(f) = f.take() {
                    return format!("{prefix} {}", f(value.trim()));
                }
            }
            line.to_string()
        })
        .collect();
    lines.join("\n")
}

/// Split a leading integer off a string: `"64 (2 / core)"` → `(64, "(2 / core)")`.
fn split_leading_number(s: &str) -> (u64, &str) {
    let s = s.trim();
    let end = s
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(s.len());
    let num = s[..end].parse().unwrap_or(0);
    (num, s[end..].trim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_format::{parse_run, validate, ValidityIssue};
    use spec_model::linear_test_run;

    fn base_text() -> String {
        spec_format::write_run(&linear_test_run(3, 1e6, 60.0, 300.0))
    }

    fn issues_of(text: &str) -> Vec<ValidityIssue> {
        validate(&parse_run(text).expect("parses")).unwrap_err()
    }

    #[test]
    fn ambiguous_date_fails_only_that_filter() {
        let text = inject(AnomalyKind::AmbiguousDate, &base_text(), "x");
        assert_eq!(issues_of(&text), vec![ValidityIssue::AmbiguousDate]);
    }

    #[test]
    fn ambiguous_cpu_fails_only_that_filter() {
        let text = inject(
            AnomalyKind::AmbiguousCpuName,
            &base_text(),
            "Intel Xeon E5-2690",
        );
        assert_eq!(issues_of(&text), vec![ValidityIssue::AmbiguousCpuName]);
    }

    #[test]
    fn missing_nodes_fails_only_that_filter() {
        let text = inject(AnomalyKind::MissingNodeCount, &base_text(), "x");
        assert_eq!(issues_of(&text), vec![ValidityIssue::MissingNodeCount]);
    }

    #[test]
    fn inconsistent_threads_fails_only_that_filter() {
        let text = inject(AnomalyKind::InconsistentCoreThread, &base_text(), "x");
        assert_eq!(issues_of(&text), vec![ValidityIssue::InconsistentCoreThread]);
    }

    #[test]
    fn implausible_counts_fails_only_that_filter() {
        let text = inject(AnomalyKind::ImplausibleCoreThread, &base_text(), "x");
        assert_eq!(issues_of(&text), vec![ValidityIssue::ImplausibleCoreThread]);
    }

    #[test]
    fn leading_number_splitting() {
        assert_eq!(split_leading_number("64 (2 / core)"), (64, "(2 / core)"));
        assert_eq!(split_leading_number("2 chips"), (2, "chips"));
        assert_eq!(split_leading_number("abc"), (0, "abc"));
    }

    #[test]
    fn untouched_kinds_pass_through() {
        let text = base_text();
        assert_eq!(inject(AnomalyKind::NotAccepted, &text, "x"), text);
        assert_eq!(inject(AnomalyKind::ImplausibleDate, &text, "x"), text);
    }
}
