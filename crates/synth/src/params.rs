//! From lineup entries to concrete systems and simulator models.
//!
//! This module samples the "everything else" of a submission — memory, power
//! supplies, per-run component variation — and derives the `spec-ssj`
//! behavioural model from a generation's TDP-anchored parameter fractions,
//! including the package-power-cap solve that decides how much turbo a SKU
//! can actually sustain at 100 % load.

use rand::rngs::StdRng;
use rand::Rng;
use spec_model::{Cpu, JvmInfo, Megahertz, OsInfo, SystemConfig, Watts};
use spec_ssj::{PerfModel, PowerModel, SutModel};

use crate::lineup::{Generation, Sku};
use crate::market;

/// Standard PSU ratings vendors ship.
const PSU_RATINGS: [f64; 8] = [450.0, 550.0, 650.0, 750.0, 800.0, 1100.0, 1600.0, 2000.0];

/// Standard normal via Box–Muller (thin wrapper so the crate has one source).
fn normal(rng: &mut StdRng) -> f64 {
    spec_ssj::meter::normal(rng)
}

/// Log-normal multiplier `exp(σ·N(0,1))`, clamped to `[lo, hi]`.
fn lognormal(rng: &mut StdRng, sigma: f64, lo: f64, hi: f64) -> f64 {
    (sigma * normal(rng)).exp().clamp(lo, hi)
}

/// Memory capacity per core that was customary in a given year (GB).
fn memory_per_core(year: i32) -> f64 {
    match year {
        ..=2008 => 1.0,
        2009..=2012 => 1.5,
        2013..=2016 => 2.0,
        2017..=2020 => 2.0,
        _ => 2.0,
    }
}

/// Round a memory size up to a realistic configuration (powers of two and
/// the 1.5× points, e.g. 96/384/768 GB).
pub fn round_memory_gb(raw: f64) -> u32 {
    const STEPS: [u32; 15] = [
        4, 8, 16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536,
    ];
    for &s in &STEPS {
        if raw <= s as f64 {
            return s;
        }
    }
    2048
}

/// The generated hardware description plus its behavioural model.
#[derive(Clone, Debug)]
pub struct SampledSystem {
    /// The submission's hardware/software stack.
    pub system: SystemConfig,
    /// The behavioural model handed to the simulator.
    pub model: SutModel,
}

/// Full-load package power of one chip at frequency fraction `f` under this
/// parameterisation (all cores busy).
fn chip_power_at(
    f: f64,
    cores: f64,
    static_w: f64,
    dynamic_w: f64,
    uncore_w: f64,
    freq_exp: f64,
) -> f64 {
    cores * (static_w * (0.55 + 0.45 * f) + dynamic_w * f.powf(freq_exp)) + uncore_w
}

/// Solve the highest all-core frequency fraction in `[0.9, 1 + headroom]`
/// whose package power stays within `tdp × power_cap` (bisection; the power
/// curve is strictly increasing in `f`).
#[allow(clippy::too_many_arguments)]
pub fn solve_turbo(
    headroom: f64,
    tdp: f64,
    power_cap: f64,
    cores: f64,
    static_w: f64,
    dynamic_w: f64,
    uncore_w: f64,
    freq_exp: f64,
) -> f64 {
    let budget = tdp * power_cap;
    let mut lo = 0.9;
    let mut hi = 1.0 + headroom;
    if chip_power_at(hi, cores, static_w, dynamic_w, uncore_w, freq_exp) <= budget {
        return hi;
    }
    if chip_power_at(lo, cores, static_w, dynamic_w, uncore_w, freq_exp) >= budget {
        return lo;
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if chip_power_at(mid, cores, static_w, dynamic_w, uncore_w, freq_exp) > budget {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Derive the jitter-free behavioural model of a SKU — the generation's
/// nominal parameters with the TDP-anchored power split and the solved
/// turbo, but no per-run component variation. Used for the Table-I
/// apples-to-apples comparison where the paper cites two specific machines.
pub fn nominal_sut_model(generation: &Generation, sku: &Sku, year: i32) -> SutModel {
    let b = &generation.behaviour;
    let cores = sku.cores as f64;
    let uncore_w = sku.tdp_w * b.uncore_tdp_frac;
    let core_dynamic_w = sku.tdp_w * b.dynamic_tdp_frac / cores;
    let core_static_w = sku.tdp_w * b.static_tdp_frac / cores;
    let turbo_frac = solve_turbo(
        b.turbo_headroom,
        sku.tdp_w,
        b.power_cap,
        cores,
        core_static_w,
        core_dynamic_w,
        uncore_w,
        b.freq_power_exp,
    );
    SutModel {
        perf: PerfModel {
            ops_per_core_ghz: b.ops_per_core_ghz,
            smt_yield: b.smt_yield,
            mem_saturation_cores: b.mem_sat_cores,
            software_efficiency: 1.0,
        },
        power: PowerModel {
            uncore_w: Watts(uncore_w),
            core_static_w: Watts(core_static_w),
            core_dynamic_w: Watts(core_dynamic_w),
            core_cstate_w: Watts((core_static_w + core_dynamic_w) * b.cstate_residual),
            clock_gate_floor: (b.cstate_residual * 0.85).clamp(0.0, 0.95),
            freq_power_exp: b.freq_power_exp,
            dvfs_floor: b.dvfs_floor,
            turbo_headroom: turbo_frac - 1.0,
            pkg_sleep_eff: b.pkg_sleep_eff,
            idle_wakeup_hz_per_thread: b.wakeup_hz_per_thread,
            wakeup_hold_s: b.wakeup_hold_s,
            platform_w: Watts(40.0),
            psu_peak_eff: (0.855 + 0.005 * (year - 2005) as f64).clamp(0.85, 0.945),
        },
    }
}

/// Assemble a complete sampled system of `chips` sockets across `nodes`
/// nodes from a generation + SKU, for a run whose hardware became available
/// in `year`.
#[allow(clippy::too_many_arguments)]
pub fn build_system(
    rng: &mut StdRng,
    generation: &Generation,
    sku: &Sku,
    chips: u32,
    nodes: u32,
    year: i32,
    manufacturer: &str,
    model_name: &str,
) -> SampledSystem {
    let b = &generation.behaviour;
    let cores = sku.cores as f64;

    // --- Hardware description ------------------------------------------------
    let total_cores = chips * sku.cores;
    let mem_raw = total_cores as f64 * memory_per_core(year) * lognormal(rng, 0.3, 0.5, 2.5);
    let memory_gb = round_memory_gb(mem_raw.max(4.0));
    let dimm_gb = match year {
        ..=2009 => 4,
        2010..=2015 => 8,
        2016..=2020 => 32,
        _ => 64,
    };
    let dimm_count = (memory_gb / dimm_gb).clamp(2, 32).max(chips * 2);

    // --- TDP-anchored power parameters ---------------------------------------
    let uncore_w = sku.tdp_w * b.uncore_tdp_frac;
    let core_dynamic_w = sku.tdp_w * b.dynamic_tdp_frac / cores;
    let core_static_w = sku.tdp_w * b.static_tdp_frac / cores;
    let clock_gate_floor = (b.cstate_residual * 0.85).clamp(0.0, 0.95);
    // A parked (C-state) core can never cost more than an awake-idle core
    // at the DVFS floor.
    let awake_idle_core = core_static_w * (0.55 + 0.45 * b.dvfs_floor)
        + core_dynamic_w * clock_gate_floor * b.dvfs_floor.powf(b.freq_power_exp);
    let core_cstate_w =
        ((core_static_w + core_dynamic_w) * b.cstate_residual).min(awake_idle_core);

    let turbo_frac = solve_turbo(
        b.turbo_headroom,
        sku.tdp_w,
        b.power_cap,
        cores,
        core_static_w,
        core_dynamic_w,
        uncore_w,
        b.freq_power_exp,
    );

    let platform_w = 12.0
        + 1.0 * dimm_count as f64
        + 6.0 * nodes as f64
        + rng.gen_range(3.0..15.0);

    // PSU sized to peak demand with margin, from the standard ratings.
    let peak_estimate =
        (chips as f64 * sku.tdp_w * b.power_cap + platform_w) / 0.88 * 1.25;
    let psu_rating = PSU_RATINGS
        .iter()
        .copied()
        .find(|&r| r >= peak_estimate / nodes.max(1) as f64)
        .unwrap_or(2000.0);
    let psu_count = if rng.gen::<f64>() < 0.4 { 2 } else { 1 };

    // PSUs improved steadily (80 Plus Bronze → Titanium).
    let psu_peak_eff =
        (0.855 + 0.005 * (year - 2005) as f64 + rng.gen_range(-0.008..0.008)).clamp(0.85, 0.945);

    // --- Per-run variation ----------------------------------------------------
    let os_name = market::sample_os(rng, year);
    let (jvm_vendor, jvm_version) = market::sample_jvm(rng, year);
    let software_eff = lognormal(rng, 0.035, 0.85, 1.15)
        * if os_name.to_ascii_lowercase().contains("windows") {
            1.0
        } else {
            1.01
        };
    let sleep_eff = (b.pkg_sleep_eff + 0.09 * normal(rng)).clamp(0.0, 0.95);
    // OS/firmware configuration scatters idle wakeup traffic widely — the
    // source of the large recent spread in Figures 5 and 6, and of the
    // paper's *inconclusive* §IV correlations (the per-run configuration
    // noise drowns the per-feature signal). On top of the per-generation
    // baseline, background-task traffic grows secularly with the software
    // stack's age (~5 %/year after 2017) — the paper's §IV mechanism.
    let software_bloat = 1.0 + 0.05 * (year - 2017).max(0) as f64;
    let wakeup_hz = b.wakeup_hz_per_thread * software_bloat * lognormal(rng, 0.85, 0.15, 5.0);

    let cpu = Cpu {
        name: sku.name.to_string(),
        microarchitecture: generation.microarch.to_string(),
        nominal: Megahertz::from_ghz(sku.nominal_ghz),
        max_boost: Megahertz::from_ghz(sku.boost_ghz),
        cores_per_chip: sku.cores,
        threads_per_core: generation.threads_per_core,
        tdp: Watts(sku.tdp_w),
        vector_bits: generation.vector_bits,
    };
    let jvm_instances = (chips * generation.threads_per_core).clamp(1, 16);
    let system = SystemConfig {
        manufacturer: manufacturer.to_string(),
        model: model_name.to_string(),
        form_factor: if nodes > 1 {
            format!("{nodes}-node blade")
        } else if chips > 2 {
            "4U rack".to_string()
        } else {
            "2U rack".to_string()
        },
        nodes,
        chips,
        cpu,
        memory_gb,
        dimm_count,
        psu_rating: Watts(psu_rating),
        psu_count,
        os: OsInfo::new(os_name),
        jvm: JvmInfo {
            vendor: jvm_vendor,
            version: jvm_version,
        },
        jvm_instances,
    };

    let model = SutModel {
        perf: PerfModel {
            ops_per_core_ghz: b.ops_per_core_ghz * lognormal(rng, 0.04, 0.85, 1.18),
            smt_yield: b.smt_yield,
            mem_saturation_cores: b.mem_sat_cores,
            software_efficiency: software_eff,
        },
        power: PowerModel {
            uncore_w: Watts(uncore_w),
            core_static_w: Watts(core_static_w),
            core_dynamic_w: Watts(core_dynamic_w),
            core_cstate_w: Watts(core_cstate_w),
            clock_gate_floor,
            freq_power_exp: b.freq_power_exp,
            dvfs_floor: b.dvfs_floor,
            turbo_headroom: turbo_frac - 1.0,
            pkg_sleep_eff: sleep_eff,
            idle_wakeup_hz_per_thread: wakeup_hz,
            wakeup_hold_s: b.wakeup_hold_s,
            platform_w: Watts(platform_w),
            psu_peak_eff: psu_peak_eff.clamp(0.80, 0.95),
        },
    };

    SampledSystem { system, model }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineup::{AMD_GENERATIONS, INTEL_GENERATIONS};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn memory_rounding() {
        assert_eq!(round_memory_gb(3.0), 4);
        assert_eq!(round_memory_gb(65.0), 96);
        assert_eq!(round_memory_gb(384.0), 384);
        assert_eq!(round_memory_gb(9999.0), 2048);
    }

    #[test]
    fn turbo_solver_respects_budget() {
        // Aggressive headroom but a tight cap → solved frequency below the
        // requested headroom and power within budget.
        let f = solve_turbo(0.30, 200.0, 1.10, 20.0, 1.4, 5.8, 56.0, 2.85);
        assert!(f < 1.30);
        assert!(f >= 0.9);
        let p = chip_power_at(f, 20.0, 1.4, 5.8, 56.0, 2.85);
        assert!(p <= 200.0 * 1.10 * 1.01, "power {p} within budget");
    }

    #[test]
    fn turbo_solver_grants_headroom_when_cheap() {
        // Tiny dynamic power → the full headroom fits in the cap.
        let f = solve_turbo(0.20, 200.0, 1.20, 8.0, 0.5, 2.0, 30.0, 2.5);
        assert!((f - 1.20).abs() < 1e-9);
    }

    #[test]
    fn sampled_system_is_coherent() {
        let mut rng = rng();
        let generation = &INTEL_GENERATIONS[4]; // Skylake
        let sku = &generation.skus[1]; // Gold 6148
        let s = build_system(&mut rng, generation, sku, 2, 1, 2018, "Dell Inc.", "PowerEdge R740");
        assert_eq!(s.system.chips, 2);
        assert_eq!(s.system.total_cores(), 40);
        assert!(s.system.cpu.counts_consistent());
        assert!(s.system.memory_gb >= 32);
        assert!(s.system.psu_rating.value() >= 450.0);
        assert!(s.model.power.turbo_headroom >= -0.1);
        assert!(s.model.power.turbo_headroom <= generation.behaviour.turbo_headroom + 1e-9);
        assert!(s.model.perf.ops_per_core_ghz > 0.0);
    }

    #[test]
    fn full_load_package_power_near_tdp_cap() {
        // The sampled model at solved turbo should draw roughly cap × TDP
        // per chip — the anchor for the Figure 2 power calibration.
        let mut rng = rng();
        for generation in INTEL_GENERATIONS.iter().chain(AMD_GENERATIONS.iter()) {
            for sku_ref in generation.skus {
                let s = build_system(
                    &mut rng,
                    generation,
                    sku_ref,
                    2,
                    1,
                    generation.intro.0,
                    "Fujitsu",
                    "PRIMERGY",
                );
                let b = &generation.behaviour;
                let f = 1.0 + s.model.power.turbo_headroom;
                let p = chip_power_at(
                    f,
                    sku_ref.cores as f64,
                    s.model.power.core_static_w.value(),
                    s.model.power.core_dynamic_w.value(),
                    s.model.power.uncore_w.value(),
                    b.freq_power_exp,
                );
                assert!(
                    p <= sku_ref.tdp_w * b.power_cap * 1.02,
                    "{}: {p} vs cap {}",
                    sku_ref.name,
                    sku_ref.tdp_w * b.power_cap
                );
                assert!(
                    p >= sku_ref.tdp_w * 0.7,
                    "{}: package power {p} suspiciously below TDP {}",
                    sku_ref.name,
                    sku_ref.tdp_w
                );
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let generation = &AMD_GENERATIONS[3]; // Rome
        let sku = &generation.skus[0];
        let a = build_system(
            &mut StdRng::seed_from_u64(7),
            generation,
            sku,
            2,
            1,
            2020,
            "HPE",
            "DL385",
        );
        let b = build_system(
            &mut StdRng::seed_from_u64(7),
            generation,
            sku,
            2,
            1,
            2020,
            "HPE",
            "DL385",
        );
        assert_eq!(a.system, b.system);
        assert_eq!(a.model.perf.ops_per_core_ghz, b.model.perf.ops_per_core_ghz);
    }

    #[test]
    fn psu_efficiency_improves_with_year() {
        let generation = &INTEL_GENERATIONS[0];
        let sku = &generation.skus[0];
        let mut old_sum = 0.0;
        let mut new_sum = 0.0;
        for seed in 0..20 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            old_sum += build_system(&mut r1, generation, sku, 2, 1, 2006, "Dell Inc.", "PE")
                .model
                .power
                .psu_peak_eff;
            new_sum += build_system(&mut r2, generation, sku, 2, 1, 2023, "Dell Inc.", "PE")
                .model
                .power
                .psu_peak_eff;
        }
        assert!(new_sum > old_sum + 0.5, "PSUs improved over 17 years");
    }
}
