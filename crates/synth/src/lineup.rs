//! The x86 server CPU lineups 2005–2024.
//!
//! Each [`Generation`] bundles the SKUs that appeared in SPEC Power
//! submissions of its era together with the behavioural parameters handed to
//! the `spec-ssj` simulator. The numbers are calibrated against the paper's
//! aggregates (per-socket power, efficiency, idle-fraction trajectory,
//! core-count and frequency statistics since 2021) rather than against any
//! individual proprietary datasheet.

use spec_model::CpuVendor;

/// One purchasable CPU model.
#[derive(Clone, Copy, Debug)]
pub struct Sku {
    /// Marketing name, e.g. `"Intel Xeon Platinum 8490H"`.
    pub name: &'static str,
    /// Physical cores per chip.
    pub cores: u32,
    /// Nominal frequency, GHz.
    pub nominal_ghz: f64,
    /// Maximum boost frequency, GHz.
    pub boost_ghz: f64,
    /// TDP per chip, watts.
    pub tdp_w: f64,
    /// Relative sampling weight within the generation.
    pub weight: f64,
}

/// Per-generation behavioural parameters for the simulator.
#[derive(Clone, Copy, Debug)]
pub struct GenBehaviour {
    /// ssj_ops per core per GHz (single thread busy) — the IPC dial.
    pub ops_per_core_ghz: f64,
    /// Extra throughput from the second SMT thread (0 when no SMT).
    pub smt_yield: f64,
    /// Memory saturation constant (cores).
    pub mem_sat_cores: f64,
    /// All-core turbo headroom used at 100 % load.
    pub turbo_headroom: f64,
    /// Dynamic-power frequency exponent.
    pub freq_power_exp: f64,
    /// DVFS floor (fraction of nominal).
    pub dvfs_floor: f64,
    /// Package C-state effectiveness (0–1).
    pub pkg_sleep_eff: f64,
    /// Residual power of an idle core as a fraction of its full active
    /// power (static + dynamic). Early cores without clock gating or core
    /// C-states idle at ~0.6 of active power; modern cores at ~0.02.
    pub cstate_residual: f64,
    /// Background wakeups per logical CPU during active idle (Hz).
    pub wakeup_hz_per_thread: f64,
    /// Package wake hold time per wakeup (s).
    pub wakeup_hold_s: f64,
    /// Share of chip TDP spent on uncore.
    pub uncore_tdp_frac: f64,
    /// Share of chip TDP available to core dynamic power.
    pub dynamic_tdp_frac: f64,
    /// Share of chip TDP that is core static/leakage power.
    pub static_tdp_frac: f64,
    /// Sustained package power limit at full load as a multiple of TDP
    /// (how far the turbo governor is allowed to push the package).
    pub power_cap: f64,
}

/// A processor generation: market window, SKUs, behaviour, topology habits.
#[derive(Clone, Copy, Debug)]
pub struct Generation {
    /// Stable key, e.g. `"intel-skylake"`.
    pub key: &'static str,
    /// CPU vendor.
    pub vendor: CpuVendor,
    /// Microarchitecture label carried into the result files.
    pub microarch: &'static str,
    /// First month systems were generally available (year, month).
    pub intro: (i32, u8),
    /// Last month new submissions of this generation appear.
    pub sunset: (i32, u8),
    /// SMT threads per core.
    pub threads_per_core: u32,
    /// Native SIMD width (bits).
    pub vector_bits: u32,
    /// Purchasable SKUs.
    pub skus: &'static [Sku],
    /// Behavioural parameters.
    pub behaviour: GenBehaviour,
    /// Relative likelihood of 1-socket submissions.
    pub w_1s: f64,
    /// Relative likelihood of 2-socket submissions.
    pub w_2s: f64,
    /// Relative likelihood of 4-socket submissions (stage-2 filtered).
    pub w_4s: f64,
    /// Relative likelihood of multi-node (blade) submissions (filtered).
    pub w_multi: f64,
}

const fn sku(
    name: &'static str,
    cores: u32,
    nominal_ghz: f64,
    boost_ghz: f64,
    tdp_w: f64,
    weight: f64,
) -> Sku {
    Sku {
        name,
        cores,
        nominal_ghz,
        boost_ghz,
        tdp_w,
        weight,
    }
}

/// The Intel server generations.
pub const INTEL_GENERATIONS: [Generation; 8] = [
    Generation {
        key: "intel-core2",
        vendor: CpuVendor::Intel,
        microarch: "Core (Woodcrest/Clovertown/Harpertown)",
        intro: (2005, 10),
        sunset: (2009, 6),
        threads_per_core: 1,
        vector_bits: 128,
        skus: &[
            sku("Intel Xeon 5160", 2, 3.0, 3.0, 80.0, 0.8),
            sku("Intel Xeon E5345", 4, 2.33, 2.33, 80.0, 1.0),
            sku("Intel Xeon X5460", 4, 3.16, 3.16, 120.0, 0.9),
            sku("Intel Xeon L5420", 4, 2.5, 2.5, 50.0, 1.2),
            sku("Intel Xeon X3360", 4, 2.83, 2.83, 95.0, 0.5),
        ],
        behaviour: GenBehaviour {
            ops_per_core_ghz: 7_500.0,
            smt_yield: 0.0,
            mem_sat_cores: 60.0,
            turbo_headroom: 0.0,
            freq_power_exp: 2.2,
            dvfs_floor: 0.92,
            pkg_sleep_eff: 0.04,
            cstate_residual: 0.85,
            wakeup_hz_per_thread: 0.01,
            wakeup_hold_s: 0.2,
            uncore_tdp_frac: 0.22,
            dynamic_tdp_frac: 0.58,
            power_cap: 1.00,
            static_tdp_frac: 0.20,
        },
        w_1s: 0.25,
        w_2s: 0.40,
        w_4s: 0.10,
        w_multi: 0.25,
    },
    Generation {
        key: "intel-nehalem",
        vendor: CpuVendor::Intel,
        microarch: "Nehalem/Westmere",
        intro: (2009, 3),
        sunset: (2012, 3),
        threads_per_core: 2,
        vector_bits: 128,
        skus: &[
            sku("Intel Xeon X5570", 4, 2.93, 3.33, 95.0, 1.0),
            sku("Intel Xeon L5530", 4, 2.4, 2.66, 60.0, 0.9),
            sku("Intel Xeon X5670", 6, 2.93, 3.33, 95.0, 1.0),
            sku("Intel Xeon L5640", 6, 2.26, 2.8, 60.0, 0.8),
            sku("Intel Xeon X5675", 6, 3.06, 3.46, 95.0, 0.6),
        ],
        behaviour: GenBehaviour {
            ops_per_core_ghz: 13_000.0,
            smt_yield: 0.18,
            mem_sat_cores: 120.0,
            turbo_headroom: 0.05,
            freq_power_exp: 2.3,
            dvfs_floor: 0.62,
            pkg_sleep_eff: 0.25,
            cstate_residual: 0.30,
            wakeup_hz_per_thread: 0.01,
            wakeup_hold_s: 0.2,
            uncore_tdp_frac: 0.24,
            dynamic_tdp_frac: 0.58,
            power_cap: 1.02,
            static_tdp_frac: 0.18,
        },
        w_1s: 0.22,
        w_2s: 0.42,
        w_4s: 0.08,
        w_multi: 0.28,
    },
    Generation {
        key: "intel-sandy-ivy",
        vendor: CpuVendor::Intel,
        microarch: "Sandy Bridge/Ivy Bridge",
        intro: (2012, 3),
        sunset: (2014, 9),
        threads_per_core: 2,
        vector_bits: 256,
        skus: &[
            sku("Intel Xeon E5-2660", 8, 2.2, 3.0, 95.0, 1.0),
            sku("Intel Xeon E5-2670", 8, 2.6, 3.3, 115.0, 0.9),
            sku("Intel Xeon E5-2640 v2", 8, 2.0, 2.5, 95.0, 0.8),
            sku("Intel Xeon E5-2697 v2", 12, 2.7, 3.5, 130.0, 0.7),
            sku("Intel Xeon E5-2470 v2", 10, 2.4, 3.2, 95.0, 0.6),
        ],
        behaviour: GenBehaviour {
            ops_per_core_ghz: 18_500.0,
            smt_yield: 0.22,
            mem_sat_cores: 180.0,
            turbo_headroom: 0.12,
            freq_power_exp: 2.75,
            dvfs_floor: 0.45,
            pkg_sleep_eff: 0.50,
            cstate_residual: 0.06,
            wakeup_hz_per_thread: 0.006,
            wakeup_hold_s: 0.25,
            uncore_tdp_frac: 0.25,
            dynamic_tdp_frac: 0.60,
            power_cap: 1.10,
            static_tdp_frac: 0.15,
        },
        w_1s: 0.25,
        w_2s: 0.45,
        w_4s: 0.06,
        w_multi: 0.24,
    },
    Generation {
        key: "intel-haswell",
        vendor: CpuVendor::Intel,
        microarch: "Haswell/Broadwell",
        intro: (2014, 9),
        sunset: (2017, 7),
        threads_per_core: 2,
        vector_bits: 256,
        skus: &[
            sku("Intel Xeon E5-2660 v3", 10, 2.6, 3.3, 105.0, 1.0),
            sku("Intel Xeon E5-2699 v3", 18, 2.3, 3.6, 145.0, 0.7),
            sku("Intel Xeon E5-2630L v4", 10, 1.8, 2.9, 55.0, 0.6),
            sku("Intel Xeon E5-2699 v4", 22, 2.2, 3.6, 145.0, 0.8),
            sku("Intel Xeon E5-2650 v4", 12, 2.2, 2.9, 105.0, 0.9),
        ],
        behaviour: GenBehaviour {
            ops_per_core_ghz: 22_000.0,
            smt_yield: 0.24,
            mem_sat_cores: 240.0,
            turbo_headroom: 0.18,
            freq_power_exp: 2.85,
            dvfs_floor: 0.40,
            pkg_sleep_eff: 0.62,
            cstate_residual: 0.04,
            wakeup_hz_per_thread: 0.005,
            wakeup_hold_s: 0.3,
            uncore_tdp_frac: 0.26,
            dynamic_tdp_frac: 0.60,
            power_cap: 1.12,
            static_tdp_frac: 0.14,
        },
        w_1s: 0.30,
        w_2s: 0.48,
        w_4s: 0.05,
        w_multi: 0.17,
    },
    Generation {
        key: "intel-skylake",
        vendor: CpuVendor::Intel,
        microarch: "Skylake-SP/Cascade Lake",
        intro: (2017, 7),
        sunset: (2021, 3),
        threads_per_core: 2,
        vector_bits: 512,
        skus: &[
            sku("Intel Xeon Platinum 8180", 28, 2.5, 3.8, 205.0, 0.7),
            sku("Intel Xeon Gold 6148", 20, 2.4, 3.7, 150.0, 1.0),
            sku("Intel Xeon Silver 4114", 10, 2.2, 3.0, 85.0, 0.9),
            sku("Intel Xeon Platinum 8280", 28, 2.7, 4.0, 205.0, 0.7),
            sku("Intel Xeon Gold 6252", 24, 2.1, 3.7, 150.0, 0.8),
            sku("Intel Xeon Gold 5218", 16, 2.3, 3.9, 125.0, 0.9),
        ],
        behaviour: GenBehaviour {
            ops_per_core_ghz: 26_000.0,
            smt_yield: 0.25,
            mem_sat_cores: 320.0,
            turbo_headroom: 0.30,
            freq_power_exp: 2.95,
            dvfs_floor: 0.38,
            pkg_sleep_eff: 0.80,
            cstate_residual: 0.025,
            wakeup_hz_per_thread: 0.0025,
            wakeup_hold_s: 0.35,
            uncore_tdp_frac: 0.28,
            dynamic_tdp_frac: 0.58,
            power_cap: 1.15,
            static_tdp_frac: 0.14,
        },
        w_1s: 0.35,
        w_2s: 0.52,
        w_4s: 0.04,
        w_multi: 0.09,
    },
    Generation {
        key: "intel-icelake",
        vendor: CpuVendor::Intel,
        microarch: "Ice Lake-SP",
        intro: (2021, 4),
        sunset: (2023, 1),
        threads_per_core: 2,
        vector_bits: 512,
        skus: &[
            sku("Intel Xeon Platinum 8380", 40, 2.3, 3.4, 270.0, 2.0),
            sku("Intel Xeon Gold 6338", 32, 2.0, 3.2, 205.0, 1.0),
            sku("Intel Xeon Silver 4310", 12, 2.1, 3.3, 120.0, 0.25),
            sku("Intel Xeon Gold 6334", 8, 3.6, 3.7, 165.0, 0.35),
            sku("Intel Xeon Gold 6330", 28, 2.0, 3.1, 205.0, 0.9),
            sku("Intel Xeon Gold 5318Y", 24, 2.1, 3.4, 165.0, 0.8),
        ],
        behaviour: GenBehaviour {
            ops_per_core_ghz: 32_000.0,
            smt_yield: 0.26,
            mem_sat_cores: 420.0,
            turbo_headroom: 0.22,
            freq_power_exp: 2.85,
            dvfs_floor: 0.35,
            pkg_sleep_eff: 0.72,
            cstate_residual: 0.02,
            wakeup_hz_per_thread: 0.006,
            wakeup_hold_s: 0.4,
            uncore_tdp_frac: 0.30,
            dynamic_tdp_frac: 0.56,
            power_cap: 1.08,
            static_tdp_frac: 0.14,
        },
        w_1s: 0.40,
        w_2s: 0.55,
        w_4s: 0.03,
        w_multi: 0.02,
    },
    Generation {
        key: "intel-sapphire",
        vendor: CpuVendor::Intel,
        microarch: "Sapphire Rapids",
        intro: (2023, 1),
        sunset: (2024, 2),
        threads_per_core: 2,
        vector_bits: 512,
        skus: &[
            sku("Intel Xeon Platinum 8490H", 60, 1.9, 3.5, 350.0, 1.1),
            sku("Intel Xeon Platinum 8480+", 56, 2.0, 3.8, 350.0, 1.2),
            sku("Intel Xeon Gold 6430", 32, 2.1, 3.4, 270.0, 1.0),
            sku("Intel Xeon Silver 4410Y", 12, 2.0, 3.9, 150.0, 0.4),
            sku("Intel Xeon Gold 5420+", 28, 2.0, 4.1, 205.0, 0.8),
            sku("Intel Xeon Gold 6444Y", 16, 3.6, 4.0, 270.0, 0.3),
        ],
        behaviour: GenBehaviour {
            ops_per_core_ghz: 56_000.0,
            smt_yield: 0.27,
            mem_sat_cores: 520.0,
            turbo_headroom: 0.30,
            freq_power_exp: 2.8,
            dvfs_floor: 0.32,
            pkg_sleep_eff: 0.74,
            cstate_residual: 0.02,
            wakeup_hz_per_thread: 0.0075,
            wakeup_hold_s: 0.45,
            uncore_tdp_frac: 0.32,
            dynamic_tdp_frac: 0.54,
            power_cap: 0.98,
            static_tdp_frac: 0.14,
        },
        w_1s: 0.40,
        w_2s: 0.58,
        w_4s: 0.02,
        w_multi: 0.0,
    },
    Generation {
        key: "intel-emerald",
        vendor: CpuVendor::Intel,
        microarch: "Emerald Rapids",
        intro: (2024, 2),
        sunset: (2024, 12),
        threads_per_core: 2,
        vector_bits: 512,
        skus: &[
            sku("Intel Xeon Platinum 8592+", 64, 1.9, 3.9, 350.0, 1.4),
            sku("Intel Xeon Gold 6548Y+", 32, 2.5, 4.1, 250.0, 0.9),
            sku("Intel Xeon Gold 5520+", 28, 2.2, 4.0, 205.0, 0.5),
            sku("Intel Xeon Platinum 8558", 48, 2.1, 4.0, 330.0, 1.0),
            sku("Intel Xeon Gold 6544Y", 16, 3.6, 4.1, 270.0, 0.3),
        ],
        behaviour: GenBehaviour {
            ops_per_core_ghz: 58_000.0,
            smt_yield: 0.27,
            mem_sat_cores: 560.0,
            turbo_headroom: 0.28,
            freq_power_exp: 2.8,
            dvfs_floor: 0.32,
            pkg_sleep_eff: 0.75,
            cstate_residual: 0.02,
            wakeup_hz_per_thread: 0.0075,
            wakeup_hold_s: 0.45,
            uncore_tdp_frac: 0.32,
            dynamic_tdp_frac: 0.54,
            power_cap: 0.98,
            static_tdp_frac: 0.14,
        },
        w_1s: 0.40,
        w_2s: 0.60,
        w_4s: 0.02,
        w_multi: 0.0,
    },
];

/// The AMD server generations (note the 2014–2016 gap between Piledriver
/// Opterons and EPYC Naples, which drives the submission-share shift).
pub const AMD_GENERATIONS: [Generation; 7] = [
    Generation {
        key: "amd-k8-k10",
        vendor: CpuVendor::Amd,
        microarch: "K8/Barcelona/Shanghai",
        intro: (2005, 8),
        sunset: (2010, 3),
        threads_per_core: 1,
        vector_bits: 128,
        skus: &[
            sku("AMD Opteron 2218", 2, 2.6, 2.6, 95.0, 0.8),
            sku("AMD Opteron 2347 HE", 4, 1.9, 1.9, 55.0, 1.0),
            sku("AMD Opteron 2356", 4, 2.3, 2.3, 75.0, 0.9),
            sku("AMD Opteron 2384", 4, 2.7, 2.7, 75.0, 0.8),
        ],
        behaviour: GenBehaviour {
            ops_per_core_ghz: 7_000.0,
            smt_yield: 0.0,
            mem_sat_cores: 70.0,
            turbo_headroom: 0.0,
            freq_power_exp: 2.2,
            dvfs_floor: 0.90,
            pkg_sleep_eff: 0.06,
            cstate_residual: 0.83,
            wakeup_hz_per_thread: 0.01,
            wakeup_hold_s: 0.2,
            uncore_tdp_frac: 0.24,
            dynamic_tdp_frac: 0.56,
            power_cap: 1.00,
            static_tdp_frac: 0.20,
        },
        w_1s: 0.25,
        w_2s: 0.42,
        w_4s: 0.10,
        w_multi: 0.23,
    },
    Generation {
        key: "amd-magny-bulldozer",
        vendor: CpuVendor::Amd,
        microarch: "Magny-Cours/Interlagos/Abu Dhabi",
        intro: (2010, 3),
        sunset: (2014, 6),
        threads_per_core: 1,
        vector_bits: 256,
        skus: &[
            sku("AMD Opteron 6174", 12, 2.2, 2.2, 80.0, 1.0),
            sku("AMD Opteron 6276", 16, 2.3, 3.2, 115.0, 0.9),
            sku("AMD Opteron 6380", 16, 2.5, 3.4, 115.0, 0.8),
            sku("AMD Opteron 4256 EE", 8, 1.6, 2.8, 35.0, 0.5),
        ],
        behaviour: GenBehaviour {
            ops_per_core_ghz: 11_000.0,
            smt_yield: 0.0,
            mem_sat_cores: 130.0,
            turbo_headroom: 0.08,
            freq_power_exp: 2.4,
            dvfs_floor: 0.45,
            pkg_sleep_eff: 0.30,
            cstate_residual: 0.22,
            wakeup_hz_per_thread: 0.006,
            wakeup_hold_s: 0.25,
            uncore_tdp_frac: 0.26,
            dynamic_tdp_frac: 0.56,
            power_cap: 1.03,
            static_tdp_frac: 0.18,
        },
        w_1s: 0.25,
        w_2s: 0.45,
        w_4s: 0.08,
        w_multi: 0.22,
    },
    Generation {
        key: "amd-naples",
        vendor: CpuVendor::Amd,
        microarch: "EPYC Naples (Zen)",
        intro: (2017, 6),
        sunset: (2019, 8),
        threads_per_core: 2,
        vector_bits: 128,
        skus: &[
            sku("AMD EPYC 7601", 32, 2.2, 3.2, 180.0, 1.0),
            sku("AMD EPYC 7551", 32, 2.0, 3.0, 180.0, 0.8),
            sku("AMD EPYC 7401", 24, 2.0, 3.0, 170.0, 0.7),
            sku("AMD EPYC 7351", 16, 2.4, 2.9, 170.0, 0.5),
        ],
        behaviour: GenBehaviour {
            ops_per_core_ghz: 26_000.0,
            smt_yield: 0.26,
            mem_sat_cores: 360.0,
            turbo_headroom: 0.12,
            freq_power_exp: 2.6,
            dvfs_floor: 0.40,
            pkg_sleep_eff: 0.42,
            cstate_residual: 0.03,
            wakeup_hz_per_thread: 0.007,
            wakeup_hold_s: 0.30,
            uncore_tdp_frac: 0.30,
            dynamic_tdp_frac: 0.56,
            power_cap: 1.06,
            static_tdp_frac: 0.14,
        },
        w_1s: 0.42,
        w_2s: 0.50,
        w_4s: 0.0,
        w_multi: 0.08,
    },
    Generation {
        key: "amd-rome",
        vendor: CpuVendor::Amd,
        microarch: "EPYC Rome (Zen 2)",
        intro: (2019, 8),
        sunset: (2021, 3),
        threads_per_core: 2,
        vector_bits: 256,
        skus: &[
            sku("AMD EPYC 7742", 64, 2.25, 3.4, 225.0, 1.0),
            sku("AMD EPYC 7702", 64, 2.0, 3.35, 200.0, 0.9),
            sku("AMD EPYC 7502", 32, 2.5, 3.35, 180.0, 0.8),
            sku("AMD EPYC 7402", 24, 2.8, 3.35, 180.0, 0.5),
            sku("AMD EPYC 7262", 8, 3.2, 3.4, 155.0, 0.2),
        ],
        behaviour: GenBehaviour {
            ops_per_core_ghz: 46_000.0,
            smt_yield: 0.27,
            mem_sat_cores: 520.0,
            turbo_headroom: 0.12,
            freq_power_exp: 2.6,
            dvfs_floor: 0.38,
            pkg_sleep_eff: 0.66,
            cstate_residual: 0.025,
            wakeup_hz_per_thread: 0.0045,
            wakeup_hold_s: 0.32,
            uncore_tdp_frac: 0.32,
            dynamic_tdp_frac: 0.54,
            power_cap: 1.04,
            static_tdp_frac: 0.14,
        },
        w_1s: 0.45,
        w_2s: 0.50,
        w_4s: 0.0,
        w_multi: 0.05,
    },
    Generation {
        key: "amd-milan",
        vendor: CpuVendor::Amd,
        microarch: "EPYC Milan (Zen 3)",
        intro: (2021, 3),
        sunset: (2022, 11),
        threads_per_core: 2,
        vector_bits: 256,
        skus: &[
            sku("AMD EPYC 7763", 64, 2.45, 3.5, 280.0, 1.2),
            sku("AMD EPYC 7713", 64, 2.0, 3.675, 225.0, 0.9),
            sku("AMD EPYC 7543", 32, 2.8, 3.7, 225.0, 0.4),
            sku("AMD EPYC 7443", 24, 2.85, 4.0, 200.0, 0.3),
            sku("AMD EPYC 74F3", 24, 3.2, 4.0, 240.0, 0.1),
        ],
        behaviour: GenBehaviour {
            ops_per_core_ghz: 52_000.0,
            smt_yield: 0.27,
            mem_sat_cores: 560.0,
            turbo_headroom: 0.12,
            freq_power_exp: 2.6,
            dvfs_floor: 0.36,
            pkg_sleep_eff: 0.70,
            cstate_residual: 0.02,
            wakeup_hz_per_thread: 0.004,
            wakeup_hold_s: 0.32,
            uncore_tdp_frac: 0.32,
            dynamic_tdp_frac: 0.54,
            power_cap: 1.04,
            static_tdp_frac: 0.14,
        },
        w_1s: 0.45,
        w_2s: 0.52,
        w_4s: 0.0,
        w_multi: 0.03,
    },
    Generation {
        key: "amd-genoa",
        vendor: CpuVendor::Amd,
        microarch: "EPYC Genoa (Zen 4)",
        intro: (2022, 11),
        sunset: (2023, 8),
        threads_per_core: 2,
        vector_bits: 256,
        skus: &[
            sku("AMD EPYC 9654", 96, 2.4, 3.7, 360.0, 1.6),
            sku("AMD EPYC 9554", 64, 3.1, 3.75, 360.0, 0.35),
            sku("AMD EPYC 9454", 48, 2.75, 3.8, 290.0, 0.7),
            sku("AMD EPYC 9354", 32, 3.25, 3.8, 280.0, 0.2),
            sku("AMD EPYC 9634", 84, 2.25, 3.7, 290.0, 0.8),
        ],
        behaviour: GenBehaviour {
            ops_per_core_ghz: 54_000.0,
            smt_yield: 0.28,
            mem_sat_cores: 700.0,
            turbo_headroom: 0.10,
            freq_power_exp: 2.6,
            dvfs_floor: 0.34,
            pkg_sleep_eff: 0.72,
            cstate_residual: 0.02,
            wakeup_hz_per_thread: 0.004,
            wakeup_hold_s: 0.34,
            uncore_tdp_frac: 0.34,
            dynamic_tdp_frac: 0.52,
            power_cap: 0.95,
            static_tdp_frac: 0.14,
        },
        w_1s: 0.48,
        w_2s: 0.50,
        w_4s: 0.0,
        w_multi: 0.02,
    },
    Generation {
        key: "amd-bergamo",
        vendor: CpuVendor::Amd,
        microarch: "EPYC Bergamo (Zen 4c)",
        intro: (2023, 8),
        sunset: (2024, 12),
        threads_per_core: 2,
        vector_bits: 256,
        skus: &[
            sku("AMD EPYC 9754", 128, 2.25, 3.1, 360.0, 1.6),
            sku("AMD EPYC 9734", 112, 2.2, 3.0, 340.0, 0.7),
            sku("AMD EPYC 9654", 96, 2.4, 3.7, 360.0, 0.6),
            sku("AMD EPYC 8534P", 64, 2.3, 3.1, 200.0, 0.3),
        ],
        behaviour: GenBehaviour {
            ops_per_core_ghz: 60_000.0,
            smt_yield: 0.28,
            mem_sat_cores: 760.0,
            turbo_headroom: 0.10,
            freq_power_exp: 2.6,
            dvfs_floor: 0.34,
            pkg_sleep_eff: 0.72,
            cstate_residual: 0.02,
            wakeup_hz_per_thread: 0.004,
            wakeup_hold_s: 0.34,
            uncore_tdp_frac: 0.34,
            dynamic_tdp_frac: 0.52,
            power_cap: 0.95,
            static_tdp_frac: 0.14,
        },
        w_1s: 0.48,
        w_2s: 0.52,
        w_4s: 0.0,
        w_multi: 0.0,
    },
];

/// Non-x86 SKUs for the nine stage-2 `NonX86Vendor` rejects.
pub const OTHER_VENDOR_SKUS: [Sku; 3] = [
    sku("SPARC T3-1", 16, 1.65, 1.65, 139.0, 1.0),
    sku("IBM POWER7", 8, 3.55, 3.55, 200.0, 1.0),
    sku("Fujitsu SPARC64 VII", 4, 2.88, 2.88, 135.0, 1.0),
];

/// Desktop/non-server x86 SKUs for the six `NotServerClass` rejects.
pub const DESKTOP_SKUS: [Sku; 4] = [
    sku("Intel Core 2 Duo E6850", 2, 3.0, 3.0, 65.0, 1.0),
    sku("Intel Core i3-2120", 2, 3.3, 3.3, 65.0, 1.0),
    sku("AMD Athlon II X4 610e", 4, 2.4, 2.4, 45.0, 1.0),
    sku("AMD Ryzen 7 1700", 8, 3.0, 3.7, 65.0, 1.0),
];

/// All server generations of both vendors.
pub fn all_generations() -> Vec<&'static Generation> {
    INTEL_GENERATIONS
        .iter()
        .chain(AMD_GENERATIONS.iter())
        .collect()
}

/// Generations of a vendor on the market in `(year, month)`.
pub fn available_in(vendor: CpuVendor, year: i32, month: u8) -> Vec<&'static Generation> {
    let stamp = (year, month);
    all_generations()
        .into_iter()
        .filter(|g| g.vendor == vendor)
        .filter(|g| g.intro <= stamp && stamp <= g.sunset)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{CpuVendor, ServerBrand};

    #[test]
    fn generations_cover_2005_to_2024() {
        for year in 2006..=2024 {
            let intel = available_in(CpuVendor::Intel, year, 6);
            assert!(!intel.is_empty(), "no Intel generation in {year}");
        }
        // AMD has its documented server gap around 2015/2016.
        assert!(available_in(CpuVendor::Amd, 2015, 6).is_empty());
        assert!(!available_in(CpuVendor::Amd, 2012, 6).is_empty());
        assert!(!available_in(CpuVendor::Amd, 2018, 6).is_empty());
    }

    #[test]
    fn sku_names_classify_correctly() {
        for g in all_generations() {
            for s in g.skus {
                assert_eq!(CpuVendor::classify(s.name), g.vendor, "{}", s.name);
                assert!(
                    ServerBrand::classify(s.name).is_server_class(),
                    "{}",
                    s.name
                );
            }
        }
        for s in OTHER_VENDOR_SKUS {
            assert_eq!(CpuVendor::classify(s.name), CpuVendor::Other, "{}", s.name);
        }
        for s in DESKTOP_SKUS {
            assert_ne!(CpuVendor::classify(s.name), CpuVendor::Other, "{}", s.name);
            assert!(
                !ServerBrand::classify(s.name).is_server_class(),
                "{}",
                s.name
            );
        }
    }

    #[test]
    fn behavioural_monotonicity_across_eras() {
        // Efficiency per core-GHz rises over time within each vendor.
        for gens in [&INTEL_GENERATIONS[..], &AMD_GENERATIONS[..]] {
            let mut last = 0.0;
            for g in gens {
                assert!(
                    g.behaviour.ops_per_core_ghz >= last,
                    "{} regresses in ops/core/GHz",
                    g.key
                );
                last = g.behaviour.ops_per_core_ghz;
            }
        }
        // Idle machinery improves from nearly nothing to >70 % effectiveness.
        assert!(INTEL_GENERATIONS[0].behaviour.pkg_sleep_eff < 0.1);
        assert!(INTEL_GENERATIONS[6].behaviour.pkg_sleep_eff > 0.7);
    }

    #[test]
    fn sanity_of_parameter_ranges() {
        for g in all_generations() {
            let b = &g.behaviour;
            assert!((0.0..=1.0).contains(&b.pkg_sleep_eff), "{}", g.key);
            assert!((0.0..=1.0).contains(&b.cstate_residual), "{}", g.key);
            assert!(b.uncore_tdp_frac + b.dynamic_tdp_frac + b.static_tdp_frac <= 1.01);
            assert!(b.dvfs_floor > 0.2 && b.dvfs_floor <= 0.95, "{}", g.key);
            assert!(g.threads_per_core == 1 || g.threads_per_core == 2);
            for s in g.skus {
                assert!(s.cores >= 2 && s.cores <= 128, "{}", s.name);
                assert!(s.boost_ghz >= s.nominal_ghz, "{}", s.name);
                assert!(s.tdp_w > 20.0 && s.tdp_w <= 400.0, "{}", s.name);
            }
        }
    }

    #[test]
    fn recent_core_count_targets() {
        // Paper: since 2021, mean cores AMD 85.8 vs Intel 39.5. The weighted
        // SKU means of the post-2021 generations should be in that vicinity.
        let weighted_mean = |gens: &[&Generation]| {
            let mut num = 0.0;
            let mut den = 0.0;
            for g in gens {
                for s in g.skus {
                    num += s.cores as f64 * s.weight;
                    den += s.weight;
                }
            }
            num / den
        };
        let intel: Vec<&Generation> = INTEL_GENERATIONS
            .iter()
            .filter(|g| g.intro.0 >= 2021)
            .collect();
        let amd: Vec<&Generation> = AMD_GENERATIONS
            .iter()
            .filter(|g| g.intro.0 >= 2021)
            .collect();
        let intel_mean = weighted_mean(&intel);
        let amd_mean = weighted_mean(&amd);
        assert!(
            (30.0..=50.0).contains(&intel_mean),
            "Intel mean cores {intel_mean}"
        );
        assert!(
            (60.0..=100.0).contains(&amd_mean),
            "AMD mean cores {amd_mean}"
        );
        assert!(amd_mean > 1.8 * intel_mean);
    }
}
