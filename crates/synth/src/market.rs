//! The submission market 2005–2024: how many runs per year, which vendor,
//! OS, topology and system builder.
//!
//! Counts are planned deterministically so the dataset reproduces the
//! paper's filter cascade *exactly*: 1017 raw files → 960 valid (40 + 3 +
//! 4 + 3 + 1 + 5 + 1 rejects) → 676 comparable (9 non-x86, 6 non-server,
//! 269 excluded topologies). Within each planned slot, the concrete
//! system is sampled randomly but reproducibly.

use rand::Rng;
use spec_model::CpuVendor;

/// Stage-1 anomaly kinds (mirror `spec_format::ValidityIssue`, minus the
/// catch-all).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AnomalyKind {
    /// Submission not accepted by SPEC review.
    NotAccepted,
    /// Ambiguous date string in the report.
    AmbiguousDate,
    /// Dates outside the plausible window.
    ImplausibleDate,
    /// Ambiguous CPU name.
    AmbiguousCpuName,
    /// Missing node count line.
    MissingNodeCount,
    /// Core/thread bookkeeping contradiction.
    InconsistentCoreThread,
    /// Physically implausible counts.
    ImplausibleCoreThread,
}

impl AnomalyKind {
    /// All kinds with the paper's counts.
    pub const PAPER_COUNTS: [(AnomalyKind, u32); 7] = [
        (AnomalyKind::NotAccepted, 40),
        (AnomalyKind::AmbiguousDate, 3),
        (AnomalyKind::ImplausibleDate, 4),
        (AnomalyKind::AmbiguousCpuName, 3),
        (AnomalyKind::MissingNodeCount, 1),
        (AnomalyKind::InconsistentCoreThread, 5),
        (AnomalyKind::ImplausibleCoreThread, 1),
    ];
}

/// The per-year plan of one dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct YearPlan {
    /// Hardware-availability year.
    pub year: i32,
    /// Comparable runs (x86 server CPU, 1 node, ≤2 sockets).
    pub comparable: u32,
    /// Valid runs excluded by topology (multi-node or >2 sockets).
    pub topology_excluded: u32,
    /// Valid runs on non-x86 CPUs.
    pub non_x86: u32,
    /// Valid runs on non-server x86 CPUs.
    pub non_server: u32,
    /// Stage-1 anomaly slots in this year.
    pub anomalies: Vec<AnomalyKind>,
}

impl YearPlan {
    /// All valid (stage-1-passing) runs of this year.
    pub fn valid_total(&self) -> u32 {
        self.comparable + self.topology_excluded + self.non_x86 + self.non_server
    }

    /// All raw submissions of this year.
    pub fn raw_total(&self) -> u32 {
        self.valid_total() + self.anomalies.len() as u32
    }
}

/// Per-year totals of valid runs (sums to 960). The 2013–2017 dip averages
/// exactly 15.2 runs/year as reported in the paper.
const VALID_PER_YEAR: [(i32, u32); 20] = [
    (2005, 6),
    (2006, 48),
    (2007, 80),
    (2008, 84),
    (2009, 74),
    (2010, 70),
    (2011, 60),
    (2012, 52),
    (2013, 19),
    (2014, 14),
    (2015, 11),
    (2016, 12),
    (2017, 20),
    (2018, 36),
    (2019, 50),
    (2020, 48),
    (2021, 55),
    (2022, 57),
    (2023, 64),
    (2024, 100),
];

/// Topology-excluded counts per year (sums to 269; blades and 4-socket
/// systems were common early on).
const TOPOLOGY_PER_YEAR: [(i32, u32); 20] = [
    (2005, 2),
    (2006, 20),
    (2007, 32),
    (2008, 34),
    (2009, 30),
    (2010, 28),
    (2011, 24),
    (2012, 19),
    (2013, 6),
    (2014, 4),
    (2015, 3),
    (2016, 3),
    (2017, 4),
    (2018, 10),
    (2019, 11),
    (2020, 9),
    (2021, 9),
    (2022, 8),
    (2023, 7),
    (2024, 6),
];

/// Non-x86 submissions (sums to 9, clustered in the SPARC/POWER era).
const NON_X86_PER_YEAR: [(i32, u32); 5] = [(2007, 2), (2008, 2), (2009, 2), (2010, 2), (2011, 1)];

/// Non-server x86 submissions (sums to 6).
const NON_SERVER_PER_YEAR: [(i32, u32); 5] =
    [(2008, 2), (2009, 1), (2010, 1), (2011, 1), (2012, 1)];

/// Stage-1 anomaly years.
const ANOMALY_YEARS: [(AnomalyKind, &[i32]); 7] = [
    (
        AnomalyKind::NotAccepted,
        &[
            2006, 2006, 2006, 2007, 2007, 2007, 2007, 2008, 2008, 2008, 2008, 2009, 2009, 2009,
            2010, 2010, 2010, 2011, 2011, 2011, 2012, 2012, 2013, 2014, 2016, 2017, 2018, 2018,
            2019, 2019, 2019, 2020, 2020, 2021, 2021, 2022, 2022, 2023, 2023, 2024,
        ],
    ),
    (AnomalyKind::AmbiguousDate, &[2008, 2013, 2019]),
    (AnomalyKind::ImplausibleDate, &[2007, 2009, 2012, 2020]),
    (AnomalyKind::AmbiguousCpuName, &[2006, 2010, 2018]),
    (AnomalyKind::MissingNodeCount, &[2011]),
    (
        AnomalyKind::InconsistentCoreThread,
        &[2007, 2009, 2014, 2021, 2023],
    ),
    (AnomalyKind::ImplausibleCoreThread, &[2017]),
];

/// Build the full deterministic per-year plan.
pub fn submission_plan() -> Vec<YearPlan> {
    let lookup = |table: &[(i32, u32)], year: i32| -> u32 {
        table
            .iter()
            .find(|(y, _)| *y == year)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    VALID_PER_YEAR
        .iter()
        .map(|&(year, total)| {
            let topology_excluded = lookup(&TOPOLOGY_PER_YEAR, year);
            let non_x86 = lookup(&NON_X86_PER_YEAR, year);
            let non_server = lookup(&NON_SERVER_PER_YEAR, year);
            let mut anomalies = Vec::new();
            for (kind, years) in ANOMALY_YEARS {
                for &y in years {
                    if y == year {
                        anomalies.push(kind);
                    }
                }
            }
            YearPlan {
                year,
                comparable: total - topology_excluded - non_x86 - non_server,
                topology_excluded,
                non_x86,
                non_server,
                anomalies,
            }
        })
        .collect()
}

/// Probability that a run of this year uses an AMD CPU (given both vendors
/// have product on the market). Calibrated to 13.0 % before 2018 and 31.3 %
/// from 2018 on.
pub fn amd_probability(year: i32) -> f64 {
    if year < 2018 {
        0.145
    } else if year == 2018 {
        // Naples year: AMD's re-entry was gradual.
        0.15
    } else if year <= 2020 {
        0.22
    } else {
        // EPYC Milan onwards dominates recent submissions; the yearly mix
        // averages to the paper's 31.3 % over 2018-2024.
        0.40
    }
}

/// Probability that a run of this year uses Linux (2.2 % before 2018,
/// 36.3 % after — the paper's Figure 1 shift).
pub fn linux_probability(year: i32) -> f64 {
    if year < 2018 {
        0.022
    } else {
        0.363
    }
}

/// Probability of a Solaris submission (early years only).
pub fn solaris_probability(year: i32) -> f64 {
    if year <= 2012 {
        0.015
    } else {
        0.0
    }
}

/// Sample an operating-system name for a run of this year.
pub fn sample_os<R: Rng + ?Sized>(rng: &mut R, year: i32) -> String {
    let u: f64 = rng.gen();
    if u < linux_probability(year) {
        let options: &[&str] = if year < 2015 {
            &[
                "SUSE Linux Enterprise Server 11",
                "Red Hat Enterprise Linux 6",
            ]
        } else if year < 2020 {
            &[
                "SUSE Linux Enterprise Server 12 SP3",
                "Red Hat Enterprise Linux 7.4",
                "Ubuntu 18.04 LTS",
            ]
        } else {
            &[
                "SUSE Linux Enterprise Server 15 SP4",
                "Red Hat Enterprise Linux release 9.0 (Plow)",
                "Ubuntu 22.04 LTS",
            ]
        };
        options[rng.gen_range(0..options.len())].to_string()
    } else if u < linux_probability(year) + solaris_probability(year) {
        "Solaris 10".to_string()
    } else {
        let win = match year {
            ..=2008 => "Windows Server 2003 Enterprise Edition",
            2009..=2012 => "Windows Server 2008 R2 Enterprise",
            2013..=2016 => "Windows Server 2012 R2 Standard",
            2017..=2019 => "Windows Server 2016 Standard",
            2020..=2021 => "Windows Server 2019 Datacenter",
            _ => "Windows Server 2022 Datacenter",
        };
        win.to_string()
    }
}

/// Sample a JVM description for a run of this year.
pub fn sample_jvm<R: Rng + ?Sized>(rng: &mut R, year: i32) -> (String, String) {
    let (vendor, version): (&str, &str) = match year {
        ..=2009 => ("IBM", "IBM J9 VM (build 2.4, J2RE 1.6.0)"),
        2010..=2014 => ("Oracle", "Java HotSpot 64-Bit Server VM 1.6.0_21"),
        2015..=2018 => ("Oracle", "Java HotSpot 64-Bit Server VM 1.8.0_121"),
        2019..=2021 => ("Oracle", "Java HotSpot 64-Bit Server VM 11.0.4"),
        _ => ("Oracle", "Java HotSpot 64-Bit Server VM 17.0.2"),
    };
    // A minority of runs use the other big JVM of the era.
    if rng.gen::<f64>() < 0.2 {
        if vendor == "IBM" {
            (
                "Oracle".to_string(),
                "Java HotSpot 64-Bit Server VM 1.6.0_14".to_string(),
            )
        } else {
            (
                "IBM".to_string(),
                "IBM J9 VM (build 2.9, JRE 1.8.0)".to_string(),
            )
        }
    } else {
        (vendor.to_string(), version.to_string())
    }
}

/// Sample a system manufacturer plausible for the era.
pub fn sample_manufacturer<R: Rng + ?Sized>(rng: &mut R, year: i32) -> &'static str {
    // (name, weight, first_year, last_year)
    const MAKERS: [(&str, f64, i32, i32); 11] = [
        ("Dell Inc.", 0.17, 2005, 2024),
        ("Hewlett Packard Enterprise", 0.17, 2005, 2024),
        ("Fujitsu", 0.14, 2005, 2024),
        ("IBM Corporation", 0.10, 2005, 2014),
        ("Lenovo Global Technology", 0.12, 2014, 2024),
        ("Supermicro", 0.08, 2008, 2024),
        ("Inspur Corporation", 0.07, 2017, 2024),
        ("Hitachi", 0.05, 2005, 2013),
        ("NEC Corporation", 0.05, 2005, 2018),
        ("Huawei", 0.05, 2015, 2024),
        ("Acer Incorporated", 0.03, 2008, 2014),
    ];
    let eligible: Vec<(&str, f64)> = MAKERS
        .iter()
        .filter(|(_, _, lo, hi)| (*lo..=*hi).contains(&year))
        .map(|(n, w, _, _)| (*n, *w))
        .collect();
    let total: f64 = eligible.iter().map(|(_, w)| w).sum();
    let mut u = rng.gen::<f64>() * total;
    for (name, w) in &eligible {
        u -= w;
        if u <= 0.0 {
            return name;
        }
    }
    eligible.last().expect("nonempty").0
}

/// Sample a model name in the manufacturer's house style.
pub fn sample_model_name<R: Rng + ?Sized>(
    rng: &mut R,
    manufacturer: &str,
    vendor: CpuVendor,
    year: i32,
) -> String {
    let gen_digit = ((year - 2003) / 2).clamp(1, 9);
    let n = rng.gen_range(0..=9);
    match manufacturer {
        "Dell Inc." => {
            let family = if vendor == CpuVendor::Amd { "R6" } else { "R7" };
            format!("PowerEdge {family}{gen_digit}{n}")
        }
        "Hewlett Packard Enterprise" => format!(
            "ProLiant DL{}{} Gen{}",
            if vendor == CpuVendor::Amd { 38 } else { 36 },
            n % 2,
            gen_digit
        ),
        "Fujitsu" => format!("PRIMERGY RX{}{}0 M{}", 2 + (n % 2), n % 5, gen_digit),
        "IBM Corporation" => format!("System x36{n}0 M{gen_digit}"),
        "Lenovo Global Technology" => format!(
            "ThinkSystem SR6{}{} V{}",
            if vendor == CpuVendor::Amd { 4 } else { 5 },
            n % 6,
            (gen_digit - 5).max(1)
        ),
        "Supermicro" => format!("SuperServer SYS-{}2{n}U", 1 + n % 6),
        "Inspur Corporation" => format!("NF{}2{n0}M{m}", 5, n0 = n % 9, m = gen_digit),
        "Hitachi" => format!("HA8000/RS2{n}0"),
        "NEC Corporation" => format!("Express5800/R120{}-{}", gen_digit, n % 4),
        "Huawei" => format!("FusionServer {}288H V{}", 1 + n % 2, gen_digit - 3),
        _ => format!("Altos R{}{n}0", 3 + n % 3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plan_totals_match_paper() {
        let plan = submission_plan();
        let valid: u32 = plan.iter().map(YearPlan::valid_total).sum();
        let raw: u32 = plan.iter().map(YearPlan::raw_total).sum();
        let comparable: u32 = plan.iter().map(|p| p.comparable).sum();
        let topology: u32 = plan.iter().map(|p| p.topology_excluded).sum();
        let non_x86: u32 = plan.iter().map(|p| p.non_x86).sum();
        let non_server: u32 = plan.iter().map(|p| p.non_server).sum();
        assert_eq!(valid, 960);
        assert_eq!(raw, 1017);
        assert_eq!(comparable, 676);
        assert_eq!(topology, 269);
        assert_eq!(non_x86, 9);
        assert_eq!(non_server, 6);
    }

    #[test]
    fn anomaly_counts_match_paper() {
        let plan = submission_plan();
        for (kind, expected) in AnomalyKind::PAPER_COUNTS {
            let count: usize = plan
                .iter()
                .map(|p| p.anomalies.iter().filter(|a| **a == kind).count())
                .sum();
            assert_eq!(count as u32, expected, "{kind:?}");
        }
    }

    #[test]
    fn dip_years_average_15_2() {
        let plan = submission_plan();
        let dip: u32 = plan
            .iter()
            .filter(|p| (2013..=2017).contains(&p.year))
            .map(YearPlan::valid_total)
            .sum();
        assert!((dip as f64 / 5.0 - 15.2).abs() < 1e-9);
    }

    #[test]
    fn no_year_overdrawn() {
        for p in submission_plan() {
            assert!(
                p.topology_excluded + p.non_x86 + p.non_server <= p.valid_total(),
                "{}",
                p.year
            );
        }
    }

    #[test]
    fn share_dials() {
        assert!(amd_probability(2010) < 0.2);
        assert!(amd_probability(2021) > 0.3);
        assert!(linux_probability(2012) < 0.03);
        assert!(linux_probability(2020) > 0.3);
        assert_eq!(solaris_probability(2020), 0.0);
    }

    #[test]
    fn os_sampling_shares() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut linux_pre = 0;
        let mut linux_post = 0;
        const N: usize = 20_000;
        for _ in 0..N {
            if sample_os(&mut rng, 2010).to_lowercase().contains("linux")
                || sample_os(&mut rng, 2010).contains("Red Hat")
            {
                linux_pre += 1;
            }
            let os = sample_os(&mut rng, 2022);
            let lower = os.to_ascii_lowercase();
            if lower.contains("linux") || lower.contains("red hat") || lower.contains("ubuntu") {
                linux_post += 1;
            }
        }
        assert!((linux_pre as f64 / N as f64) < 0.06);
        assert!(((linux_post as f64 / N as f64) - 0.363).abs() < 0.02);
    }

    #[test]
    fn manufacturers_respect_eras() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let m = sample_manufacturer(&mut rng, 2007);
            assert_ne!(m, "Lenovo Global Technology");
            assert_ne!(m, "Inspur Corporation");
            let m2 = sample_manufacturer(&mut rng, 2023);
            assert_ne!(m2, "IBM Corporation");
            assert_ne!(m2, "Hitachi");
        }
    }

    #[test]
    fn model_names_nonempty_for_all_makers() {
        let mut rng = StdRng::seed_from_u64(6);
        for year in [2007, 2015, 2023] {
            for _ in 0..50 {
                let maker = sample_manufacturer(&mut rng, year);
                let model = sample_model_name(&mut rng, maker, CpuVendor::Intel, year);
                assert!(!model.is_empty());
            }
        }
    }

    #[test]
    fn jvm_era_consistency() {
        let mut rng = StdRng::seed_from_u64(7);
        let (_, v) = sample_jvm(&mut rng, 2023);
        assert!(v.contains("17") || v.contains("1.8"), "{v}");
    }
}
